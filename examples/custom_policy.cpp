// Writing a custom data-movement policy (the paper's central claim: the
// application, the policy and the data manager are independent, so an
// expert can swap the policy without touching application code).
//
// This example implements WriteBufferPolicy: a policy specialized for
// streaming/append workloads.  It keeps only *written* objects in fast
// memory (a write buffer) and serves every read from NVRAM, evicting
// buffered objects in strict FIFO order.  The same workload then runs
// under WriteBufferPolicy and under the stock LruPolicy -- identical
// application code, different movement behaviour.
//
// Build & run:  ./build/examples/custom_policy
#include <cstdio>
#include <deque>

#include "core/cached_array.hpp"
#include "policy/lru_policy.hpp"
#include "policy/policy.hpp"
#include "util/rng.hpp"
#include "util/format.hpp"

using namespace ca;

namespace {

class WriteBufferPolicy final : public policy::Policy {
 public:
  explicit WriteBufferPolicy(dm::DataManager& dm) : dm_(&dm) {}

  dm::Region& place_new(dm::Object& object) override {
    // Fresh objects are about to be written: buffer them in fast memory.
    if (dm::Region* r = fast_alloc(object.size())) {
      dm_->setprimary(object, *r);
      fifo_.push_back(&object);
      return *r;
    }
    dm::Region* r = dm_->allocate(sim::kSlow, object.size());
    if (r == nullptr) throw OutOfMemoryError("slow tier exhausted");
    dm_->setprimary(object, *r);
    return *r;
  }

  void will_read(dm::Object&) override {}  // reads are served in place
  void will_use(dm::Object&) override {}

  void will_write(dm::Object& object) override {
    dm::Region* primary = dm_->getprimary(object);
    if (dm_->in(*primary, sim::kFast)) return;
    dm::Region* r = fast_alloc(object.size());
    if (r == nullptr) return;  // buffer full beyond relief: write in place
    dm_->copyto(*r, *primary);
    dm_->link(*primary, *r);
    dm_->setprimary(object, *r);
    fifo_.push_back(&object);
  }

  void archive(dm::Object&) override {}  // FIFO order already handles age

  bool retire(dm::Object&) override { return true; }

  void on_destroy(dm::Object& object) override {
    for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
      if (*it == &object) {
        fifo_.erase(it);
        break;
      }
    }
  }

  void begin_kernel(std::span<dm::Object* const>) override {}
  void end_kernel() override {}
  void set_pressure_handler(PressureHandler handler) override {
    pressure_ = std::move(handler);
  }

  [[nodiscard]] std::size_t drains() const noexcept { return drains_; }

 private:
  /// Allocate in fast memory, draining the oldest buffered objects to
  /// NVRAM until the request fits (a Listing-1 eviction per drain).
  dm::Region* fast_alloc(std::size_t size) {
    for (;;) {
      if (dm::Region* r = dm_->allocate(sim::kFast, size)) return r;
      if (fifo_.empty()) return nullptr;
      dm::Object* victim = fifo_.front();
      fifo_.pop_front();
      drain(*victim);
      ++drains_;
    }
  }

  void drain(dm::Object& object) {
    dm::Region* x = dm_->getprimary(object);
    if (!dm_->in(*x, sim::kFast)) return;
    dm::Region* y = dm_->getlinked(*x, sim::kSlow);
    const bool allocated = y == nullptr;
    if (allocated) {
      y = dm_->allocate(sim::kSlow, object.size());
      if (y == nullptr && pressure_ && pressure_()) {
        y = dm_->allocate(sim::kSlow, object.size());
      }
      if (y == nullptr) throw OutOfMemoryError("slow tier exhausted");
    }
    if (dm_->isdirty(*x) || allocated) dm_->copyto(*y, *x);
    dm_->setprimary(object, *y);
    if (!allocated) dm_->unlink(*x);
    dm_->free(x);
  }

  dm::DataManager* dm_;
  PressureHandler pressure_;
  std::deque<dm::Object*> fifo_;
  std::size_t drains_ = 0;
};

/// The "application": an append-heavy log pipeline.  It writes batches,
/// occasionally re-reads an old batch, and never mutates history.  Note it
/// only touches CachedArrays and hints -- no policy-specific code.
template <typename MakeRuntime>
double run_pipeline(const char* label, MakeRuntime&& make) {
  auto rt = make();
  std::vector<core::CachedArray<float>> batches;
  util::Xoshiro256 rng(7);
  // A hot index structure, rewritten on every append.  An access-recency
  // policy keeps it resident; a FIFO write buffer keeps draining it.
  core::CachedArray<float> index(*rt, 64 * 1024, "index");
  for (int step = 0; step < 64; ++step) {
    core::CachedArray<float> batch(*rt, 64 * 1024,
                                   "batch" + std::to_string(step));
    batch.will_write();
    batch.with_write([&](std::span<float> s) {
      s[0] = static_cast<float>(step);
    });
    batch.archive();  // history: likely never touched again
    batches.push_back(batch);
    index.will_write();
    index.with_write([&](std::span<float> s) {
      s[static_cast<std::size_t>(step)] = 1.0f;
    });
    if (step % 7 == 6) {  // occasional audit read of an old batch
      auto& old = batches[rng.bounded(batches.size())];
      old.will_read();
      old.with_read([](std::span<const float> s) {
        volatile float sink = s[0];
        (void)sink;
      });
    }
  }
  const double t = rt->clock().now();
  std::printf("%-18s simulated time %.3fs, NVRAM writes %s\n", label, t,
              util::format_bytes(
                  rt->counters().device(sim::kSlow).bytes_written)
                  .c_str());
  return t;
}

std::unique_ptr<core::Runtime> make_runtime(core::Runtime::PolicyFactory f) {
  return std::make_unique<core::Runtime>(
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 64 * util::MiB),
      std::move(f));
}

}  // namespace

int main() {
  std::printf("== Custom policy: same application, two policies ==\n\n");
  run_pipeline("WriteBufferPolicy", [] {
    return make_runtime([](dm::DataManager& dm) {
      return std::make_unique<WriteBufferPolicy>(dm);
    });
  });
  run_pipeline("LruPolicy (LM)", [] {
    return make_runtime([](dm::DataManager& dm) {
      return std::make_unique<policy::LruPolicy>(
          dm, policy::LruPolicyConfig{.min_migratable = 4 * util::KiB});
    });
  });
  std::printf(
      "\nThe pipeline code never mentions devices, regions or copies: the\n"
      "policy swap is invisible to it (the paper's separation of "
      "concerns).\n");
  return 0;
}
