// Quickstart: the CachedArrays API in one file.
//
//   1. Build a simulated heterogeneous-memory platform (fast DRAM tier +
//      big NVRAM tier).
//   2. Create a Runtime with the LRU policy (the paper's CA: LM mode).
//   3. Allocate CachedArrays, read/write them, and attach semantic hints.
//   4. Watch the policy move data between tiers in response.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numeric>

#include "core/cached_array.hpp"
#include "core/kernel_launch.hpp"
#include "policy/lru_policy.hpp"
#include "util/format.hpp"

using namespace ca;

namespace {

const char* tier_of(core::Runtime& rt, const dm::Object* obj) {
  const dm::Region* primary = rt.manager().getprimary(*obj);
  return sim::to_string(rt.platform().spec(primary->device()).kind);
}

}  // namespace

int main() {
  // A small platform: 4 MiB of fast memory backed by 64 MiB of slow
  // memory (the library scales to the paper's 180 MiB / 1300 MiB setup).
  auto platform = sim::Platform::cascade_lake_scaled(4 * util::MiB,
                                                     64 * util::MiB);
  core::Runtime rt(std::move(platform), [](dm::DataManager& dm) {
    policy::LruPolicyConfig cfg;
    cfg.local_alloc = true;   // L: new arrays are born in fast memory
    cfg.eager_retire = true;  // M: retire frees storage immediately
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  });

  std::printf("== CachedArrays quickstart ==\n\n");

  // --- allocate and fill -------------------------------------------------
  core::CachedArray<float> weights(rt, 256 * 1024, "weights");
  core::CachedArray<float> acts(rt, 256 * 1024, "activations");
  weights.with_write([](std::span<float> w) {
    std::iota(w.begin(), w.end(), 0.0f);
  });
  std::printf("weights allocated in:      %s\n", tier_of(rt, weights.object()));

  // --- hints drive data movement ------------------------------------------
  // "I will not touch the weights for a while" -> preferred eviction victim.
  weights.archive();

  // Allocating more than fast memory holds forces evictions; the archived
  // array is displaced first.
  std::vector<core::CachedArray<float>> pressure;
  for (int i = 0; i < 4; ++i) {
    pressure.emplace_back(rt, 256 * 1024, "tmp" + std::to_string(i));
  }
  std::printf("after memory pressure:     %s (archived -> evicted)\n",
              tier_of(rt, weights.object()));

  // "I am about to write this" -> the policy stages it back in fast memory.
  weights.will_write();
  std::printf("after will_write hint:     %s (prefetched back)\n",
              tier_of(rt, weights.object()));

  // Data survives every migration.
  weights.with_read([](std::span<const float> w) {
    if (w[12345] != 12345.0f) std::abort();
  });
  std::printf("data integrity:            ok (byte-exact across moves)\n");

  // --- the kernel programming model ---------------------------------------
  // Multi-argument launch: hints + pinning + one-time pointer resolution.
  core::KernelLaunch launch(rt);
  launch.reads(weights).writes(acts);
  launch.run([&] {
    acts.with_write([&](std::span<float> out) {
      weights.with_read([&](std::span<const float> in) {
        for (std::size_t i = 0; i < out.size(); ++i) out[i] = 2.0f * in[i];
      });
    });
  });
  std::printf("kernel launch:             ok (arguments pinned during use)\n");

  // "Never again" -> storage released immediately under the M optimization.
  acts.retire();
  std::printf("after retire:              %zu live objects\n",
              rt.manager().live_objects());

  // --- what did all this cost? --------------------------------------------
  const auto& dram = rt.counters().device(sim::kFast);
  const auto& nvram = rt.counters().device(sim::kSlow);
  std::printf(
      "\nsimulated time: %.4fs | DRAM traffic: %s | NVRAM traffic: %s\n",
      rt.clock().now(), util::format_bytes(dram.total()).c_str(),
      util::format_bytes(nvram.total()).c_str());
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  std::printf("policy ops: %llu evictions, %llu prefetches, %llu elided "
              "writebacks\n",
              (unsigned long long)lru.op_stats().evictions,
              (unsigned long long)lru.op_stats().prefetches,
              (unsigned long long)lru.op_stats().elided_writebacks);
  return 0;
}
