// Memory inspector: observability tooling over the CachedArrays runtime.
//
// Runs a pressured training workload and prints, per iteration, the view an
// operator would want: tier occupancy, fragmentation, policy activity, GC
// behaviour, traffic and the simulated-time breakdown -- then dumps a heap
// map of the fast tier.
//
// Build & run:  ./build/examples/memory_inspector
#include <cstdio>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "policy/lru_policy.hpp"
#include "util/format.hpp"

using namespace ca;
using namespace ca::dnn;

namespace {

void heap_map(core::Runtime& rt, sim::DeviceId dev) {
  // One character per 1/64th of the heap: '#' allocated, '.' free.
  const auto stats = rt.manager().device_stats(dev);
  std::string map(64, '.');
  // Reconstruct from region listing via the allocator is internal; use the
  // occupancy fraction per bucket through public queries: we approximate
  // with overall occupancy here and mark the fraction.
  const double frac = static_cast<double>(stats.allocated) /
                      static_cast<double>(stats.capacity);
  for (std::size_t i = 0; i < static_cast<std::size_t>(frac * 64.0); ++i) {
    map[i] = '#';
  }
  std::printf("  %-6s [%s] %s / %s, frag %.0f%%, %zu regions\n",
              sim::to_string(rt.platform().spec(dev).kind), map.c_str(),
              util::format_bytes(stats.allocated).c_str(),
              util::format_bytes(stats.capacity).c_str(),
              100.0 * stats.fragmentation, stats.regions);
}

}  // namespace

int main() {
  ModelSpec spec;
  spec.family = ModelSpec::Family::kDenseNet;
  spec.name = "DenseNet probe";
  spec.stages = {4, 4};
  spec.growth = 8;
  spec.batch = 12;
  spec.image = 16;
  spec.classes = 10;
  spec.base_channels = 16;

  HarnessConfig hc;
  hc.mode = Mode::kCaLM;
  hc.dram_bytes = 2 * util::MiB;
  hc.nvram_bytes = 64 * util::MiB;
  hc.backend = Backend::kSim;
  Harness harness(hc);
  auto model = build_model(harness.engine(), spec);

  telemetry::TimeSeries occupancy("resident");
  TrainerOptions opts;
  opts.occupancy = &occupancy;
  Trainer trainer(harness, *model, opts);

  std::printf("== Memory inspector: %s under a %s DRAM tier ==\n\n",
              spec.name.c_str(),
              util::format_bytes(hc.dram_bytes).c_str());

  auto& rt = harness.runtime();
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  policy::LruPolicy::OpStats prev_ops;

  for (int iter = 0; iter < 3; ++iter) {
    const auto m = trainer.run_iteration();
    const auto ops = lru.op_stats();
    std::printf("iteration %d: %.3fs simulated "
                "(compute %.3fs, movement %.3fs, gc %.3fs)\n",
                iter, m.seconds, m.compute_seconds, m.movement_seconds,
                m.gc_seconds);
    std::printf("  traffic   DRAM r/w %s / %s, NVRAM r/w %s / %s\n",
                util::format_bytes(m.dram.bytes_read).c_str(),
                util::format_bytes(m.dram.bytes_written).c_str(),
                util::format_bytes(m.nvram.bytes_read).c_str(),
                util::format_bytes(m.nvram.bytes_written).c_str());
    std::printf("  policy    %llu evictions, %llu prefetches, %llu elided "
                "writebacks, %llu forced reclaims\n",
                (unsigned long long)(ops.evictions - prev_ops.evictions),
                (unsigned long long)(ops.prefetches - prev_ops.prefetches),
                (unsigned long long)(ops.elided_writebacks -
                                     prev_ops.elided_writebacks),
                (unsigned long long)(ops.forced_reclaims -
                                     prev_ops.forced_reclaims));
    std::printf("  residency peak %s, %zu objects in fast memory\n",
                util::format_bytes(m.peak_resident_bytes).c_str(),
                lru.fast_resident_objects());
    heap_map(rt, sim::kFast);
    heap_map(rt, sim::kSlow);
    prev_ops = ops;
  }

  std::printf("\nGC: %llu collections, %llu objects, %s reclaimed\n",
              (unsigned long long)rt.gc_stats().collections,
              (unsigned long long)rt.gc_stats().objects_collected,
              util::format_bytes(rt.gc_stats().bytes_collected).c_str());

  std::printf("\nresident-bytes trace (downsampled):\n");
  const double peak = occupancy.max_value();
  for (const auto& s : occupancy.downsample(12)) {
    const int bar = static_cast<int>(48.0 * s.value / peak);
    std::printf("  t=%7.3fs %8s |%s\n", s.t,
                util::format_bytes(static_cast<std::size_t>(s.value)).c_str(),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  return 0;
}
