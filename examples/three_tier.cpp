// Three-tier memory with the N-tier waterfall policy (paper §III-C's
// "higher order constructs like two-level caches", and §VI's portability
// claim): an HBM-like near tier in front of DRAM in front of NVRAM.
//
// A working set larger than the two upper tiers combined cycles through a
// hot/warm/cold access pattern; the inspector output shows objects
// settling into the tier matching their temperature.
//
// Build & run:  ./build/examples/three_tier
#include <cstdio>

#include "core/cached_array.hpp"
#include "policy/tiered_policy.hpp"
#include "util/format.hpp"

using namespace ca;

namespace {

const char* tier_name(core::Runtime& rt, const dm::Object* obj) {
  return rt.platform().spec(rt.manager().getprimary(*obj)->device())
      .name.c_str();
}

}  // namespace

int main() {
  // 4 MiB HBM-like / 16 MiB DRAM / 256 MiB NVRAM.
  core::Runtime rt(
      sim::Platform::three_tier_scaled(4 * util::MiB, 16 * util::MiB,
                                       256 * util::MiB),
      [](dm::DataManager& dm) {
        policy::TieredLruPolicyConfig cfg;
        cfg.tiers = {sim::DeviceId{0}, sim::DeviceId{1}, sim::DeviceId{2}};
        return std::make_unique<policy::TieredLruPolicy>(dm, cfg);
      });

  std::printf("== Three-tier waterfall: HBM-like / DRAM / NVRAM ==\n\n");

  // 24 x 2 MiB arrays: 48 MiB working set vs 20 MiB of upper tiers.
  std::vector<core::CachedArray<float>> arrays;
  for (int i = 0; i < 24; ++i) {
    arrays.emplace_back(rt, 512 * 1024, "a" + std::to_string(i));
  }

  // Access pattern: the first 2 arrays are hot (touched every step), the
  // next 6 warm (every 4th step), the rest cold (touched once).
  for (int step = 0; step < 32; ++step) {
    for (int i = 0; i < 2; ++i) arrays[i].will_use();
    if (step % 4 == 0) {
      for (int i = 2; i < 8; ++i) arrays[i].will_use();
    }
  }

  auto& tiered = static_cast<policy::TieredLruPolicy&>(rt.policy());
  std::printf("after the access pattern:\n");
  std::printf("  hot  a0  -> %s\n", tier_name(rt, arrays[0].object()));
  std::printf("  hot  a1  -> %s\n", tier_name(rt, arrays[1].object()));
  std::printf("  warm a4  -> %s\n", tier_name(rt, arrays[4].object()));
  std::printf("  cold a20 -> %s\n", tier_name(rt, arrays[20].object()));
  for (std::size_t t = 0; t < tiered.tier_count(); ++t) {
    std::printf("  tier %zu (%s): %zu resident objects\n", t,
                rt.platform().devices[t].name.c_str(),
                tiered.resident_objects(t));
  }
  std::printf("\npolicy ops: %llu promotions, %llu demotions, %s moved\n",
              (unsigned long long)tiered.op_stats().promotions,
              (unsigned long long)tiered.op_stats().demotions,
              util::format_bytes(tiered.op_stats().bytes_moved).c_str());
  std::printf("simulated time: %.3fs\n", rt.clock().now());
  return 0;
}
