// End-to-end CNN training on CachedArrays (the paper's §III-E scenario).
//
// Trains a small ResNet with the *real* numeric backend on a DRAM tier too
// small for the working set: every iteration forces evictions to NVRAM and
// prefetches back, while the tape inserts will_read / will_write / archive
// / retire annotations automatically.  The falling loss is the proof that
// no byte is lost in migration.
//
// Build & run:  ./build/examples/train_cnn
#include <cstdio>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "policy/lru_policy.hpp"
#include "telemetry/report.hpp"
#include "util/format.hpp"

using namespace ca;
using namespace ca::dnn;

int main() {
  ModelSpec spec = ModelSpec::resnet_tiny();
  spec.batch = 16;  // big enough to outgrow the DRAM tier below

  HarnessConfig hc;
  hc.mode = Mode::kCaLM;
  hc.dram_bytes = 256 * util::KiB;  // deliberately tiny: force tiering
  hc.nvram_bytes = 64 * util::MiB;
  hc.backend = Backend::kReal;  // actual convolutions, actual gradients
  hc.min_migratable = 4 * util::KiB;
  Harness harness(hc);
  auto& engine = harness.engine();

  auto model = build_model(engine, spec);
  model->init(engine, /*seed=*/7);
  std::printf("== Training %s (%zu parameters) ==\n", spec.name.c_str(),
              model->parameter_count());
  std::printf("DRAM tier: %s | model working set exceeds it on purpose\n\n",
              util::format_bytes(hc.dram_bytes).c_str());

  // Fixed batch -> the loss must decrease monotonically-ish.
  for (int iter = 0; iter < 10; ++iter) {
    Tensor input = engine.tensor(model->input_shape(), "input");
    engine.fill_normal(input, 1.0f, 42);
    Tensor labels = engine.tensor({spec.batch}, "labels");
    engine.fill_labels(labels, spec.classes, 77);

    Tensor logits = model->forward(engine, input);
    const float loss = engine.softmax_ce_loss(logits, labels);
    engine.backward();
    engine.sgd_step(0.05f);
    engine.end_iteration();

    std::printf("iter %2d  loss %.4f\n", iter, loss);
  }

  auto& lru = static_cast<policy::LruPolicy&>(harness.runtime().policy());
  const auto& ops = lru.op_stats();
  const auto& nvram = harness.runtime().counters().device(sim::kSlow);
  std::printf(
      "\nwhile training, the policy performed %llu evictions and %llu "
      "prefetches;\n%s crossed the NVRAM interface; %llu dirty writebacks "
      "were elided.\n",
      (unsigned long long)ops.evictions, (unsigned long long)ops.prefetches,
      util::format_bytes(nvram.total()).c_str(),
      (unsigned long long)ops.elided_writebacks);
  std::printf("engine issued %llu retire and %llu archive annotations.\n",
              (unsigned long long)harness.engine().stats().retires_issued,
              (unsigned long long)harness.engine().stats().archives_issued);
  std::printf("kernels: %s\n",
              telemetry::format_kernel_report(
                  harness.engine().stats().kernel_counters)
                  .c_str());
  return 0;
}
