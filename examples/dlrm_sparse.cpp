// DLRM-style sparse embeddings on CachedArrays (the paper's §VI
// extension, after Hildebrand et al.'s DLRM work: "the policy must be
// flexible enough to adapt to the workload").
//
// A recommendation-model skeleton: several large embedding tables living
// in NVRAM (together far larger than DRAM), a tiny MLP living in DRAM.
// Every step gathers a handful of rows from each table.  Two policies run
// the same code:
//   * sparse-aware (default): will_read_partial leaves the tables in
//     NVRAM and reads just the touched rows;
//   * naive prefetching: treats each partial read as a full one and
//     ping-pongs whole tables through DRAM every step -- the failure mode
//     the paper warns about for sparse workloads.
//
// Build & run:  ./build/examples/dlrm_sparse
#include <cstdio>

#include "dnn/harness.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace ca;
using namespace ca::dnn;

namespace {

struct Result {
  double seconds;
  std::uint64_t nvram_traffic;
  std::uint64_t dram_writes;
};

Result run(bool sparse_aware) {
  // 64 MiB table vs a 16 MiB DRAM tier: the table cannot live in DRAM.
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(16 * util::MiB, 256 * util::MiB);
  core::Runtime rt(std::move(platform), [&](dm::DataManager& dm) {
    policy::LruPolicyConfig cfg;
    cfg.local_alloc = true;
    cfg.eager_retire = true;
    cfg.prefetch = true;  // the paper's P toggle -- dangerous when naive
    cfg.sparse_aware = sparse_aware;
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  });
  CaExecContext ctx(rt, 8);
  EngineConfig ec;
  ec.backend = Backend::kSim;
  Engine engine(rt, ctx, ec);

  // Four 12 MiB tables: each fits in the 16 MiB DRAM tier alone, but
  // together they are 3x oversubscribed -- exactly the thrash trap.
  const std::size_t rows = 192 * 1024;  // 12 MiB at dim 16
  const std::size_t dim = 16;
  const std::size_t batch = 256;
  std::vector<Tensor> tables;
  for (int t = 0; t < 4; ++t) {
    tables.push_back(
        engine.parameter({rows, dim}, "table" + std::to_string(t)));
  }
  // One small dense head per table; per-table logits are summed (the
  // usual DLRM feature-interaction stage, simplified).
  std::vector<Tensor> heads;
  for (int t = 0; t < 4; ++t) {
    heads.push_back(
        engine.parameter({8, dim}, "mlp.w" + std::to_string(t)));
  }
  Tensor hb = engine.parameter({8}, "mlp.b");

  for (int step = 0; step < 32; ++step) {
    Tensor logits;
    for (std::size_t t = 0; t < tables.size(); ++t) {
      Tensor idx = engine.tensor({batch}, "idx");
      Tensor gathered =
          engine.embedding_lookup(tables[t], idx, /*lr=*/0.05f);
      Tensor partial = engine.dense(gathered, heads[t], hb);
      logits = logits.valid() ? engine.add(logits, partial) : partial;
    }
    Tensor labels = engine.tensor({batch}, "labels");
    engine.softmax_ce_loss(logits, labels);
    engine.backward();
    engine.sgd_step(0.05f);
    engine.end_iteration();
  }

  const auto& nvram = rt.counters().device(sim::kSlow);
  const auto& dram = rt.counters().device(sim::kFast);
  return {rt.clock().now(), nvram.total(), dram.bytes_written};
}

}  // namespace

int main() {
  std::printf("== DLRM-style sparse embeddings: 4x 12 MiB tables, 16 MiB DRAM "
              "tier, 32 steps ==\n\n");
  const Result aware = run(/*sparse_aware=*/true);
  const Result naive = run(/*sparse_aware=*/false);

  std::printf("%-24s %12s %16s %14s\n", "policy", "sim time",
              "NVRAM traffic", "DRAM writes");
  std::printf("%-24s %11.2fs %16s %14s\n", "sparse-aware (ours)",
              aware.seconds, util::format_bytes(aware.nvram_traffic).c_str(),
              util::format_bytes(aware.dram_writes).c_str());
  std::printf("%-24s %11.2fs %16s %14s\n", "naive prefetch",
              naive.seconds, util::format_bytes(naive.nvram_traffic).c_str(),
              util::format_bytes(naive.dram_writes).c_str());
  std::printf(
      "\nThe naive policy migrates the whole table per step (%0.1fx slower);"
      "\nthe sparse-aware policy reads only the touched rows in place.\n",
      naive.seconds / aware.seconds);
  return 0;
}
