#include "mem/reference_allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ca::mem {

ReferenceAllocator::ReferenceAllocator(std::size_t capacity,
                                       std::size_t alignment, Fit fit)
    : capacity_(util::align_down(capacity, alignment)),
      alignment_(alignment),
      fit_(fit) {
  CA_CHECK(util::is_pow2(alignment), "alignment must be a power of two");
  CA_CHECK(capacity_ > 0, "capacity too small for the requested alignment");
  blocks_.emplace(0, Block{capacity_, /*allocated=*/false, nullptr});
  free_index_.insert({capacity_, 0});
}

void ReferenceAllocator::index_insert(std::size_t offset, std::size_t size) {
  free_index_.insert({size, offset});
}

void ReferenceAllocator::index_erase(std::size_t offset, std::size_t size) {
  const auto it = free_index_.find({size, offset});
  CA_CHECK(it != free_index_.end(), "free index out of sync");
  free_index_.erase(it);
}

ReferenceAllocator::BlockMap::iterator ReferenceAllocator::find_fit(
    std::size_t size) {
  if (fit_ == Fit::kBestFit) {
    // Smallest free block with size >= requested; ties broken by address.
    const auto it = free_index_.lower_bound({size, 0});
    if (it == free_index_.end()) return blocks_.end();
    const auto bit = blocks_.find(it->second);
    CA_CHECK(bit != blocks_.end() && !bit->second.allocated,
             "free index points at a missing or allocated block");
    return bit;
  }
  // First fit: lowest-address free block that fits.
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (!it->second.allocated && it->second.size >= size) return it;
  }
  return blocks_.end();
}

std::optional<std::size_t> ReferenceAllocator::allocate(std::size_t size) {
  if (size == 0) size = alignment_;
  const std::size_t aligned = util::align_up(size, alignment_);
  if (aligned < size || aligned > capacity_) {
    ++failed_allocs_;
    return std::nullopt;
  }
  size = aligned;
  const auto it = find_fit(size);
  if (it == blocks_.end()) {
    ++failed_allocs_;
    return std::nullopt;
  }
  const std::size_t offset = it->first;
  const std::size_t block_size = it->second.size;
  index_erase(offset, block_size);

  it->second.allocated = true;
  it->second.cookie = nullptr;
  if (block_size > size) {
    it->second.size = size;
    const std::size_t rem_off = offset + size;
    const std::size_t rem_size = block_size - size;
    blocks_.emplace(rem_off, Block{rem_size, false, nullptr});
    index_insert(rem_off, rem_size);
  }
  allocated_bytes_ += size;
  ++allocated_blocks_;
  ++total_allocs_;
  return offset;
}

void ReferenceAllocator::free(std::size_t offset) {
  auto it = blocks_.find(offset);
  CA_CHECK(it != blocks_.end() && it->second.allocated,
           "free of an offset that is not an allocated block");
  allocated_bytes_ -= it->second.size;
  --allocated_blocks_;
  ++total_frees_;
  it->second.allocated = false;
  it->second.cookie = nullptr;

  auto next = std::next(it);
  if (next != blocks_.end() && !next->second.allocated) {
    index_erase(next->first, next->second.size);
    it->second.size += next->second.size;
    blocks_.erase(next);
  }
  if (it != blocks_.begin()) {
    auto prev = std::prev(it);
    if (!prev->second.allocated) {
      index_erase(prev->first, prev->second.size);
      prev->second.size += it->second.size;
      blocks_.erase(it);
      it = prev;
    }
  }
  index_insert(it->first, it->second.size);
}

bool ReferenceAllocator::is_allocated(std::size_t offset) const {
  const auto it = blocks_.find(offset);
  return it != blocks_.end() && it->second.allocated;
}

std::size_t ReferenceAllocator::block_size(std::size_t offset) const {
  const auto it = blocks_.find(offset);
  CA_CHECK(it != blocks_.end() && it->second.allocated,
           "block_size of a non-allocated offset");
  return it->second.size;
}

void ReferenceAllocator::set_cookie(std::size_t offset, void* cookie) {
  const auto it = blocks_.find(offset);
  CA_CHECK(it != blocks_.end() && it->second.allocated,
           "set_cookie of a non-allocated offset");
  it->second.cookie = cookie;
}

void* ReferenceAllocator::cookie(std::size_t offset) const {
  const auto it = blocks_.find(offset);
  CA_CHECK(it != blocks_.end() && it->second.allocated,
           "cookie of a non-allocated offset");
  return it->second.cookie;
}

std::vector<ReferenceAllocator::BlockView> ReferenceAllocator::blocks() const {
  std::vector<BlockView> out;
  out.reserve(blocks_.size());
  for (const auto& [off, b] : blocks_) {
    out.push_back({off, b.size, b.allocated, b.cookie});
  }
  return out;
}

void ReferenceAllocator::for_blocks_from(
    std::size_t from,
    const std::function<bool(const BlockView&)>& fn) const {
  auto it = blocks_.upper_bound(from);
  if (it != blocks_.begin()) --it;  // block containing `from`
  if (it->first + it->second.size <= from) ++it;
  for (; it != blocks_.end(); ++it) {
    const BlockView view{it->first, it->second.size, it->second.allocated,
                         it->second.cookie};
    if (!fn(view)) return;
  }
}

std::optional<std::size_t> ReferenceAllocator::first_allocated_from(
    std::size_t from) const {
  std::optional<std::size_t> found;
  for_blocks_from(from, [&](const BlockView& b) {
    if (b.allocated) {
      found = b.offset;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<std::pair<std::size_t, std::size_t>>
ReferenceAllocator::free_index_snapshot() const {
  return {free_index_.begin(), free_index_.end()};
}

ReferenceAllocator::Stats ReferenceAllocator::stats() const {
  Stats s;
  s.capacity = capacity_;
  s.allocated_bytes = allocated_bytes_;
  s.free_bytes = capacity_ - allocated_bytes_;
  s.allocated_blocks = allocated_blocks_;
  s.free_blocks = free_index_.size();
  s.largest_free_block =
      free_index_.empty() ? 0 : free_index_.rbegin()->first;
  s.total_allocs = total_allocs_;
  s.total_frees = total_frees_;
  s.failed_allocs = failed_allocs_;
  return s;
}

void ReferenceAllocator::check_invariants() const {
  std::size_t expected_offset = 0;
  std::size_t free_bytes = 0;
  std::size_t alloc_bytes = 0;
  std::size_t alloc_blocks = 0;
  std::size_t free_blocks = 0;
  bool prev_free = false;
  for (const auto& [off, b] : blocks_) {
    CA_CHECK(off == expected_offset, "blocks do not tile the heap");
    CA_CHECK(b.size > 0, "zero-sized block");
    CA_CHECK(util::is_aligned(off, alignment_), "misaligned block offset");
    CA_CHECK(util::is_aligned(b.size, alignment_), "misaligned block size");
    if (b.allocated) {
      alloc_bytes += b.size;
      ++alloc_blocks;
      prev_free = false;
    } else {
      CA_CHECK(!prev_free, "two adjacent free blocks (missed coalesce)");
      CA_CHECK(free_index_.count({b.size, off}) == 1,
               "free block missing from the size index");
      free_bytes += b.size;
      ++free_blocks;
      prev_free = true;
    }
    expected_offset = off + b.size;
  }
  CA_CHECK(expected_offset == capacity_, "blocks do not cover the heap");
  CA_CHECK(alloc_bytes == allocated_bytes_, "allocated byte count drifted");
  CA_CHECK(alloc_blocks == allocated_blocks_, "allocated block count drifted");
  CA_CHECK(free_blocks == free_index_.size(),
           "free index size does not match free block count");
  CA_CHECK(free_bytes + alloc_bytes == capacity_, "byte accounting drifted");
}

}  // namespace ca::mem
