#include "mem/arena.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::mem {

void Arena::Free::operator()(void* p) const noexcept { std::free(p); }

Arena::Arena(std::size_t size, std::size_t alignment, bool prefault) {
  CA_CHECK(size > 0, "arena size must be positive");
  CA_CHECK(util::is_pow2(alignment), "arena alignment must be a power of 2");
  const std::size_t rounded = util::align_up(size, alignment);
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  storage_.reset(p);
  base_ = static_cast<std::byte*>(p);
  size_ = size;
  if (prefault) {
    // Touch every page so physical frames are assigned now, not during the
    // measured run (zeroing also gives deterministic content).
    std::memset(base_, 0, rounded);
  }
}

std::byte* Arena::at(std::size_t offset) {
  CA_CHECK(offset < size_, "arena offset out of range");
  return base_ + offset;
}

const std::byte* Arena::at(std::size_t offset) const {
  CA_CHECK(offset < size_, "arena offset out of range");
  return base_ + offset;
}

bool Arena::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= base_ && b < base_ + size_;
}

}  // namespace ca::mem
