// Transfer: the handle to one asynchronous movement scheduled on the copy
// engine's background mover (paper §V-c: "asynchronous data movement could
// be implemented with a separate thread pool").
//
// A transfer has two completions that are deliberately decoupled:
//   * the *real* completion: the background mover thread has finished the
//     host-side memcpy.  `join()` blocks the calling host thread until
//     then; it never advances the simulated clock.
//   * the *modeled* completion: the simulated second at which the transfer
//     retires from its mover channel (`done_time()`), computed from channel
//     availability plus the bandwidth model when the transfer is scheduled.
//
// Lifecycle: scheduled -> (real bytes land, modeled clock catches up, in
// either order) -> retired.  The DataManager keeps a registry of scheduled
// transfers and retires them once both completions have happened; the audit
// library checks that every live entry still points at live regions.
//
// The handle's synchronization runs on the ca::sync shims: in CA_RACE
// builds `join()` is a happens-before edge the race detector sees (the
// mover's writes are ordered before everything after a join) and a
// deterministic block under the schedule explorer.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "race/sync.hpp"

namespace ca::mem {

class CopyEngine;

class Transfer {
 public:
  Transfer() = default;

  /// False for a default-constructed (or reset) handle.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Modeled start / completion, in simulated seconds.  The gap between
  /// them is the channel occupancy the transfer was charged.
  [[nodiscard]] double start_time() const noexcept {
    return state_ ? state_->start : 0.0;
  }
  [[nodiscard]] double done_time() const noexcept {
    return state_ ? state_->done : 0.0;
  }

  /// Mover channel the transfer was scheduled on.
  [[nodiscard]] std::size_t channel() const noexcept {
    return state_ ? state_->channel : 0;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return state_ ? state_->bytes : 0;
  }

  /// True once the background memcpy has finished (host-side fact; do not
  /// branch simulated behaviour on it -- it is not deterministic).
  [[nodiscard]] bool real_done() const {
    return state_ == nullptr ||
           state_->real_done.load(std::memory_order_acquire);
  }

  /// Block the calling host thread until the real bytes have landed.  Does
  /// not touch the simulated clock.  No-op on an invalid handle; idempotent
  /// (joining twice, or joining an already-retired transfer, is safe).
  void join() const {
    if (state_ == nullptr) return;
    // Lockdep's held-across-blocking check fires before the real_done
    // early-out: whether a join *would* block is nondeterministic (the
    // mover may already be done), but holding a lock on the join path is
    // hazardous either way, so flag it in every schedule.
    CA_LOCKDEP_ON_BLOCKING("mem::Transfer::join");
    if (state_->real_done.load(std::memory_order_acquire)) return;
    sync::lock lock(state_->mu);
    state_->cv.wait(lock, [s = state_.get()] {
      return s->real_done.load(std::memory_order_acquire);
    });
  }

  void reset() noexcept { state_.reset(); }

 private:
  friend class CopyEngine;

  struct State {
    double start = 0.0;
    double done = 0.0;
    std::size_t channel = 0;
    std::size_t bytes = 0;
    sync::atomic<bool> real_done{false};
    sync::mutex mu CA_LEAF{CA_LOCK_CLASS("mem::Transfer::State::mu")};
    sync::condition_variable cv;
  };

  explicit Transfer(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace ca::mem
