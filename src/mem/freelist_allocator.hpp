// Offset-space heap allocator for one device arena.
//
// Design requirements taken from the paper's data manager (§III-C):
//   * allocate / free variable-sized regions from a preallocated heap;
//   * iterate live blocks in *address order*, which `evictfrom` needs to
//     reclaim a contiguous window of fast memory by evicting whatever
//     objects currently occupy it;
//   * attach an owner cookie to each allocation so a block found during an
//     address-order walk can be mapped back to the Region that owns it
//     (the DM.parent direction);
//   * support compaction ("CachedArrays inherently supports object
//     reallocation which mitigates fragmentation").
//
// The allocator works purely in offset space (no memory is touched), which
// keeps it independently testable and lets the data manager combine it with
// any Arena.  Blocks are kept in an address-ordered map with eager
// coalescing of adjacent free blocks; a size-ordered index of free blocks
// supports best-fit in O(log n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "util/align.hpp"

namespace ca::mem {

class FreeListAllocator {
 public:
  enum class Fit {
    kFirstFit,  ///< lowest-address free block that fits
    kBestFit,   ///< smallest free block that fits (ties: lowest address)
  };

  /// Read-only view of one block, in the tiling of the heap.
  struct BlockView {
    std::size_t offset = 0;
    std::size_t size = 0;
    bool allocated = false;
    void* cookie = nullptr;
  };

  struct Stats {
    std::size_t capacity = 0;
    std::size_t allocated_bytes = 0;
    std::size_t free_bytes = 0;
    std::size_t largest_free_block = 0;
    std::size_t allocated_blocks = 0;
    std::size_t free_blocks = 0;
    std::uint64_t total_allocs = 0;
    std::uint64_t total_frees = 0;
    std::uint64_t failed_allocs = 0;

    /// External fragmentation in [0,1]: 1 - largest_free / free_bytes.
    [[nodiscard]] double fragmentation() const noexcept {
      if (free_bytes == 0) return 0.0;
      return 1.0 - static_cast<double>(largest_free_block) /
                       static_cast<double>(free_bytes);
    }
  };

  /// `capacity` bytes of heap; all blocks are multiples of `alignment`
  /// (power of two) so every returned offset is aligned.
  explicit FreeListAllocator(std::size_t capacity,
                             std::size_t alignment = 64,
                             Fit fit = Fit::kFirstFit);

  FreeListAllocator(const FreeListAllocator&) = delete;
  FreeListAllocator& operator=(const FreeListAllocator&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }

  /// Allocate `size` bytes (rounded up to the alignment).  Returns the
  /// block offset, or nullopt if no free block fits.  Never throws for
  /// ordinary exhaustion -- the policy layer probes the fast tier and
  /// handles failure by evicting.
  [[nodiscard]] std::optional<std::size_t> allocate(std::size_t size);

  /// Free the block at `offset` (must be currently allocated).  Adjacent
  /// free blocks are coalesced immediately.
  void free(std::size_t offset);

  /// True iff `offset` is the start of a live allocation.
  [[nodiscard]] bool is_allocated(std::size_t offset) const;

  /// Usable size of the allocated block at `offset`.
  [[nodiscard]] std::size_t block_size(std::size_t offset) const;

  /// Attach/read an owner cookie on an allocated block.
  void set_cookie(std::size_t offset, void* cookie);
  [[nodiscard]] void* cookie(std::size_t offset) const;

  /// All blocks (allocated and free) in address order.
  [[nodiscard]] std::vector<BlockView> blocks() const;

  /// Visit blocks in address order starting with the block containing (or
  /// first after) `from`.  `fn` returns false to stop the walk.
  void for_blocks_from(std::size_t from,
                       const std::function<bool(const BlockView&)>& fn) const;

  /// Offset of the first allocated block at or after `from`, if any.
  [[nodiscard]] std::optional<std::size_t> first_allocated_from(
      std::size_t from) const;

  [[nodiscard]] Stats stats() const;

  /// Verify structural invariants (blocks tile [0, capacity) exactly, no
  /// two adjacent free blocks, indexes consistent).  Throws InternalError
  /// on violation.  Used by the property-based test suite.  `audit::verify`
  /// is the non-throwing counterpart that returns a structured report.
  void check_invariants() const;

  /// The (size, offset) entries of the free-block index, in index order.
  /// Read-only view for the ca::audit library, which cross-checks the index
  /// against the address-ordered block map.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  free_index_snapshot() const;

 private:
  // Test-only seam: lets the audit test suite corrupt internal state to
  // prove that audit::verify detects each class of violation.  Defined only
  // in tests/audit/; never in the library.
  friend struct AllocatorTestPeer;
  struct Block {
    std::size_t size = 0;
    bool allocated = false;
    void* cookie = nullptr;
  };

  using BlockMap = std::map<std::size_t, Block>;

  /// Free-block index entry ordered by (size, offset) for best-fit.
  using FreeKey = std::pair<std::size_t, std::size_t>;

  [[nodiscard]] BlockMap::iterator find_fit(std::size_t size);
  void index_insert(std::size_t offset, std::size_t size);
  void index_erase(std::size_t offset, std::size_t size);

  std::size_t capacity_;
  std::size_t alignment_;
  Fit fit_;
  BlockMap blocks_;
  std::set<FreeKey> free_index_;
  std::size_t allocated_bytes_ = 0;
  std::size_t allocated_blocks_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t total_frees_ = 0;
  std::uint64_t failed_allocs_ = 0;
};

}  // namespace ca::mem
