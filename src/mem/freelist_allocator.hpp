// Offset-space heap allocator for one device arena.
//
// Design requirements taken from the paper's data manager (§III-C):
//   * allocate / free variable-sized regions from a preallocated heap;
//   * iterate live blocks in *address order*, which `evictfrom` needs to
//     reclaim a contiguous window of fast memory by evicting whatever
//     objects currently occupy it;
//   * attach an owner cookie to each allocation so a block found during an
//     address-order walk can be mapped back to the Region that owns it
//     (the DM.parent direction);
//   * support compaction ("CachedArrays inherently supports object
//     reallocation which mitigates fragmentation").
//
// The allocator works purely in offset space (no memory is touched), which
// keeps it independently testable and lets the data manager combine it with
// any Arena.
//
// Internals: size-segregated binned free lists.
//   * The heap tiling lives in a slab of index-linked nodes.  Each node's
//     address-order prev/next links are the offset-space analogue of
//     boundary tags: free() reaches both neighbours in O(1), with no
//     ordered-map walk.
//   * An offset -> node hash map resolves free()/cookie lookups in O(1).
//   * Free blocks are filed into size-class bins: one exact bin per
//     alignment multiple up to kExactBins units (the hot DNN tensor
//     classes -- small activations, biases, batchnorm parameters), then
//     four sub-bins per power-of-two doubling above that.
//   * A bin-occupancy bitmap makes allocate() a find-first-set + pop.
//   * A block-start bitmap (one bit per alignment unit of the heap)
//     answers the predecessor query `for_blocks_from` needs.
//
// Placement semantics are bit-identical to the pre-binning allocator
// (mem::ReferenceAllocator, kept as the differential-fuzz oracle):
// kFirstFit returns the lowest-address free block that fits, kBestFit the
// smallest fitting free block with lowest-address ties.  To make that exact
// with bins, each bin's list is kept address-ordered under kFirstFit and
// (size, offset)-ordered under kBestFit; a fitting candidate from the
// request's home bin then competes only against the *heads* of the
// occupied higher bins (every block there fits by construction), so the
// global scan is O(home-bin prefix + occupied bins), O(1) amortized on the
// exact classes.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/counters.hpp"
#include "util/align.hpp"
#include "util/cache_align.hpp"

namespace ca::mem {

class FreeListAllocator {
 public:
  enum class Fit {
    kFirstFit,  ///< lowest-address free block that fits
    kBestFit,   ///< smallest free block that fits (ties: lowest address)
  };

  /// Read-only view of one block, in the tiling of the heap.
  struct BlockView {
    std::size_t offset = 0;
    std::size_t size = 0;
    bool allocated = false;
    void* cookie = nullptr;
  };

  struct Stats {
    std::size_t capacity = 0;
    std::size_t allocated_bytes = 0;
    std::size_t free_bytes = 0;
    std::size_t largest_free_block = 0;
    std::size_t allocated_blocks = 0;
    std::size_t free_blocks = 0;
    std::uint64_t total_allocs = 0;
    std::uint64_t total_frees = 0;
    std::uint64_t failed_allocs = 0;

    // Binned-heap telemetry (all zero on the reference allocator).
    std::uint64_t splits = 0;           ///< allocations that split a block
    std::uint64_t coalesces = 0;        ///< neighbour merges inside free()
    std::uint64_t bin_exact_hits = 0;   ///< allocs served from the home bin
    std::uint64_t bin_spill_allocs = 0; ///< allocs served from a higher bin

    /// External fragmentation in [0,1]: 1 - largest_free / free_bytes.
    [[nodiscard]] double fragmentation() const noexcept {
      if (free_bytes == 0) return 0.0;
      return 1.0 - static_cast<double>(largest_free_block) /
                       static_cast<double>(free_bytes);
    }

    /// The subset the telemetry report consumes (counters.hpp).
    [[nodiscard]] telemetry::AllocatorCounters counters() const noexcept {
      telemetry::AllocatorCounters c;
      c.total_allocs = total_allocs;
      c.total_frees = total_frees;
      c.failed_allocs = failed_allocs;
      c.splits = splits;
      c.coalesces = coalesces;
      c.bin_exact_hits = bin_exact_hits;
      c.bin_spill_allocs = bin_spill_allocs;
      c.free_blocks = free_blocks;
      c.largest_free_block = largest_free_block;
      c.fragmentation = fragmentation();
      return c;
    }
  };

  /// `capacity` bytes of heap; all blocks are multiples of `alignment`
  /// (power of two) so every returned offset is aligned.
  explicit FreeListAllocator(std::size_t capacity,
                             std::size_t alignment = 64,
                             Fit fit = Fit::kFirstFit);

  FreeListAllocator(const FreeListAllocator&) = delete;
  FreeListAllocator& operator=(const FreeListAllocator&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }
  [[nodiscard]] Fit fit() const noexcept { return fit_; }

  /// Allocate `size` bytes (rounded up to the alignment).  Returns the
  /// block offset, or nullopt if no free block fits.  Never throws for
  /// ordinary exhaustion -- the policy layer probes the fast tier and
  /// handles failure by evicting.
  [[nodiscard]] std::optional<std::size_t> allocate(std::size_t size);

  /// Free the block at `offset` (must be currently allocated).  Adjacent
  /// free blocks are coalesced immediately.
  void free(std::size_t offset);

  /// True iff `offset` is the start of a live allocation.
  [[nodiscard]] bool is_allocated(std::size_t offset) const;

  /// Usable size of the allocated block at `offset`.
  [[nodiscard]] std::size_t block_size(std::size_t offset) const;

  /// Attach/read an owner cookie on an allocated block.
  void set_cookie(std::size_t offset, void* cookie);
  [[nodiscard]] void* cookie(std::size_t offset) const;

  /// All blocks (allocated and free) in address order.
  [[nodiscard]] std::vector<BlockView> blocks() const;

  /// Visit blocks in address order starting with the block containing (or
  /// first after) `from`.  `fn` returns false to stop the walk.
  void for_blocks_from(std::size_t from,
                       const std::function<bool(const BlockView&)>& fn) const;

  /// Offset of the first allocated block at or after `from`, if any.
  [[nodiscard]] std::optional<std::size_t> first_allocated_from(
      std::size_t from) const;

  [[nodiscard]] Stats stats() const;

  /// Verify structural invariants (blocks tile [0, capacity) exactly, no
  /// two adjacent free blocks, bins/bitmaps/links consistent).  Throws
  /// InternalError on violation.  Used by the property-based test suite.
  /// `audit::verify` is the non-throwing counterpart that returns a
  /// structured report.
  void check_invariants() const;

  /// The (size, offset) entries of the free-block bins, sorted by
  /// (size, offset).  Read-only view for the ca::audit library, which
  /// cross-checks the bins against the address-ordered tiling.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  free_index_snapshot() const;

  // --- bin geometry (static, so audit/tests can recompute size classes) ---

  /// One exact bin per block size of 1..kExactBins alignment units.
  static constexpr std::size_t kExactBins = 64;
  /// Sub-bins per power-of-two doubling above the exact range.
  static constexpr std::size_t kSubBins = 4;
  /// log2(kExactBins): the first power-of-two range above the exact bins.
  static constexpr std::size_t kExactShift = 6;
  /// Total number of size-class bins (doublings 2^6 .. 2^63 inclusive).
  static constexpr std::size_t kBinCount =
      kExactBins + (63 - kExactShift + 1) * kSubBins;

  [[nodiscard]] static constexpr std::size_t bin_count() noexcept {
    return kBinCount;
  }

  /// The bin a free block of `size` bytes files under (this allocator's
  /// alignment).  Monotone in size; bins partition the size space.
  [[nodiscard]] std::size_t bin_of(std::size_t size) const noexcept {
    return bin_for_units(std::max<std::size_t>(1, size >> shift_));
  }

  /// Smallest block size (bytes) that files under bin `b`.
  [[nodiscard]] std::size_t bin_min_bytes(std::size_t b) const noexcept;

  // --- audit views over the binned internals ------------------------------

  /// One (offset, size) entry of a bin's free list.
  struct BinEntry {
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  /// One occupied bin, entries in list order (head to tail).
  struct BinView {
    std::size_t bin = 0;
    std::size_t min_bytes = 0;  ///< smallest size this bin may hold
    std::vector<BinEntry> entries;
  };

  /// All occupied bins, ascending bin index.
  [[nodiscard]] std::vector<BinView> bin_snapshot() const;

  /// The bin-occupancy bitmap words (bit b of word w covers bin 64*w+b).
  [[nodiscard]] std::vector<std::uint64_t> bin_bitmap_words() const;

  /// The boundary-tag view of one block, derived from the offset hash map
  /// and the per-node neighbour links -- deliberately NOT from the
  /// address-order walk, so a corrupted link is visible as a disagreement
  /// between the two views.
  struct BoundaryTag {
    std::size_t offset = 0;
    std::size_t size = 0;
    bool allocated = false;
    bool start_bit = false;  ///< block start marked in the start bitmap
    std::optional<std::size_t> prev_offset;  ///< address-order neighbours
    std::optional<std::size_t> next_offset;
  };

  /// Every block's boundary tags, sorted by offset.
  [[nodiscard]] std::vector<BoundaryTag> boundary_snapshot() const;

  /// Number of set bits in the block-start bitmap (must equal block count).
  [[nodiscard]] std::size_t start_bit_count() const noexcept;

  /// Per-bin occupancy and hit telemetry (occupied or ever-hit bins only).
  struct BinOccupancy {
    std::size_t bin = 0;
    std::size_t min_bytes = 0;
    std::size_t free_blocks = 0;
    std::uint64_t hits = 0;  ///< allocations served from this bin
  };
  [[nodiscard]] std::vector<BinOccupancy> bin_occupancy() const;

 private:
  // Test-only seam: lets the audit test suite corrupt internal state to
  // prove that audit::verify detects each class of violation.  Defined only
  // in tests/audit/; never in the library.
  friend struct AllocatorTestPeer;

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint16_t kNoBin = 0xFFFFu;
  static constexpr std::size_t kBinWords = (kBinCount + 63) / 64;

  /// One block of the tiling.  prev/next are address-order neighbour links
  /// (the boundary tags); bin_prev/bin_next thread the block through its
  /// size-class free list when free.
  struct Node {
    std::size_t offset = 0;
    std::size_t size = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t bin_prev = kNil;
    std::uint32_t bin_next = kNil;
    std::uint16_t bin = kNoBin;  ///< kNoBin while allocated
    bool allocated = false;
    void* cookie = nullptr;
  };

  struct BinList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] static constexpr std::size_t bin_for_units(
      std::size_t units) noexcept {
    if (units <= kExactBins) return units - 1;
    const auto k = static_cast<std::size_t>(std::bit_width(units)) - 1;
    const std::size_t sub = (units >> (k - 2)) & (kSubBins - 1);
    return kExactBins + (k - kExactShift) * kSubBins + sub;
  }

  [[nodiscard]] std::uint32_t new_node();
  void recycle_node(std::uint32_t i);

  void bin_link(std::uint32_t i);
  void bin_unlink(std::uint32_t i);
  void set_bin_bit(std::size_t b) noexcept;
  void clear_bin_bit(std::size_t b) noexcept;
  /// Lowest occupied bin with index > b, or bin_count() if none.
  [[nodiscard]] std::size_t next_occupied_bin(std::size_t b) const noexcept;

  void set_start_bit(std::size_t offset) noexcept;
  void clear_start_bit(std::size_t offset) noexcept;
  /// Node of the block whose start is the highest one at or below `pos`
  /// (an alignment-unit index).  The heap is never empty, so this always
  /// resolves (unit 0 is always a block start).
  [[nodiscard]] std::uint32_t block_at_or_before(std::size_t pos) const;

  /// The fit target for `size` (aligned), or kNil.  Sets `from_home` when
  /// the winner came out of the request's home bin.
  [[nodiscard]] std::uint32_t find_fit(std::size_t size,
                                       bool& from_home) const;

  std::size_t capacity_;
  std::size_t alignment_;
  std::size_t shift_;  ///< log2(alignment_)
  Fit fit_;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;  ///< recycled node indices
  std::unordered_map<std::size_t, std::uint32_t> index_;  ///< offset -> node
  std::vector<std::uint64_t> start_bits_;  ///< block-start bitmap
  std::array<BinList, kBinCount> bins_{};
  std::array<std::uint64_t, kBinWords> bin_bitmap_{};
  std::uint32_t head_ = kNil;  ///< node at offset 0

  std::size_t allocated_bytes_ = 0;
  std::size_t allocated_blocks_ = 0;
  std::size_t free_blocks_ = 0;
  // The AllocatorCounters event tallies are bumped on every alloc/free;
  // start the run on its own cache line so counter writes never ping the
  // line holding the bin bitmap / head words (telemetry snapshots and,
  // ahead, per-shard allocators packed side by side read those).
  alignas(util::kCacheLineSize) std::uint64_t total_allocs_ = 0;
  std::uint64_t total_frees_ = 0;
  std::uint64_t failed_allocs_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t coalesces_ = 0;
  std::uint64_t bin_exact_hits_ = 0;
  std::uint64_t bin_spill_allocs_ = 0;
  std::array<std::uint64_t, kBinCount> bin_hits_{};
};

}  // namespace ca::mem
