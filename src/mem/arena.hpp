// A pre-faulted memory arena backing one simulated device.
//
// CachedArrays requires its heaps to be preallocated from the OS before the
// run (paper §III-C): the real system obtained them from one large malloc or
// a DAX mmap.  We allocate one aligned slab per device and touch every page
// up front so the OS assigns physical frames, mirroring the paper's setup
// (which the authors note is itself a large speedup over default
// allocators).
#pragma once

#include <cstddef>
#include <memory>

namespace ca::mem {

class Arena {
 public:
  /// Allocates (and optionally pre-faults) `size` bytes aligned to
  /// `alignment`.  Throws std::bad_alloc on failure.
  explicit Arena(std::size_t size, std::size_t alignment = 4096,
                 bool prefault = true);

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  [[nodiscard]] std::byte* base() noexcept { return base_; }
  [[nodiscard]] const std::byte* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Pointer to the byte at `offset`.  Offset must be within the arena.
  [[nodiscard]] std::byte* at(std::size_t offset);
  [[nodiscard]] const std::byte* at(std::size_t offset) const;

  /// True iff `p` points into this arena.
  [[nodiscard]] bool contains(const void* p) const noexcept;

 private:
  struct Free {
    void operator()(void* p) const noexcept;
  };
  std::unique_ptr<void, Free> storage_;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ca::mem
