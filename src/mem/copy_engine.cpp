#include "mem/copy_engine.hpp"

#include <algorithm>
#include <thread>

#include "util/align.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ca::mem {

namespace {

std::size_t host_parallelism(const sim::Platform& platform) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(platform.copy_threads,
                               std::max(1u, hw));
}

std::size_t mover_parallelism(const sim::Platform& platform) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t channels = std::max<std::size_t>(1, platform.mover_channels);
  return std::min<std::size_t>(channels, std::max(1u, hw));
}

}  // namespace

CopyEngine::CopyEngine(const sim::Platform& platform, sim::Clock& clock,
                       telemetry::TrafficCounters& counters)
    : platform_(platform),
      clock_(clock),
      counters_(counters),
      pool_(host_parallelism(platform)),
      mover_pool_(mover_parallelism(platform)),
      channel_busy_(std::max<std::size_t>(1, platform.mover_channels),
                    util::CacheLineAligned<double>{0.0}) {}

CopyEngine::~CopyEngine() { drain(); }

std::size_t CopyEngine::threads_for(std::size_t bytes) const {
  const std::size_t chunks =
      std::max<std::size_t>(1, util::ceil_div(bytes, platform_.copy_chunk));
  return std::min(chunks, platform_.copy_threads);
}

double CopyEngine::modeled_bandwidth(std::size_t bytes, sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev,
                                     bool non_temporal) const {
  const std::size_t t = threads_for(bytes);
  const auto& src = platform_.spec(src_dev);
  const auto& dst = platform_.spec(dst_dev);
  return std::min(src.read_bw.at(t), dst.write_curve(non_temporal).at(t));
}

double CopyEngine::modeled_copy_time(std::size_t bytes, sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev,
                                     bool non_temporal) const {
  if (bytes == 0) return 0.0;
  const auto& src = platform_.spec(src_dev);
  const auto& dst = platform_.spec(dst_dev);
  const double bw = modeled_bandwidth(bytes, src_dev, dst_dev, non_temporal);
  return src.op_latency_s + dst.op_latency_s +
         static_cast<double>(bytes) / bw;
}

std::uint64_t CopyEngine::modeled_nt_bytes(std::size_t bytes,
                                           simd::CopyHint hint) const {
  // The simd NT path engages per chunk, so model it at the engine's
  // chunking: all full chunks plus the tail, each gated on kNtThreshold.
  // Deterministic by construction (no pointer alignment involved).
  const simd::IsaLevel level = simd::active_level();
  const std::size_t chunk = platform_.copy_chunk;
  const std::size_t full = bytes / chunk;
  const std::size_t tail = bytes % chunk;
  return full * simd::nt_bytes_for(chunk, hint, level) +
         simd::nt_bytes_for(tail, hint, level);
}

void CopyEngine::copy(void* dst, sim::DeviceId dst_dev, const void* src,
                      sim::DeviceId src_dev, std::size_t bytes,
                      bool non_temporal) {
  CA_CHECK(dst != nullptr && src != nullptr, "null pointer passed to copy");
  if (bytes == 0) return;

  // Writebacks (toward a slower device) stream past the cache: their
  // destination is the cold tier and will not be re-read soon.  Fetches
  // keep temporal stores -- the caller is about to touch the data.
  const bool writeback = dst_dev.value > src_dev.value;
  const simd::CopyHint hint = non_temporal && writeback
                                  ? simd::CopyHint::kWriteback
                                  : simd::CopyHint::kTemporal;

  // Real data movement, chunked across the pool.
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  const std::size_t chunks = util::ceil_div(bytes, platform_.copy_chunk);
  pool_.parallel_for(chunks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t off = c * platform_.copy_chunk;
      const std::size_t len = std::min(platform_.copy_chunk, bytes - off);
      util::copy_bytes(d + off, s + off, len, "CopyEngine::copy", hint);
    }
  });

  // Modeled cost + traffic accounting.
  const double seconds =
      modeled_copy_time(bytes, src_dev, dst_dev, non_temporal);
  const std::uint64_t nt = modeled_nt_bytes(bytes, hint);
  clock_.advance(seconds, sim::TimeCategory::kMovement);
  counters_.record_read(src_dev, bytes);
  counters_.record_write(dst_dev, bytes);
  if (nt != 0) counters_.record_nt_write(dst_dev, nt);
  {
    sync::lock lock(mu_);
    ++stats_.copies;
    stats_.bytes += bytes;
    stats_.seconds += seconds;
    stats_.nt_bytes += nt;
    stats_.latency_seconds += platform_.spec(src_dev).op_latency_s +
                              platform_.spec(dst_dev).op_latency_s;
  }
}

std::size_t CopyEngine::channels_for(sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev) const noexcept {
  // Channel count is fixed at construction, so this needs no lock.
  const std::size_t n = std::max<std::size_t>(1, platform_.mover_channels);
  if (n < 2) return n;
  // A fetch moves data toward a faster (lower-numbered) device; a
  // writeback moves it toward a slower one.  Each direction owns half the
  // channels (the fetch half first).
  return dst_dev.value < src_dev.value ? n / 2 : n - n / 2;
}

std::size_t CopyEngine::pick_channel(sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev) const {
  const std::size_t n = channel_busy_.size();
  std::size_t begin = 0;
  std::size_t end = n;
  if (n >= 2) {
    const std::size_t fetch = n / 2;
    if (dst_dev.value < src_dev.value) {
      end = fetch;
    } else {
      begin = fetch;
    }
  }
  std::size_t best = begin;
  for (std::size_t c = begin + 1; c < end; ++c) {
    if (channel_busy_[c].value < channel_busy_[best].value) best = c;
  }
  return best;
}

double CopyEngine::mover_horizon() const {
  sync::lock lock(mu_);
  double horizon = 0.0;
  for (const auto& busy : channel_busy_) {
    horizon = std::max(horizon, busy.value);
  }
  return horizon;
}

Transfer CopyEngine::copy_async(void* dst, sim::DeviceId dst_dev,
                                const void* src, sim::DeviceId src_dev,
                                std::size_t bytes, double earliest_start,
                                bool non_temporal) {
  CA_CHECK(dst != nullptr && src != nullptr,
           "null pointer passed to copy_async");

  // A zero-byte transfer completes instantly: no channel occupancy, no
  // traffic, no mover task -- just a handle that is already done.
  if (bytes == 0) {
    auto state = std::make_shared<Transfer::State>();
    state->start = std::max(earliest_start, clock_.now());
    state->done = state->start;
    state->real_done.store(true, std::memory_order_release);
    return Transfer(std::move(state));
  }

  const double duration =
      modeled_copy_time(bytes, src_dev, dst_dev, non_temporal);
  const bool writeback = dst_dev.value > src_dev.value;
  const simd::CopyHint hint = non_temporal && writeback
                                  ? simd::CopyHint::kWriteback
                                  : simd::CopyHint::kTemporal;
  const std::uint64_t nt = modeled_nt_bytes(bytes, hint);

  // Modeled schedule: earliest-available channel of the direction.
  std::size_t channel = 0;
  double start = 0.0;
  {
    sync::lock lock(mu_);
    channel = pick_channel(src_dev, dst_dev);
    start = std::max(
        {earliest_start, clock_.now(), channel_busy_[channel].value});
    channel_busy_[channel].value = start + duration;
    ++stats_.async_copies;
    stats_.async_bytes += bytes;
    stats_.async_seconds += duration;
    stats_.nt_bytes += nt;
  }
  const double done = start + duration;

  auto state = std::make_shared<Transfer::State>();
  state->start = start;
  state->done = done;
  state->channel = channel;
  state->bytes = bytes;

  // Traffic is recorded at schedule time on the caller thread (the mover
  // thread touches only the bytes and the transfer state).
  counters_.record_read(src_dev, bytes);
  counters_.record_write(dst_dev, bytes);
  if (nt != 0) counters_.record_nt_write(dst_dev, nt);

  // Real movement in the background: one mover task, chunked memcpy.  The
  // source/destination ranges are recorded with the race detector chunk by
  // chunk, so an unordered free or reuse of either range while the mover
  // still runs is a reported race.
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  const std::size_t chunk = platform_.copy_chunk;
  mover_pool_.submit([this, state, d, s, bytes, chunk, hint] {
    for (std::size_t off = 0; off < bytes; off += chunk) {
      const std::size_t len = std::min(chunk, bytes - off);
      util::copy_bytes(d + off, s + off, len, "CopyEngine::copy_async(mover)",
                       hint);
    }
    {
      sync::lock lock(state->mu);
      state->real_done.store(true, std::memory_order_release);
    }
    state->cv.notify_all();
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  });
  return Transfer(std::move(state));
}

void CopyEngine::drain() { mover_pool_.wait_idle(); }

void CopyEngine::fill_zero(void* dst, sim::DeviceId dst_dev,
                           std::size_t bytes) {
  CA_CHECK(dst != nullptr, "null pointer passed to fill_zero");
  if (bytes == 0) return;

  // Chunk the fill across the pool exactly like copy: fills are charged
  // multi-threaded modeled bandwidth, so the real work is multi-threaded
  // too.  The model charges the NT write curve, so the real fill asks for
  // the NT path as well (a freshly zeroed region has no warm readers).
  const simd::CopyHint hint = simd::CopyHint::kWriteback;
  auto* d = static_cast<std::byte*>(dst);
  const std::size_t chunks = util::ceil_div(bytes, platform_.copy_chunk);
  pool_.parallel_for(chunks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t off = c * platform_.copy_chunk;
      const std::size_t len = std::min(platform_.copy_chunk, bytes - off);
      util::fill_zero(d + off, len, "CopyEngine::fill_zero", hint);
    }
  });

  const auto& spec = platform_.spec(dst_dev);
  const std::size_t t = threads_for(bytes);
  const std::uint64_t nt = modeled_nt_bytes(bytes, hint);
  clock_.advance(spec.op_latency_s +
                     static_cast<double>(bytes) / spec.write_bw_nt.at(t),
                 sim::TimeCategory::kMovement);
  counters_.record_write(dst_dev, bytes);
  if (nt != 0) counters_.record_nt_write(dst_dev, nt);
  {
    sync::lock lock(mu_);
    ++stats_.fills;
    stats_.fill_bytes += bytes;
    stats_.nt_bytes += nt;
  }
}

}  // namespace ca::mem
