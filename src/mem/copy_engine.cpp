#include "mem/copy_engine.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::mem {

namespace {

std::size_t host_parallelism(const sim::Platform& platform) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(platform.copy_threads,
                               std::max(1u, hw));
}

}  // namespace

CopyEngine::CopyEngine(const sim::Platform& platform, sim::Clock& clock,
                       telemetry::TrafficCounters& counters)
    : platform_(platform),
      clock_(clock),
      counters_(counters),
      pool_(host_parallelism(platform)) {}

std::size_t CopyEngine::threads_for(std::size_t bytes) const {
  const std::size_t chunks =
      std::max<std::size_t>(1, util::ceil_div(bytes, platform_.copy_chunk));
  return std::min(chunks, platform_.copy_threads);
}

double CopyEngine::modeled_bandwidth(std::size_t bytes, sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev,
                                     bool non_temporal) const {
  const std::size_t t = threads_for(bytes);
  const auto& src = platform_.spec(src_dev);
  const auto& dst = platform_.spec(dst_dev);
  return std::min(src.read_bw.at(t), dst.write_curve(non_temporal).at(t));
}

double CopyEngine::modeled_copy_time(std::size_t bytes, sim::DeviceId src_dev,
                                     sim::DeviceId dst_dev,
                                     bool non_temporal) const {
  if (bytes == 0) return 0.0;
  const auto& src = platform_.spec(src_dev);
  const auto& dst = platform_.spec(dst_dev);
  const double bw = modeled_bandwidth(bytes, src_dev, dst_dev, non_temporal);
  return src.op_latency_s + dst.op_latency_s +
         static_cast<double>(bytes) / bw;
}

void CopyEngine::copy(void* dst, sim::DeviceId dst_dev, const void* src,
                      sim::DeviceId src_dev, std::size_t bytes,
                      bool non_temporal) {
  CA_CHECK(dst != nullptr && src != nullptr, "null pointer passed to copy");
  if (bytes == 0) return;

  // Real data movement, chunked across the pool.
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  const std::size_t chunks = util::ceil_div(bytes, platform_.copy_chunk);
  pool_.parallel_for(chunks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t off = c * platform_.copy_chunk;
      const std::size_t len = std::min(platform_.copy_chunk, bytes - off);
      std::memcpy(d + off, s + off, len);
    }
  });

  // Modeled cost + traffic accounting.
  const double seconds =
      modeled_copy_time(bytes, src_dev, dst_dev, non_temporal);
  clock_.advance(seconds, sim::TimeCategory::kMovement);
  counters_.record_read(src_dev, bytes);
  counters_.record_write(dst_dev, bytes);
  ++stats_.copies;
  stats_.bytes += bytes;
  stats_.seconds += seconds;
  stats_.latency_seconds += platform_.spec(src_dev).op_latency_s +
                            platform_.spec(dst_dev).op_latency_s;
}

void CopyEngine::fill_zero(void* dst, sim::DeviceId dst_dev,
                           std::size_t bytes) {
  CA_CHECK(dst != nullptr, "null pointer passed to fill_zero");
  if (bytes == 0) return;
  std::memset(dst, 0, bytes);
  const auto& spec = platform_.spec(dst_dev);
  const std::size_t t = threads_for(bytes);
  clock_.advance(spec.op_latency_s +
                     static_cast<double>(bytes) / spec.write_bw_nt.at(t),
                 sim::TimeCategory::kMovement);
  counters_.record_write(dst_dev, bytes);
}

}  // namespace ca::mem
