#include "mem/freelist_allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ca::mem {

FreeListAllocator::FreeListAllocator(std::size_t capacity,
                                     std::size_t alignment, Fit fit)
    : capacity_(util::align_down(capacity, alignment)),
      alignment_(alignment),
      shift_(static_cast<std::size_t>(std::bit_width(alignment)) - 1),
      fit_(fit) {
  CA_CHECK(util::is_pow2(alignment), "alignment must be a power of two");
  CA_CHECK(capacity_ > 0, "capacity too small for the requested alignment");
  start_bits_.assign(((capacity_ >> shift_) + 63) / 64, 0);
  nodes_.reserve(64);
  const std::uint32_t i = new_node();
  Node& n = nodes_[i];
  n.offset = 0;
  n.size = capacity_;
  head_ = i;
  index_.emplace(0, i);
  set_start_bit(0);
  bin_link(i);
  free_blocks_ = 1;
}

// --- node slab --------------------------------------------------------------

std::uint32_t FreeListAllocator::new_node() {
  if (!free_slots_.empty()) {
    const std::uint32_t i = free_slots_.back();
    free_slots_.pop_back();
    nodes_[i] = Node{};
    return i;
  }
  CA_CHECK(nodes_.size() < kNil, "node slab exhausted");
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void FreeListAllocator::recycle_node(std::uint32_t i) {
  nodes_[i] = Node{};
  free_slots_.push_back(i);
}

// --- bitmaps ----------------------------------------------------------------

void FreeListAllocator::set_bin_bit(std::size_t b) noexcept {
  bin_bitmap_[b >> 6] |= std::uint64_t{1} << (b & 63);
}

void FreeListAllocator::clear_bin_bit(std::size_t b) noexcept {
  bin_bitmap_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

std::size_t FreeListAllocator::next_occupied_bin(std::size_t b) const noexcept {
  const std::size_t from = b + 1;
  std::size_t w = from >> 6;
  if (w >= kBinWords) return kBinCount;
  std::uint64_t word = bin_bitmap_[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) {
      const std::size_t bin =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      return bin < kBinCount ? bin : kBinCount;
    }
    if (++w >= kBinWords) return kBinCount;
    word = bin_bitmap_[w];
  }
}

void FreeListAllocator::set_start_bit(std::size_t offset) noexcept {
  const std::size_t u = offset >> shift_;
  start_bits_[u >> 6] |= std::uint64_t{1} << (u & 63);
}

void FreeListAllocator::clear_start_bit(std::size_t offset) noexcept {
  const std::size_t u = offset >> shift_;
  start_bits_[u >> 6] &= ~(std::uint64_t{1} << (u & 63));
}

std::uint32_t FreeListAllocator::block_at_or_before(std::size_t pos) const {
  std::size_t w = pos >> 6;
  const std::size_t bit = pos & 63;
  std::uint64_t word =
      start_bits_[w] &
      (bit == 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (bit + 1)) - 1));
  for (;;) {
    if (word != 0) {
      const std::size_t u =
          (w << 6) + (63 - static_cast<std::size_t>(std::countl_zero(word)));
      const auto it = index_.find(u << shift_);
      CA_CHECK(it != index_.end(), "start bitmap points at no block");
      return it->second;
    }
    CA_CHECK(w > 0, "no block start at or below position");
    word = start_bits_[--w];
  }
}

// --- size-class bins --------------------------------------------------------

void FreeListAllocator::bin_link(std::uint32_t i) {
  Node& n = nodes_[i];
  const std::size_t b = bin_for_units(n.size >> shift_);
  n.bin = static_cast<std::uint16_t>(b);
  BinList& bl = bins_[b];

  // Find the entry to insert after: walk back from the tail, which is the
  // common case (frees at ascending addresses, growing sizes) and O(1) for
  // the exact bins under best-fit (all sizes equal, ties by offset, and
  // coalescing keeps churn low).
  std::uint32_t after = bl.tail;
  if (fit_ == Fit::kFirstFit) {
    while (after != kNil && nodes_[after].offset > n.offset) {
      after = nodes_[after].bin_prev;
    }
  } else {
    while (after != kNil &&
           (nodes_[after].size > n.size ||
            (nodes_[after].size == n.size &&
             nodes_[after].offset > n.offset))) {
      after = nodes_[after].bin_prev;
    }
  }
  if (after == kNil) {
    n.bin_prev = kNil;
    n.bin_next = bl.head;
    if (bl.head != kNil) {
      nodes_[bl.head].bin_prev = i;
    } else {
      bl.tail = i;
      set_bin_bit(b);
    }
    bl.head = i;
  } else {
    n.bin_prev = after;
    n.bin_next = nodes_[after].bin_next;
    if (n.bin_next != kNil) {
      nodes_[n.bin_next].bin_prev = i;
    } else {
      bl.tail = i;
    }
    nodes_[after].bin_next = i;
  }
}

void FreeListAllocator::bin_unlink(std::uint32_t i) {
  Node& n = nodes_[i];
  CA_CHECK(n.bin != kNoBin, "bin unlink of an unfiled block");
  BinList& bl = bins_[n.bin];
  if (n.bin_prev != kNil) {
    nodes_[n.bin_prev].bin_next = n.bin_next;
  } else {
    bl.head = n.bin_next;
  }
  if (n.bin_next != kNil) {
    nodes_[n.bin_next].bin_prev = n.bin_prev;
  } else {
    bl.tail = n.bin_prev;
  }
  if (bl.head == kNil) clear_bin_bit(n.bin);
  n.bin = kNoBin;
  n.bin_prev = kNil;
  n.bin_next = kNil;
}

std::uint32_t FreeListAllocator::find_fit(std::size_t size,
                                          bool& from_home) const {
  const std::size_t home = bin_for_units(size >> shift_);
  std::uint32_t best = kNil;
  from_home = false;

  // Home bin: under first-fit the list is address-ordered, so the first
  // fitting entry is the lowest-address fit within the class; under
  // best-fit it is (size, offset)-ordered, so the first entry with
  // size >= request is the smallest fit with the lowest-address tie.
  for (std::uint32_t i = bins_[home].head; i != kNil;
       i = nodes_[i].bin_next) {
    if (nodes_[i].size >= size) {
      best = i;
      from_home = true;
      break;
    }
  }

  if (fit_ == Fit::kBestFit) {
    if (best != kNil) return best;
    // Every block in a higher bin is larger than every block in the home
    // bin, so the head of the first occupied higher bin is the global
    // best fit.
    const std::size_t b = next_occupied_bin(home);
    return b < kBinCount ? bins_[b].head : kNil;
  }

  // First-fit: the home candidate competes against the heads of all
  // occupied higher bins (each head is that bin's lowest address, and
  // every block there fits); the lowest address wins globally.
  for (std::size_t b = next_occupied_bin(home); b < kBinCount;
       b = next_occupied_bin(b)) {
    const std::uint32_t h = bins_[b].head;
    if (best == kNil || nodes_[h].offset < nodes_[best].offset) {
      best = h;
      from_home = false;
    }
  }
  return best;
}

// --- allocate / free --------------------------------------------------------

std::optional<std::size_t> FreeListAllocator::allocate(std::size_t size) {
  if (size == 0) size = alignment_;
  const std::size_t aligned = util::align_up(size, alignment_);
  if (aligned < size || aligned > capacity_) {
    // Overflow in align_up (size within alignment-1 of SIZE_MAX) or a
    // request larger than the whole heap.
    ++failed_allocs_;
    return std::nullopt;
  }
  size = aligned;
  bool from_home = false;
  const std::uint32_t i = find_fit(size, from_home);
  if (i == kNil) {
    ++failed_allocs_;
    return std::nullopt;
  }
  ++bin_hits_[nodes_[i].bin];
  if (from_home) {
    ++bin_exact_hits_;
  } else {
    ++bin_spill_allocs_;
  }
  bin_unlink(i);
  --free_blocks_;

  nodes_[i].allocated = true;
  nodes_[i].cookie = nullptr;
  const std::size_t offset = nodes_[i].offset;
  const std::size_t block_size = nodes_[i].size;
  if (block_size > size) {
    // Split: remainder becomes a new free block immediately after.  Fetch
    // fields before new_node(): growing the slab may reallocate it.
    nodes_[i].size = size;
    const std::uint32_t old_next = nodes_[i].next;
    const std::uint32_t r = new_node();
    Node& rem = nodes_[r];
    rem.offset = offset + size;
    rem.size = block_size - size;
    rem.prev = i;
    rem.next = old_next;
    if (old_next != kNil) nodes_[old_next].prev = r;
    nodes_[i].next = r;
    index_.emplace(rem.offset, r);
    set_start_bit(rem.offset);
    bin_link(r);
    ++free_blocks_;
    ++splits_;
  }
  allocated_bytes_ += size;
  ++allocated_blocks_;
  ++total_allocs_;
  return offset;
}

void FreeListAllocator::free(std::size_t offset) {
  const auto it = index_.find(offset);
  CA_CHECK(it != index_.end() && nodes_[it->second].allocated,
           "free of an offset that is not an allocated block");
  std::uint32_t i = it->second;
  allocated_bytes_ -= nodes_[i].size;
  --allocated_blocks_;
  ++total_frees_;
  nodes_[i].allocated = false;
  nodes_[i].cookie = nullptr;

  // Coalesce with the following block if free: the neighbour link reaches
  // it in O(1) (the boundary-tag role of Node::next).
  const std::uint32_t nx = nodes_[i].next;
  if (nx != kNil && !nodes_[nx].allocated) {
    bin_unlink(nx);
    --free_blocks_;
    nodes_[i].size += nodes_[nx].size;
    nodes_[i].next = nodes_[nx].next;
    if (nodes_[i].next != kNil) nodes_[nodes_[i].next].prev = i;
    index_.erase(nodes_[nx].offset);
    clear_start_bit(nodes_[nx].offset);
    recycle_node(nx);
    ++coalesces_;
  }
  // Coalesce with the preceding block if free.
  const std::uint32_t pv = nodes_[i].prev;
  if (pv != kNil && !nodes_[pv].allocated) {
    bin_unlink(pv);
    --free_blocks_;
    nodes_[pv].size += nodes_[i].size;
    nodes_[pv].next = nodes_[i].next;
    if (nodes_[pv].next != kNil) nodes_[nodes_[pv].next].prev = pv;
    index_.erase(nodes_[i].offset);
    clear_start_bit(nodes_[i].offset);
    recycle_node(i);
    i = pv;
    ++coalesces_;
  }
  bin_link(i);
  ++free_blocks_;
}

// --- lookups ----------------------------------------------------------------

bool FreeListAllocator::is_allocated(std::size_t offset) const {
  const auto it = index_.find(offset);
  return it != index_.end() && nodes_[it->second].allocated;
}

std::size_t FreeListAllocator::block_size(std::size_t offset) const {
  const auto it = index_.find(offset);
  CA_CHECK(it != index_.end() && nodes_[it->second].allocated,
           "block_size of a non-allocated offset");
  return nodes_[it->second].size;
}

void FreeListAllocator::set_cookie(std::size_t offset, void* cookie) {
  const auto it = index_.find(offset);
  CA_CHECK(it != index_.end() && nodes_[it->second].allocated,
           "set_cookie of a non-allocated offset");
  nodes_[it->second].cookie = cookie;
}

void* FreeListAllocator::cookie(std::size_t offset) const {
  const auto it = index_.find(offset);
  CA_CHECK(it != index_.end() && nodes_[it->second].allocated,
           "cookie of a non-allocated offset");
  return nodes_[it->second].cookie;
}

// --- address-order iteration ------------------------------------------------

std::vector<FreeListAllocator::BlockView> FreeListAllocator::blocks() const {
  std::vector<BlockView> out;
  out.reserve(index_.size());
  for (std::uint32_t i = head_; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    out.push_back({n.offset, n.size, n.allocated, n.cookie});
  }
  return out;
}

void FreeListAllocator::for_blocks_from(
    std::size_t from,
    const std::function<bool(const BlockView&)>& fn) const {
  std::uint32_t i;
  if (from == 0) {
    i = head_;
  } else {
    i = block_at_or_before(std::min(from, capacity_ - 1) >> shift_);
    if (nodes_[i].offset + nodes_[i].size <= from) i = nodes_[i].next;
  }
  for (; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    const BlockView view{n.offset, n.size, n.allocated, n.cookie};
    if (!fn(view)) return;
  }
}

std::optional<std::size_t> FreeListAllocator::first_allocated_from(
    std::size_t from) const {
  std::optional<std::size_t> found;
  for_blocks_from(from, [&](const BlockView& b) {
    if (b.allocated) {
      found = b.offset;
      return false;
    }
    return true;
  });
  return found;
}

// --- stats / snapshots ------------------------------------------------------

std::vector<std::pair<std::size_t, std::size_t>>
FreeListAllocator::free_index_snapshot() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(free_blocks_);
  for (std::size_t b = 0; b < kBinCount; ++b) {
    for (std::uint32_t i = bins_[b].head; i != kNil;
         i = nodes_[i].bin_next) {
      out.emplace_back(nodes_[i].size, nodes_[i].offset);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

FreeListAllocator::Stats FreeListAllocator::stats() const {
  Stats s;
  s.capacity = capacity_;
  s.allocated_bytes = allocated_bytes_;
  s.free_bytes = capacity_ - allocated_bytes_;
  s.allocated_blocks = allocated_blocks_;
  s.free_blocks = free_blocks_;
  s.total_allocs = total_allocs_;
  s.total_frees = total_frees_;
  s.failed_allocs = failed_allocs_;
  s.splits = splits_;
  s.coalesces = coalesces_;
  s.bin_exact_hits = bin_exact_hits_;
  s.bin_spill_allocs = bin_spill_allocs_;

  // Largest free block: the highest occupied bin holds it.  Exact bins are
  // single-size (O(1)); a best-fit list's tail is its maximum; a first-fit
  // coarse bin needs one short list scan.
  for (std::size_t w = kBinWords; w-- > 0;) {
    if (bin_bitmap_[w] == 0) continue;
    const std::size_t b =
        (w << 6) + (63 - static_cast<std::size_t>(std::countl_zero(
                             bin_bitmap_[w])));
    if (b < kExactBins) {
      s.largest_free_block = (b + 1) << shift_;
    } else if (fit_ == Fit::kBestFit) {
      s.largest_free_block = nodes_[bins_[b].tail].size;
    } else {
      for (std::uint32_t i = bins_[b].head; i != kNil;
           i = nodes_[i].bin_next) {
        s.largest_free_block = std::max(s.largest_free_block, nodes_[i].size);
      }
    }
    break;
  }
  return s;
}

std::size_t FreeListAllocator::bin_min_bytes(std::size_t b) const noexcept {
  std::size_t units;
  if (b < kExactBins) {
    units = b + 1;
  } else {
    const std::size_t g = b - kExactBins;
    const std::size_t k = kExactShift + g / kSubBins;
    const std::size_t sub = g % kSubBins;
    units = (std::size_t{1} << k) + sub * (std::size_t{1} << (k - 2));
    // 2^kExactShift units itself belongs to the last exact bin.
    if (b == kExactBins) units = kExactBins + 1;
  }
  if (units > (~std::size_t{0} >> shift_)) return ~std::size_t{0};
  return units << shift_;
}

std::vector<FreeListAllocator::BinView> FreeListAllocator::bin_snapshot()
    const {
  std::vector<BinView> out;
  for (std::size_t b = 0; b < kBinCount; ++b) {
    if (bins_[b].head == kNil) continue;
    BinView v;
    v.bin = b;
    v.min_bytes = bin_min_bytes(b);
    for (std::uint32_t i = bins_[b].head; i != kNil;
         i = nodes_[i].bin_next) {
      v.entries.push_back({nodes_[i].offset, nodes_[i].size});
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::uint64_t> FreeListAllocator::bin_bitmap_words() const {
  return {bin_bitmap_.begin(), bin_bitmap_.end()};
}

std::vector<FreeListAllocator::BoundaryTag>
FreeListAllocator::boundary_snapshot() const {
  std::vector<BoundaryTag> out;
  out.reserve(index_.size());
  for (const auto& [off, i] : index_) {
    const Node& n = nodes_[i];
    BoundaryTag t;
    t.offset = off;
    t.size = n.size;
    t.allocated = n.allocated;
    const std::size_t u = off >> shift_;
    t.start_bit =
        (start_bits_[u >> 6] & (std::uint64_t{1} << (u & 63))) != 0;
    if (n.prev != kNil) t.prev_offset = nodes_[n.prev].offset;
    if (n.next != kNil) t.next_offset = nodes_[n.next].offset;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const BoundaryTag& a, const BoundaryTag& b) {
              return a.offset < b.offset;
            });
  return out;
}

std::size_t FreeListAllocator::start_bit_count() const noexcept {
  std::size_t count = 0;
  for (const std::uint64_t w : start_bits_) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

std::vector<FreeListAllocator::BinOccupancy> FreeListAllocator::bin_occupancy()
    const {
  std::vector<BinOccupancy> out;
  for (std::size_t b = 0; b < kBinCount; ++b) {
    std::size_t blocks = 0;
    for (std::uint32_t i = bins_[b].head; i != kNil;
         i = nodes_[i].bin_next) {
      ++blocks;
    }
    if (blocks == 0 && bin_hits_[b] == 0) continue;
    out.push_back({b, bin_min_bytes(b), blocks, bin_hits_[b]});
  }
  return out;
}

// --- invariants -------------------------------------------------------------

void FreeListAllocator::check_invariants() const {
  // Address-order walk: tiling, alignment, coalescing, link mutuality,
  // index and start-bitmap agreement, byte accounting.
  std::size_t expected_offset = 0;
  std::size_t free_bytes = 0;
  std::size_t alloc_bytes = 0;
  std::size_t alloc_blocks = 0;
  std::size_t free_blocks = 0;
  std::size_t walk_blocks = 0;
  bool prev_free = false;
  std::uint32_t prev = kNil;
  for (std::uint32_t i = head_; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    CA_CHECK(n.offset == expected_offset, "blocks do not tile the heap");
    CA_CHECK(n.size > 0, "zero-sized block");
    CA_CHECK(util::is_aligned(n.offset, alignment_),
             "misaligned block offset");
    CA_CHECK(util::is_aligned(n.size, alignment_), "misaligned block size");
    CA_CHECK(n.prev == prev, "address-order prev link broken");
    const auto it = index_.find(n.offset);
    CA_CHECK(it != index_.end() && it->second == i,
             "offset index out of sync");
    const std::size_t u = n.offset >> shift_;
    CA_CHECK((start_bits_[u >> 6] & (std::uint64_t{1} << (u & 63))) != 0,
             "block start missing from the start bitmap");
    if (n.allocated) {
      CA_CHECK(n.bin == kNoBin && n.bin_prev == kNil && n.bin_next == kNil,
               "allocated block threaded through a bin");
      alloc_bytes += n.size;
      ++alloc_blocks;
      prev_free = false;
    } else {
      CA_CHECK(!prev_free, "two adjacent free blocks (missed coalesce)");
      CA_CHECK(n.bin == bin_for_units(n.size >> shift_),
               "free block filed under the wrong size class");
      free_bytes += n.size;
      ++free_blocks;
      prev_free = true;
    }
    ++walk_blocks;
    expected_offset = n.offset + n.size;
    prev = i;
  }
  CA_CHECK(expected_offset == capacity_, "blocks do not cover the heap");
  CA_CHECK(walk_blocks == index_.size(),
           "offset index size does not match the walk");
  CA_CHECK(start_bit_count() == walk_blocks,
           "start bitmap population does not match the block count");
  CA_CHECK(alloc_bytes == allocated_bytes_, "allocated byte count drifted");
  CA_CHECK(alloc_blocks == allocated_blocks_,
           "allocated block count drifted");
  CA_CHECK(free_blocks == free_blocks_, "free block count drifted");
  CA_CHECK(free_bytes + alloc_bytes == capacity_, "byte accounting drifted");

  // Bin walk: membership, per-fit ordering, link mutuality, bitmap.
  std::size_t binned_blocks = 0;
  for (std::size_t b = 0; b < kBinCount; ++b) {
    const BinList& bl = bins_[b];
    const bool bit =
        (bin_bitmap_[b >> 6] & (std::uint64_t{1} << (b & 63))) != 0;
    CA_CHECK(bit == (bl.head != kNil),
             "bin bitmap disagrees with bin occupancy");
    std::uint32_t bprev = kNil;
    for (std::uint32_t i = bl.head; i != kNil; i = nodes_[i].bin_next) {
      const Node& n = nodes_[i];
      CA_CHECK(!n.allocated, "allocated block reachable from a bin");
      CA_CHECK(n.bin == b, "bin field disagrees with the list holding it");
      CA_CHECK(bin_for_units(n.size >> shift_) == b,
               "bin holds a block of a different size class");
      CA_CHECK(n.bin_prev == bprev, "bin prev link broken");
      if (bprev != kNil) {
        const Node& p = nodes_[bprev];
        if (fit_ == Fit::kFirstFit) {
          CA_CHECK(p.offset < n.offset, "first-fit bin not address-ordered");
        } else {
          CA_CHECK(p.size < n.size ||
                       (p.size == n.size && p.offset < n.offset),
                   "best-fit bin not (size, offset)-ordered");
        }
      }
      ++binned_blocks;
      bprev = i;
    }
    CA_CHECK(bl.tail == bprev, "bin tail out of sync");
  }
  CA_CHECK(binned_blocks == free_blocks_,
           "bins do not hold exactly the free blocks");
}

}  // namespace ca::mem
