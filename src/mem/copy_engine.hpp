// The data-movement mechanism: a parallel, chunked copy engine plus a
// background mover for asynchronous transfers.
//
// This is the paper's "memory movement engine [which] is highly
// multi-threaded, specifically targeting large memory sizes" (§V-b).  Two
// concerns are deliberately separated:
//   * the *real* copy: bytes actually move between arenas (chunked across a
//     thread pool) so data integrity across migrations is testable; and
//   * the *modeled* cost: simulated seconds charged to the clock from the
//     platform's bandwidth curves, using the number of worker threads the
//     engine would deploy for a transfer of that size.  NVRAM writes use
//     non-temporal stores by default ("crucial for best performance",
//     §V-d).
//
// The real copy earns the NT treatment the model charges for: writebacks
// (transfers toward a slower device) pass CopyHint::kWriteback down the
// util::copy_bytes funnel, so the dispatched simd kernels stream them with
// _mm*_stream NT stores instead of dirtying the cache.  The bytes routed
// through that path are accounted in Stats::nt_bytes and per destination
// device in TrafficCounters::bytes_written_nt.
//
// Asynchronous transfers (§V-c) run on a dedicated mover pool with
// `Platform::mover_channels` independent channels, split between the two
// directions (fetch toward faster devices, writeback toward slower ones).
// `copy_async` returns immediately with a Transfer handle: the real memcpy
// happens on a mover thread, and the modeled completion time comes from
// channel availability plus `modeled_copy_time`.  The caller's wall clock
// therefore no longer scales with transfer size.
//
// Traffic is recorded against the source device as reads and the
// destination device as writes, exactly as the paper's uncore counters see
// a migration.
#pragma once

#include <cstddef>
#include <vector>

#include "mem/arena.hpp"
#include "mem/transfer.hpp"
#include "race/sync.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "simd/copy.hpp"
#include "telemetry/counters.hpp"
#include "util/cache_align.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace ca::dm {
struct RaceTestPeer;
}  // namespace ca::dm

namespace ca::mem {

class CopyEngine {
 public:
  /// Aggregate transfer statistics (explicit migrations only).
  struct Stats {
    std::uint64_t copies = 0;          ///< synchronous copies
    std::uint64_t bytes = 0;           ///< bytes moved synchronously
    double seconds = 0.0;              ///< modeled time spent copying
    double latency_seconds = 0.0;      ///< share from per-op latency
    std::uint64_t fills = 0;           ///< fill_zero calls
    std::uint64_t fill_bytes = 0;      ///< bytes zero-filled
    std::uint64_t async_copies = 0;    ///< transfers scheduled on the mover
    std::uint64_t async_bytes = 0;     ///< bytes moved asynchronously
    double async_seconds = 0.0;        ///< modeled channel occupancy, summed
    /// Bytes (sync + async + fills) routed through the NT-store writeback
    /// path of the dispatched simd copy kernels.  Modeled per chunk --
    /// deterministic across runs -- and mirrored per-device in
    /// TrafficCounters::bytes_written_nt.
    std::uint64_t nt_bytes = 0;
  };

  CopyEngine(const sim::Platform& platform, sim::Clock& clock,
             telemetry::TrafficCounters& counters);
  ~CopyEngine();

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Copy `bytes` from `src` (on `src_dev`) to `dst` (on `dst_dev`),
  /// performing the real memcpy and charging modeled movement time.
  void copy(void* dst, sim::DeviceId dst_dev, const void* src,
            sim::DeviceId src_dev, std::size_t bytes,
            bool non_temporal = true);

  /// Schedule an asynchronous copy on the background mover.  The real
  /// memcpy runs on a mover thread (the pointers must stay valid until the
  /// returned handle reports `real_done`; the DataManager enforces this by
  /// joining before a region is freed or relocated).  The modeled transfer
  /// occupies the earliest-available channel of its direction: it starts at
  /// max(`earliest_start`, current simulated time, channel availability)
  /// and completes `modeled_copy_time` later.  Traffic is recorded
  /// immediately; the simulated clock is NOT advanced.  A zero-byte
  /// request is legal and returns an already-complete handle that occupies
  /// no channel and records no traffic.
  Transfer copy_async(void* dst, sim::DeviceId dst_dev, const void* src,
                      sim::DeviceId src_dev, std::size_t bytes,
                      double earliest_start, bool non_temporal = true);

  /// Zero-fill `bytes` at `dst`, chunked across the copy pool like `copy`;
  /// charges write-side cost only.
  void fill_zero(void* dst, sim::DeviceId dst_dev, std::size_t bytes);

  /// The worker count the engine deploys for a transfer of `bytes`
  /// (1..platform.copy_threads, one worker per copy_chunk).
  [[nodiscard]] std::size_t threads_for(std::size_t bytes) const;

  /// Modeled duration of a copy, in simulated seconds (no side effects).
  [[nodiscard]] double modeled_copy_time(std::size_t bytes,
                                         sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev,
                                         bool non_temporal) const;

  /// Achieved bandwidth of a transfer under the model, bytes/simulated-sec.
  [[nodiscard]] double modeled_bandwidth(std::size_t bytes,
                                         sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev,
                                         bool non_temporal) const;

  // --- mover channels ------------------------------------------------------

  [[nodiscard]] std::size_t channel_count() const CA_EXCLUDES(mu_) {
    sync::lock lock(mu_);
    return channel_busy_.size();
  }
  [[nodiscard]] double channel_busy_until(std::size_t channel) const
      CA_EXCLUDES(mu_) {
    sync::lock lock(mu_);
    return channel_busy_.at(channel).value;
  }

  /// Latest modeled completion across all channels (the mover horizon; no
  /// in-flight transfer completes later than this).
  [[nodiscard]] double mover_horizon() const CA_EXCLUDES(mu_);

  /// Channels serving transfers toward `dst_dev` coming from `src_dev`
  /// (fetch channels for moves toward faster devices, writeback channels
  /// otherwise).  Exposed for tests and benches.
  [[nodiscard]] std::size_t channels_for(sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev) const noexcept;

  /// Number of scheduled transfers whose real memcpy has not finished yet.
  [[nodiscard]] std::size_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

  /// Block the calling host thread until every scheduled real memcpy has
  /// finished.  Does not touch the simulated clock.
  void drain();

  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return platform_;
  }

  /// Snapshot of the aggregate statistics (copied under the engine lock).
  [[nodiscard]] Stats stats() const CA_EXCLUDES(mu_) {
    sync::lock lock(mu_);
    return stats_;
  }

 private:
  /// The race/lockdep hazard injectors reach mu_ directly to stage
  /// deliberate ordering violations (tests/race/race_test_peer.hpp).
  friend struct ca::dm::RaceTestPeer;

  /// Pick the earliest-available channel of the transfer's direction.
  [[nodiscard]] std::size_t pick_channel(sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev) const
      CA_REQUIRES(mu_);

  /// Modeled NT bytes for a transfer of `bytes` under `hint` at the
  /// engine's chunking (the simd NT path engages per chunk).
  [[nodiscard]] std::uint64_t modeled_nt_bytes(std::size_t bytes,
                                               simd::CopyHint hint) const;

  const sim::Platform& platform_;
  sim::Clock& clock_;
  telemetry::TrafficCounters& counters_;
  util::ThreadPool pool_;        ///< chunked synchronous copies and fills
  util::ThreadPool mover_pool_;  ///< background asynchronous transfers
  /// Guards the modeled channel schedule and the statistics; the lock
  /// hierarchy is documented in docs/CONCURRENCY.md (mu_ is a leaf: never
  /// hold it while calling into the pools, the clock, or the counters).
  /// The lock word, the channel schedule, and the mover-side inflight
  /// counter are hammered from different threads (caller vs movers), so
  /// each sits on its own cache line.
  alignas(util::kCacheLineSize) mutable sync::mutex mu_
      CA_LEAF{CA_LOCK_CLASS("mem::CopyEngine::mu_")};
  std::vector<util::CacheLineAligned<double>> channel_busy_
      CA_GUARDED_BY(mu_);  ///< per-channel availability, one line each
  alignas(util::kCacheLineSize) sync::atomic<std::size_t> inflight_{0};
  Stats stats_ CA_GUARDED_BY(mu_);
};

}  // namespace ca::mem
