// The data-movement mechanism: a parallel, chunked copy engine.
//
// This is the paper's "memory movement engine [which] is highly
// multi-threaded, specifically targeting large memory sizes" (§V-b).  Two
// concerns are deliberately separated:
//   * the *real* copy: bytes actually move between arenas (chunked across a
//     thread pool) so data integrity across migrations is testable; and
//   * the *modeled* cost: simulated seconds charged to the clock from the
//     platform's bandwidth curves, using the number of worker threads the
//     engine would deploy for a transfer of that size.  NVRAM writes use
//     non-temporal stores by default ("crucial for best performance",
//     §V-d).
// Traffic is recorded against the source device as reads and the
// destination device as writes, exactly as the paper's uncore counters see
// a migration.
#pragma once

#include <cstddef>

#include "mem/arena.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "util/threadpool.hpp"

namespace ca::mem {

class CopyEngine {
 public:
  /// Aggregate transfer statistics (explicit migrations only).
  struct Stats {
    std::uint64_t copies = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;          ///< modeled time spent copying
    double latency_seconds = 0.0;  ///< share from per-op latency
  };

  CopyEngine(const sim::Platform& platform, sim::Clock& clock,
             telemetry::TrafficCounters& counters);

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Copy `bytes` from `src` (on `src_dev`) to `dst` (on `dst_dev`),
  /// performing the real memcpy and charging modeled movement time.
  void copy(void* dst, sim::DeviceId dst_dev, const void* src,
            sim::DeviceId src_dev, std::size_t bytes,
            bool non_temporal = true);

  /// Zero-fill `bytes` at `dst`; charges write-side cost only.
  void fill_zero(void* dst, sim::DeviceId dst_dev, std::size_t bytes);

  /// The worker count the engine deploys for a transfer of `bytes`
  /// (1..platform.copy_threads, one worker per copy_chunk).
  [[nodiscard]] std::size_t threads_for(std::size_t bytes) const;

  /// Modeled duration of a copy, in simulated seconds (no side effects).
  [[nodiscard]] double modeled_copy_time(std::size_t bytes,
                                         sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev,
                                         bool non_temporal) const;

  /// Achieved bandwidth of a transfer under the model, bytes/simulated-sec.
  [[nodiscard]] double modeled_bandwidth(std::size_t bytes,
                                         sim::DeviceId src_dev,
                                         sim::DeviceId dst_dev,
                                         bool non_temporal) const;

  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return platform_;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  const sim::Platform& platform_;
  sim::Clock& clock_;
  telemetry::TrafficCounters& counters_;
  util::ThreadPool pool_;
  Stats stats_;
};

}  // namespace ca::mem
