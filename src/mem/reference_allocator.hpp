// The pre-binning heap allocator, retained verbatim as a reference oracle.
//
// This is the original map-based FreeListAllocator implementation: an
// address-ordered `std::map` of blocks with a `(size, offset)` `std::set`
// free index.  allocate() is O(free blocks) under first-fit and O(log n)
// under best-fit; free() coalesces through the map.  The binned allocator
// (freelist_allocator.hpp) replaced it on the hot path but must reproduce
// its placement decisions bit for bit, so this implementation stays around
// for two consumers:
//
//   * tests/mem/allocator_differential_test.cpp drives both allocators with
//     the same seeded op stream and asserts identical offsets, stats and
//     block tilings;
//   * bench/micro_allocator replays a DNN-shaped allocation trace against
//     both and reports the old-vs-new speedup.
//
// Do not extend this class; it is frozen history, not an API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "util/align.hpp"

namespace ca::mem {

class ReferenceAllocator {
 public:
  enum class Fit {
    kFirstFit,  ///< lowest-address free block that fits
    kBestFit,   ///< smallest free block that fits (ties: lowest address)
  };

  /// Read-only view of one block, in the tiling of the heap.
  struct BlockView {
    std::size_t offset = 0;
    std::size_t size = 0;
    bool allocated = false;
    void* cookie = nullptr;
  };

  struct Stats {
    std::size_t capacity = 0;
    std::size_t allocated_bytes = 0;
    std::size_t free_bytes = 0;
    std::size_t largest_free_block = 0;
    std::size_t allocated_blocks = 0;
    std::size_t free_blocks = 0;
    std::uint64_t total_allocs = 0;
    std::uint64_t total_frees = 0;
    std::uint64_t failed_allocs = 0;

    /// External fragmentation in [0,1]: 1 - largest_free / free_bytes.
    [[nodiscard]] double fragmentation() const noexcept {
      if (free_bytes == 0) return 0.0;
      return 1.0 - static_cast<double>(largest_free_block) /
                       static_cast<double>(free_bytes);
    }
  };

  explicit ReferenceAllocator(std::size_t capacity,
                              std::size_t alignment = 64,
                              Fit fit = Fit::kFirstFit);

  ReferenceAllocator(const ReferenceAllocator&) = delete;
  ReferenceAllocator& operator=(const ReferenceAllocator&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }

  [[nodiscard]] std::optional<std::size_t> allocate(std::size_t size);
  void free(std::size_t offset);

  [[nodiscard]] bool is_allocated(std::size_t offset) const;
  [[nodiscard]] std::size_t block_size(std::size_t offset) const;
  void set_cookie(std::size_t offset, void* cookie);
  [[nodiscard]] void* cookie(std::size_t offset) const;

  [[nodiscard]] std::vector<BlockView> blocks() const;
  void for_blocks_from(std::size_t from,
                       const std::function<bool(const BlockView&)>& fn) const;
  [[nodiscard]] std::optional<std::size_t> first_allocated_from(
      std::size_t from) const;

  [[nodiscard]] Stats stats() const;
  void check_invariants() const;
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  free_index_snapshot() const;

 private:
  struct Block {
    std::size_t size = 0;
    bool allocated = false;
    void* cookie = nullptr;
  };

  using BlockMap = std::map<std::size_t, Block>;
  using FreeKey = std::pair<std::size_t, std::size_t>;

  [[nodiscard]] BlockMap::iterator find_fit(std::size_t size);
  void index_insert(std::size_t offset, std::size_t size);
  void index_erase(std::size_t offset, std::size_t size);

  std::size_t capacity_;
  std::size_t alignment_;
  Fit fit_;
  BlockMap blocks_;
  std::set<FreeKey> free_index_;
  std::size_t allocated_bytes_ = 0;
  std::size_t allocated_blocks_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t total_frees_ = 0;
  std::uint64_t failed_allocs_ = 0;
};

}  // namespace ca::mem
