// Device identity and per-device timing specification.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/bandwidth.hpp"

namespace ca::sim {

/// Memory technology class.  The policy layer keys its decisions off this
/// (e.g. "writes to NVRAM are slow"), never off device names.
enum class DeviceKind : std::uint8_t {
  kDram = 0,
  kNvram = 1,
};

[[nodiscard]] constexpr const char* to_string(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kDram:
      return "DRAM";
    case DeviceKind::kNvram:
      return "NVRAM";
  }
  return "?";
}

/// Index of a device within a Platform.  Strongly typed so region/device
/// bookkeeping cannot silently mix with other integer ids.
struct DeviceId {
  std::uint32_t value = 0;

  friend auto operator<=>(DeviceId, DeviceId) = default;
};

/// Static description of one memory device: capacity plus the timing model
/// the simulator charges for traffic to/from it.
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kDram;
  std::size_t capacity = 0;  ///< bytes of backing arena

  BandwidthCurve read_bw;      ///< sustained read bandwidth vs threads
  BandwidthCurve write_bw_nt;  ///< write bandwidth with non-temporal stores
  BandwidthCurve write_bw;     ///< write bandwidth with regular stores

  /// Fixed per-operation overhead (software launch + device latency) charged
  /// once per copy/fill regardless of size.  Penalizes many small transfers,
  /// which is how the paper's "parallelization overhead on small batches"
  /// effect (VGG, Fig. 6) manifests.
  double op_latency_s = 0.0;

  /// Write bandwidth for a transfer, honouring the store type.
  [[nodiscard]] const BandwidthCurve& write_curve(bool non_temporal) const {
    return non_temporal ? write_bw_nt : write_bw;
  }
};

}  // namespace ca::sim
