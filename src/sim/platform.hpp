// Platform presets: the simulated heterogeneous-memory machine.
//
// The paper's testbed is one socket of a 2-socket Intel Xeon Platinum 8276L
// with 192 GiB DRAM and 1.5 TB Optane DC NVRAM.  We reproduce it at 1:1000
// scale: every "GB" in the paper maps to one MiB here, and bandwidths are
// scaled identically (GB/s -> MiB/s), so simulated iteration times land in
// the same hundreds-of-seconds range as the paper's Fig. 3.
//
// Bandwidth control points follow the measurements the paper relies on
// (Izraelevitz et al. [6]; Hildebrand et al. [4]):
//   * DRAM read/write scale up with threads and saturate high.
//   * NVRAM read saturates at roughly 1/3 of DRAM.
//   * NVRAM write peaks at a *small* thread count and degrades beyond it,
//     and requires non-temporal stores for peak throughput.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/device.hpp"
#include "util/align.hpp"

namespace ca::sim {

struct Platform {
  std::vector<DeviceSpec> devices;

  /// Worker threads the copy engine models (and uses, when available).
  std::size_t copy_threads = 16;

  /// Transfers are split into chunks of this size across copy workers.
  std::size_t copy_chunk = 2 * util::MiB;

  /// Independent background-mover channels for asynchronous transfers.
  /// Channels are split evenly between the two directions (fetch toward
  /// faster devices vs writeback toward slower ones) so eviction traffic
  /// never queues behind prefetch traffic.  1 = a single fully-serialized
  /// mover (the pre-channel behaviour, kept as the ablation baseline).
  std::size_t mover_channels = 4;

  /// Human-readable note describing the scaling, echoed by bench headers.
  const char* scale_note = "";

  [[nodiscard]] const DeviceSpec& spec(DeviceId id) const {
    return devices.at(id.value);
  }

  [[nodiscard]] DeviceId find_kind(DeviceKind kind) const;

  /// The scaled Cascade Lake preset described above.  `dram_capacity` and
  /// `nvram_capacity` are arena sizes in (host) bytes; the paper's large-run
  /// configuration is 180 MiB DRAM + 1300 MiB NVRAM.
  static Platform cascade_lake_scaled(std::size_t dram_capacity,
                                      std::size_t nvram_capacity);

  /// Paper defaults for the large-network experiments (§IV-A).
  static Platform cascade_lake_default() {
    return cascade_lake_scaled(180 * util::MiB, 1300 * util::MiB);
  }

  /// A CXL-attached-memory platform (paper §VI: "local/remote memory"):
  /// local DRAM plus a remote CXL expander.  Remote memory is symmetric
  /// (reads and writes cost the same; no non-temporal-store asymmetry) at
  /// roughly a third of local bandwidth with higher per-transfer latency.
  /// The CachedArrays policy runs on it unmodified -- only this platform
  /// description changes.
  static Platform cxl_scaled(std::size_t local_capacity,
                             std::size_t remote_capacity);

  /// A three-tier machine: HBM-like near memory, DRAM, and NVRAM
  /// (paper §III-C: regions support higher-order constructs like
  /// multi-level caches).  Used with policy::TieredLruPolicy.
  static Platform three_tier_scaled(std::size_t near_capacity,
                                    std::size_t dram_capacity,
                                    std::size_t nvram_capacity);
};

/// Index of the DRAM (fast) device in the Cascade Lake presets.
inline constexpr DeviceId kFast{0};
/// Index of the NVRAM (slow) device in the Cascade Lake presets.
inline constexpr DeviceId kSlow{1};

}  // namespace ca::sim
