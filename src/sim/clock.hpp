// Simulated time.
//
// All performance results in this repository are reported in *simulated
// seconds*: every data movement and every kernel execution charges time to
// this clock according to the calibrated device models in
// sim/platform.hpp.  This decouples the reproduced figures from the host
// machine (the paper's platform had 56 cores and Optane DIMMs; the build
// machine may have neither) and makes every bench bit-for-bit
// deterministic.
//
// The clock additionally accounts busy time per category, which Fig. 7 uses
// to project the "perfectly asynchronous data movement" lower bound (total
// minus synchronous-movement time).
#pragma once

#include <array>
#include <cstddef>

#include "util/error.hpp"

namespace ca::sim {

/// What an interval of simulated time was spent on.
enum class TimeCategory : std::size_t {
  kCompute = 0,   ///< kernel execution
  kMovement = 1,  ///< synchronous data movement (copies, cache fills)
  kGc = 2,        ///< emulated garbage collection
  kOther = 3,     ///< bookkeeping, defragmentation, ...
};

constexpr std::size_t kTimeCategoryCount = 4;

class Clock {
 public:
  Clock() = default;

  /// Current simulated time in seconds since construction/reset.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Advance the clock, attributing the interval to `category`.
  void advance(double seconds, TimeCategory category) {
    CA_CHECK(seconds >= 0.0, "cannot advance the clock backwards");
    now_ += seconds;
    by_category_[static_cast<std::size_t>(category)] += seconds;
  }

  /// Total simulated time attributed to `category`.
  [[nodiscard]] double spent(TimeCategory category) const noexcept {
    return by_category_[static_cast<std::size_t>(category)];
  }

  void reset() noexcept {
    now_ = 0.0;
    by_category_.fill(0.0);
  }

 private:
  double now_ = 0.0;
  std::array<double, kTimeCategoryCount> by_category_{};
};

}  // namespace ca::sim
