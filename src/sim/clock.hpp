// Simulated time.
//
// All performance results in this repository are reported in *simulated
// seconds*: every data movement and every kernel execution charges time to
// this clock according to the calibrated device models in
// sim/platform.hpp.  This decouples the reproduced figures from the host
// machine (the paper's platform had 56 cores and Optane DIMMs; the build
// machine may have neither) and makes every bench bit-for-bit
// deterministic.
//
// The clock additionally accounts busy time per category, which Fig. 7 uses
// to project the "perfectly asynchronous data movement" lower bound (total
// minus synchronous-movement time).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>

#include "util/error.hpp"

namespace ca::sim {

/// What an interval of simulated time was spent on.
enum class TimeCategory : std::size_t {
  kCompute = 0,   ///< kernel execution
  kMovement = 1,  ///< synchronous data movement (copies, cache fills)
  kGc = 2,        ///< emulated garbage collection
  kOther = 3,     ///< bookkeeping, defragmentation, ...
};

constexpr std::size_t kTimeCategoryCount = 4;

// Thread-safe: multiple tenants of one shared DataManager advance the
// clock concurrently (each charging its own stalls/copies), so the
// accumulators are lock-free atomics.  Plain std::atomic, not the
// ca::sync shims -- sim sits below the race layer, and the clock is an
// accounting sink with no ordering contract beyond the sums themselves.
class Clock {
 public:
  Clock() = default;

  /// Current simulated time in seconds since construction/reset.
  [[nodiscard]] double now() const noexcept {
    return now_.load(std::memory_order_relaxed);
  }

  /// Advance the clock, attributing the interval to `category`.
  void advance(double seconds, TimeCategory category) {
    CA_CHECK(seconds >= 0.0, "cannot advance the clock backwards");
    now_.fetch_add(seconds, std::memory_order_relaxed);
    by_category_[static_cast<std::size_t>(category)].fetch_add(
        seconds, std::memory_order_relaxed);
  }

  /// Total simulated time attributed to `category`.
  [[nodiscard]] double spent(TimeCategory category) const noexcept {
    return by_category_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }

  void reset() noexcept {
    now_.store(0.0, std::memory_order_relaxed);
    for (auto& c : by_category_) c.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_{0.0};
  std::array<std::atomic<double>, kTimeCategoryCount> by_category_{};
};

}  // namespace ca::sim
