#include "sim/platform.hpp"

#include "util/error.hpp"

namespace ca::sim {

namespace {

// Scale factor: paper GB/s -> model MiB/s (1:1000 reproduction scale).
constexpr double kGBs = 1024.0 * 1024.0;  // one "paper GB" per second

}  // namespace

DeviceId Platform::find_kind(DeviceKind kind) const {
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].kind == kind) {
      return DeviceId{static_cast<std::uint32_t>(i)};
    }
  }
  throw UsageError("platform has no device of the requested kind");
}

Platform Platform::cascade_lake_scaled(std::size_t dram_capacity,
                                       std::size_t nvram_capacity) {
  Platform p;
  p.copy_threads = 16;
  p.copy_chunk = 1 * util::MiB;
  p.scale_note =
      "Cascade Lake @ 1:1000 scale (paper GB == model MiB; paper GB/s == "
      "model MiB/s)";

  DeviceSpec dram;
  dram.name = "DRAM";
  dram.kind = DeviceKind::kDram;
  dram.capacity = dram_capacity;
  dram.read_bw = BandwidthCurve{
      {1, 20 * kGBs}, {4, 45 * kGBs}, {8, 75 * kGBs}, {16, 100 * kGBs}};
  dram.write_bw_nt = BandwidthCurve{
      {1, 16 * kGBs}, {4, 40 * kGBs}, {8, 60 * kGBs}, {16, 80 * kGBs}};
  dram.write_bw = dram.write_bw_nt;  // regular stores are fine for DRAM
  dram.op_latency_s = 2e-4;          // software launch overhead per transfer

  DeviceSpec nvram;
  nvram.name = "NVRAM (Optane DC)";
  nvram.kind = DeviceKind::kNvram;
  nvram.capacity = nvram_capacity;
  // Reads saturate around a third of DRAM; "not much slower than DRAM" in
  // the low-parallelism regime kernels actually operate in.
  nvram.read_bw = BandwidthCurve{{1, 18 * kGBs},
                                 {2, 29 * kGBs},
                                 {4, 40 * kGBs},
                                 {8, 50 * kGBs},
                                 {16, 54 * kGBs}};
  // Writes peak at ~4 threads with non-temporal stores, then *degrade* with
  // more parallelism (the paper's §V-d crossover).
  // The single-thread point includes per-transfer setup: small transfers
  // (the paper's small-batch VGG regime) pay a steep parallelization
  // penalty before the engine can deploy enough workers.
  nvram.write_bw_nt = BandwidthCurve{{1, 9.0 * kGBs},
                                     {2, 14.5 * kGBs},
                                     {4, 18.0 * kGBs},
                                     {8, 11.7 * kGBs},
                                     {16, 9.0 * kGBs},
                                     {32, 7.2 * kGBs}};
  // Regular (cached) stores lose roughly half the write bandwidth.
  nvram.write_bw = BandwidthCurve{{1, 4.0 * kGBs},
                                  {2, 6.5 * kGBs},
                                  {4, 8.0 * kGBs},
                                  {8, 5.2 * kGBs},
                                  {16, 4.0 * kGBs},
                                  {32, 3.2 * kGBs}};
  // Per-transfer software overhead of an explicit migration (launch,
  // synchronization, page-table updates).  This is what makes many small
  // transfers lose to few large ones -- the paper's "smaller data
  // transfers and more parallelization overhead" for small-batch VGG.
  nvram.op_latency_s = 3.4e-2;

  p.devices = {dram, nvram};
  return p;
}

Platform Platform::cxl_scaled(std::size_t local_capacity,
                              std::size_t remote_capacity) {
  Platform p;
  p.copy_threads = 16;
  p.copy_chunk = 1 * util::MiB;
  p.scale_note = "CXL expander @ 1:1000 scale (local DRAM + remote memory)";

  DeviceSpec local;
  local.name = "DRAM (local)";
  local.kind = DeviceKind::kDram;
  local.capacity = local_capacity;
  local.read_bw = BandwidthCurve{
      {1, 20 * kGBs}, {4, 45 * kGBs}, {8, 75 * kGBs}, {16, 100 * kGBs}};
  local.write_bw_nt = BandwidthCurve{
      {1, 16 * kGBs}, {4, 40 * kGBs}, {8, 60 * kGBs}, {16, 80 * kGBs}};
  local.write_bw = local.write_bw_nt;
  local.op_latency_s = 2e-4;

  // Remote CXL memory: symmetric reads/writes at roughly a third of local
  // bandwidth, saturating earlier (link-limited), with a higher
  // per-transfer latency.  Unlike NVRAM there is no write-bandwidth cliff
  // and no dependence on store type.
  DeviceSpec remote;
  remote.name = "CXL (remote)";
  remote.kind = DeviceKind::kNvram;  // "slow tier" role for policies
  remote.read_bw = BandwidthCurve{
      {1, 10 * kGBs}, {4, 24 * kGBs}, {8, 30 * kGBs}, {16, 32 * kGBs}};
  remote.write_bw_nt = remote.read_bw;
  remote.write_bw = remote.read_bw;
  remote.capacity = remote_capacity;
  remote.op_latency_s = 2e-3;

  p.devices = {local, remote};
  return p;
}

Platform Platform::three_tier_scaled(std::size_t near_capacity,
                                     std::size_t dram_capacity,
                                     std::size_t nvram_capacity) {
  // Tier 0: a small HBM-like near memory in front of the Cascade Lake
  // DRAM+NVRAM pair.
  Platform p = cascade_lake_scaled(dram_capacity, nvram_capacity);
  p.scale_note = "three-tier (HBM-like / DRAM / NVRAM) @ 1:1000 scale";

  DeviceSpec near;
  near.name = "HBM-like";
  near.kind = DeviceKind::kDram;
  near.capacity = near_capacity;
  near.read_bw = BandwidthCurve{
      {1, 40 * kGBs}, {4, 120 * kGBs}, {8, 220 * kGBs}, {16, 320 * kGBs}};
  near.write_bw_nt = BandwidthCurve{
      {1, 35 * kGBs}, {4, 100 * kGBs}, {8, 190 * kGBs}, {16, 280 * kGBs}};
  near.write_bw = near.write_bw_nt;
  near.op_latency_s = 1e-4;

  p.devices.insert(p.devices.begin(), near);
  return p;
}

}  // namespace ca::sim
