// Bandwidth-vs-parallelism curves for the simulated memory devices.
//
// The central hardware facts the paper's policy design rests on (§III-D and
// §V-d, citing Izraelevitz et al. and Hildebrand et al.):
//   * NVRAM writes are slow and low bandwidth, and DRAM->NVRAM copy
//     bandwidth *decreases* with increasing parallelism.
//   * NVRAM reads are not much slower than DRAM.
//   * Non-temporal stores are crucial for NVRAM write performance.
// A piecewise-linear curve over (thread-count, bandwidth) control points
// captures all three regimes.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace ca::sim {

class BandwidthCurve {
 public:
  struct Point {
    std::size_t threads;
    double bytes_per_sec;
  };

  BandwidthCurve() = default;

  /// Points must be given in strictly increasing thread order with at least
  /// one entry; bandwidth is linearly interpolated between points and clamped
  /// flat outside the given range.
  BandwidthCurve(std::initializer_list<Point> points);

  /// Constant bandwidth regardless of parallelism.
  static BandwidthCurve flat(double bytes_per_sec);

  /// Bandwidth achieved when `threads` workers drive the device.
  [[nodiscard]] double at(std::size_t threads) const;

  /// Peak bandwidth over all thread counts and the thread count achieving it.
  [[nodiscard]] double peak() const;
  [[nodiscard]] std::size_t best_threads() const;

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  std::vector<Point> points_;
};

}  // namespace ca::sim
