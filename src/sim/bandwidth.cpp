#include "sim/bandwidth.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ca::sim {

BandwidthCurve::BandwidthCurve(std::initializer_list<Point> points)
    : points_(points) {
  CA_CHECK(!points_.empty(), "bandwidth curve needs at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    CA_CHECK(points_[i].threads > points_[i - 1].threads,
             "curve points must have strictly increasing thread counts");
  }
  for (const auto& p : points_) {
    CA_CHECK(p.bytes_per_sec > 0.0, "bandwidth must be positive");
    CA_CHECK(p.threads >= 1, "thread count must be at least 1");
  }
}

BandwidthCurve BandwidthCurve::flat(double bytes_per_sec) {
  return BandwidthCurve{{1, bytes_per_sec}};
}

double BandwidthCurve::at(std::size_t threads) const {
  CA_CHECK(!points_.empty(), "bandwidth curve is empty");
  if (threads <= points_.front().threads) {
    return points_.front().bytes_per_sec;
  }
  if (threads >= points_.back().threads) {
    return points_.back().bytes_per_sec;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (threads <= points_[i].threads) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double t = static_cast<double>(threads - lo.threads) /
                       static_cast<double>(hi.threads - lo.threads);
      return lo.bytes_per_sec + t * (hi.bytes_per_sec - lo.bytes_per_sec);
    }
  }
  return points_.back().bytes_per_sec;  // unreachable
}

double BandwidthCurve::peak() const {
  CA_CHECK(!points_.empty(), "bandwidth curve is empty");
  return std::max_element(points_.begin(), points_.end(),
                          [](const Point& a, const Point& b) {
                            return a.bytes_per_sec < b.bytes_per_sec;
                          })
      ->bytes_per_sec;
}

std::size_t BandwidthCurve::best_threads() const {
  CA_CHECK(!points_.empty(), "bandwidth curve is empty");
  return std::max_element(points_.begin(), points_.end(),
                          [](const Point& a, const Point& b) {
                            return a.bytes_per_sec < b.bytes_per_sec;
                          })
      ->threads;
}

}  // namespace ca::sim
