// ca::ptrprov — pointer-provenance and pin-discipline analysis for the
// managed heap, the relocation-side sibling of ca::lockdep.
//
// The defining hazard of CachedArrays is that region bytes *move*:
// `evictfrom` and `defragment` relocate live regions while kernels hold raw
// pointers obtained from `Region::data()`, guarded only by the paper's
// §III-C pin discipline (`Object::pinned()`).  This subsystem makes that
// discipline checkable:
//
//   * every Region carries a generation counter the DataManager bumps when
//     the region's bytes move or its storage is freed; the registry mirrors
//     it per region address (on_region_alloc / on_region_mutate /
//     on_region_free);
//
//   * the sanctioned accessor (dm::PinnedSpan, from DataManager::access)
//     records (pointer, generation, pin token, source_location) on acquire
//     and checks every dereference against the mirror: a pointer whose
//     region generation has advanced is a use-after-relocate, a freed
//     region is a use-after-free, a span outliving its pin is a
//     use-after-unpin, and raw extraction with pin_count == 0 is an
//     unpinned-extract — each a structured ProvenanceReport naming the
//     acquire site and the mutation site that invalidated it;
//
//   * sanctioned raw escapes (Runtime::resolve) call on_escape, so the set
//     of observed acquire/escape sites accumulates across ca::race explorer
//     schedules and tools/ptrprov_check.py can diff it against the manifest
//     in docs/pointer_provenance.json (the static half: the
//     region-data-route ca_lint rule confines bare Region::data() calls to
//     the same manifest).
//
// Reports are drained per explorer schedule (take_reports) so a hazard is
// flagged in every schedule that executes it; the observed-site table, like
// the lockdep graph, accumulates for the runtime dump.
//
// Enabled in Debug and CA_RACE builds (CA_PTRPROV_ENABLED, set by the
// top-level CMakeLists); everywhere else every hook compiles to an empty
// inline and PinnedSpan::data() is a plain pointer load.  The subsystem
// depends on the C++ standard library only: dm/object.hpp sits above it in
// the tree, so regions and objects appear here as opaque const void*.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ca::ptrprov {

#if defined(CA_PTRPROV_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

using SpanId = std::uint64_t;

}  // namespace ca::ptrprov

#if defined(CA_PTRPROV_ENABLED)

#include <source_location>
#include <string>
#include <vector>

namespace ca::ptrprov {

/// A structured provenance finding.
struct ProvenanceReport {
  enum class Kind : std::uint8_t {
    kUseAfterRelocate = 0,  ///< access through a pointer whose region moved
    kUseAfterFree = 1,      ///< access through a pointer whose region is gone
    kUnpinnedExtract = 2,   ///< raw pointer extracted while pin_count == 0
    kUseAfterUnpin = 3,     ///< pointer used after its pin was dropped
  };

  Kind kind = Kind::kUseAfterRelocate;
  std::string object;        ///< the object's name/label
  std::string acquire_site;  ///< "file:line" where the pointer was obtained
  std::string access_site;   ///< "file:line" of the flagged use (may be empty)
  std::string mutation_op;   ///< "defragment", "evictfrom", "free", ...
  std::string mutation_site; ///< "file:line" of the invalidating mutation
  std::uint64_t gen_at_acquire = 0;
  std::uint64_t gen_now = 0;

  [[nodiscard]] std::string to_string() const;
};

/// One live (acquired, not yet released) span, joined with the current
/// state of its region — the view ca::audit's prov.* invariants consume.
struct SpanInfo {
  SpanId id = 0;
  const void* object = nullptr;
  const void* region = nullptr;
  std::string label;
  std::string acquire_site;
  std::uint64_t gen_at_acquire = 0;
  std::uint64_t gen_now = 0;
  bool region_freed = false;
  std::string mutation_op;    ///< last invalidating op, when stale/freed
  std::string mutation_site;
};

/// One observed sanctioned-accessor site (deduplicated, with a hit count),
/// for dumps and the manifest diff.  `kind` is "acquire" or "escape".
struct SiteInfo {
  std::string kind;
  std::string site;
  std::uint64_t count = 0;
};

// --- hooks (called by the DataManager and dm::PinnedSpan) -------------------

/// `region`'s storage was (re)allocated: reset any tombstone recorded at
/// this address (heap addresses are recycled across explorer schedules).
void on_region_alloc(const void* region);

/// `region`'s bytes moved in place (defragment compaction): its generation
/// advanced to `new_gen`; every outstanding pointer into it is stale.
void on_region_mutate(const void* region, std::uint64_t new_gen,
                      const char* op, const std::source_location& loc);

/// `region`'s storage was released (`op` names the path: free, evictfrom,
/// destroy_object).  A tombstone is kept until the address is re-allocated.
void on_region_free(const void* region, const char* op,
                    const std::source_location& loc);

/// A PinnedSpan was acquired on `region` (generation `gen`, owning object
/// pinned `pin_count` times).  Returns the span's id.  pin_count <= 0 is an
/// unpinned-extract report on the spot.
SpanId on_acquire(const void* object, const void* region,
                  std::uint64_t gen, int pin_count, const char* label,
                  const std::source_location& loc);

/// The span `id` dereferenced its pointer; `pin_count_now` is the owning
/// object's current pin count.  Checks, in order of severity:
/// use-after-free, use-after-relocate, use-after-unpin.
void on_access(SpanId id, int pin_count_now, const std::source_location& loc);

/// The span `id` was released (unpin).  Accessing it afterwards reports
/// use-after-unpin.
void on_release(SpanId id);

/// A sanctioned raw-pointer escape (Runtime::resolve): records the site and
/// reports unpinned-extract when `pin_count` <= 0.
void on_escape(const void* region, std::uint64_t gen, int pin_count,
               const char* label, const std::source_location& loc);

// --- findings / introspection ----------------------------------------------

/// Drain the accumulated reports (regions, spans and observed sites stay).
std::vector<ProvenanceReport> take_reports();
[[nodiscard]] std::size_t report_count();

/// Snapshot of every live span joined with its region's current state.
[[nodiscard]] std::vector<SpanInfo> active_spans();

/// Span ids currently held by the calling thread (acquire order).
[[nodiscard]] std::vector<SpanId> held_spans();

/// Snapshot of the observed acquire/escape sites (accumulates across
/// explorer schedules, like the lockdep graph).
[[nodiscard]] std::vector<SiteInfo> observed_sites();

/// Serialize the observed sites as JSON, the format tools/ptrprov_check.py
/// diffs against docs/pointer_provenance.json.
[[nodiscard]] std::string dump_registry_json();

/// Drop every region mirror, span record, observed site and report.  For
/// tests that need a clean registry.
void reset_for_testing();

}  // namespace ca::ptrprov

#else  // !CA_PTRPROV_ENABLED -----------------------------------------------

#include <source_location>

namespace ca::ptrprov {

/// Zero-overhead stubs: release builds carry no registry and no span
/// records, and every hook inlines to nothing (the overhead micro-bench
/// asserts PinnedSpan::data() costs the same as a raw pointer load).
inline void on_region_alloc(const void*) {}
inline void on_region_mutate(const void*, std::uint64_t, const char*,
                             const std::source_location&) {}
inline void on_region_free(const void*, const char*,
                           const std::source_location&) {}
inline SpanId on_acquire(const void*, const void*, std::uint64_t, int,
                         const char*, const std::source_location&) {
  return 0;
}
inline void on_access(SpanId, int, const std::source_location&) {}
inline void on_release(SpanId) {}
inline void on_escape(const void*, std::uint64_t, int, const char*,
                      const std::source_location&) {}

}  // namespace ca::ptrprov

#endif  // CA_PTRPROV_ENABLED
