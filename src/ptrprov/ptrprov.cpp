#include "ptrprov/ptrprov.hpp"

#if defined(CA_PTRPROV_ENABLED)

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace ca::ptrprov {

namespace {

/// A site compressed to the pieces source_location hands out.  The file
/// name is a string literal (static storage), so keeping the pointer is
/// safe and allocation-free on the access hot path.
struct Site {
  const char* file = "";
  unsigned line = 0;

  [[nodiscard]] std::string str() const {
    return std::string(file) + ":" + std::to_string(line);
  }
};

/// The registry's mirror of one Region's relocation state, keyed on the
/// region's address.  Freed regions leave a tombstone (so a dangling span
/// is reported as use-after-free, not silently forgotten) until the
/// allocator recycles the address and on_region_alloc resets it.
struct RegionState {
  std::uint64_t gen = 0;
  bool freed = false;
  Site mutation_site;       ///< last generation-advancing mutation
  const char* mutation_op = "";
};

/// One recorded PinnedSpan acquisition.
struct SpanRec {
  SpanId id = 0;
  const void* object = nullptr;
  const void* region = nullptr;
  std::string label;
  Site acquire_site;
  std::uint64_t gen_at_acquire = 0;
};

/// How many released spans to remember: a use through a *released* span
/// still names its acquire site as long as the record is in this window.
constexpr std::size_t kRetiredWindow = 1024;

/// All global provenance state, guarded by one plain std::mutex.  The
/// guard must NOT be a ca::sync::mutex: the hooks run inside DataManager
/// mutation paths the race shims already instrument, and an instrumented
/// guard would recurse.
struct Registry {
  std::mutex mu;
  std::unordered_map<const void*, RegionState> regions;
  std::map<SpanId, SpanRec> spans;  ///< live (unreleased) spans
  std::deque<SpanRec> retired;     ///< recently released spans (bounded)
  /// Observed accessor sites, deduplicated by (kind, site) with a count.
  /// Accumulates across explorer schedules, like the lockdep graph.
  std::map<std::pair<std::string, std::string>, std::uint64_t> observed;
  std::vector<ProvenanceReport> reports;
  SpanId next_id = 1;

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: hooks may run at exit
    return *r;
  }
};

/// The calling thread's stack of held span ids.  Thread-local: only its
/// own thread ever touches it, so no lock is needed.
thread_local std::vector<SpanId> t_spans;

void record_site_locked(Registry& r, const char* kind, const Site& site) {
  ++r.observed[{kind, site.str()}];
}

const char* kind_name(ProvenanceReport::Kind kind) {
  switch (kind) {
    case ProvenanceReport::Kind::kUseAfterRelocate:
      return "use-after-relocate";
    case ProvenanceReport::Kind::kUseAfterFree:
      return "use-after-free";
    case ProvenanceReport::Kind::kUnpinnedExtract:
      return "unpinned-extract";
    case ProvenanceReport::Kind::kUseAfterUnpin:
      return "use-after-unpin";
  }
  return "?";
}

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string ProvenanceReport::to_string() const {
  std::ostringstream out;
  out << "ptrprov: " << kind_name(kind) << " on '" << object << "'\n";
  out << "  pointer acquired at " << acquire_site;
  if (kind == Kind::kUnpinnedExtract) {
    out << " with pin_count == 0\n";
  } else {
    out << " (generation " << gen_at_acquire << ")\n";
  }
  if (!access_site.empty()) {
    out << "  used at " << access_site << "\n";
  }
  if (!mutation_site.empty()) {
    out << "  invalidated by " << mutation_op << " at " << mutation_site
        << " (generation " << gen_now << ")\n";
  }
  return std::move(out).str();
}

void on_region_alloc(const void* region) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  // Heap addresses recycle (explorer schedules re-run the same workload on
  // a fresh DataManager at the same addresses): a new allocation starts a
  // clean history regardless of what died here before.
  r.regions[region] = RegionState{};
}

void on_region_mutate(const void* region, std::uint64_t new_gen,
                      const char* op, const std::source_location& loc) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  RegionState& rs = r.regions[region];
  rs.gen = new_gen;
  rs.mutation_site = Site{loc.file_name(), loc.line()};
  rs.mutation_op = op;
}

void on_region_free(const void* region, const char* op,
                    const std::source_location& loc) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  RegionState& rs = r.regions[region];
  rs.freed = true;
  ++rs.gen;
  rs.mutation_site = Site{loc.file_name(), loc.line()};
  rs.mutation_op = op;
}

SpanId on_acquire(const void* object, const void* region, std::uint64_t gen,
                  int pin_count, const char* label,
                  const std::source_location& loc) {
  const Site site{loc.file_name(), loc.line()};
  Registry& r = Registry::instance();
  SpanId id = 0;
  {
    std::lock_guard<std::mutex> g(r.mu);
    id = r.next_id++;
    SpanRec rec;
    rec.id = id;
    rec.object = object;
    rec.region = region;
    rec.label = label != nullptr ? label : "";
    rec.acquire_site = site;
    rec.gen_at_acquire = gen;
    record_site_locked(r, "acquire", site);
    if (pin_count <= 0) {
      ProvenanceReport report;
      report.kind = ProvenanceReport::Kind::kUnpinnedExtract;
      report.object = rec.label;
      report.acquire_site = site.str();
      report.gen_at_acquire = gen;
      r.reports.push_back(std::move(report));
    }
    r.spans.emplace(id, std::move(rec));
  }
  t_spans.push_back(id);
  return id;
}

void on_access(SpanId id, int pin_count_now, const std::source_location& loc) {
  if (id == 0) return;
  const Site site{loc.file_name(), loc.line()};
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);

  const auto it = r.spans.find(id);
  if (it == r.spans.end()) {
    // Released (or forgotten) span: the pointer outlived its unpin.
    ProvenanceReport report;
    report.kind = ProvenanceReport::Kind::kUseAfterUnpin;
    report.access_site = site.str();
    report.object = "<released span>";
    report.acquire_site = "<unknown>";
    for (const SpanRec& rec : r.retired) {
      if (rec.id == id) {
        report.object = rec.label;
        report.acquire_site = rec.acquire_site.str();
        report.gen_at_acquire = rec.gen_at_acquire;
        break;
      }
    }
    r.reports.push_back(std::move(report));
    return;
  }

  const SpanRec& rec = it->second;
  const auto rsit = r.regions.find(rec.region);
  const RegionState* rs = rsit != r.regions.end() ? &rsit->second : nullptr;

  ProvenanceReport report;
  report.object = rec.label;
  report.acquire_site = rec.acquire_site.str();
  report.access_site = site.str();
  report.gen_at_acquire = rec.gen_at_acquire;
  if (rs != nullptr && rs->freed) {
    report.kind = ProvenanceReport::Kind::kUseAfterFree;
  } else if (rs != nullptr && rs->gen != rec.gen_at_acquire) {
    report.kind = ProvenanceReport::Kind::kUseAfterRelocate;
  } else if (pin_count_now <= 0) {
    report.kind = ProvenanceReport::Kind::kUseAfterUnpin;
  } else {
    return;  // clean access
  }
  if (rs != nullptr && (rs->freed || rs->gen != rec.gen_at_acquire)) {
    report.mutation_op = rs->mutation_op;
    report.mutation_site = rs->mutation_site.str();
    report.gen_now = rs->gen;
  }
  r.reports.push_back(std::move(report));
}

void on_release(SpanId id) {
  if (id == 0) return;
  for (auto it = t_spans.rbegin(); it != t_spans.rend(); ++it) {
    if (*it == id) {
      t_spans.erase(std::next(it).base());
      break;
    }
  }
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  const auto it = r.spans.find(id);
  if (it == r.spans.end()) return;
  r.retired.push_back(std::move(it->second));
  if (r.retired.size() > kRetiredWindow) r.retired.pop_front();
  r.spans.erase(it);
}

void on_escape(const void* region, std::uint64_t gen, int pin_count,
               const char* label, const std::source_location& loc) {
  (void)region;
  const Site site{loc.file_name(), loc.line()};
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  record_site_locked(r, "escape", site);
  if (pin_count <= 0) {
    ProvenanceReport report;
    report.kind = ProvenanceReport::Kind::kUnpinnedExtract;
    report.object = label != nullptr ? label : "";
    report.acquire_site = site.str();
    report.gen_at_acquire = gen;
    r.reports.push_back(std::move(report));
  }
}

std::vector<ProvenanceReport> take_reports() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  return std::exchange(r.reports, {});
}

std::size_t report_count() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  return r.reports.size();
}

std::vector<SpanInfo> active_spans() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  std::vector<SpanInfo> out;
  out.reserve(r.spans.size());
  for (const auto& [id, rec] : r.spans) {
    SpanInfo info;
    info.id = id;
    info.object = rec.object;
    info.region = rec.region;
    info.label = rec.label;
    info.acquire_site = rec.acquire_site.str();
    info.gen_at_acquire = rec.gen_at_acquire;
    info.gen_now = rec.gen_at_acquire;
    const auto rsit = r.regions.find(rec.region);
    if (rsit != r.regions.end()) {
      info.gen_now = rsit->second.gen;
      info.region_freed = rsit->second.freed;
      if (rsit->second.freed || rsit->second.gen != rec.gen_at_acquire) {
        info.mutation_op = rsit->second.mutation_op;
        info.mutation_site = rsit->second.mutation_site.str();
      }
    }
    out.push_back(std::move(info));
  }
  return out;  // map iteration: already sorted by id (acquire order)
}

std::vector<SpanId> held_spans() { return t_spans; }

std::vector<SiteInfo> observed_sites() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  std::vector<SiteInfo> out;
  out.reserve(r.observed.size());
  for (const auto& [key, count] : r.observed) {
    out.push_back(SiteInfo{key.first, key.second, count});
  }
  // The map is keyed on (kind, site): already deterministically sorted.
  return out;
}

std::string dump_registry_json() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  std::ostringstream out;
  out << "{\n  \"sites\": [";
  bool first = true;
  for (const auto& [key, count] : r.observed) {
    out << (first ? "\n" : ",\n") << "    {\"kind\": ";
    json_escape(out, key.first);
    out << ", \"site\": ";
    json_escape(out, key.second);
    out << ", \"count\": " << count << "}";
    first = false;
  }
  out << "\n  ],\n  \"active_spans\": " << r.spans.size()
      << ",\n  \"pending_reports\": " << r.reports.size() << "\n}\n";
  return std::move(out).str();
}

void reset_for_testing() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  r.regions.clear();
  r.spans.clear();
  r.retired.clear();
  r.observed.clear();
  r.reports.clear();
  r.next_id = 1;
}

}  // namespace ca::ptrprov

#else  // !CA_PTRPROV_ENABLED

// Keep the translation unit non-empty in release builds; the library
// target exists in every configuration.
namespace ca::ptrprov {
namespace {
[[maybe_unused]] constexpr int kPtrprovDisabled = 0;
}  // namespace
}  // namespace ca::ptrprov

#endif  // CA_PTRPROV_ENABLED
