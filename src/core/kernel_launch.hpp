// Multi-argument kernel launches over CachedArrays.
//
// Mirrors the end-to-end flow of §III-E: for each compute kernel the
// runtime issues will_read on read-only parameters and will_write on
// written parameters (giving the policy its chance to stage data), then
// resolves every object once, pins the arguments, runs the kernel body on
// raw spans, and unpins.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cached_array.hpp"
#include "core/runtime.hpp"

namespace ca::core {

class KernelLaunch {
 public:
  explicit KernelLaunch(Runtime& rt) : rt_(&rt) {}

  template <typename T>
  KernelLaunch& reads(const CachedArray<T>& a) {
    args_.push_back({a.object(), false});
    return *this;
  }

  template <typename T>
  KernelLaunch& writes(CachedArray<T>& a) {
    args_.push_back({a.object(), true});
    return *this;
  }

  /// Stage (hints), pin, run `fn()`, unpin.  Inside `fn`, use
  /// CachedArray::with_read / with_write or `resolve` pointers; arguments
  /// registered here cannot be displaced meanwhile.
  template <typename Fn>
  decltype(auto) run(Fn&& fn) {
    std::vector<dm::Object*> objects;
    objects.reserve(args_.size());
    for (const auto& a : args_) objects.push_back(a.object);

    // Hints first (the policy may move data), then the pin bracket.
    rt_->policy().begin_kernel(objects);  // protect args during staging
    for (const auto& a : args_) {
      if (a.object == nullptr) continue;
      if (a.written) {
        rt_->will_write(*a.object);
      } else {
        rt_->will_read(*a.object);
      }
    }
    rt_->policy().end_kernel();

    rt_->begin_kernel(objects);
    struct Unpin {
      Runtime* rt;
      std::span<dm::Object* const> objs;
      ~Unpin() { rt->end_kernel(objs); }
    } unpin{rt_, objects};
    return std::forward<Fn>(fn)();
  }

 private:
  struct Arg {
    dm::Object* object;
    bool written;
  };

  Runtime* rt_;
  std::vector<Arg> args_;
};

}  // namespace ca::core
