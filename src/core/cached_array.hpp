// CachedArray<T>: the application-facing array type (paper §IV).
//
// A CachedArray is a shared handle to a data-manager Object.  The
// application never sees regions or devices; it reads and writes element
// spans and may attach semantic hints (Table II).  Hints are forwarded to
// the policy, which is free to move the backing data between memory tiers
// at any time the array is not inside an access bracket.
//
// Access model: all data access happens inside `with_read` / `with_write`
// brackets (the kernel programming model, §III-C).  Entering a bracket
// resolves the object indirection once -- the primary region's pointer --
// and pins the object so the pointer stays valid; leaving unpins.  This is
// the "essentially zero overhead" indirection of the paper: one resolution
// per kernel, not per element.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

#include "core/runtime.hpp"
#include "util/error.hpp"

namespace ca::core {

template <typename T>
class CachedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "CachedArray elements must be trivially copyable: the data "
                "manager relocates them with raw memory copies");

 public:
  CachedArray() = default;

  /// Allocate an array of `n` elements; the policy chooses the initial
  /// placement.  Contents are unspecified (like the paper's Julia arrays).
  CachedArray(Runtime& rt, std::size_t n, std::string name = {})
      : state_(std::make_shared<State>()) {
    state_->rt = &rt;
    state_->object = &rt.new_object(n * sizeof(T), std::move(name));
    state_->n = n;
  }

  [[nodiscard]] bool valid() const noexcept {
    return state_ != nullptr && state_->object != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return state_ ? state_->n : 0;
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return size() * sizeof(T);
  }

  /// The underlying data-manager object (for policy-level tooling and the
  /// kernel engine).  nullptr once retired.
  [[nodiscard]] dm::Object* object() const noexcept {
    return state_ ? state_->object : nullptr;
  }

  /// Stable identity token shared by all copies of this handle; remains
  /// valid (as a key) even after the array is retired.  Used by the DNN
  /// engine's gradient maps.
  [[nodiscard]] const void* identity() const noexcept {
    return state_.get();
  }

  // --- semantic hints (Table II) ----------------------------------------

  void will_read() const { runtime().will_read(live()); }
  void will_write() const { runtime().will_write(live()); }
  void will_use() const { runtime().will_use(live()); }
  void archive() const { runtime().archive(live()); }

  /// "I will never access this again."  Under a policy with the memory
  /// optimization (M) the storage is released immediately and every handle
  /// to this array becomes invalid; otherwise the GC reclaims it later.
  /// Only improper use of retire can affect correctness (paper §III-D).
  bool retire() {
    if (!valid()) return false;
    if (state_->rt->retire(*state_->object)) {
      state_->object = nullptr;
      return true;
    }
    return false;
  }

  // --- bracketed access ----------------------------------------------------

  /// Read access: `fn` receives std::span<const T>.
  template <typename Fn>
  decltype(auto) with_read(Fn&& fn) const {
    Bracket b(*this, /*write=*/false);
    return std::forward<Fn>(fn)(std::span<const T>(
        reinterpret_cast<const T*>(b.span.data()), size()));
  }

  /// Write access: `fn` receives std::span<T>.  Marks the primary dirty.
  template <typename Fn>
  decltype(auto) with_write(Fn&& fn) {
    Bracket b(*this, /*write=*/true);
    return std::forward<Fn>(fn)(
        std::span<T>(reinterpret_cast<T*>(b.span.data()), size()));
  }

 private:
  struct State {
    Runtime* rt = nullptr;
    dm::Object* object = nullptr;
    std::size_t n = 0;

    ~State() {
      if (object != nullptr) rt->release(*object);
    }
  };

  /// RAII kernel bracket for single-array access.  The provenance-tracked
  /// span holds its own pin on top of the bracket's (counted), and is
  /// dropped before end_kernel unpins.
  struct Bracket {
    Bracket(const CachedArray& a, bool write)
        : rt(&a.runtime()), obj(&a.live()) {
      rt->begin_kernel({&obj, 1});
      span = rt->access(*obj, write);
    }
    ~Bracket() {
      span.reset();
      rt->end_kernel({&obj, 1});
    }
    Bracket(const Bracket&) = delete;

    Runtime* rt;
    dm::Object* obj;
    dm::PinnedSpan span;
  };

  [[nodiscard]] Runtime& runtime() const {
    CA_CHECK(state_ != nullptr, "use of an empty CachedArray");
    return *state_->rt;
  }

  [[nodiscard]] dm::Object& live() const {
    CA_CHECK(state_ != nullptr && state_->object != nullptr,
             "use of an empty or retired CachedArray");
    return *state_->object;
  }

  std::shared_ptr<State> state_;
};

}  // namespace ca::core
