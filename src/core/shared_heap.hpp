// SharedHeap: the platform-wide state K runtimes share when they act as
// tenants of one DataManager (the dp::Trainer setting: K workers over one
// Platform's DRAM+NVRAM, each charged to its own TenantId).
//
// A single-client Runtime constructs its own private SharedHeap, so the
// original `Runtime(platform, ...)` constructor keeps its behaviour; the
// multi-tenant path constructs one SharedHeap up front and hands the same
// shared_ptr to every worker's Runtime.  Member order matters: the
// DataManager holds references to all three of platform/clock/counters.
#pragma once

#include <memory>

#include "dm/data_manager.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"

namespace ca::core {

struct SharedHeap {
  explicit SharedHeap(sim::Platform p)
      : platform(std::move(p)), manager(platform, clock, counters) {}

  SharedHeap(const SharedHeap&) = delete;
  SharedHeap& operator=(const SharedHeap&) = delete;

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager manager;
};

}  // namespace ca::core
