// The CachedArrays runtime: glue between the application-facing
// CachedArray type, the policy, and the data manager (paper Fig. 1).
//
// The runtime also emulates the garbage-collected host language (the
// paper's prototype lives in Julia): an object whose last handle drops is
// not freed immediately -- it joins a pending list that an explicit or
// pressure-triggered collection reclaims.  The paper's memory optimization
// (M) is precisely "retire arrays as soon as possible rather than relying
// solely on Julia's GC"; modes without M therefore keep semantically dead
// arrays alive, and those arrays cost NVRAM writebacks when evicted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/shared_heap.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "policy/policy.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"

namespace ca::core {

struct RuntimeOptions {
  /// Tenant this runtime's objects and allocations are charged to when the
  /// DataManager is shared between clients.  Propagated to every
  /// create_object and to the policy (which threads it through allocate /
  /// evictfrom).  Default 0: the single-client tenant.
  dm::TenantId tenant{};

  /// Run a collection when resident bytes exceed this fraction of total
  /// heap capacity (checked at allocation).  <= 0 disables the trigger;
  /// pressure-driven collection on allocation failure always remains.
  double gc_trigger_fraction = 0.85;

  /// Modeled cost of one collection: base pause plus per-collected-object
  /// cost, charged to TimeCategory::kGc.
  double gc_base_seconds = 2e-3;
  double gc_per_object_seconds = 2e-5;
};

struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t objects_collected = 0;
  std::uint64_t bytes_collected = 0;
  std::uint64_t pressure_triggers = 0;
};

class Runtime {
 public:
  using PolicyFactory =
      std::function<std::unique_ptr<policy::Policy>(dm::DataManager&)>;

  /// Single-client construction: the runtime owns a private SharedHeap
  /// built from `platform`.
  Runtime(sim::Platform platform, const PolicyFactory& make_policy,
          RuntimeOptions options = {});

  /// Multi-tenant construction: attach to an existing SharedHeap as one of
  /// its clients.  Each attached runtime gets its own policy instance but
  /// shares the platform, clock, counters and DataManager; set
  /// `options.tenant` (from SharedHeap::manager.register_tenant) so this
  /// runtime's objects and allocations are charged to its own slot.
  Runtime(std::shared_ptr<SharedHeap> heap, const PolicyFactory& make_policy,
          RuntimeOptions options = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- object lifecycle (used by CachedArray) ---------------------------

  /// Create an object and let the policy place its first region.
  dm::Object& new_object(std::size_t bytes, std::string name = {},
                         dm::ObjectClass cls = dm::ObjectClass::kGeneric);

  /// Last handle dropped: the object is garbage.  It stays allocated until
  /// the next collection (Julia semantics).
  void release(dm::Object& object);

  /// Application hint: the object will never be used again.  Returns true
  /// if the policy released it immediately (handles become invalid).
  bool retire(dm::Object& object);

  // --- hints (forwarded to the policy) ----------------------------------

  void will_use(dm::Object& object) { policy_->will_use(object); }
  void will_read(dm::Object& object) { policy_->will_read(object); }
  void will_write(dm::Object& object) { policy_->will_write(object); }
  void will_read_partial(dm::Object& object, std::size_t bytes) {
    policy_->will_read_partial(object, bytes);
  }
  void archive(dm::Object& object) { policy_->archive(object); }

  /// Kernel bracketing: protects `args` from displacement while the kernel
  /// is being staged, and pins them during execution.
  void begin_kernel(std::span<dm::Object* const> args);
  void end_kernel(std::span<dm::Object* const> args);

  // --- data access -------------------------------------------------------

  /// Resolve the object indirection for kernel execution.  The object must
  /// be pinned (between begin_kernel/end_kernel) so the pointer stays
  /// valid.  Write access marks the primary dirty.  This is the sanctioned
  /// raw-pointer escape: ca::ptrprov records the call site and flags any
  /// resolve against an unpinned object.
  [[nodiscard]] std::byte* resolve(
      dm::Object& object, bool write,
      std::source_location loc = std::source_location::current());

  /// The provenance-tracked accessor (preferred over resolve): pins the
  /// object for the span's lifetime and checks every dereference against
  /// the relocation generation.  Composes with kernel brackets (pins are
  /// counted).
  [[nodiscard]] dm::PinnedSpan access(
      dm::Object& object, bool write,
      std::source_location loc = std::source_location::current()) {
    return dm_->access(object, write, loc);
  }

  // --- GC emulation -------------------------------------------------------

  /// Collect every pending dead object.  Returns bytes reclaimed.
  std::size_t gc_collect();

  [[nodiscard]] const GcStats& gc_stats() const noexcept { return gc_; }
  [[nodiscard]] std::size_t gc_pending() const noexcept {
    return dead_.size();
  }

  // --- plumbing ------------------------------------------------------------

  [[nodiscard]] sim::Clock& clock() noexcept { return heap_->clock; }
  [[nodiscard]] const sim::Clock& clock() const noexcept {
    return heap_->clock;
  }
  [[nodiscard]] telemetry::TrafficCounters& counters() noexcept {
    return heap_->counters;
  }
  [[nodiscard]] dm::DataManager& manager() noexcept { return *dm_; }
  [[nodiscard]] policy::Policy& policy() noexcept { return *policy_; }
  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return heap_->platform;
  }

  /// The shared system state this runtime is attached to (its own private
  /// one in the single-client case).
  [[nodiscard]] const std::shared_ptr<SharedHeap>& shared_heap()
      const noexcept {
    return heap_;
  }

  /// Tenant this runtime's objects are charged to.
  [[nodiscard]] dm::TenantId tenant() const noexcept {
    return options_.tenant;
  }

  /// Compact all device heaps (between training iterations, §IV-A).
  void defragment_all();

  /// Total heap capacity across devices.
  [[nodiscard]] std::size_t total_capacity() const noexcept {
    return total_capacity_;
  }

 private:
  void destroy_now(dm::Object& object);
  void maybe_trigger_gc();

  std::shared_ptr<SharedHeap> heap_;
  dm::DataManager* dm_ = nullptr;  ///< &heap_->manager
  std::unique_ptr<policy::Policy> policy_;
  RuntimeOptions options_;
  std::vector<dm::Object*> dead_;
  GcStats gc_;
  std::size_t total_capacity_ = 0;
};

}  // namespace ca::core
