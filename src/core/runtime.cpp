#include "core/runtime.hpp"

#include <algorithm>

#include "ptrprov/ptrprov.hpp"
#include "util/error.hpp"

namespace ca::core {

Runtime::Runtime(sim::Platform platform, const PolicyFactory& make_policy,
                 RuntimeOptions options)
    : Runtime(std::make_shared<SharedHeap>(std::move(platform)), make_policy,
              options) {}

Runtime::Runtime(std::shared_ptr<SharedHeap> heap,
                 const PolicyFactory& make_policy, RuntimeOptions options)
    : heap_(std::move(heap)), options_(options) {
  CA_CHECK(heap_ != nullptr, "a shared heap is required");
  CA_CHECK(make_policy != nullptr, "a policy factory is required");
  dm_ = &heap_->manager;
  policy_ = make_policy(*dm_);
  CA_CHECK(policy_ != nullptr, "policy factory returned null");
  policy_->set_tenant(options_.tenant);
  policy_->set_pressure_handler([this] {
    ++gc_.pressure_triggers;
    return gc_collect() > 0;
  });
  for (const auto& spec : heap_->platform.devices) {
    total_capacity_ += spec.capacity;
  }
}

dm::Object& Runtime::new_object(std::size_t bytes, std::string name,
                                dm::ObjectClass cls) {
  maybe_trigger_gc();
  dm::Object* object =
      dm_->create_object(bytes, std::move(name), options_.tenant, cls);
  try {
    policy_->place_new(*object);
  } catch (...) {
    dm_->destroy_object(object);
    throw;
  }
  return *object;
}

void Runtime::release(dm::Object& object) {
  CA_CHECK(!object.pinned(), "released object is still pinned");
  dead_.push_back(&object);
}

bool Runtime::retire(dm::Object& object) {
  if (policy_->retire(object)) {
    destroy_now(object);
    return true;
  }
  return false;
}

void Runtime::begin_kernel(std::span<dm::Object* const> args) {
  // Stage arguments under displacement protection, then pin them so the
  // resolved pointers stay valid for the kernel's duration.
  policy_->begin_kernel(args);
  for (dm::Object* obj : args) {
    if (obj != nullptr) dm_->pin(*obj);
  }
}

void Runtime::end_kernel(std::span<dm::Object* const> args) {
  for (dm::Object* obj : args) {
    if (obj != nullptr) dm_->unpin(*obj);
  }
  policy_->end_kernel();
}

std::byte* Runtime::resolve(dm::Object& object, bool write,
                            std::source_location loc) {
  CA_CHECK(object.pinned(),
           "resolve outside a begin_kernel/end_kernel bracket");
  dm::Region* primary = dm_->getprimary(object);
  CA_CHECK(primary != nullptr, "object has no primary region");
  // If an asynchronous fill is still in flight, stall for the remainder
  // (this is the only synchronous cost async movement leaves behind).
  dm_->wait_ready(*primary);
  if (write) dm_->markdirty(*primary);
  // Sanctioned raw escape: the returned pointer leaves the provenance
  // net, so record the extraction (and flag it if the pin check above
  // was somehow bypassed).
  ptrprov::on_escape(primary, primary->generation(), object.pin_count(),
                     object.name().c_str(), loc);
  return primary->data();
}

void Runtime::destroy_now(dm::Object& object) {
  policy_->on_destroy(object);
  dm_->destroy_object(&object);
}

std::size_t Runtime::gc_collect() {
  if (dead_.empty()) return 0;
  std::size_t bytes = 0;
  const std::size_t n = dead_.size();
  for (dm::Object* obj : dead_) {
    bytes += obj->size();
    destroy_now(*obj);
  }
  dead_.clear();
  ++gc_.collections;
  gc_.objects_collected += n;
  gc_.bytes_collected += bytes;
  heap_->clock.advance(
      options_.gc_base_seconds +
          options_.gc_per_object_seconds * static_cast<double>(n),
      sim::TimeCategory::kGc);
  return bytes;
}

void Runtime::maybe_trigger_gc() {
  if (options_.gc_trigger_fraction <= 0.0 || dead_.empty()) return;
  const auto resident = static_cast<double>(dm_->resident_bytes());
  if (resident > options_.gc_trigger_fraction *
                     static_cast<double>(total_capacity_)) {
    gc_collect();
  }
}

void Runtime::defragment_all() {
  for (std::uint32_t d = 0; d < heap_->platform.devices.size(); ++d) {
    dm_->defragment(sim::DeviceId{d});
  }
}

}  // namespace ca::core
