// AVX-512 non-temporal copy/fill: 64-byte zmm streams -- each store is a
// full cache line, so an aligned stream never partially fills a
// write-combining buffer.  Structure mirrors copy_avx2.cpp.
#include "simd/copy_ops.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace ca::simd {

namespace {

constexpr std::size_t kVec = 64;  // one zmm store = one cache line

std::size_t copy_nt(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);

  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) & (kVec - 1);
  std::size_t head = mis != 0 ? kVec - mis : 0;
  if (head > n) head = n;
  if (head != 0) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    n -= head;
  }

  const std::size_t body = n & ~(std::size_t{4} * kVec - 1);
  std::size_t off = 0;
  for (; off < body; off += 4 * kVec) {
    const __m512i v0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(s + off));
    const __m512i v1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(s + off + kVec));
    const __m512i v2 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(s + off + 2 * kVec));
    const __m512i v3 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(s + off + 3 * kVec));
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off), v0);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off + kVec), v1);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off + 2 * kVec), v2);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off + 3 * kVec), v3);
  }
  std::size_t streamed = body;
  for (; off + kVec <= n; off += kVec) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(s + off));
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off), v);
    streamed += kVec;
  }
  if (off < n) std::memcpy(d + off, s + off, n - off);
  _mm_sfence();
  return streamed;
}

std::size_t fill_nt(void* dst, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);

  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) & (kVec - 1);
  std::size_t head = mis != 0 ? kVec - mis : 0;
  if (head > n) head = n;
  if (head != 0) {
    std::memset(d, 0, head);
    d += head;
    n -= head;
  }

  const __m512i zero = _mm512_setzero_si512();
  std::size_t off = 0;
  std::size_t streamed = 0;
  for (; off + kVec <= n; off += kVec) {
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d + off), zero);
    streamed += kVec;
  }
  if (off < n) std::memset(d + off, 0, n - off);
  _mm_sfence();
  return streamed;
}

constexpr CopyOps kOps{&copy_nt, &fill_nt};

}  // namespace

const CopyOps* copy_ops_avx512() noexcept { return &kOps; }

}  // namespace ca::simd

#else  // !__AVX512F__

namespace ca::simd {
const CopyOps* copy_ops_avx512() noexcept { return nullptr; }
}  // namespace ca::simd

#endif
