// AVX2 + FMA tile: 6 x 16.  Six rows of two 8-float ymm accumulators
// (12 regs) plus the A broadcast and two B loads use 15 of the 16 ymm
// registers -- the widest tile that stays spill-free at 256 bits.
//
// This TU is compiled with -mavx2 -mfma by src/simd/CMakeLists.txt; when
// the toolchain probe for those flags fails the guard below compiles the
// provider to return nullptr and dispatch falls back to the scalar tile.
#include "simd/gemm_kernel.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ca::simd {

namespace {

constexpr std::size_t kMR = 6;
constexpr std::size_t kNR = 16;

void micro_kernel(std::size_t kc, const float* pa, const float* pb,
                  float alpha, float beta, bool first_pc, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  __m256 acc[kMR][2];
#pragma GCC unroll 6
  for (std::size_t i = 0; i < kMR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = pa + p * kMR;
    const __m256 b0 = _mm256_loadu_ps(pb + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(pb + p * kNR + 8);
#pragma GCC unroll 6
    for (std::size_t i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(ap + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }

  const __m256 va = _mm256_set1_ps(alpha);
  if (mr == kMR && nr == kNR) {
    // Full tile: vector write-back straight against C.
    if (!first_pc) {
#pragma GCC unroll 6
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm256_storeu_ps(
            crow, _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(crow)));
        _mm256_storeu_ps(crow + 8, _mm256_fmadd_ps(va, acc[i][1],
                                                   _mm256_loadu_ps(crow + 8)));
      }
    } else if (beta == 0.0f) {
#pragma GCC unroll 6
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm256_storeu_ps(crow, _mm256_mul_ps(va, acc[i][0]));
        _mm256_storeu_ps(crow + 8, _mm256_mul_ps(va, acc[i][1]));
      }
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
#pragma GCC unroll 6
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm256_storeu_ps(crow,
                         _mm256_fmadd_ps(vb, _mm256_loadu_ps(crow),
                                         _mm256_mul_ps(va, acc[i][0])));
        _mm256_storeu_ps(crow + 8,
                         _mm256_fmadd_ps(vb, _mm256_loadu_ps(crow + 8),
                                         _mm256_mul_ps(va, acc[i][1])));
      }
    }
    return;
  }

  // Fringe tile: spill the accumulators and write back element-wise.
  alignas(32) float spill[kMR][kNR];
  for (std::size_t i = 0; i < kMR; ++i) {
    _mm256_store_ps(&spill[i][0], acc[i][0]);
    _mm256_store_ps(&spill[i][8], acc[i][1]);
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    if (!first_pc) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * spill[i][j];
    } else if (beta == 0.0f) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = alpha * spill[i][j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = alpha * spill[i][j] + beta * crow[j];
      }
    }
  }
}

constexpr GemmTile kTile{kMR, kNR, &micro_kernel};

}  // namespace

const GemmTile* gemm_tile_avx2() noexcept { return &kTile; }

}  // namespace ca::simd

#else  // !(__AVX2__ && __FMA__)

namespace ca::simd {
const GemmTile* gemm_tile_avx2() noexcept { return nullptr; }
}  // namespace ca::simd

#endif
