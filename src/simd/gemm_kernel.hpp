// Per-ISA GEMM register tiles behind the shared packed-panel interface.
//
// The blocked GEMM in src/dnn/gemm.cpp packs A into mr-row and B into
// nr-column zero-padded micro-panels and then sweeps an mr x nr register
// tile over them.  Packing is ISA-agnostic; only the tile shape and the
// innermost kernel differ per level:
//
//     scalar   4 x  8   fits the baseline 16-reg SSE budget (the seed tile)
//     avx2     6 x 16   12 ymm accumulators + A broadcast + 2 B loads = 15
//     avx512   8 x 32   16 zmm accumulators of the 32-register file
//
// Each kernel consumes panels packed at ITS OWN mr/nr -- the packing
// routines take the tile shape at run time -- and handles the fringe
// (mr/nr smaller than the full tile on the last micro-panel) internally,
// so the caller's loop nest is tile-shape agnostic.
#pragma once

#include <cstddef>

#include "simd/isa.hpp"

namespace ca::simd {

/// Compute one register tile: C[0:mr, 0:nr] (+)= alpha * sum_p pa x pb,
/// with the first_pc/beta contract of the blocked loop nest (first k-panel
/// writes C with a beta scale, later panels accumulate).  `pa` is a packed
/// tile.mr-row micro-panel, `pb` a packed tile.nr-column micro-panel, both
/// zero-padded to the full tile; mr/nr <= tile shape give the fringe.
using GemmMicroKernelFn = void (*)(std::size_t kc, const float* pa,
                                   const float* pb, float alpha, float beta,
                                   bool first_pc, float* c, std::size_t ldc,
                                   std::size_t mr, std::size_t nr);

/// A register-tile shape plus the kernel that sweeps it.
struct GemmTile {
  std::size_t mr;
  std::size_t nr;
  GemmMicroKernelFn kernel;
};

/// Tile for `level`, falling back down the dispatch order when the
/// requested level's kernel is not compiled into this binary.  The scalar
/// tile always exists, so the result is always usable.
const GemmTile& gemm_tile(IsaLevel level) noexcept;

/// Per-TU providers.  Each ISA translation unit exports its tile, or
/// nullptr when the binary was built without that ISA's codegen (the
/// CMake flag probe failed).  Exposed for dispatch unit tests.
const GemmTile* gemm_tile_scalar() noexcept;  // never nullptr
const GemmTile* gemm_tile_avx2() noexcept;
const GemmTile* gemm_tile_avx512() noexcept;

}  // namespace ca::simd
