// Internal provider interface between the generic copy dispatcher
// (copy.cpp) and the per-ISA translation units.  Not part of the public
// simd API.
#pragma once

#include <cstddef>

namespace ca::simd {

/// Non-temporal kernel table for one ISA level.  Each function copies /
/// zeroes `n` bytes, streaming the vector-aligned body with NT stores
/// (unaligned head and tail fall back to memcpy/memset), issues an sfence,
/// and returns the number of bytes actually streamed.
struct CopyOps {
  std::size_t (*copy_nt)(void* dst, const void* src, std::size_t n);
  std::size_t (*fill_nt)(void* dst, std::size_t n);
};

/// nullptr when the binary was built without that ISA's codegen.
const CopyOps* copy_ops_avx2() noexcept;
const CopyOps* copy_ops_avx512() noexcept;

}  // namespace ca::simd
