// AVX-512F tile: 8 x 32.  Eight rows of two 16-float zmm accumulators
// (16 regs) leave half the 32-register file for the A broadcast, B loads,
// and the alpha/beta constants -- comfortably spill-free at 512 bits.
//
// Compiled with -mavx512f by src/simd/CMakeLists.txt; without the flag the
// provider returns nullptr and dispatch falls back to AVX2 or scalar.
#include "simd/gemm_kernel.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace ca::simd {

namespace {

constexpr std::size_t kMR = 8;
constexpr std::size_t kNR = 32;

void micro_kernel(std::size_t kc, const float* pa, const float* pb,
                  float alpha, float beta, bool first_pc, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  __m512 acc[kMR][2];
#pragma GCC unroll 8
  for (std::size_t i = 0; i < kMR; ++i) {
    acc[i][0] = _mm512_setzero_ps();
    acc[i][1] = _mm512_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = pa + p * kMR;
    const __m512 b0 = _mm512_loadu_ps(pb + p * kNR);
    const __m512 b1 = _mm512_loadu_ps(pb + p * kNR + 16);
#pragma GCC unroll 8
    for (std::size_t i = 0; i < kMR; ++i) {
      const __m512 av = _mm512_set1_ps(ap[i]);
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }

  const __m512 va = _mm512_set1_ps(alpha);
  if (mr == kMR && nr == kNR) {
    if (!first_pc) {
#pragma GCC unroll 8
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm512_storeu_ps(
            crow, _mm512_fmadd_ps(va, acc[i][0], _mm512_loadu_ps(crow)));
        _mm512_storeu_ps(
            crow + 16,
            _mm512_fmadd_ps(va, acc[i][1], _mm512_loadu_ps(crow + 16)));
      }
    } else if (beta == 0.0f) {
#pragma GCC unroll 8
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm512_storeu_ps(crow, _mm512_mul_ps(va, acc[i][0]));
        _mm512_storeu_ps(crow + 16, _mm512_mul_ps(va, acc[i][1]));
      }
    } else {
      const __m512 vb = _mm512_set1_ps(beta);
#pragma GCC unroll 8
      for (std::size_t i = 0; i < kMR; ++i) {
        float* crow = c + i * ldc;
        _mm512_storeu_ps(crow,
                         _mm512_fmadd_ps(vb, _mm512_loadu_ps(crow),
                                         _mm512_mul_ps(va, acc[i][0])));
        _mm512_storeu_ps(crow + 16,
                         _mm512_fmadd_ps(vb, _mm512_loadu_ps(crow + 16),
                                         _mm512_mul_ps(va, acc[i][1])));
      }
    }
    return;
  }

  alignas(64) float spill[kMR][kNR];
  for (std::size_t i = 0; i < kMR; ++i) {
    _mm512_store_ps(&spill[i][0], acc[i][0]);
    _mm512_store_ps(&spill[i][16], acc[i][1]);
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    if (!first_pc) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * spill[i][j];
    } else if (beta == 0.0f) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = alpha * spill[i][j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = alpha * spill[i][j] + beta * crow[j];
      }
    }
  }
}

constexpr GemmTile kTile{kMR, kNR, &micro_kernel};

}  // namespace

const GemmTile* gemm_tile_avx512() noexcept { return &kTile; }

}  // namespace ca::simd

#else  // !__AVX512F__

namespace ca::simd {
const GemmTile* gemm_tile_avx512() noexcept { return nullptr; }
}  // namespace ca::simd

#endif
