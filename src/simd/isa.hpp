// Runtime ISA dispatch for the SIMD data plane.
//
// The portable build (CA_NATIVE=OFF) compiles the whole tree for the
// baseline x86-64 ABI, but the two hot data paths -- the GEMM register
// tile and the bulk byte-copy kernels -- are compiled per-ISA in this
// subsystem (each translation unit carries its own -mavx2/-mavx512f
// flags) and selected at run time from CPUID.  One binary therefore runs
// everywhere and still hits native width on capable hosts.
//
// Dispatch levels form a total order; the active level is resolved once,
// on first use, as
//
//     min(CA_ISA override if set, max level the CPU + this binary support)
//
// and cached in an atomic.  `CA_ISA=scalar|avx2|avx512|native` forces a
// level from the environment (clamped to what the host supports -- asking
// for avx512 on an AVX2 box degrades gracefully); tests and benches can
// also switch in-process via set_level() to sweep every level in one run.
#pragma once

namespace ca::simd {

/// Dispatch tiers, in strictly increasing capability order.  Comparisons
/// on the enum are meaningful: level >= kAvx2 means "256-bit FMA + NT
/// stores are available".
enum class IsaLevel : int {
  kScalar = 0,  ///< portable C++, auto-vectorized at the build's baseline
  kAvx2 = 1,    ///< 256-bit: AVX2 + FMA kernels, _mm256_stream NT stores
  kAvx512 = 2,  ///< 512-bit: AVX-512F kernels, _mm512_stream NT stores
};

/// Human-readable level name ("scalar" / "avx2" / "avx512").
const char* level_name(IsaLevel level) noexcept;

/// Highest level both this CPU and this binary's compiled kernel set
/// support.  Constant for the process lifetime.
IsaLevel max_supported_level() noexcept;

/// The level the data plane currently dispatches to.  First call resolves
/// CPUID + the CA_ISA environment override and caches the result.
IsaLevel active_level() noexcept;

/// Force the dispatch level in-process (tests / benches).  Requests above
/// max_supported_level() are clamped.  Returns true iff the request was
/// honored exactly (i.e. not clamped).
bool set_level(IsaLevel want) noexcept;

/// Parse a CA_ISA-style spelling ("scalar", "avx2", "avx512", "native").
/// "native" resolves to max_supported_level().  Returns false (and leaves
/// *out untouched) on anything else.
bool parse_level(const char* text, IsaLevel* out) noexcept;

}  // namespace ca::simd
