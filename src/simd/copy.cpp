#include "simd/copy.hpp"

#include <atomic>
#include <cstring>

#include "simd/copy_ops.hpp"

namespace ca::simd {

namespace {

/// Plain std::atomic: telemetry accumulation, never a synchronization
/// edge, and must not become a CA_RACE schedule point.
std::atomic<std::uint64_t> g_nt_bytes{0};

const CopyOps* ops_for(IsaLevel level) noexcept {
  // Clamp as gemm_tile() does: never hand out NT kernels the CPU cannot
  // run, whatever level a caller (or the nt_bytes_for model) asks about.
  const IsaLevel cap = max_supported_level();
  if (cap < level) level = cap;
  if (level >= IsaLevel::kAvx512) {
    if (const CopyOps* ops = copy_ops_avx512()) return ops;
  }
  if (level >= IsaLevel::kAvx2) {
    if (const CopyOps* ops = copy_ops_avx2()) return ops;
  }
  return nullptr;
}

}  // namespace

std::size_t copy_bytes(void* dst, const void* src, std::size_t n,
                       CopyHint hint) {
  if (n == 0) return 0;
  if (hint == CopyHint::kWriteback && n >= kNtThreshold) {
    if (const CopyOps* ops = ops_for(active_level())) {
      const std::size_t streamed = ops->copy_nt(dst, src, n);
      g_nt_bytes.fetch_add(streamed, std::memory_order_relaxed);
      return streamed;
    }
  }
  std::memcpy(dst, src, n);
  return 0;
}

std::size_t fill_zero(void* dst, std::size_t n, CopyHint hint) {
  if (n == 0) return 0;
  if (hint == CopyHint::kWriteback && n >= kNtThreshold) {
    if (const CopyOps* ops = ops_for(active_level())) {
      const std::size_t streamed = ops->fill_nt(dst, n);
      g_nt_bytes.fetch_add(streamed, std::memory_order_relaxed);
      return streamed;
    }
  }
  std::memset(dst, 0, n);
  return 0;
}

std::size_t nt_bytes_for(std::size_t n, CopyHint hint,
                         IsaLevel level) noexcept {
  if (hint != CopyHint::kWriteback || n < kNtThreshold) return 0;
  return ops_for(level) != nullptr ? n : 0;
}

std::uint64_t nt_store_bytes() noexcept {
  return g_nt_bytes.load(std::memory_order_relaxed);
}

}  // namespace ca::simd
