// Dispatched bulk copy / fill kernels with an explicit non-temporal path.
//
// The paper calls non-temporal stores "crucial for best performance" for
// NVRAM-bound writes (PAPER.md SV-d) and the bandwidth model already
// charges the NT curve for them; this family makes the real copy path
// earn that treatment.  Two regimes:
//
//   temporal   std::memcpy / std::memset.  On ERMS hardware glibc lowers
//              this to `rep movsb`, which is the right choice when the
//              destination is about to be read (the cache lines are wanted).
//   writeback  AVX2/AVX-512 unaligned loads + _mm*_stream NT stores with a
//              trailing sfence.  Used for large copies whose destination
//              will NOT be re-read soon (CopyEngine writebacks toward the
//              slow device) so the streamed lines bypass the cache instead
//              of evicting the working set.
//
// The NT path engages only when the caller passes CopyHint::kWriteback,
// the size clears kNtThreshold (below it the sfence + alignment overhead
// beats any bypass win), and the active dispatch level has NT kernels.
// CA_ISA=scalar therefore degrades every call to plain memcpy/memset.
//
// Callers outside src/simd must keep funneling through util::copy_bytes /
// util::fill_zero (race-hook instrumented); ca_lint enforces both the
// byte-copy route and the intrinsics confinement to this directory.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/isa.hpp"

namespace ca::simd {

/// What the destination's near future looks like.
enum class CopyHint {
  kTemporal,   ///< destination will be read soon; keep lines in cache
  kWriteback,  ///< destination is cold (slow-tier writeback); stream past
};

/// Minimum size for the NT path.  Below this the cache lines displaced by
/// a temporal copy are cheaper than the mandatory sfence and the loss of
/// ERMS's small-copy fast path.
inline constexpr std::size_t kNtThreshold = std::size_t{256} * 1024;

/// Copy `n` non-overlapping bytes.  Returns the number of bytes actually
/// issued as NT stores (0 on the temporal path), which also accrues to the
/// process-wide nt_store_bytes() counter.
std::size_t copy_bytes(void* dst, const void* src, std::size_t n,
                       CopyHint hint = CopyHint::kTemporal);

/// Zero `n` bytes.  Same NT contract as copy_bytes.
std::size_t fill_zero(void* dst, std::size_t n,
                      CopyHint hint = CopyHint::kTemporal);

/// Deterministic model of the NT byte count a copy/fill of `n` bytes under
/// `hint` at `level` would stream: `n` when the NT path engages, else 0.
/// (The real kernels stream slightly less -- the unaligned head and tail
/// go through memcpy -- but the model must not depend on pointer values,
/// so CopyEngine's per-device accounting stays reproducible.)
std::size_t nt_bytes_for(std::size_t n, CopyHint hint,
                         IsaLevel level) noexcept;

/// Process-wide count of bytes actually issued as NT stores.  Telemetry
/// only (relaxed accumulation); monotone non-decreasing.
std::uint64_t nt_store_bytes() noexcept;

}  // namespace ca::simd
