// AVX2 non-temporal copy/fill: align the destination to 32 bytes with a
// memcpy head, stream the body with _mm256_stream_si256 (unrolled 4x = one
// 128-byte burst per iteration, matching the write-combining buffer), and
// finish the tail with memcpy.  The sfence makes the streamed stores
// visible before any subsequent release operation publishes the buffer.
#include "simd/copy_ops.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace ca::simd {

namespace {

constexpr std::size_t kVec = 32;  // one ymm store

std::size_t copy_nt(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);

  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) & (kVec - 1);
  std::size_t head = mis != 0 ? kVec - mis : 0;
  if (head > n) head = n;
  if (head != 0) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    n -= head;
  }

  const std::size_t body = n & ~(std::size_t{4} * kVec - 1);
  std::size_t off = 0;
  for (; off < body; off += 4 * kVec) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + off));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + off + kVec));
    const __m256i v2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + off + 2 * kVec));
    const __m256i v3 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + off + 3 * kVec));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off), v0);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off + kVec), v1);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off + 2 * kVec), v2);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off + 3 * kVec), v3);
  }
  std::size_t streamed = body;
  for (; off + kVec <= n; off += kVec) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + off));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off), v);
    streamed += kVec;
  }
  if (off < n) std::memcpy(d + off, s + off, n - off);
  _mm_sfence();
  return streamed;
}

std::size_t fill_nt(void* dst, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);

  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) & (kVec - 1);
  std::size_t head = mis != 0 ? kVec - mis : 0;
  if (head > n) head = n;
  if (head != 0) {
    std::memset(d, 0, head);
    d += head;
    n -= head;
  }

  const __m256i zero = _mm256_setzero_si256();
  std::size_t off = 0;
  std::size_t streamed = 0;
  for (; off + kVec <= n; off += kVec) {
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + off), zero);
    streamed += kVec;
  }
  if (off < n) std::memset(d + off, 0, n - off);
  _mm_sfence();
  return streamed;
}

constexpr CopyOps kOps{&copy_nt, &fill_nt};

}  // namespace

const CopyOps* copy_ops_avx2() noexcept { return &kOps; }

}  // namespace ca::simd

#else  // !__AVX2__

namespace ca::simd {
const CopyOps* copy_ops_avx2() noexcept { return nullptr; }
}  // namespace ca::simd

#endif
