#include "simd/isa.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/copy_ops.hpp"
#include "simd/gemm_kernel.hpp"

namespace ca::simd {

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

/// -1 = unresolved; otherwise the cached IsaLevel.  Plain std::atomic on
/// purpose: the level is config state, not data-plane synchronization,
/// and must not become a schedule point under the CA_RACE shims.
std::atomic<int> g_level{-1};

IsaLevel resolve_initial_level() noexcept {
  IsaLevel level = max_supported_level();
  if (const char* env = std::getenv("CA_ISA")) {
    IsaLevel want = level;
    if (parse_level(env, &want) && want < level) level = want;
  }
  return level;
}

}  // namespace

const char* level_name(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

IsaLevel max_supported_level() noexcept {
  // A level is usable only when the CPU reports it AND this binary carries
  // its kernels (the CMake ISA-flag probe can fail on old toolchains, in
  // which case the providers return nullptr).
  if (cpu_has_avx512() && gemm_tile_avx512() != nullptr &&
      copy_ops_avx512() != nullptr) {
    return IsaLevel::kAvx512;
  }
  if (cpu_has_avx2() && gemm_tile_avx2() != nullptr &&
      copy_ops_avx2() != nullptr) {
    return IsaLevel::kAvx2;
  }
  return IsaLevel::kScalar;
}

IsaLevel active_level() noexcept {
  const int cached = g_level.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<IsaLevel>(cached);
  const IsaLevel resolved = resolve_initial_level();
  int expected = -1;
  if (g_level.compare_exchange_strong(expected, static_cast<int>(resolved),
                                      std::memory_order_acq_rel)) {
    return resolved;
  }
  return static_cast<IsaLevel>(expected);  // another thread resolved first
}

bool set_level(IsaLevel want) noexcept {
  const IsaLevel cap = max_supported_level();
  const IsaLevel effective = want < cap ? want : cap;
  g_level.store(static_cast<int>(effective), std::memory_order_release);
  return effective == want;
}

bool parse_level(const char* text, IsaLevel* out) noexcept {
  if (text == nullptr || out == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = IsaLevel::kScalar;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = IsaLevel::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = IsaLevel::kAvx512;
  } else if (std::strcmp(text, "native") == 0) {
    *out = max_supported_level();
  } else {
    return false;
  }
  return true;
}

const GemmTile& gemm_tile(IsaLevel level) noexcept {
  // Clamp first: a provider can be compiled into the binary (the build
  // probe passed) on a CPU that cannot run it, and callers may pass any
  // level -- the returned kernel must always be executable here.
  const IsaLevel cap = max_supported_level();
  if (cap < level) level = cap;
  if (level >= IsaLevel::kAvx512) {
    if (const GemmTile* t = gemm_tile_avx512()) return *t;
  }
  if (level >= IsaLevel::kAvx2) {
    if (const GemmTile* t = gemm_tile_avx2()) return *t;
  }
  return *gemm_tile_scalar();
}

}  // namespace ca::simd
