// Scalar baseline tile: 4 x 8, the shape that fits the 16-register SSE
// budget the portable build auto-vectorizes against.  This is the seed
// micro-kernel verbatim -- CA_ISA=scalar must stay bitwise identical to
// the pre-dispatch GEMM, which the kparity suite asserts.
#include "simd/gemm_kernel.hpp"

namespace ca::simd {

namespace {

constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

/// The accumulator loop is branch-free over the full tile (panels are
/// zero-padded); only the write-back respects the mr x nr fringe.  Plain C
/// on purpose: with the fixed tile bounds the compiler fully unrolls and
/// vectorizes the j loop.
void micro_kernel(std::size_t kc, const float* pa, const float* pb,
                  float alpha, float beta, bool first_pc, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = pa + p * kMR;
    const float* bp = pb + p * kNR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float av = ap[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    if (!first_pc) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * acc[i][j];
    } else if (beta == 0.0f) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = alpha * acc[i][j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = alpha * acc[i][j] + beta * crow[j];
      }
    }
  }
}

constexpr GemmTile kTile{kMR, kNR, &micro_kernel};

}  // namespace

const GemmTile* gemm_tile_scalar() noexcept { return &kTile; }

}  // namespace ca::simd
