// Simulator of Intel's "memory mode" (2LM): DRAM as a direct-mapped,
// block-granularity, hardware-managed cache in front of NVRAM (paper §IV-A
// and Hildebrand et al. [4]).
//
// The workload runs against a single NVRAM-backed heap; every CPU access is
// filtered through this model.  The model captures the properties the paper
// blames for 2LM's inefficiency:
//   * cache-block-granularity metadata: every miss moves a whole block,
//     so sparse or short accesses suffer write amplification;
//   * write-allocate: even a write miss first fills the block from NVRAM;
//   * dirty evictions: conflict misses on dirty blocks cost an NVRAM write
//     at cache-block granularity -- the "haphazard" low-bandwidth NVRAM
//     traffic of §V-b (modeled with an efficiency factor < 1 relative to
//     the sequential bandwidth the CachedArrays copy engine achieves);
//   * no semantic insight: freed memory stays dirty in the cache, so the
//     hardware must conservatively write garbage back.
//
// Hit/clean-miss/dirty-miss statistics feed Fig. 4.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/platform.hpp"
#include "telemetry/counters.hpp"

namespace ca::twolm {

struct CacheConfig {
  std::size_t capacity = 0;      ///< DRAM cache size in bytes
  std::size_t block_size = 64;   ///< cache block (line) size, power of two
  std::size_t kernel_threads = 8;  ///< parallelism of the accessing kernels

  /// Associativity.  Intel's 2LM is direct-mapped (1); higher values model
  /// the "what if the DRAM cache had ways" ablation.  LRU replacement
  /// within a set.  Power of two, and capacity/block_size must be a
  /// multiple of it.
  std::size_t ways = 1;

  /// Cache-driven NVRAM traffic is scattered (conflict-miss order, block
  /// granularity) and reaches only a fraction of the device's sequential
  /// bandwidth.  Izraelevitz et al. measure small random Optane accesses at
  /// well under half of sequential throughput.
  double nvram_read_efficiency = 0.42;
  double nvram_write_efficiency = 0.39;
};

struct CacheStats {
  std::uint64_t accesses = 0;  ///< block-level accesses
  std::uint64_t hits = 0;
  std::uint64_t clean_misses = 0;
  std::uint64_t dirty_misses = 0;

  [[nodiscard]] std::uint64_t misses() const noexcept {
    return clean_misses + dirty_misses;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
  [[nodiscard]] double clean_miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(clean_misses) /
                               static_cast<double>(accesses);
  }
  [[nodiscard]] double dirty_miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(dirty_misses) /
                               static_cast<double>(accesses);
  }
};

class DirectMappedCache {
 public:
  /// `platform` supplies the DRAM and NVRAM timing; traffic is recorded to
  /// `counters` against `fast` (DRAM) and `slow` (NVRAM).
  DirectMappedCache(const CacheConfig& config, const sim::Platform& platform,
                    telemetry::TrafficCounters& counters,
                    sim::DeviceId fast = sim::kFast,
                    sim::DeviceId slow = sim::kSlow);

  /// Model a CPU access to the physical range [addr, addr+bytes) of the
  /// NVRAM-backed address space.  Records traffic and returns the modeled
  /// stall seconds (the caller charges them to its clock).
  double access(std::size_t addr, std::size_t bytes, bool write);

  /// Invalidate all blocks (machine reboot between experiments).
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_sets() const noexcept {
    return lines_.size() / config_.ways;
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< last-touch stamp for within-set LRU
    bool valid = false;
    bool dirty = false;
  };

  /// Touch one block; updates stats fields passed by reference.
  void access_block(std::size_t block, bool write, std::uint64_t& hits,
                    std::uint64_t& clean, std::uint64_t& dirty);

  CacheConfig config_;
  const sim::Platform& platform_;
  telemetry::TrafficCounters& counters_;
  sim::DeviceId fast_;
  sim::DeviceId slow_;
  std::vector<Line> lines_;  ///< num_sets x ways, set-major
  std::uint64_t tick_ = 0;

  // Cached per-access bandwidth figures (constant per configuration).
  double dram_bw_;
  double nvram_fill_bw_;
  double nvram_writeback_bw_;

  CacheStats stats_;
};

}  // namespace ca::twolm
