#include "twolm/direct_mapped_cache.hpp"

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::twolm {

DirectMappedCache::DirectMappedCache(const CacheConfig& config,
                                     const sim::Platform& platform,
                                     telemetry::TrafficCounters& counters,
                                     sim::DeviceId fast, sim::DeviceId slow)
    : config_(config),
      platform_(platform),
      counters_(counters),
      fast_(fast),
      slow_(slow) {
  CA_CHECK(util::is_pow2(config_.block_size), "block size must be 2^k");
  CA_CHECK(config_.capacity >= config_.block_size,
           "cache must hold at least one block");
  CA_CHECK(config_.ways >= 1 && util::is_pow2(config_.ways),
           "associativity must be a power of two");
  const std::size_t blocks = config_.capacity / config_.block_size;
  CA_CHECK(blocks % config_.ways == 0,
           "capacity/block_size must be a multiple of the associativity");
  lines_.resize(blocks);

  const std::size_t t = config_.kernel_threads;
  const auto& dram = platform_.spec(fast_);
  const auto& nvram = platform_.spec(slow_);
  // DRAM side of hits, fills and writeback reads.
  dram_bw_ = std::min(dram.read_bw.at(t), dram.write_bw.at(t));
  // NVRAM fills and writebacks run at block granularity in conflict-miss
  // order: a fraction of sequential bandwidth.
  nvram_fill_bw_ = nvram.read_bw.at(t) * config_.nvram_read_efficiency;
  // Writebacks drain through the write-pending queue (streaming stores),
  // but in conflict-miss order rather than the copy engine's shaped runs.
  nvram_writeback_bw_ =
      nvram.write_bw_nt.at(t) * config_.nvram_write_efficiency;
}

void DirectMappedCache::access_block(std::size_t block, bool write,
                                     std::uint64_t& hits,
                                     std::uint64_t& clean,
                                     std::uint64_t& dirty) {
  const std::size_t nsets = num_sets();
  const std::size_t set = block % nsets;
  const std::uint64_t tag = block / nsets;
  Line* base = lines_.data() + set * config_.ways;

  Line* hit = nullptr;
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      hit = &line;
      break;
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  Line* line = hit;
  if (line == nullptr) {
    if (victim->valid && victim->dirty) {
      ++dirty;
    } else {
      ++clean;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = false;
    line = victim;
  } else {
    ++hits;
  }
  if (write) line->dirty = true;
  line->lru = ++tick_;
}

double DirectMappedCache::access(std::size_t addr, std::size_t bytes,
                                 bool write) {
  if (bytes == 0) return 0.0;
  const std::size_t bs = config_.block_size;
  const std::size_t first = addr / bs;
  const std::size_t last = (addr + bytes - 1) / bs;

  std::uint64_t hits = 0;
  std::uint64_t clean = 0;
  std::uint64_t dirty = 0;
  for (std::size_t block = first; block <= last; ++block) {
    access_block(block, write, hits, clean, dirty);
  }

  const std::uint64_t blocks = last - first + 1;
  const std::uint64_t misses = clean + dirty;
  stats_.accesses += blocks;
  stats_.hits += hits;
  stats_.clean_misses += clean;
  stats_.dirty_misses += dirty;

  // Traffic.  Every block-level access touches DRAM (the cache).  Misses
  // fill from NVRAM (write-allocate: reads *and* writes fill).  Dirty
  // victims are read from DRAM and written back to NVRAM.
  const std::uint64_t access_bytes = blocks * bs;
  const std::uint64_t fill_bytes = misses * bs;
  const std::uint64_t wb_bytes = dirty * bs;

  if (write) {
    counters_.record_write(fast_, access_bytes);
  } else {
    counters_.record_read(fast_, access_bytes);
  }
  if (fill_bytes > 0) {
    counters_.record_read(slow_, fill_bytes);
    counters_.record_write(fast_, fill_bytes);
  }
  if (wb_bytes > 0) {
    counters_.record_read(fast_, wb_bytes);
    counters_.record_write(slow_, wb_bytes);
  }

  return static_cast<double>(access_bytes) / dram_bw_ +
         static_cast<double>(fill_bytes) *
             (1.0 / nvram_fill_bw_ + 1.0 / dram_bw_) +
         static_cast<double>(wb_bytes) *
             (1.0 / nvram_writeback_bw_ + 1.0 / dram_bw_);
}

void DirectMappedCache::flush() {
  for (auto& line : lines_) line = Line{};
}

}  // namespace ca::twolm
