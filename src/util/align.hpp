// Alignment and power-of-two arithmetic used throughout the allocators.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ca::util {

/// True iff `x` is a power of two (zero is not).
constexpr bool is_pow2(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Round `x` up to the next multiple of `align` (align must be a power of 2).
constexpr std::size_t align_up(std::size_t x, std::size_t align) noexcept {
  return (x + align - 1) & ~(align - 1);
}

/// Round `x` down to the previous multiple of `align` (power of 2).
constexpr std::size_t align_down(std::size_t x, std::size_t align) noexcept {
  return x & ~(align - 1);
}

/// True iff `x` is a multiple of `align` (power of 2).
constexpr bool is_aligned(std::size_t x, std::size_t align) noexcept {
  return (x & (align - 1)) == 0;
}

/// True iff the pointer is aligned to `align` bytes.
inline bool is_aligned(const void* p, std::size_t align) noexcept {
  return is_aligned(reinterpret_cast<std::uintptr_t>(p), align);
}

/// Integer ceiling division.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

// Byte-size literals.  The simulated platform is scaled 1:1000 against the
// paper's machine, so "GB" quantities in the paper map to MiB here.
constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * KiB;
constexpr std::size_t GiB = 1024 * MiB;

}  // namespace ca::util
