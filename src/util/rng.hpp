// Deterministic pseudo-random number generation.
//
// Every stochastic component of the repository (workload input data,
// property-based tests, synthetic traces) draws from this generator so that
// all experiments are exactly reproducible from a seed.  xoshiro256** is
// used: it is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ca::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ULL;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBULL;
      s = t ^ (t >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal variate (Box-Muller; one value per call, no caching so
  /// the stream stays position-independent for tests).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ca::util
