// Fixed-size worker pool used by the copy engine.
//
// The paper's data mover is "highly multi-threaded, specifically targeting
// large memory sizes" (SV-b).  Real parallel memcpy happens through this
// pool; the *simulated* bandwidth effect of parallelism is modeled
// separately in sim::BandwidthModel so results do not depend on host core
// count.
//
// All synchronization goes through the ca::sync shims (race/sync.hpp): in
// CA_RACE builds every queue operation is a vector-clock event and a
// deterministic schedule point, and the workers are adopted into the
// active schedule exploration at spawn.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "race/sync.hpp"
#include "util/thread_annotations.hpp"

namespace ca::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task. Tasks must not throw; a throwing task terminates.
  void submit(std::function<void()> task) CA_EXCLUDES(mu_);

  /// Run `fn(begin, end)` over a partition of [0, n), blocking until all of
  /// [0, n) is covered.  Work is distributed through ONE shared task state:
  /// workers (and the calling thread, which participates) pull index ranges
  /// from an atomic cursor, so the queue mutex is touched O(workers) times
  /// per call instead of once per chunk.  Runs inline when n is small or
  /// the pool has a single worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Block until the task queue is empty and all workers are idle.
  void wait_idle() CA_EXCLUDES(mu_);

 private:
  void worker_loop() CA_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  std::vector<sync::spawn_token> worker_tokens_;  ///< parallel to workers_
  sync::mutex mu_;
  std::queue<std::function<void()>> tasks_ CA_GUARDED_BY(mu_);
  sync::condition_variable cv_task_;
  sync::condition_variable cv_idle_;
  std::size_t active_ CA_GUARDED_BY(mu_) = 0;
  bool stop_ CA_GUARDED_BY(mu_) = false;
};

}  // namespace ca::util
