// Fixed-size worker pool used by the copy engine.
//
// The paper's data mover is "highly multi-threaded, specifically targeting
// large memory sizes" (SV-b).  Real parallel memcpy happens through this
// pool; the *simulated* bandwidth effect of parallelism is modeled
// separately in sim::BandwidthModel so results do not depend on host core
// count.
//
// All synchronization goes through the ca::sync shims (race/sync.hpp): in
// CA_RACE builds every queue operation is a vector-clock event and a
// deterministic schedule point, and the workers are adopted into the
// active schedule exploration at spawn.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "race/sync.hpp"
#include "util/cache_align.hpp"
#include "util/thread_annotations.hpp"

namespace ca::util {

class ThreadPool {
 public:
  /// Ranges at or below this many elements run inline on the caller: for
  /// tiny kernels (a few KiB of floats) the pool wakeup costs more than the
  /// loop itself.  Callers whose per-element work is heavier than "a few
  /// arithmetic ops" pass a smaller min_grain (see grain_for).
  static constexpr std::size_t kDefaultMinGrain = 4096;

  /// Creates `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task. Tasks must not throw; a throwing task terminates.
  void submit(std::function<void()> task) CA_EXCLUDES(mu_);

  /// Run `fn(begin, end)` over a partition of [0, n), blocking until all of
  /// [0, n) is covered.  Work is distributed through ONE shared task state:
  /// workers (and the calling thread, which participates) pull index ranges
  /// from an atomic cursor, so the queue mutex is touched O(workers) times
  /// per call instead of once per chunk.  Runs inline on the caller -- no
  /// task is enqueued, no worker wakes -- when n <= min_grain or the pool
  /// has a single worker; when it does go wide, no pulled range is smaller
  /// than min_grain.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_grain = kDefaultMinGrain);

  /// 2D variant: run `fn(y0, y1, x0, x1)` over a tiling of
  /// [0, ny) x [0, nx).  The grain heuristic counts *elements* (ny * nx):
  /// small tensors run inline as a single fn(0, ny, 0, nx) call; large ones
  /// split rows first (keeping inner-x contiguity for vectorized kernels)
  /// and split columns only when there are too few rows to feed the pool.
  void parallel_for_2d(
      std::size_t ny, std::size_t nx,
      const std::function<void(std::size_t, std::size_t, std::size_t,
                               std::size_t)>& fn,
      std::size_t min_grain = kDefaultMinGrain);

  /// min_grain scaled to per-element cost: a parallel_for whose elements
  /// each do `work_per_item` element-ops of real work should flip to the
  /// pool once n * work_per_item exceeds kDefaultMinGrain.
  [[nodiscard]] static constexpr std::size_t grain_for(
      std::size_t work_per_item) noexcept {
    return work_per_item == 0
               ? kDefaultMinGrain
               : std::max<std::size_t>(1, kDefaultMinGrain / work_per_item);
  }

  /// Total tasks ever enqueued (submit calls), including parallel_for
  /// helpers.  Observability for the grain heuristic: a parallel_for below
  /// min_grain must leave this unchanged.
  [[nodiscard]] std::uint64_t tasks_enqueued() const noexcept {
    return enqueued_.load(std::memory_order_relaxed);
  }

  /// Block until the task queue is empty and all workers are idle.
  void wait_idle() CA_EXCLUDES(mu_);

 private:
  void worker_loop() CA_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  std::vector<sync::spawn_token> worker_tokens_;  ///< parallel to workers_
  // The enqueue counter is bumped by every submitter while workers hammer
  // the queue mutex next to it; keep each on its own cache line so the
  // telemetry counter never steals the lock word's line.
  alignas(kCacheLineSize) sync::atomic<std::uint64_t> enqueued_{0};
  alignas(kCacheLineSize) sync::mutex mu_
      CA_LEAF{CA_LOCK_CLASS("util::ThreadPool::mu_")};
  std::queue<std::function<void()>> tasks_ CA_GUARDED_BY(mu_);
  sync::condition_variable cv_task_;
  sync::condition_variable cv_idle_;
  std::size_t active_ CA_GUARDED_BY(mu_) = 0;
  bool stop_ CA_GUARDED_BY(mu_) = false;
};

}  // namespace ca::util
