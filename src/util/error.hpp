// Error handling primitives for the CachedArrays runtime.
//
// We follow the C++ Core Guidelines: exceptions for errors that the caller
// cannot reasonably be expected to handle inline (E.2), assertions for
// programming errors (I.6).  Allocation *failure* inside a memory tier is
// not exceptional for this library -- the policy layer routinely probes the
// fast tier and falls back -- so allocation APIs return optional-like
// results instead of throwing.
#pragma once

#include <stdexcept>
#include <string>

namespace ca {

/// Base class for all exceptions thrown by the CachedArrays runtime.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition or invariant of the runtime was violated by the caller.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// The runtime's own internal state is inconsistent (a bug in the library).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A memory tier could not satisfy a request that the caller declared
/// mandatory (e.g. a forced eviction still failed to make room).
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace ca

/// Always-on invariant check (active in release builds as well: the cost is
/// negligible next to the memory traffic this library manages, and silent
/// corruption of tiering metadata is far worse than an abort).
#define CA_CHECK(expr, msg)                                            \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::ca::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                  \
  } while (0)
