// Small formatting helpers for telemetry output and bench tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ca::util {

/// "1.50 GiB", "512.00 MiB", "17 B" -- human readable byte counts.
std::string format_bytes(std::size_t bytes);

/// Fixed-point with `digits` decimals, e.g. format_fixed(3.14159, 2) ==
/// "3.14".
std::string format_fixed(double value, int digits);

/// Render rows as an aligned plain-text table. The first row is treated as
/// the header and underlined.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

}  // namespace ca::util
