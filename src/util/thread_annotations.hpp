// Clang thread-safety annotations (no-ops on other compilers).
//
// Annotate mutex-guarded members with CA_GUARDED_BY(mu_) and
// methods that must (not) hold a lock with CA_REQUIRES / CA_EXCLUDES;
// Clang then statically verifies the locking discipline under
// -Wthread-safety (wired as -Werror=thread-safety in the top-level
// CMakeLists.txt).  The annotated types must be capabilities:
// CA_CAPABILITY goes on lockable classes (our race::mutex shim carries it;
// std::mutex is recognized natively by libc++/libstdc++ headers on Clang).
//
// docs/CONCURRENCY.md keeps the human-readable map of which lock guards
// what; the annotations keep it honest.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CA_TSA_HAS(x) __has_attribute(x)
#else
#define CA_TSA_HAS(x) 0
#endif

#if CA_TSA_HAS(guarded_by)
#define CA_TSA(x) __attribute__((x))
#else
#define CA_TSA(x)
#endif

#define CA_CAPABILITY(name) CA_TSA(capability(name))
#define CA_SCOPED_CAPABILITY CA_TSA(scoped_lockable)
#define CA_GUARDED_BY(mu) CA_TSA(guarded_by(mu))
#define CA_PT_GUARDED_BY(mu) CA_TSA(pt_guarded_by(mu))
#define CA_REQUIRES(...) CA_TSA(requires_capability(__VA_ARGS__))
#define CA_EXCLUDES(...) CA_TSA(locks_excluded(__VA_ARGS__))
#define CA_ACQUIRE(...) CA_TSA(acquire_capability(__VA_ARGS__))
#define CA_RELEASE(...) CA_TSA(release_capability(__VA_ARGS__))
#define CA_TRY_ACQUIRE(...) CA_TSA(try_acquire_capability(__VA_ARGS__))
#define CA_NO_THREAD_SAFETY_ANALYSIS CA_TSA(no_thread_safety_analysis)
