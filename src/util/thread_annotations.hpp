// Clang thread-safety annotations (no-ops on other compilers).
//
// Annotate mutex-guarded members with CA_GUARDED_BY(mu_) and
// methods that must (not) hold a lock with CA_REQUIRES / CA_EXCLUDES;
// Clang then statically verifies the locking discipline under
// -Wthread-safety (wired as -Werror=thread-safety in the top-level
// CMakeLists.txt).  The annotated types must be capabilities:
// CA_CAPABILITY goes on lockable classes (our race::mutex shim carries it;
// std::mutex is recognized natively by libc++/libstdc++ headers on Clang).
//
// docs/CONCURRENCY.md keeps the human-readable map of which lock guards
// what; the annotations keep it honest.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CA_TSA_HAS(x) __has_attribute(x)
#else
#define CA_TSA_HAS(x) 0
#endif

#if CA_TSA_HAS(guarded_by)
#define CA_TSA(x) __attribute__((x))
#else
#define CA_TSA(x)
#endif

#define CA_CAPABILITY(name) CA_TSA(capability(name))
#define CA_SCOPED_CAPABILITY CA_TSA(scoped_lockable)
#define CA_GUARDED_BY(mu) CA_TSA(guarded_by(mu))
#define CA_PT_GUARDED_BY(mu) CA_TSA(pt_guarded_by(mu))
#define CA_REQUIRES(...) CA_TSA(requires_capability(__VA_ARGS__))
#define CA_EXCLUDES(...) CA_TSA(locks_excluded(__VA_ARGS__))
#define CA_ACQUIRE(...) CA_TSA(acquire_capability(__VA_ARGS__))
#define CA_RELEASE(...) CA_TSA(release_capability(__VA_ARGS__))
#define CA_TRY_ACQUIRE(...) CA_TSA(try_acquire_capability(__VA_ARGS__))
#define CA_NO_THREAD_SAFETY_ANALYSIS CA_TSA(no_thread_safety_analysis)

// --- lock-hierarchy annotations (ca::lockdep's static half) -----------------
//
// Declare the sanctioned acquisition order next to each mutex:
//
//   sync::mutex mu_ CA_LEAF{CA_LOCK_CLASS("mem::CopyEngine::mu_")};
//   sync::mutex outer_ CA_ACQUIRED_BEFORE(inner_){...};
//
// CA_ACQUIRED_BEFORE maps to Clang's acquired_before attribute where it
// exists, so the in-source declarations are compiler-checked; CA_LEAF marks
// a mutex under which no other lock may be taken (no Clang analogue — it is
// a documentation token).  Both are parsed, byte-for-byte, by
// tools/lockdep_check.py and cross-checked against docs/lock_hierarchy.json
// and against the runtime-observed graph, so an edge declared in only one
// place fails CI.  Gate per attribute: acquired_before is newer than
// guarded_by and absent in some Clang releases.
#if CA_TSA_HAS(acquired_before)
#define CA_ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#else
#define CA_ACQUIRED_BEFORE(...)
#endif
#define CA_LEAF
