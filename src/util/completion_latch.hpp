// One-shot completion latch: the rendezvous at the end of a fork/join
// region (ThreadPool::parallel_for).
//
// A latch is constructed with the number of work units outstanding;
// producers call arrive(k) as they retire units and a consumer blocks in
// wait() until the count reaches zero.  The fast path is wait-free on both
// sides: arrivals are a single fetch_sub, and a waiter first spins a short
// bounded burst (the common case -- helpers finish within a few hundred
// nanoseconds of the caller) before parking on the condition variable.
// The old rendezvous took the queue mutex on every completion to broadcast;
// here the mutex is touched only when a waiter actually parks, which the
// wakeup-tail measurement in bench/micro_kernels shows is the rare case.
//
// Lost-wakeup freedom (the Dekker-style handshake on the slow path):
//   waiter:  waiters_.fetch_add(1)  [seq_cst]  ... then re-check
//            remaining_ under the lock before sleeping;
//   arriver: remaining_.fetch_sub(n) [seq_cst] ... then read waiters_.
// In the seq_cst total order either the waiter's re-check observes the
// count at zero (it never sleeps) or the arriver observes the registered
// waiter (it takes the lock and notifies).  Notifying under the mutex
// closes the remaining window against a waiter between its predicate check
// and the actual sleep.
//
// Under CA_RACE the shims model every atomic as acq_rel and make every
// operation a schedule point, so the spin loop is skipped (spinning inside
// a deterministic scheduler is at best wasted schedule states) and the
// arriver always locks and notifies -- the classic pattern the explorer can
// exhaustively check.
#pragma once

#include <cstddef>

#include "race/sync.hpp"
#include "util/cache_align.hpp"

namespace ca::util {

namespace detail {
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
}  // namespace detail

class CompletionLatch {
 public:
  /// Spin budget before a waiter parks.  Sized so the spin covers the tail
  /// of a typical parallel_for chunk without burning a timeslice.
  static constexpr int kSpinIters = 4096;

  explicit CompletionLatch(std::size_t count) noexcept : remaining_(count) {}

  CompletionLatch(const CompletionLatch&) = delete;
  CompletionLatch& operator=(const CompletionLatch&) = delete;

  /// Retire `n` work units.  Total arrivals must equal the constructed
  /// count; the call that brings the count to zero releases all waiters.
  void arrive(std::size_t n = 1) {
#if defined(CA_RACE)
    if (remaining_.fetch_sub(n) == n) {
      sync::lock lk(mu_);
      cv_.notify_all();
    }
#else
    if (remaining_.fetch_sub(n, std::memory_order_seq_cst) == n) {
      if (waiters_.load(std::memory_order_seq_cst) != 0) {
        sync::lock lk(mu_);
        cv_.notify_all();
      }
    }
#endif
  }

  /// Block until the count reaches zero.  All arrive() calls
  /// happen-before the matching wait() return.
  void wait() {
    // Before the spin/park: any lock held here blocks helpers for the whole
    // rendezvous, so lockdep flags it regardless of which path we take.
    CA_LOCKDEP_ON_BLOCKING("util::CompletionLatch::wait");
#if defined(CA_RACE)
    sync::lock lk(mu_);
    cv_.wait(lk, [&] { return remaining_.load() == 0; });
#else
    for (int i = 0; i < kSpinIters; ++i) {
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      detail::cpu_relax();
    }
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      sync::lock lk(mu_);
      cv_.wait(lk, [&] {
        return remaining_.load(std::memory_order_seq_cst) == 0;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
#endif
  }

  /// Non-blocking probe (telemetry / tests only).
  [[nodiscard]] bool done() const {
    return remaining_.load(std::memory_order_acquire) == 0;
  }

 private:
  // The arrival word is hammered by every helper's fetch_sub while the
  // waiter spins on it; the waiter-registration word and the park-path
  // mutex/cv are touched on different cadences.  Each hot word gets its
  // own cache line so an arrival never invalidates the line a registering
  // waiter is writing (and vice versa).
  alignas(kCacheLineSize) sync::atomic<std::size_t> remaining_;
  alignas(kCacheLineSize) sync::atomic<std::size_t> waiters_{0};
  alignas(kCacheLineSize) sync::mutex mu_
      CA_LEAF{CA_LOCK_CLASS("util::CompletionLatch::mu_")};
  sync::condition_variable cv_;
};

}  // namespace ca::util
