// A minimal intrusive doubly-linked list.
//
// The policy layer keeps objects on LRU / eviction-priority queues whose
// membership changes on every kernel; an intrusive list gives O(1)
// splice/remove with zero allocation, which matters because hint processing
// sits on the critical path of every kernel launch.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace ca::util {

/// Embed one of these per list a type participates in.
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  [[nodiscard]] bool linked() const noexcept { return prev != nullptr; }
};

/// Intrusive list over T, where `HookMember` is a pointer-to-member to the
/// ListHook inside T.  The list does not own its elements.
template <typename T, ListHook T::* HookMember>
class IntrusiveList {
 public:
  IntrusiveList() noexcept { sentinel_.prev = sentinel_.next = &sentinel_; }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  [[nodiscard]] bool empty() const noexcept {
    return sentinel_.next == &sentinel_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Insert at the front (most-recently-used end by convention).
  void push_front(T& item) {
    ListHook& h = item.*HookMember;
    CA_CHECK(!h.linked(), "element already on a list");
    insert_after(&sentinel_, &h);
    ++size_;
  }

  /// Insert at the back (least-recently-used / next-victim end).
  void push_back(T& item) {
    ListHook& h = item.*HookMember;
    CA_CHECK(!h.linked(), "element already on a list");
    insert_after(sentinel_.prev, &h);
    ++size_;
  }

  /// Remove a specific element.  O(1).
  void erase(T& item) noexcept {
    ListHook& h = item.*HookMember;
    if (!h.linked()) return;
    h.prev->next = h.next;
    h.next->prev = h.prev;
    h.prev = h.next = nullptr;
    --size_;
  }

  /// True iff `item` is currently on *some* list (hooks are per-list, so in
  /// practice: this list).
  [[nodiscard]] static bool contains_hooked(const T& item) noexcept {
    return (item.*HookMember).linked();
  }

  [[nodiscard]] T* front() noexcept {
    return empty() ? nullptr : owner(sentinel_.next);
  }
  [[nodiscard]] T* back() noexcept {
    return empty() ? nullptr : owner(sentinel_.prev);
  }

  /// Pop from the back (evict the coldest element). Returns nullptr if empty.
  T* pop_back() noexcept {
    T* item = back();
    if (item != nullptr) erase(*item);
    return item;
  }

  /// Move an element to the front (touch in an LRU).
  void move_to_front(T& item) {
    erase(item);
    push_front(item);
  }

  /// Move an element to the back (mark as next victim, e.g. on `archive`).
  void move_to_back(T& item) {
    erase(item);
    push_back(item);
  }

  /// Forward iteration, front to back.  It is safe to erase the *current*
  /// element from within the loop body if the caller advances first.
  template <typename Fn>
  void for_each(Fn&& fn) {
    ListHook* h = sentinel_.next;
    while (h != &sentinel_) {
      ListHook* next = h->next;
      fn(*owner(h));
      h = next;
    }
  }

  /// Reverse iteration, back (coldest) to front.  Same erase guarantee.
  template <typename Fn>
  void for_each_reverse(Fn&& fn) {
    ListHook* h = sentinel_.prev;
    while (h != &sentinel_) {
      ListHook* prev = h->prev;
      fn(*owner(h));
      h = prev;
    }
  }

  /// First element from the back satisfying `pred`, or nullptr.
  template <typename Pred>
  [[nodiscard]] T* find_from_back(Pred&& pred) {
    for (ListHook* h = sentinel_.prev; h != &sentinel_; h = h->prev) {
      T* item = owner(h);
      if (pred(*item)) return item;
    }
    return nullptr;
  }

 private:
  static void insert_after(ListHook* pos, ListHook* h) noexcept {
    h->prev = pos;
    h->next = pos->next;
    pos->next->prev = h;
    pos->next = h;
  }

  static T* owner(ListHook* h) noexcept {
    // Recover the owning object from the embedded hook.
    auto offset = reinterpret_cast<std::size_t>(
        &(static_cast<T*>(nullptr)->*HookMember));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace ca::util
