#include "util/threadpool.hpp"

#include <algorithm>
#include <memory>

#include "util/align.hpp"
#include "util/completion_latch.hpp"
#include "util/error.hpp"

namespace ca::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  worker_tokens_.reserve(n);
  // Fence the whole batch with an adoption barrier: under a schedule
  // exploration, construction completes only once every worker has
  // registered, so the explored task set never depends on OS startup
  // timing.
  const std::size_t mark = sync::adoption_mark();
  for (std::size_t i = 0; i < n; ++i) {
    const sync::spawn_token token = sync::before_spawn();
    worker_tokens_.push_back(token);
    workers_.emplace_back([this, token] {
      sync::task_scope scope(token);
      worker_loop();
    });
  }
  sync::await_adoptions(mark + n);
}

ThreadPool::~ThreadPool() {
  {
    sync::lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    sync::join_thread(workers_[i], worker_tokens_[i]);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CA_CHECK(task != nullptr, "null task submitted to thread pool");
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  {
    sync::lock lock(mu_);
    CA_CHECK(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

namespace {

/// Shared state of one parallel_for: a single atomic cursor all
/// participants pull ranges from.  Exactly one heap object per call, no
/// matter how many chunks the range splits into.  Completion is a
/// CompletionLatch counting elements: each pulled range retires with one
/// wait-free arrive(), and only a parked waiter ever touches the mutex
/// (the old scheme locked and broadcast on the final chunk every call).
struct ParallelForState {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  // Every participant hammers the work cursor with fetch_add while the
  // latch's arrival word is hammered right behind it; on separate cache
  // lines a range claim never invalidates the line an arrival is writing.
  CacheLineAligned<sync::atomic<std::size_t>> next{0};
  CompletionLatch latch;  // internally line-separated itself

  explicit ParallelForState(std::size_t n_) : n(n_), latch(n_) {}

  /// Pull ranges until the cursor runs past n.  Safe to call from any
  /// thread, any number of times, including after completion (late-started
  /// helpers see an exhausted cursor and return immediately).
  void work() {
    for (;;) {
      const std::size_t begin =
          next.value.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + grain, n);
      (*fn)(begin, end);
      latch.arrive(end - begin);
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_grain) {
  if (n == 0) return;
  const std::size_t workers = thread_count();
  // Below min_grain the pool wakeup (queue mutex + cv broadcast + worker
  // scheduling latency) costs more than the loop: run inline, enqueue
  // nothing.
  if (workers == 1 || n <= std::max<std::size_t>(1, min_grain)) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<ParallelForState>(n);
  state->fn = &fn;
  // ~4 pulls per participant: coarse enough that the atomic cursor is cold,
  // fine enough that a straggler cannot hold more than 1/4 of a share.  A
  // pulled range never drops below min_grain, so helpers that lose the race
  // for the first ranges are not woken for crumbs.
  state->grain = std::max<std::size_t>(std::max<std::size_t>(1, min_grain),
                                       n / ((workers + 1) * 4));

  // The caller participates, so only workers-many helpers are needed; fewer
  // when the range cannot keep them all busy.
  const std::size_t helpers =
      std::min(workers, util::ceil_div(n, state->grain));
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state] { state->work(); });
  }
  state->work();
  state->latch.wait();
}

void ThreadPool::parallel_for_2d(
    std::size_t ny, std::size_t nx,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& fn,
    std::size_t min_grain) {
  if (ny == 0 || nx == 0) return;
  const std::size_t workers = thread_count();
  const std::size_t elements = ny * nx;
  if (workers == 1 || elements <= std::max<std::size_t>(1, min_grain)) {
    fn(0, ny, 0, nx);  // tiny tensors stay serial: one inline call
    return;
  }

  // Tile rows first (keeps the x dimension contiguous for vectorized inner
  // loops); aim for ~4 tiles per participant so stragglers cannot stall the
  // barrier, but never let a tile shrink below min_grain elements.
  const std::size_t target_tiles = (workers + 1) * 4;
  std::size_t tile_rows = std::max<std::size_t>(
      1, std::min(util::ceil_div(ny, target_tiles),
                  util::ceil_div(std::max<std::size_t>(1, min_grain), nx)));
  // Rounding ceil_div(min_grain, nx) up can exceed min_grain; that's the
  // right direction (coarser, never finer).
  std::size_t row_tiles = util::ceil_div(ny, tile_rows);
  std::size_t tile_cols = nx;
  if (row_tiles < workers && nx >= 2 * std::max<std::size_t>(1, min_grain)) {
    // Too few rows to feed the pool (e.g. a handful of fat image rows):
    // split columns as well until there is roughly one tile per worker.
    tile_cols = std::max(std::max<std::size_t>(1, min_grain),
                         util::ceil_div(nx, util::ceil_div(workers, row_tiles)));
  }
  const std::size_t col_tiles = util::ceil_div(nx, tile_cols);
  const std::size_t tiles = row_tiles * col_tiles;
  if (tiles == 1) {
    fn(0, ny, 0, nx);
    return;
  }

  // Tiles are coarse by construction; hand them to the 1D driver one at a
  // time (min_grain = 1 tile).
  parallel_for(
      tiles,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          const std::size_t ty = t / col_tiles;
          const std::size_t tx = t % col_tiles;
          const std::size_t y0 = ty * tile_rows;
          const std::size_t x0 = tx * tile_cols;
          fn(y0, std::min(y0 + tile_rows, ny), x0,
             std::min(x0 + tile_cols, nx));
        }
      },
      /*min_grain=*/1);
}

void ThreadPool::wait_idle() {
  sync::lock lock(mu_);
  cv_idle_.wait(lock, [this]() CA_REQUIRES(mu_) {
    return tasks_.empty() && active_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::lock lock(mu_);
      cv_task_.wait(lock, [this]() CA_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      sync::lock lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ca::util
