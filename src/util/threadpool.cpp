#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>

#include "util/error.hpp"

namespace ca::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CA_CHECK(task != nullptr, "null task submitted to thread pool");
  {
    std::lock_guard lock(mu_);
    CA_CHECK(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = thread_count();
  if (workers == 1 || n == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t per = n / chunks;
  const std::size_t extra = n % chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = per + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mu);
        done_cv.notify_all();
      }
    });
    begin = end;
  }
  std::unique_lock lock(done_mu);
  done_cv.wait(lock,
               [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ca::util
