// Byte-copy helpers: the only sanctioned way to move raw bytes outside
// src/mem and src/util.
//
// tools/ca_lint.py forbids raw std::memcpy / std::memmove elsewhere in
// src/ so every bulk byte move funnels through a site the race detector
// and future instrumentation can see.  These helpers also record the
// source/destination ranges with the CA_RACE access hooks, so copies made
// far from the CopyEngine still participate in race checking.
#pragma once

#include <cstddef>
#include <cstring>

#include "race/access.hpp"

namespace ca::util {

/// memcpy for non-overlapping ranges.
inline void copy_bytes(void* dst, const void* src, std::size_t bytes,
                       [[maybe_unused]] const char* label = "util::copy_bytes") {
  if (bytes == 0) return;
  CA_RACE_READ(src, bytes, label);
  CA_RACE_WRITE(dst, bytes, label);
  std::memcpy(dst, src, bytes);
}

/// memmove for possibly-overlapping ranges.
inline void move_bytes(void* dst, const void* src, std::size_t bytes,
                       [[maybe_unused]] const char* label = "util::move_bytes") {
  if (bytes == 0) return;
  CA_RACE_READ(src, bytes, label);
  CA_RACE_WRITE(dst, bytes, label);
  std::memmove(dst, src, bytes);
}

}  // namespace ca::util
