// Byte-copy helpers: the only sanctioned way to move raw bytes outside
// src/mem, src/util, and src/simd.
//
// tools/ca_lint.py forbids raw std::memcpy / std::memmove elsewhere in
// src/ so every bulk byte move funnels through a site the race detector
// and future instrumentation can see.  These helpers record the
// source/destination ranges with the CA_RACE access hooks, then hand the
// actual byte movement to the dispatched simd kernels -- callers pick the
// temporal/writeback regime with a CopyHint and stay oblivious to which
// ISA executes underneath (simd/copy.hpp).
#pragma once

#include <cstddef>
#include <cstring>

#include "race/access.hpp"
#include "simd/copy.hpp"

namespace ca::util {

/// Copy non-overlapping ranges.  `hint` selects the temporal or the
/// NT-store writeback regime (simd::CopyHint); returns the number of bytes
/// the dispatched kernel issued as NT stores (0 on the temporal path).
inline std::size_t copy_bytes(
    void* dst, const void* src, std::size_t bytes,
    [[maybe_unused]] const char* label = "util::copy_bytes",
    simd::CopyHint hint = simd::CopyHint::kTemporal) {
  if (bytes == 0) return 0;
  CA_RACE_READ(src, bytes, label);
  CA_RACE_WRITE(dst, bytes, label);
  return simd::copy_bytes(dst, src, bytes, hint);
}

/// Zero a range.  Same NT contract as copy_bytes.
inline std::size_t fill_zero(
    void* dst, std::size_t bytes,
    [[maybe_unused]] const char* label = "util::fill_zero",
    simd::CopyHint hint = simd::CopyHint::kTemporal) {
  if (bytes == 0) return 0;
  CA_RACE_WRITE(dst, bytes, label);
  return simd::fill_zero(dst, bytes, hint);
}

/// memmove for possibly-overlapping ranges.  Overlap rules out NT
/// streaming, so this stays a plain temporal move.
inline void move_bytes(void* dst, const void* src, std::size_t bytes,
                       [[maybe_unused]] const char* label = "util::move_bytes") {
  if (bytes == 0) return;
  CA_RACE_READ(src, bytes, label);
  CA_RACE_WRITE(dst, bytes, label);
  std::memmove(dst, src, bytes);
}

}  // namespace ca::util
