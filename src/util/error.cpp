#include "util/error.hpp"

#include <sstream>

namespace ca::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "CA_CHECK failed: (" << expr << ") at " << file << ":" << line << ": "
     << msg;
  throw InternalError(os.str());
}

}  // namespace ca::detail
