#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ca::util {

double Xoshiro256::normal() noexcept {
  // Box-Muller transform; clamp the uniform away from zero so log() is safe.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ca::util
