// Cache-line placement for hot shared state.
//
// Two logically independent words that land in the same cache line
// false-share: every write by one thread steals the line from every
// reader/writer of the other, and the coherence ping-pong shows up as
// latency on paths that are algorithmically contention-free (the
// parallel_for work cursor vs its completion latch, the CopyEngine
// per-channel busy clocks, the allocator's hot counters next to its free
// lists).  Padding each such word to its own line trades a few bytes for
// eliminating that traffic.
//
// kCacheLineSize is a fixed 64: every x86-64 part this project targets
// uses 64-byte lines, and the standard's
// std::hardware_destructive_interference_size is deliberately avoided --
// GCC emits -Winterference-size against any header use (its value is an
// ABI hazard) and our -Werror builds would trip on it.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace ca::util {

inline constexpr std::size_t kCacheLineSize = 64;

/// Wrap a T so it starts on -- and pads out -- its own cache line.
/// Access the payload through `.value`:
///
///     CacheLineAligned<sync::atomic<std::size_t>> next{0};
///     next.value.fetch_add(1);
///
/// Copyable/movable iff T is (arrays of these are fine for per-channel /
/// per-worker state).
template <typename T>
struct alignas(kCacheLineSize) CacheLineAligned {
  constexpr CacheLineAligned() = default;

  template <typename... Args,
            typename = std::enable_if_t<
                !(sizeof...(Args) == 1 &&
                  (std::is_same_v<std::remove_cvref_t<Args>,
                                  CacheLineAligned> &&
                   ...))>>
  constexpr explicit CacheLineAligned(Args&&... args)
      : value(std::forward<Args>(args)...) {}

  T value{};
};

static_assert(alignof(CacheLineAligned<char>) == kCacheLineSize);
static_assert(sizeof(CacheLineAligned<char>) == kCacheLineSize);

}  // namespace ca::util
