#include "util/format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ca::util {

std::string format_bytes(std::size_t bytes) {
  static constexpr const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t s = 0;
  while (value >= 1024.0 && s + 1 < std::size(suffixes)) {
    value /= 1024.0;
    ++s;
  }
  std::ostringstream os;
  if (s == 0) {
    os << bytes << " B";
  } else {
    os << std::fixed << std::setprecision(2) << value << ' ' << suffixes[s];
  }
  return os.str();
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(rows[0]);
  for (std::size_t c = 0; c < rows[0].size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (std::size_t r = 1; r < rows.size(); ++r) emit(rows[r]);
  return os.str();
}

}  // namespace ca::util
