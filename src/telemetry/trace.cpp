#include "telemetry/trace.hpp"

#include <algorithm>
#include <sstream>

namespace ca::telemetry {

double TimeSeries::max_value() const noexcept {
  double m = 0.0;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

std::vector<TimeSeries::Sample> TimeSeries::downsample(
    std::size_t buckets) const {
  if (samples_.size() <= buckets || buckets == 0) return samples_;
  const double t0 = samples_.front().t;
  const double t1 = samples_.back().t;
  const double span = t1 - t0;
  if (span <= 0.0) return {samples_.back()};

  std::vector<Sample> out;
  out.reserve(buckets);
  std::size_t i = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double hi = t0 + span * static_cast<double>(b + 1) /
                               static_cast<double>(buckets);
    double sum = 0.0;
    std::size_t n = 0;
    double last_t = hi;
    while (i < samples_.size() && (samples_[i].t <= hi || b + 1 == buckets)) {
      sum += samples_[i].value;
      last_t = samples_[i].t;
      ++n;
      ++i;
    }
    if (n > 0) out.push_back({last_t, sum / static_cast<double>(n)});
  }
  return out;
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  os << "t," << name_ << '\n';
  for (const auto& s : samples_) os << s.t << ',' << s.value << '\n';
  return os.str();
}

}  // namespace ca::telemetry
