// Traffic counters -- the software analogue of the hardware performance
// counters the paper reads (uncore IMC counters for DRAM and NVRAM read /
// write traffic).  Every byte that crosses a device interface is recorded
// here, whether it comes from the copy engine, from kernel execution, or
// from the simulated 2LM cache's fills and writebacks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/device.hpp"

namespace ca::telemetry {

struct DeviceTraffic {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return bytes_read + bytes_written;
  }
};

/// Per-device traffic accounting.  Devices are addressed by sim::DeviceId.
class TrafficCounters {
 public:
  static constexpr std::size_t kMaxDevices = 8;

  void record_read(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_read += bytes;
    ++t.read_ops;
  }

  void record_write(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_written += bytes;
    ++t.write_ops;
  }

  [[nodiscard]] const DeviceTraffic& device(sim::DeviceId dev) const {
    return traffic_.at(dev.value);
  }

  /// Difference since a snapshot -- used to report per-iteration traffic.
  [[nodiscard]] DeviceTraffic delta(sim::DeviceId dev,
                                    const DeviceTraffic& snapshot) const {
    const auto& now = traffic_.at(dev.value);
    DeviceTraffic d;
    d.bytes_read = now.bytes_read - snapshot.bytes_read;
    d.bytes_written = now.bytes_written - snapshot.bytes_written;
    d.read_ops = now.read_ops - snapshot.read_ops;
    d.write_ops = now.write_ops - snapshot.write_ops;
    return d;
  }

  void reset() noexcept { traffic_.fill(DeviceTraffic{}); }

 private:
  std::array<DeviceTraffic, kMaxDevices> traffic_{};
};

}  // namespace ca::telemetry
