// Traffic counters -- the software analogue of the hardware performance
// counters the paper reads (uncore IMC counters for DRAM and NVRAM read /
// write traffic).  Every byte that crosses a device interface is recorded
// here, whether it comes from the copy engine, from kernel execution, or
// from the simulated 2LM cache's fills and writebacks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/device.hpp"

namespace ca::telemetry {

struct DeviceTraffic {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return bytes_read + bytes_written;
  }
};

/// Host-side compute-kernel accounting (the "real" DNN backend).  Unlike
/// every other number in telemetry these are *wall* seconds: they describe
/// how fast the host actually ran the GEMM/im2col/elementwise kernels, the
/// roofline denominator the paper's oneDNN stack provides.  They are
/// observability only -- nothing here ever feeds sim::Clock, so simulated
/// results stay host-independent.
struct KernelCounters {
  std::uint64_t gemm_calls = 0;
  double gemm_seconds = 0.0;    ///< wall time inside the blocked GEMM core
  double gemm_flops = 0.0;      ///< 2*m*n*k summed over gemm calls
  std::uint64_t im2col_calls = 0;
  double im2col_seconds = 0.0;  ///< wall time packing conv patches
  std::uint64_t eltwise_calls = 0;
  double eltwise_seconds = 0.0;  ///< wall time in parallel elementwise ops

  /// Achieved arithmetic rate of the GEMM core, in GFLOP/s (0 before the
  /// first timed call).
  [[nodiscard]] double gemm_gflops() const noexcept {
    return gemm_seconds > 0.0 ? gemm_flops / gemm_seconds / 1e9 : 0.0;
  }

  [[nodiscard]] KernelCounters delta(const KernelCounters& snap) const {
    KernelCounters d;
    d.gemm_calls = gemm_calls - snap.gemm_calls;
    d.gemm_seconds = gemm_seconds - snap.gemm_seconds;
    d.gemm_flops = gemm_flops - snap.gemm_flops;
    d.im2col_calls = im2col_calls - snap.im2col_calls;
    d.im2col_seconds = im2col_seconds - snap.im2col_seconds;
    d.eltwise_calls = eltwise_calls - snap.eltwise_calls;
    d.eltwise_seconds = eltwise_seconds - snap.eltwise_seconds;
    return d;
  }
};

/// Per-device traffic accounting.  Devices are addressed by sim::DeviceId.
class TrafficCounters {
 public:
  static constexpr std::size_t kMaxDevices = 8;

  void record_read(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_read += bytes;
    ++t.read_ops;
  }

  void record_write(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_written += bytes;
    ++t.write_ops;
  }

  [[nodiscard]] const DeviceTraffic& device(sim::DeviceId dev) const {
    return traffic_.at(dev.value);
  }

  /// Difference since a snapshot -- used to report per-iteration traffic.
  [[nodiscard]] DeviceTraffic delta(sim::DeviceId dev,
                                    const DeviceTraffic& snapshot) const {
    const auto& now = traffic_.at(dev.value);
    DeviceTraffic d;
    d.bytes_read = now.bytes_read - snapshot.bytes_read;
    d.bytes_written = now.bytes_written - snapshot.bytes_written;
    d.read_ops = now.read_ops - snapshot.read_ops;
    d.write_ops = now.write_ops - snapshot.write_ops;
    return d;
  }

  void reset() noexcept { traffic_.fill(DeviceTraffic{}); }

 private:
  std::array<DeviceTraffic, kMaxDevices> traffic_{};
};

}  // namespace ca::telemetry
