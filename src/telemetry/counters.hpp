// Traffic counters -- the software analogue of the hardware performance
// counters the paper reads (uncore IMC counters for DRAM and NVRAM read /
// write traffic).  Every byte that crosses a device interface is recorded
// here, whether it comes from the copy engine, from kernel execution, or
// from the simulated 2LM cache's fills and writebacks.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "sim/device.hpp"

namespace ca::telemetry {

struct DeviceTraffic {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Subset of bytes_written modeled as non-temporal (streamed) stores:
  /// CopyEngine writebacks and zero-fills that take the simd NT path.  The
  /// paper's NVRAM guidance (§V-d) makes this split worth watching per
  /// device.
  std::uint64_t bytes_written_nt = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return bytes_read + bytes_written;
  }
};

/// Host-side compute-kernel accounting (the "real" DNN backend).  Unlike
/// every other number in telemetry these are *wall* seconds: they describe
/// how fast the host actually ran the GEMM/im2col/elementwise kernels, the
/// roofline denominator the paper's oneDNN stack provides.  They are
/// observability only -- nothing here ever feeds sim::Clock, so simulated
/// results stay host-independent.
struct KernelCounters {
  std::uint64_t gemm_calls = 0;
  double gemm_seconds = 0.0;    ///< wall time inside the blocked GEMM core
  double gemm_flops = 0.0;      ///< 2*m*n*k summed over gemm calls
  std::uint64_t im2col_calls = 0;
  double im2col_seconds = 0.0;  ///< wall time packing conv patches
  std::uint64_t eltwise_calls = 0;
  double eltwise_seconds = 0.0;  ///< wall time in parallel elementwise ops

  /// Achieved arithmetic rate of the GEMM core, in GFLOP/s (0 before the
  /// first timed call).
  [[nodiscard]] double gemm_gflops() const noexcept {
    return gemm_seconds > 0.0 ? gemm_flops / gemm_seconds / 1e9 : 0.0;
  }

  [[nodiscard]] KernelCounters delta(const KernelCounters& snap) const {
    KernelCounters d;
    d.gemm_calls = gemm_calls - snap.gemm_calls;
    d.gemm_seconds = gemm_seconds - snap.gemm_seconds;
    d.gemm_flops = gemm_flops - snap.gemm_flops;
    d.im2col_calls = im2col_calls - snap.im2col_calls;
    d.im2col_seconds = im2col_seconds - snap.im2col_seconds;
    d.eltwise_calls = eltwise_calls - snap.eltwise_calls;
    d.eltwise_seconds = eltwise_seconds - snap.eltwise_seconds;
    return d;
  }
};

/// Heap-allocator telemetry: the binned free-list allocator's hot-path
/// counters (mem::FreeListAllocator::Stats::counters() produces one).
/// All counts are event totals since construction; latency is measured in
/// bench/micro_allocator (wall clocks are banned in src/).
struct AllocatorCounters {
  std::uint64_t total_allocs = 0;
  std::uint64_t total_frees = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t splits = 0;            ///< allocations that split a block
  std::uint64_t coalesces = 0;         ///< neighbour merges inside free()
  std::uint64_t bin_exact_hits = 0;    ///< allocs served from the home bin
  std::uint64_t bin_spill_allocs = 0;  ///< allocs served from a higher bin
  std::size_t free_blocks = 0;
  std::size_t largest_free_block = 0;
  double fragmentation = 0.0;

  /// Fraction of successful allocations the home size-class bin absorbed.
  [[nodiscard]] double exact_hit_rate() const noexcept {
    const std::uint64_t served = bin_exact_hits + bin_spill_allocs;
    return served == 0
               ? 0.0
               : static_cast<double>(bin_exact_hits) /
                     static_cast<double>(served);
  }
};

/// Data-parallel communication accounting (DESIGN.md §3.6).  Counts come
/// from comm::CommEngine (wire bytes, per-algorithm picks); the seconds
/// split comes from dp::Trainer's overlap timeline: of the modeled
/// interconnect occupancy, how much hid behind backward compute
/// (overlapped) and how much extended the step (exposed).  All seconds are
/// simulated -- nothing here reads a wall clock.
struct CommCounters {
  std::uint64_t reductions = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t ring_picks = 0;
  std::uint64_t tree_picks = 0;
  double comm_seconds = 0.0;        ///< modeled collective occupancy, summed
  double exposed_seconds = 0.0;     ///< comm time the step stalled on
  double overlapped_seconds = 0.0;  ///< comm time hidden behind compute

  [[nodiscard]] CommCounters delta(const CommCounters& snap) const {
    CommCounters d;
    d.reductions = reductions - snap.reductions;
    d.bytes_on_wire = bytes_on_wire - snap.bytes_on_wire;
    d.ring_picks = ring_picks - snap.ring_picks;
    d.tree_picks = tree_picks - snap.tree_picks;
    d.comm_seconds = comm_seconds - snap.comm_seconds;
    d.exposed_seconds = exposed_seconds - snap.exposed_seconds;
    d.overlapped_seconds = overlapped_seconds - snap.overlapped_seconds;
    return d;
  }
};

/// Accounting for one kernel op type (e.g. "conv2d_bwd_weights").  Seconds
/// are *simulated* roofline seconds -- max(memory, compute) as charged to
/// sim::Clock -- so the histogram attributes the modeled iteration time.
struct OpStats {
  std::uint64_t calls = 0;
  double seconds = 0.0;
};

/// Per-op-type kernel histogram: which layer family the iteration spent
/// its time in.  Keyed by the launch name the engine passes to
/// execute_args ("conv2d", "dense_bwd_data", "sgd_update", ...).
class OpHistogram {
 public:
  void record(const std::string& name, double seconds) {
    auto& s = ops_[name];
    ++s.calls;
    s.seconds += seconds;
  }

  [[nodiscard]] const std::map<std::string, OpStats>& ops() const noexcept {
    return ops_;
  }

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  /// Difference since a snapshot (ops only ever accumulate); entries whose
  /// delta is zero calls are dropped.
  [[nodiscard]] OpHistogram delta(const OpHistogram& snap) const {
    OpHistogram d;
    for (const auto& [name, now] : ops_) {
      OpStats s = now;
      const auto it = snap.ops_.find(name);
      if (it != snap.ops_.end()) {
        s.calls -= it->second.calls;
        s.seconds -= it->second.seconds;
      }
      if (s.calls != 0) d.ops_.emplace(name, s);
    }
    return d;
  }

  /// The op type with the most accumulated seconds ("" when empty).
  [[nodiscard]] std::pair<std::string, OpStats> slowest() const {
    std::pair<std::string, OpStats> best;
    for (const auto& [name, s] : ops_) {
      if (best.first.empty() || s.seconds > best.second.seconds) {
        best = {name, s};
      }
    }
    return best;
  }

 private:
  std::map<std::string, OpStats> ops_;
};

/// Per-device traffic accounting.  Devices are addressed by sim::DeviceId.
///
/// Thread-safe: the counters are recorded from mover threads (CopyEngine)
/// and from every tenant thread of a shared DataManager, so the storage is
/// lock-free relaxed atomics (pure accounting sums -- no ordering contract)
/// and `device()` returns a plain DeviceTraffic snapshot by value.
class TrafficCounters {
 public:
  static constexpr std::size_t kMaxDevices = 8;

  void record_read(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
    t.read_ops.fetch_add(1, std::memory_order_relaxed);
  }

  void record_write(sim::DeviceId dev, std::uint64_t bytes) {
    auto& t = traffic_.at(dev.value);
    t.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    t.write_ops.fetch_add(1, std::memory_order_relaxed);
  }

  /// Attribute `bytes` of an already-recorded write to the NT-store
  /// regime.  Call after record_write; never increases bytes_written.
  void record_nt_write(sim::DeviceId dev, std::uint64_t bytes) {
    traffic_.at(dev.value).bytes_written_nt.fetch_add(
        bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] DeviceTraffic device(sim::DeviceId dev) const {
    const auto& t = traffic_.at(dev.value);
    DeviceTraffic snap;
    snap.bytes_read = t.bytes_read.load(std::memory_order_relaxed);
    snap.bytes_written = t.bytes_written.load(std::memory_order_relaxed);
    snap.bytes_written_nt =
        t.bytes_written_nt.load(std::memory_order_relaxed);
    snap.read_ops = t.read_ops.load(std::memory_order_relaxed);
    snap.write_ops = t.write_ops.load(std::memory_order_relaxed);
    return snap;
  }

  /// Difference since a snapshot -- used to report per-iteration traffic.
  [[nodiscard]] DeviceTraffic delta(sim::DeviceId dev,
                                    const DeviceTraffic& snapshot) const {
    const DeviceTraffic now = device(dev);
    DeviceTraffic d;
    d.bytes_read = now.bytes_read - snapshot.bytes_read;
    d.bytes_written = now.bytes_written - snapshot.bytes_written;
    d.bytes_written_nt = now.bytes_written_nt - snapshot.bytes_written_nt;
    d.read_ops = now.read_ops - snapshot.read_ops;
    d.write_ops = now.write_ops - snapshot.write_ops;
    return d;
  }

  void reset() noexcept {
    for (auto& t : traffic_) {
      t.bytes_read.store(0, std::memory_order_relaxed);
      t.bytes_written.store(0, std::memory_order_relaxed);
      t.bytes_written_nt.store(0, std::memory_order_relaxed);
      t.read_ops.store(0, std::memory_order_relaxed);
      t.write_ops.store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// Atomic mirror of DeviceTraffic (the snapshot struct stays plain so
  /// existing callers keep value semantics).
  struct AtomicTraffic {
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> bytes_written{0};
    std::atomic<std::uint64_t> bytes_written_nt{0};
    std::atomic<std::uint64_t> read_ops{0};
    std::atomic<std::uint64_t> write_ops{0};
  };

  std::array<AtomicTraffic, kMaxDevices> traffic_{};
};

}  // namespace ca::telemetry
