// Time-series tracing: heap occupancy (Fig. 3) and bus utilization (Fig. 6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ca::telemetry {

/// A (simulated-time, value) sample stream, e.g. resident heap bytes.
class TimeSeries {
 public:
  struct Sample {
    double t;
    double value;
  };

  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(double t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Maximum value over the series (0 when empty).
  [[nodiscard]] double max_value() const noexcept;

  /// Downsample to at most `buckets` points by averaging within equal time
  /// bins; used to print compact figure data.
  [[nodiscard]] std::vector<Sample> downsample(std::size_t buckets) const;

  /// Serialize as "t,value" CSV lines (with header).
  [[nodiscard]] std::string to_csv() const;

  void clear() noexcept { samples_.clear(); }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// Integrates busy intervals of the DRAM bus to produce an *average
/// utilization* over a run: sum(busy time at full bandwidth) / elapsed.
class BusUtilization {
 public:
  /// Record that the bus was driven for `busy_seconds` transferring
  /// `bytes` at an achieved bandwidth of bytes/busy_seconds.
  void record_transfer(double busy_seconds) { busy_ += busy_seconds; }

  /// Average utilization over [0, elapsed]: fraction of wall (simulated)
  /// time the bus was busy.  Clamped to [0, 1].
  [[nodiscard]] double average(double elapsed) const noexcept {
    if (elapsed <= 0.0) return 0.0;
    const double u = busy_ / elapsed;
    return u > 1.0 ? 1.0 : u;
  }

  [[nodiscard]] double busy_seconds() const noexcept { return busy_; }

  void reset() noexcept { busy_ = 0.0; }

 private:
  double busy_ = 0.0;
};

}  // namespace ca::telemetry
