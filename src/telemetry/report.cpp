#include "telemetry/report.hpp"

#include <fstream>

namespace ca::telemetry {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv(rows);
  return static_cast<bool>(f);
}

}  // namespace ca::telemetry
