#include "telemetry/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "simd/copy.hpp"
#include "simd/isa.hpp"

namespace ca::telemetry {

namespace {
std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}
}  // namespace

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv(rows);
  return static_cast<bool>(f);
}

std::string format_kernel_report(const KernelCounters& k) {
  std::string out = "gemm " + std::to_string(k.gemm_calls) + " calls " +
                    fixed(k.gemm_seconds * 1e3, 2) + "ms " +
                    fixed(k.gemm_gflops(), 2) + " GFLOP/s";
  out += " | im2col " + std::to_string(k.im2col_calls) + " calls " +
         fixed(k.im2col_seconds * 1e3, 2) + "ms";
  out += " | eltwise " + std::to_string(k.eltwise_calls) + " calls " +
         fixed(k.eltwise_seconds * 1e3, 2) + "ms";
  return out;
}

std::vector<std::vector<std::string>> kernel_report_rows(
    const KernelCounters& k) {
  return {
      {"gemm_calls", "gemm_seconds", "gemm_gflops", "im2col_calls",
       "im2col_seconds", "eltwise_calls", "eltwise_seconds"},
      {std::to_string(k.gemm_calls), fixed(k.gemm_seconds, 6),
       fixed(k.gemm_gflops(), 3), std::to_string(k.im2col_calls),
       fixed(k.im2col_seconds, 6), std::to_string(k.eltwise_calls),
       fixed(k.eltwise_seconds, 6)},
  };
}

namespace {

/// Ops by descending accumulated seconds (ties: name, for determinism).
std::vector<std::pair<std::string, OpStats>> ops_by_seconds(
    const OpHistogram& h) {
  std::vector<std::pair<std::string, OpStats>> ops(h.ops().begin(),
                                                   h.ops().end());
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    if (a.second.seconds != b.second.seconds) {
      return a.second.seconds > b.second.seconds;
    }
    return a.first < b.first;
  });
  return ops;
}

}  // namespace

std::string format_op_histogram(const OpHistogram& h) {
  if (h.empty()) return "no kernel ops recorded";
  const auto ops = ops_by_seconds(h);
  std::string out = "slowest op " + ops.front().first + " (" +
                    std::to_string(ops.front().second.calls) + " calls, " +
                    fixed(ops.front().second.seconds * 1e3, 2) + "ms)";
  for (std::size_t i = 1; i < ops.size(); ++i) {
    out += "; " + ops[i].first + " " +
           std::to_string(ops[i].second.calls) + " calls " +
           fixed(ops[i].second.seconds * 1e3, 2) + "ms";
  }
  return out;
}

std::vector<std::vector<std::string>> op_histogram_rows(const OpHistogram& h) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"op", "calls", "seconds"});
  for (const auto& [name, s] : ops_by_seconds(h)) {
    rows.push_back({name, std::to_string(s.calls), fixed(s.seconds, 6)});
  }
  return rows;
}

std::string format_allocator_report(const AllocatorCounters& a) {
  return "allocs " + std::to_string(a.total_allocs) + " (" +
         fixed(a.exact_hit_rate() * 100.0, 1) + "% bin-exact) frees " +
         std::to_string(a.total_frees) + " splits " +
         std::to_string(a.splits) + " coalesces " +
         std::to_string(a.coalesces) + " failed " +
         std::to_string(a.failed_allocs) + " frag " +
         fixed(a.fragmentation, 2);
}

std::vector<std::vector<std::string>> allocator_report_rows(
    const AllocatorCounters& a) {
  return {
      {"total_allocs", "total_frees", "failed_allocs", "splits", "coalesces",
       "bin_exact_hits", "bin_spill_allocs", "exact_hit_rate", "free_blocks",
       "largest_free_block", "fragmentation"},
      {std::to_string(a.total_allocs), std::to_string(a.total_frees),
       std::to_string(a.failed_allocs), std::to_string(a.splits),
       std::to_string(a.coalesces), std::to_string(a.bin_exact_hits),
       std::to_string(a.bin_spill_allocs), fixed(a.exact_hit_rate(), 4),
       std::to_string(a.free_blocks), std::to_string(a.largest_free_block),
       fixed(a.fragmentation, 4)},
  };
}

std::string format_simd_report(
    const std::vector<std::pair<std::string, std::uint64_t>>&
        nt_write_bytes) {
  std::string out = "simd level ";
  out += simd::level_name(simd::active_level());
  out += " | nt-writes";
  for (const auto& [name, bytes] : nt_write_bytes) {
    out += " " + name + " " + std::to_string(bytes);
  }
  out += " | streamed " + std::to_string(simd::nt_store_bytes());
  return out;
}

}  // namespace ca::telemetry
