#include "telemetry/report.hpp"

#include <cstdio>
#include <fstream>

namespace ca::telemetry {

namespace {
std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}
}  // namespace

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv(rows);
  return static_cast<bool>(f);
}

std::string format_kernel_report(const KernelCounters& k) {
  std::string out = "gemm " + std::to_string(k.gemm_calls) + " calls " +
                    fixed(k.gemm_seconds * 1e3, 2) + "ms " +
                    fixed(k.gemm_gflops(), 2) + " GFLOP/s";
  out += " | im2col " + std::to_string(k.im2col_calls) + " calls " +
         fixed(k.im2col_seconds * 1e3, 2) + "ms";
  out += " | eltwise " + std::to_string(k.eltwise_calls) + " calls " +
         fixed(k.eltwise_seconds * 1e3, 2) + "ms";
  return out;
}

std::vector<std::vector<std::string>> kernel_report_rows(
    const KernelCounters& k) {
  return {
      {"gemm_calls", "gemm_seconds", "gemm_gflops", "im2col_calls",
       "im2col_seconds", "eltwise_calls", "eltwise_seconds"},
      {std::to_string(k.gemm_calls), fixed(k.gemm_seconds, 6),
       fixed(k.gemm_gflops(), 3), std::to_string(k.im2col_calls),
       fixed(k.im2col_seconds, 6), std::to_string(k.eltwise_calls),
       fixed(k.eltwise_seconds, 6)},
  };
}

}  // namespace ca::telemetry
