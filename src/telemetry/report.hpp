// CSV reporting: machine-readable export of the figure data the benches
// print, so the reproduced tables can feed external plotting tools.
#pragma once

#include <string>
#include <vector>

#include "telemetry/counters.hpp"

namespace ca::telemetry {

/// RFC-4180-style CSV: fields containing commas, quotes or newlines are
/// quoted, quotes are doubled.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Render rows (first row = header) as CSV text.
[[nodiscard]] std::string to_csv(
    const std::vector<std::vector<std::string>>& rows);

/// Write rows to `path` as CSV.  Returns false (without throwing) if the
/// file cannot be opened -- bench binaries treat export as best-effort.
bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows);

/// One-line human-readable summary of the compute-kernel counters, e.g.
/// "gemm 12 calls 3.1ms 41.2 GFLOP/s | im2col 8 calls 0.4ms | eltwise ...".
/// All figures are host wall time (see KernelCounters).
[[nodiscard]] std::string format_kernel_report(const KernelCounters& k);

/// The same counters as CSV rows (header + one data row), for the bench
/// exporters.
[[nodiscard]] std::vector<std::vector<std::string>> kernel_report_rows(
    const KernelCounters& k);

}  // namespace ca::telemetry
