// CSV reporting: machine-readable export of the figure data the benches
// print, so the reproduced tables can feed external plotting tools.
#pragma once

#include <string>
#include <vector>

#include "telemetry/counters.hpp"

namespace ca::telemetry {

/// RFC-4180-style CSV: fields containing commas, quotes or newlines are
/// quoted, quotes are doubled.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Render rows (first row = header) as CSV text.
[[nodiscard]] std::string to_csv(
    const std::vector<std::vector<std::string>>& rows);

/// Write rows to `path` as CSV.  Returns false (without throwing) if the
/// file cannot be opened -- bench binaries treat export as best-effort.
bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows);

/// One-line human-readable summary of the compute-kernel counters, e.g.
/// "gemm 12 calls 3.1ms 41.2 GFLOP/s | im2col 8 calls 0.4ms | eltwise ...".
/// All figures are host wall time (see KernelCounters).
[[nodiscard]] std::string format_kernel_report(const KernelCounters& k);

/// The same counters as CSV rows (header + one data row), for the bench
/// exporters.
[[nodiscard]] std::vector<std::vector<std::string>> kernel_report_rows(
    const KernelCounters& k);

/// Human-readable per-op-type summary, slowest op first, e.g.
/// "slowest op conv2d_bwd_weights (12 calls, 8.31ms); conv2d 24 calls
/// 6.02ms; ...".  Seconds are simulated roofline seconds.
[[nodiscard]] std::string format_op_histogram(const OpHistogram& h);

/// The histogram as CSV rows (header + one row per op, descending
/// seconds).
[[nodiscard]] std::vector<std::vector<std::string>> op_histogram_rows(
    const OpHistogram& h);

/// One-line summary of a device heap's allocator counters, e.g.
/// "allocs 1203 (98.2% bin-exact) frees 1108 splits 411 coalesces 387
/// failed 2 frag 0.12".
[[nodiscard]] std::string format_allocator_report(const AllocatorCounters& a);

/// The same counters as CSV rows (header + one data row).
[[nodiscard]] std::vector<std::vector<std::string>> allocator_report_rows(
    const AllocatorCounters& a);

/// One-line summary of the SIMD data plane: the active dispatch level
/// (simd::active_level), the per-device NT-store write bytes passed in as
/// (device name, DeviceTraffic::bytes_written_nt) pairs, and the
/// process-wide streamed-byte counter, e.g.
/// "simd level avx512 | nt-writes DRAM 0 NVRAM 33554432 | streamed 33521664".
[[nodiscard]] std::string format_simd_report(
    const std::vector<std::pair<std::string, std::uint64_t>>& nt_write_bytes);

}  // namespace ca::telemetry
