// CSV reporting: machine-readable export of the figure data the benches
// print, so the reproduced tables can feed external plotting tools.
#pragma once

#include <string>
#include <vector>

namespace ca::telemetry {

/// RFC-4180-style CSV: fields containing commas, quotes or newlines are
/// quoted, quotes are doubled.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Render rows (first row = header) as CSV text.
[[nodiscard]] std::string to_csv(
    const std::vector<std::vector<std::string>>& rows);

/// Write rows to `path` as CSV.  Returns false (without throwing) if the
/// file cannot be opened -- bench binaries treat export as best-effort.
bool write_csv(const std::string& path,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace ca::telemetry
