// Wall-clock stopwatch for the compute-kernel counters (KernelCounters).
//
// src/ is normally wall-clock-free (tools/ca_lint.py, rule `wall-clock`):
// every *modeled* quantity is simulated seconds from sim::Clock.  The
// kernel counters are the one sanctioned exception -- they report how fast
// the host actually executed the real-backend GEMM/conv kernels (achieved
// GFLOP/s), which is meaningless in simulated time.  The waivers below are
// safe because nothing read from this clock ever reaches sim::Clock or any
// modeled result; misuse is caught by the ca_lint rule firing on any other
// chrono use in src/.
#pragma once

#include <chrono>  // ca_lint: allow(wall-clock)

namespace ca::telemetry {

/// Monotonic stopwatch: construct, then read elapsed seconds.
class KernelStopwatch {
 public:
  KernelStopwatch() : start_(clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();  // ca_lint: allow(wall-clock)
  }

 private:
  using clock = std::chrono::steady_clock;  // ca_lint: allow(wall-clock)
  clock::time_point start_;
};

/// Accumulate the stopwatch's elapsed time into `*sink` on scope exit
/// (sink may be null: disabled timer, zero overhead beyond the clock read).
class ScopedKernelTimer {
 public:
  explicit ScopedKernelTimer(double* sink) : sink_(sink) {}
  ~ScopedKernelTimer() {
    if (sink_ != nullptr) *sink_ += watch_.seconds();
  }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  double* sink_;
  KernelStopwatch watch_;
};

}  // namespace ca::telemetry
