// Vector clocks for happens-before race detection (ca::race).
//
// Each task/thread carries a vector clock; synchronization objects
// (mutexes, condition variables, atomics) carry the clock released into
// them.  An access A happens-before an access B iff A's epoch (tid, clock)
// is covered by B's thread clock at the time of B.  This is the classic
// DJIT+/FastTrack formulation, kept deliberately simple: clocks are dense
// vectors indexed by task id, and all atomic operations are treated as
// acquire-release (conservative: it can only *miss* relaxed-ordering
// races, never invent one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ca::race {

/// Dense per-execution task id (0 = first registered task).
using Tid = std::uint32_t;

class VectorClock {
 public:
  /// Clock component for `tid` (0 if never ticked).
  [[nodiscard]] std::uint64_t at(Tid tid) const noexcept {
    return tid < c_.size() ? c_[tid] : 0;
  }

  /// Advance this clock's own component.
  void tick(Tid tid) {
    grow(tid);
    ++c_[tid];
  }

  void set(Tid tid, std::uint64_t value) {
    grow(tid);
    c_[tid] = value;
  }

  /// Pointwise maximum (the join of two clocks).
  void join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      if (other.c_[i] > c_[i]) c_[i] = other.c_[i];
    }
  }

  /// True iff every component of this clock is <= the other's: everything
  /// recorded here happens-before (or equals) the other clock's frontier.
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.at(static_cast<Tid>(i))) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }
  void clear() noexcept { c_.clear(); }

 private:
  void grow(Tid tid) {
    if (tid >= c_.size()) c_.resize(static_cast<std::size_t>(tid) + 1, 0);
  }

  std::vector<std::uint64_t> c_;
};

}  // namespace ca::race
