// Instrumented synchronization shims (ca::race) and the ca::sync aliases
// the rest of the tree uses.
//
// With CA_RACE defined (CMake option -DCA_RACE=ON), `ca::sync::mutex`,
// `ca::sync::condition_variable` and `ca::sync::atomic<T>` are the
// instrumented race:: types: every operation records a happens-before edge
// with the vector-clock runtime and, under an active schedule explorer, is
// a deterministic preemption point.  Without CA_RACE they are thin
// zero-overhead wrappers over the std:: types that exist only to carry
// Clang thread-safety annotations (util/thread_annotations.hpp).
//
// Locking always goes through `ca::sync::lock` (an annotated scoped lock
// that the condition variable shims know how to wait on) so Clang's
// -Wthread-safety analysis can follow every acquire/release in the tree.
//
// Thread lifecycle: a spawner calls `sync::before_spawn()` and hands the
// token into the new thread, whose body opens a `sync::task_scope`; the
// spawner joins with `sync::join_thread(t, token)`.  Under the explorer
// this adopts the thread into the controlled schedule and models the join;
// in plain instrumented builds it still records the fork/join
// happens-before edges.  Spawners creating several threads fence the batch
// with `adoption_mark()` / `await_adoptions()` so the explored task set
// never depends on OS startup timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <thread>

#include "lockdep/lockdep.hpp"
#include "util/thread_annotations.hpp"

namespace ca::sync {

/// Annotated scoped lock over any of the mutex shims below.  Constructed
/// locked; supports the unlock/relock dance condition variables need.
/// The defaulted source_location rides into the mutex shim so ca::lockdep
/// reports carry the *call site* of every acquisition, not this header.
template <class M>
class CA_SCOPED_CAPABILITY basic_lock {
 public:
  explicit basic_lock(
      M& m, std::source_location loc = std::source_location::current())
      CA_ACQUIRE(m)
      : m_(&m), owned_(true) {
    m_->lock(loc);
  }
  ~basic_lock() CA_RELEASE() {
    if (owned_) m_->unlock();
  }
  basic_lock(const basic_lock&) = delete;
  basic_lock& operator=(const basic_lock&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      CA_ACQUIRE() {
    m_->lock(loc);
    owned_ = true;
  }
  void unlock() CA_RELEASE() {
    owned_ = false;
    m_->unlock();
  }
  [[nodiscard]] M* mutex() const noexcept { return m_; }
  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }

 private:
  M* m_;
  bool owned_;
};

}  // namespace ca::sync

#if defined(CA_RACE)

#include "race/runtime.hpp"
#include "race/scheduler.hpp"

namespace ca::race {

namespace detail {
/// Address-space key for the fork/exit happens-before edges of one spawned
/// thread (tokens are small integers: tag them away from real pointers).
inline const void* fork_key(std::uint64_t token) {
  return reinterpret_cast<const void*>(
      static_cast<std::uintptr_t>(0xCAFE000000000000ull ^ token));
}
}  // namespace detail

class CA_CAPABILITY("mutex") mutex {
 public:
  /// `cls` names this mutex's ca::lockdep lock class (CA_LOCK_CLASS at the
  /// declaration site); nullptr leaves the mutex out of the ordering graph
  /// (it still participates in held-across-blocking checks, anonymously).
  explicit mutex(const lockdep::ClassInfo* cls = nullptr) : cls_(cls) {}
  ~mutex() { Runtime::instance().forget_sync(this); }
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      CA_ACQUIRE() {
    if (auto* sched = Scheduler::current()) {
      sched->mutex_lock(this);
    } else {
      real_.lock();
    }
    Runtime::instance().acquire(this);
    lockdep::on_acquire(this, cls_, loc);
  }

  bool try_lock(std::source_location loc = std::source_location::current())
      CA_TRY_ACQUIRE(true) {
    bool ok = false;
    if (auto* sched = Scheduler::current()) {
      ok = sched->mutex_try_lock(this);
    } else {
      ok = real_.try_lock();
    }
    if (ok) {
      Runtime::instance().acquire(this);
      lockdep::on_acquire(this, cls_, loc, /*trylock=*/true);
    }
    return ok;
  }

  void unlock() CA_RELEASE() {
    lockdep::on_release(this);
    Runtime::instance().release(this);
    if (auto* sched = Scheduler::current()) {
      sched->mutex_unlock(this);
    } else {
      real_.unlock();
    }
  }

  [[nodiscard]] const lockdep::ClassInfo* lock_class() const noexcept {
    return cls_;
  }

 private:
  std::mutex real_;
  const lockdep::ClassInfo* cls_ = nullptr;
};

using lock = ::ca::sync::basic_lock<mutex>;

class condition_variable {
 public:
  condition_variable() = default;
  ~condition_variable() { Runtime::instance().forget_sync(this); }
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void wait(lock& lk,
            std::source_location loc = std::source_location::current()) {
    // Held-across-blocking check: any lock held besides the one this wait
    // atomically releases is a lockdep finding.  Hooked at entry -- before
    // we know whether the wait actually parks -- so a held lock is flagged
    // deterministically, not only in schedules where the wait blocks.
    lockdep::on_cv_wait(lk.mutex(), loc);
    wait_nocheck(lk);
  }

  template <class Predicate>
  void wait(lock& lk, Predicate pred,
            std::source_location loc = std::source_location::current()) {
    lockdep::on_cv_wait(lk.mutex(), loc);
    while (!pred()) wait_nocheck(lk);
  }

  void notify_one() {
    Runtime::instance().release(this);
    if (auto* sched = Scheduler::current()) {
      sched->cv_notify(this, /*all=*/false);
    } else {
      real_.notify_one();
    }
  }

  void notify_all() {
    Runtime::instance().release(this);
    if (auto* sched = Scheduler::current()) {
      sched->cv_notify(this, /*all=*/true);
    } else {
      real_.notify_all();
    }
  }

 private:
  void wait_nocheck(lock& lk) {
    if (auto* sched = Scheduler::current()) {
      mutex* m = lk.mutex();
      // The model performs unlock/relock itself; record the matching
      // happens-before edges around it.
      Runtime::instance().release(m);
      sched->cv_wait(this, m);
      Runtime::instance().acquire(this);
      Runtime::instance().acquire(m);
    } else {
      // condition_variable_any funnels unlock/relock through race::mutex,
      // which records the mutex edges; add the notify edge on wake.
      real_.wait(lk);
      Runtime::instance().acquire(this);
    }
  }

  std::condition_variable_any real_;
};

/// Instrumented atomic.  All operations are modeled acquire-release for
/// happens-before purposes regardless of the requested order (conservative:
/// this can only miss relaxed-ordering races, never invent one), and every
/// operation is a schedule point under the explorer.
template <class T>
class atomic {
 public:
  atomic() = default;
  constexpr atomic(T value) : v_(value) {}  // NOLINT(google-explicit-constructor)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    if (auto* sched = Scheduler::current()) sched->yield_point();
    // Real load first, runtime edge second: a publisher releases into the
    // runtime BEFORE its real store, so once the value is observed the
    // published clock is guaranteed present (the opposite order could read
    // the clock before the publisher's release and miss the edge).
    const T value = v_.load(std::memory_order_acquire);
    Runtime::instance().acquire(this);
    return value;
  }

  void store(T value, std::memory_order = std::memory_order_seq_cst) {
    if (auto* sched = Scheduler::current()) sched->yield_point();
    Runtime::instance().release(this);
    v_.store(value, std::memory_order_release);
  }

  T fetch_add(T delta, std::memory_order = std::memory_order_seq_cst) {
    if (auto* sched = Scheduler::current()) sched->yield_point();
    Runtime::instance().acq_rel(this);
    return v_.fetch_add(delta, std::memory_order_acq_rel);
  }

  T fetch_sub(T delta, std::memory_order = std::memory_order_seq_cst) {
    if (auto* sched = Scheduler::current()) sched->yield_point();
    Runtime::instance().acq_rel(this);
    return v_.fetch_sub(delta, std::memory_order_acq_rel);
  }

  T exchange(T value, std::memory_order = std::memory_order_seq_cst) {
    if (auto* sched = Scheduler::current()) sched->yield_point();
    Runtime::instance().acq_rel(this);
    return v_.exchange(value, std::memory_order_acq_rel);
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

 private:
  std::atomic<T> v_{};
};

/// Spawn-side half of the thread lifecycle protocol.
struct spawn_token {
  Scheduler* sched = nullptr;
  std::uint64_t fork = 0;
};

inline spawn_token before_spawn() {
  return {Scheduler::current(), Runtime::instance().prepare_fork()};
}

/// Opened first thing inside a spawned thread's body: adopts the thread
/// into the active schedule (if any) and binds the fork edge; on scope
/// exit, publishes the thread's final clock and retires the task.
class task_scope {
 public:
  explicit task_scope(const spawn_token& token) : token_(token) {
    if (token_.sched != nullptr) token_.sched->adopt_current_thread();
    Runtime::instance().bind_fork(token_.fork);
  }
  ~task_scope() {
    Runtime::instance().release(detail::fork_key(token_.fork));
    if (token_.sched != nullptr) token_.sched->task_finished();
  }
  task_scope(const task_scope&) = delete;
  task_scope& operator=(const task_scope&) = delete;

 private:
  spawn_token token_;
};

inline std::size_t adoption_mark() {
  auto* sched = Scheduler::current();
  return sched != nullptr ? sched->adoption_mark() : 0;
}

inline void await_adoptions(std::size_t count) {
  if (auto* sched = Scheduler::current()) sched->await_adoptions(count);
}

inline void join_thread(std::thread& t, const spawn_token& token) {
  CA_LOCKDEP_ON_BLOCKING("sync::join_thread");
  if (token.sched != nullptr) token.sched->join_os_thread(t.get_id());
  t.join();
  Runtime::instance().acquire(detail::fork_key(token.fork));
}

}  // namespace ca::race

namespace ca::sync {
using mutex = ::ca::race::mutex;
using condition_variable = ::ca::race::condition_variable;
template <class T>
using atomic = ::ca::race::atomic<T>;
using lock = ::ca::race::lock;
using spawn_token = ::ca::race::spawn_token;
using task_scope = ::ca::race::task_scope;
using ::ca::race::adoption_mark;
using ::ca::race::await_adoptions;
using ::ca::race::before_spawn;
using ::ca::race::join_thread;
}  // namespace ca::sync

#else  // !CA_RACE -------------------------------------------------------------

namespace ca::sync {

/// Zero-overhead std::mutex wrapper carrying the capability annotation so
/// Clang can check CA_GUARDED_BY members in every build, not just CA_RACE.
/// In Debug builds (CA_LOCKDEP_ENABLED without CA_RACE) the lockdep hooks
/// are live here too; in release builds they inline to nothing.
class CA_CAPABILITY("mutex") mutex {
 public:
  explicit mutex(const lockdep::ClassInfo* cls = nullptr) : cls_(cls) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      CA_ACQUIRE() {
    real_.lock();
    lockdep::on_acquire(this, cls_, loc);
  }
  bool try_lock(std::source_location loc = std::source_location::current())
      CA_TRY_ACQUIRE(true) {
    const bool ok = real_.try_lock();
    if (ok) lockdep::on_acquire(this, cls_, loc, /*trylock=*/true);
    return ok;
  }
  void unlock() CA_RELEASE() {
    lockdep::on_release(this);
    real_.unlock();
  }

  [[nodiscard]] const lockdep::ClassInfo* lock_class() const { return cls_; }

 private:
  friend class condition_variable;
  std::mutex real_;
  const lockdep::ClassInfo* cls_ = nullptr;
};

using lock = basic_lock<mutex>;

class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void wait(lock& lk,
            std::source_location loc = std::source_location::current()) {
    // Any lock held besides the one this wait releases is a lockdep
    // finding.  Hooked at entry -- before we know whether the wait parks --
    // so a held lock is flagged deterministically.
    lockdep::on_cv_wait(lk.mutex(), loc);
    wait_nocheck(lk);
  }

  template <class Predicate>
  void wait(lock& lk, Predicate pred,
            std::source_location loc = std::source_location::current()) {
    lockdep::on_cv_wait(lk.mutex(), loc);
    while (!pred()) wait_nocheck(lk);
  }

  void notify_one() { real_.notify_one(); }
  void notify_all() { real_.notify_all(); }

 private:
  void wait_nocheck(lock& lk) {
    // Re-wrap the already-held native mutex so the unannotated std types
    // stay an implementation detail.
    std::unique_lock<std::mutex> inner(lk.mutex()->real_, std::adopt_lock);
    real_.wait(inner);
    inner.release();
  }

  std::condition_variable real_;
};

template <class T>
using atomic = std::atomic<T>;

struct spawn_token {};
inline spawn_token before_spawn() { return {}; }

class task_scope {
 public:
  explicit task_scope(const spawn_token&) {}
  task_scope(const task_scope&) = delete;
  task_scope& operator=(const task_scope&) = delete;
};

inline std::size_t adoption_mark() { return 0; }
inline void await_adoptions(std::size_t) {}
inline void join_thread(std::thread& t, const spawn_token&) {
  CA_LOCKDEP_ON_BLOCKING("sync::join_thread");
  t.join();
}

}  // namespace ca::sync

#endif  // CA_RACE
