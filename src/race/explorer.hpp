// Schedule explorer: drive a scenario through many seed-determined
// interleavings and collect race reports per schedule.
//
// Typical use (see tests/race/):
//
//   ExplorerOptions opts;
//   opts.schedules = 1200;
//   auto result = explore(opts, [] { /* build DM, run transfers, ... */ });
//   CA_CHECK(result.failing_schedules == 0, "races found");
//
// Every failing schedule prints a single machine-greppable line
//
//   ca::race: FAILURE seed=0x... strategy=pct schedule=0x... reports=N
//
// and `replay(seed, strategy, scenario)` re-runs exactly that
// interleaving, byte for byte, for debugging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "race/report.hpp"
#include "race/scheduler.hpp"

namespace ca::race {

struct ExplorerOptions {
  std::uint64_t base_seed = 0x5EED0001u;
  /// Number of schedules to run (seeds base_seed, base_seed+1, ...).
  std::size_t schedules = 1100;
  /// Alternate random-walk and PCT schedules; PCT-only when false.
  bool mix_strategies = true;
  int pct_depth = 3;
  std::size_t max_steps = 200000;
  bool stop_on_failure = false;
  /// Print the "ca::race: FAILURE ..." line for each failing schedule.
  bool log_failures = true;
};

struct FailingSchedule {
  std::uint64_t seed = 0;
  Scheduler::Strategy strategy = Scheduler::Strategy::kRandomWalk;
  std::uint64_t schedule_hash = 0;
  std::vector<RaceReport> reports;
  std::vector<std::string> task_errors;
};

struct ExplorerResult {
  std::size_t schedules_run = 0;
  /// Number of distinct interleavings (unique schedule hashes) explored.
  std::size_t distinct_schedules = 0;
  std::size_t failing_schedules = 0;
  std::vector<FailingSchedule> failures;  ///< capped at 16, first kept

  [[nodiscard]] bool clean() const { return failing_schedules == 0; }
};

/// Run `scenario` under `options.schedules` seed-determined interleavings.
/// A schedule fails when the detector produced race reports or a task threw.
ExplorerResult explore(const ExplorerOptions& options,
                       const std::function<void()>& scenario);

/// Re-run one exact interleaving (from a FAILURE line) and return its
/// reports.  The schedule hash is printed so mismatched replays are obvious.
FailingSchedule replay(std::uint64_t seed, Scheduler::Strategy strategy,
                       const std::function<void()>& scenario,
                       int pct_depth = 3, std::size_t max_steps = 200000);

const char* to_string(Scheduler::Strategy strategy) noexcept;

}  // namespace ca::race
