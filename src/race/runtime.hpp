// The ca::race runtime: task registry, happens-before state, and shadow
// memory for the vector-clock race detector.
//
// The runtime is deliberately independent of the schedule explorer: with
// CA_RACE compiled in, the instrumented shims (race/sync.hpp) and access
// hooks (race/access.hpp) feed it from ordinary multi-threaded runs too,
// where it acts as a portable, deterministic-on-replay TSan-lite.  Under
// the cooperative scheduler (race/scheduler.hpp) the same state machine
// observes every explored interleaving.
//
// All runtime state is guarded by one internal std::mutex; the hooks are
// short critical sections.  This serializes instrumented operations, which
// is exactly what a controlled exploration wants and an acceptable tax for
// an instrumented build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "race/report.hpp"
#include "race/vector_clock.hpp"

namespace ca::race {

class Runtime {
 public:
  static Runtime& instance();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Dense id of the calling thread, registering it on first use.  Ids are
  /// assigned in registration order and restart from 0 after reset().
  Tid current_tid();

  /// Drop every task registration, happens-before edge, shadow cell and
  /// pending report.  Called by the explorer between schedules.
  void reset();

  // --- happens-before edges ------------------------------------------------

  /// Acquire edge from a synchronization object (mutex lock, cv wake,
  /// atomic load): the calling task's clock absorbs the object's.
  void acquire(const void* obj);

  /// Release edge into a synchronization object (mutex unlock, cv notify,
  /// atomic store): the object's clock absorbs the caller's, and the
  /// caller's own component ticks so later accesses are not covered.
  void release(const void* obj);

  /// Read-modify-write on an atomic: acquire + release in one step.
  void acq_rel(const void* obj);

  /// Forget a synchronization object (its storage is being destroyed, so
  /// the address may be reused by an unrelated object).
  void forget_sync(const void* obj);

  /// Fork edge: the spawning task snapshots its clock under a token; the
  /// spawned task binds the token so everything before the spawn
  /// happens-before everything it does.
  std::uint64_t prepare_fork();
  void bind_fork(std::uint64_t token);

  /// Join edge: the caller absorbs everything `child` did.
  void join_with(Tid child);

  // --- data accesses ---------------------------------------------------------

  /// Record a `kind` access to [addr, addr+size) labeled `label` (must be a
  /// string with static storage duration).  Conflicting unordered accesses
  /// append a RaceReport.
  void record_access(const void* addr, std::size_t size, AccessKind kind,
                     const char* label);

  // --- findings ---------------------------------------------------------------

  [[nodiscard]] std::size_t report_count();
  std::vector<RaceReport> take_reports();

 private:
  Runtime() = default;

  struct Shadow {
    std::uintptr_t base = 0;
    std::size_t size = 0;
    bool has_write = false;
    bool freed = false;
    Tid w_tid = 0;
    std::uint64_t w_clk = 0;
    AccessKind w_kind = AccessKind::kWrite;
    const char* w_label = "";
    VectorClock reads;  ///< per-tid own clock of reads since the last write
    const char* r_label = "";
  };

  Tid current_tid_locked();
  VectorClock& vc_of_locked(Tid tid);
  void report_locked(const Shadow& s, AccessKind prior, Tid prior_tid,
                     const char* prior_label, AccessKind current, Tid tid,
                     const char* label, std::uintptr_t addr, std::size_t size,
                     bool use_after_free);

  std::mutex mu_;
  std::uint64_t generation_ = 1;
  std::vector<VectorClock> vc_;  ///< by tid
  std::unordered_map<const void*, VectorClock> sync_vc_;
  std::unordered_map<std::uint64_t, VectorClock> forks_;
  std::uint64_t next_fork_ = 1;
  std::vector<Shadow> shadows_;
  std::vector<RaceReport> reports_;
};

}  // namespace ca::race
