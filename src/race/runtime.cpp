#include "race/runtime.hpp"

#include <cstdio>

namespace ca::race {

namespace {

/// Per-thread registration, invalidated by Runtime::reset() bumping the
/// generation (threads themselves may outlive a generation only if they
/// stop touching instrumented state, which reset()'s contract requires).
struct ThreadSlot {
  std::uint64_t generation = 0;
  Tid tid = 0;
};
thread_local ThreadSlot t_slot;

constexpr std::size_t kMaxReports = 64;

}  // namespace

const char* to_string(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kAlloc:
      return "alloc";
    case AccessKind::kFree:
      return "free";
  }
  return "?";
}

std::string RaceReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "race: %s by task %u [%s] vs %s by task %u [%s] on "
                "[%p, +%zu)%s",
                race::to_string(prior_kind), prior_tid, prior_label,
                race::to_string(current_kind), current_tid, current_label,
                reinterpret_cast<void*>(addr), size,
                use_after_free ? " (use after free)" : "");
  return buf;
}

Runtime& Runtime::instance() {
  static Runtime runtime;
  return runtime;
}

Tid Runtime::current_tid_locked() {
  if (t_slot.generation != generation_) {
    t_slot.generation = generation_;
    t_slot.tid = static_cast<Tid>(vc_.size());
    vc_.emplace_back();
    vc_.back().tick(t_slot.tid);  // every task starts with a live epoch
  }
  return t_slot.tid;
}

Tid Runtime::current_tid() {
  std::lock_guard lock(mu_);
  return current_tid_locked();
}

VectorClock& Runtime::vc_of_locked(Tid tid) { return vc_.at(tid); }

void Runtime::reset() {
  std::lock_guard lock(mu_);
  ++generation_;
  vc_.clear();
  sync_vc_.clear();
  forks_.clear();
  shadows_.clear();
  reports_.clear();
}

void Runtime::acquire(const void* obj) {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  const auto it = sync_vc_.find(obj);
  if (it != sync_vc_.end()) vc_of_locked(tid).join(it->second);
}

void Runtime::release(const void* obj) {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  VectorClock& mine = vc_of_locked(tid);
  sync_vc_[obj].join(mine);
  mine.tick(tid);
}

void Runtime::acq_rel(const void* obj) {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  VectorClock& mine = vc_of_locked(tid);
  const auto it = sync_vc_.find(obj);
  if (it != sync_vc_.end()) mine.join(it->second);
  sync_vc_[obj].join(mine);
  mine.tick(tid);
}

void Runtime::forget_sync(const void* obj) {
  std::lock_guard lock(mu_);
  sync_vc_.erase(obj);
}

std::uint64_t Runtime::prepare_fork() {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  VectorClock& mine = vc_of_locked(tid);
  const std::uint64_t token = next_fork_++;
  forks_[token] = mine;
  mine.tick(tid);
  return token;
}

void Runtime::bind_fork(std::uint64_t token) {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  const auto it = forks_.find(token);
  if (it != forks_.end()) {
    vc_of_locked(tid).join(it->second);
    forks_.erase(it);
  }
}

void Runtime::join_with(Tid child) {
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  if (child < vc_.size()) vc_of_locked(tid).join(vc_[child]);
}

void Runtime::report_locked(const Shadow& s, AccessKind prior, Tid prior_tid,
                            const char* prior_label, AccessKind current,
                            Tid tid, const char* label, std::uintptr_t addr,
                            std::size_t size, bool use_after_free) {
  static_cast<void>(s);
  if (reports_.size() >= kMaxReports) return;
  // Dedupe repeated findings of the same pair (e.g. one per copied chunk).
  for (const RaceReport& r : reports_) {
    if (r.prior_label == prior_label && r.current_label == label &&
        r.prior_tid == prior_tid && r.current_tid == tid &&
        r.prior_kind == prior && r.current_kind == current) {
      return;
    }
  }
  RaceReport r;
  r.prior_kind = prior;
  r.current_kind = current;
  r.prior_tid = prior_tid;
  r.current_tid = tid;
  r.prior_label = prior_label;
  r.current_label = label;
  r.addr = addr;
  r.size = size;
  r.use_after_free = use_after_free;
  reports_.push_back(r);
}

void Runtime::record_access(const void* addr, std::size_t size,
                            AccessKind kind, const char* label) {
  if (size == 0) return;
  std::lock_guard lock(mu_);
  const Tid tid = current_tid_locked();
  const VectorClock& mine = vc_of_locked(tid);
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const auto end = base + size;
  const bool is_write = kind != AccessKind::kRead;

  // 1. Check every overlapping shadow cell for unordered conflicts.
  for (const Shadow& s : shadows_) {
    const std::uintptr_t s_end = s.base + s.size;
    if (s_end <= base || end <= s.base) continue;  // no overlap
    const std::uintptr_t o_base = s.base > base ? s.base : base;
    const std::size_t o_size = (s_end < end ? s_end : end) - o_base;
    if (s.has_write && s.w_clk > mine.at(s.w_tid)) {
      report_locked(s, s.w_kind, s.w_tid, s.w_label, kind, tid, label, o_base,
                    o_size, s.freed);
    }
    if (is_write) {
      for (Tid r = 0; r < static_cast<Tid>(s.reads.size()); ++r) {
        if (s.reads.at(r) > mine.at(r)) {
          report_locked(s, AccessKind::kRead, r, s.r_label, kind, tid, label,
                        o_base, o_size, false);
          break;
        }
      }
    }
  }

  // 2. Update the shadow state.  A write-kind access supersedes every cell
  // it fully covers; reads fold into an existing same-range cell.
  if (is_write) {
    std::size_t kept = 0;
    for (Shadow& s : shadows_) {
      const bool covered = s.base >= base && s.base + s.size <= end;
      if (covered) continue;
      if (&shadows_[kept] != &s) shadows_[kept] = std::move(s);
      ++kept;
    }
    shadows_.resize(kept);
    Shadow s;
    s.base = base;
    s.size = size;
    s.has_write = true;
    s.freed = kind == AccessKind::kFree;
    s.w_tid = tid;
    s.w_clk = mine.at(tid);
    s.w_kind = kind;
    s.w_label = label;
    shadows_.push_back(std::move(s));
    return;
  }

  for (Shadow& s : shadows_) {
    if (s.base == base && s.size == size) {
      s.reads.set(tid, mine.at(tid));
      s.r_label = label;
      return;
    }
  }
  Shadow s;
  s.base = base;
  s.size = size;
  s.reads.set(tid, mine.at(tid));
  s.r_label = label;
  shadows_.push_back(std::move(s));
}

std::size_t Runtime::report_count() {
  std::lock_guard lock(mu_);
  return reports_.size();
}

std::vector<RaceReport> Runtime::take_reports() {
  std::lock_guard lock(mu_);
  std::vector<RaceReport> out;
  out.swap(reports_);
  return out;
}

}  // namespace ca::race
