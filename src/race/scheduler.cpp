#include "race/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "race/runtime.hpp"

namespace ca::race {

namespace {

/// SplitMix64: tiny, seedable, and good enough to spread schedules.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 0x100000001b3ull;
}

struct Tls {
  Scheduler* sched = nullptr;
  void* task = nullptr;
};
thread_local Tls t_tls;

}  // namespace

struct Scheduler::Task {
  Tid tid = 0;
  std::thread::id os_id;
  enum class St { kRunnable, kRunning, kBlocked, kFinished } st = St::kRunnable;
  enum class Wait { kNone, kMutex, kCv, kJoin } wait = Wait::kNone;
  const void* wait_obj = nullptr;
  std::uint64_t priority = 0;
  // Token handoff: the scheduler grants by setting `go` under `m`.
  std::mutex m;
  std::condition_variable cv;
  bool go = false;
};

Scheduler::Scheduler(const Options& options) : options_(options) {
  rng_state_ = options.seed ^ 0xca5eedull;
  if (options_.strategy == Strategy::kPct) {
    const int points = std::max(0, options_.pct_depth - 1);
    for (int i = 0; i < points; ++i) {
      switch_points_.push_back(1 + rng_next() % 4096);
    }
    std::sort(switch_points_.begin(), switch_points_.end());
  }
}

Scheduler::~Scheduler() = default;

std::uint64_t Scheduler::rng_next() { return splitmix64(rng_state_); }

Scheduler* Scheduler::current() noexcept {
  return t_tls.task != nullptr ? t_tls.sched : nullptr;
}

Scheduler::Task* Scheduler::self() const noexcept {
  return static_cast<Task*>(t_tls.task);
}

void Scheduler::park(Task* t) {
  std::unique_lock lk(t->m);
  t->cv.wait(lk, [t] { return t->go; });
  t->go = false;
}

void Scheduler::grant_locked(Task* t) {
  t->st = Task::St::kRunning;
  {
    std::lock_guard lk(t->m);
    t->go = true;
  }
  t->cv.notify_one();
}

Scheduler::Task* Scheduler::choose_locked() {
  ++steps_;
  if (steps_ > options_.max_steps) stuck_abort_locked("livelock");

  // PCT: consume due priority change points by demoting the last runner.
  while (next_switch_ < switch_points_.size() &&
         steps_ >= switch_points_[next_switch_]) {
    if (last_chosen_ != nullptr) last_chosen_->priority = --low_priority_;
    ++next_switch_;
  }

  Task* chosen = nullptr;
  if (options_.strategy == Strategy::kPct) {
    for (const auto& t : tasks_) {
      if (t->st != Task::St::kRunnable) continue;
      if (chosen == nullptr || t->priority > chosen->priority) chosen = t.get();
    }
  } else {
    std::size_t runnable = 0;
    for (const auto& t : tasks_) {
      if (t->st == Task::St::kRunnable) ++runnable;
    }
    if (runnable > 0) {
      std::size_t pick = rng_next() % runnable;
      for (const auto& t : tasks_) {
        if (t->st != Task::St::kRunnable) continue;
        if (pick-- == 0) {
          chosen = t.get();
          break;
        }
      }
    }
  }
  if (chosen != nullptr) {
    hash_ = fnv_mix(hash_, chosen->tid);
    last_chosen_ = chosen;
  }
  return chosen;
}

void Scheduler::finish_if_done_locked() {
  done_ = true;
  done_cv_.notify_all();
}

void Scheduler::stuck_abort_locked(const char* what) {
  std::fprintf(stderr,
               "ca::race: %s at step %zu (seed=0x%llx, strategy=%s) -- "
               "task states:\n",
               what, steps_,
               static_cast<unsigned long long>(options_.seed),
               options_.strategy == Strategy::kPct ? "pct" : "random");
  for (const auto& t : tasks_) {
    const char* st = t->st == Task::St::kRunnable   ? "runnable"
                     : t->st == Task::St::kRunning  ? "running"
                     : t->st == Task::St::kBlocked  ? "blocked"
                                                    : "finished";
    const char* wait = t->wait == Task::Wait::kMutex ? " on mutex"
                       : t->wait == Task::Wait::kCv  ? " on condvar"
                       : t->wait == Task::Wait::kJoin ? " on join"
                                                      : "";
    std::fprintf(stderr, "  task %u: %s%s %p\n", t->tid, st, wait,
                 t->wait_obj);
  }
  std::fflush(stderr);
  std::abort();
}

bool Scheduler::schedule_from_locked(Task* current) {
  Task* next = choose_locked();
  if (next == nullptr) {
    bool all_finished = true;
    for (const auto& t : tasks_) {
      if (t->st != Task::St::kFinished) {
        all_finished = false;
        break;
      }
    }
    if (all_finished) {
      finish_if_done_locked();
      return false;
    }
    stuck_abort_locked("deadlock");
  }
  if (next == current) {
    current->st = Task::St::kRunning;
    return false;
  }
  grant_locked(next);
  return true;
}

void Scheduler::yield_point() {
  Task* me = self();
  if (me == nullptr) return;
  std::unique_lock lk(smu_);
  me->st = Task::St::kRunnable;
  const bool must_park = schedule_from_locked(me);
  lk.unlock();
  if (must_park) park(me);
}

void Scheduler::wake_mutex_waiters_locked(const void* m) {
  for (const auto& t : tasks_) {
    if (t->st == Task::St::kBlocked && t->wait == Task::Wait::kMutex &&
        t->wait_obj == m) {
      t->st = Task::St::kRunnable;
      t->wait = Task::Wait::kNone;
      t->wait_obj = nullptr;
    }
  }
}

void Scheduler::acquire_or_block_locked(std::unique_lock<std::mutex>& lk,
                                        const void* m) {
  Task* me = self();
  for (;;) {
    const auto it = mutex_owner_.find(m);
    if (it == mutex_owner_.end() || it->second == nullptr) {
      mutex_owner_[m] = me;
      return;
    }
    me->st = Task::St::kBlocked;
    me->wait = Task::Wait::kMutex;
    me->wait_obj = m;
    const bool must_park = schedule_from_locked(me);
    lk.unlock();
    if (must_park) park(me);
    lk.lock();
  }
}

void Scheduler::mutex_lock(const void* m) {
  Task* me = self();
  std::unique_lock lk(smu_);
  // Preemption point before the acquire: others may grab the lock first.
  me->st = Task::St::kRunnable;
  const bool must_park = schedule_from_locked(me);
  if (must_park) {
    lk.unlock();
    park(me);
    lk.lock();
  }
  acquire_or_block_locked(lk, m);
}

bool Scheduler::mutex_try_lock(const void* m) {
  Task* me = self();
  std::unique_lock lk(smu_);
  me->st = Task::St::kRunnable;
  const bool must_park = schedule_from_locked(me);
  if (must_park) {
    lk.unlock();
    park(me);
    lk.lock();
  }
  const auto it = mutex_owner_.find(m);
  if (it != mutex_owner_.end() && it->second != nullptr) return false;
  mutex_owner_[m] = me;
  return true;
}

void Scheduler::mutex_unlock(const void* m) {
  Task* me = self();
  std::unique_lock lk(smu_);
  mutex_owner_[m] = nullptr;
  wake_mutex_waiters_locked(m);
  // Release is a schedule point too: a freshly woken waiter may run now.
  me->st = Task::St::kRunnable;
  const bool must_park = schedule_from_locked(me);
  lk.unlock();
  if (must_park) park(me);
}

void Scheduler::cv_wait(const void* cv, const void* m) {
  Task* me = self();
  std::unique_lock lk(smu_);
  // Atomically: release the mutex and enqueue as a waiter (no lost wakeup:
  // both happen under the scheduler lock before the token moves).
  mutex_owner_[m] = nullptr;
  wake_mutex_waiters_locked(m);
  me->st = Task::St::kBlocked;
  me->wait = Task::Wait::kCv;
  me->wait_obj = cv;
  const bool must_park = schedule_from_locked(me);
  lk.unlock();
  if (must_park) park(me);
  lk.lock();
  // Notified: re-acquire the mutex before returning, as std::cv does.
  acquire_or_block_locked(lk, m);
}

void Scheduler::cv_notify(const void* cv, bool all) {
  Task* me = self();
  std::unique_lock lk(smu_);
  std::vector<Task*> waiters;
  for (const auto& t : tasks_) {
    if (t->st == Task::St::kBlocked && t->wait == Task::Wait::kCv &&
        t->wait_obj == cv) {
      waiters.push_back(t.get());
    }
  }
  if (!waiters.empty()) {
    if (all) {
      for (Task* w : waiters) {
        w->st = Task::St::kRunnable;
        w->wait = Task::Wait::kNone;
        w->wait_obj = nullptr;
      }
    } else {
      // Which waiter wakes is itself a scheduling decision.
      Task* w = waiters[rng_next() % waiters.size()];
      hash_ = fnv_mix(hash_, 0x9000u + w->tid);
      w->st = Task::St::kRunnable;
      w->wait = Task::Wait::kNone;
      w->wait_obj = nullptr;
    }
  }
  me->st = Task::St::kRunnable;
  const bool must_park = schedule_from_locked(me);
  lk.unlock();
  if (must_park) park(me);
}

void Scheduler::adopt_current_thread() {
  auto task = std::make_unique<Task>();
  Task* t = task.get();
  t->os_id = std::this_thread::get_id();
  {
    std::lock_guard lk(smu_);
    // Assign the runtime tid under the scheduler lock so tid order always
    // equals adoption order (symmetric workers may arrive in any OS order;
    // relabeling them is invisible to the schedule).
    t->tid = Runtime::instance().current_tid();
    t->priority = 1 + (rng_next() % (1u << 19)) + (1u << 20);
    tasks_.push_back(std::move(task));
    adopt_cv_.notify_all();
  }
  t_tls.sched = this;
  t_tls.task = t;
  park(t);
}

void Scheduler::task_finished() {
  Task* me = self();
  std::unique_lock lk(smu_);
  me->st = Task::St::kFinished;
  for (const auto& t : tasks_) {
    if (t->st == Task::St::kBlocked && t->wait == Task::Wait::kJoin &&
        t->wait_obj == me) {
      t->st = Task::St::kRunnable;
      t->wait = Task::Wait::kNone;
      t->wait_obj = nullptr;
    }
  }
  t_tls.task = nullptr;
  t_tls.sched = nullptr;
  schedule_from_locked(nullptr);  // hands off or declares completion
}

std::size_t Scheduler::adoption_mark() {
  std::lock_guard lk(smu_);
  return tasks_.size();
}

void Scheduler::await_adoptions(std::size_t count) {
  // A real (off-model) wait: the spawner keeps the token while the new
  // threads register, which needs only the scheduler lock, not the token.
  std::unique_lock lk(smu_);
  adopt_cv_.wait(lk, [&] { return tasks_.size() >= count; });
}

void Scheduler::join_os_thread(std::thread::id os) {
  Task* me = self();
  std::unique_lock lk(smu_);
  Task* target = nullptr;
  for (const auto& t : tasks_) {
    if (t->os_id == os) {
      target = t.get();
      break;
    }
  }
  if (target == nullptr || target->st == Task::St::kFinished) return;
  me->st = Task::St::kBlocked;
  me->wait = Task::Wait::kJoin;
  me->wait_obj = target;
  const bool must_park = schedule_from_locked(me);
  lk.unlock();
  if (must_park) park(me);
}

Scheduler::Result Scheduler::run(const Options& options,
                                 const std::function<void()>& root) {
  Runtime::instance().reset();
  Scheduler sched(options);

  std::thread root_thread([&] {
    sched.adopt_current_thread();
    try {
      root();
    } catch (const std::exception& e) {
      std::lock_guard lk(sched.smu_);
      sched.errors_.emplace_back(e.what());
    } catch (...) {
      std::lock_guard lk(sched.smu_);
      sched.errors_.emplace_back("unknown exception");
    }
    sched.task_finished();
  });

  {
    std::unique_lock lk(sched.smu_);
    sched.adopt_cv_.wait(lk, [&] { return !sched.tasks_.empty(); });
    Task* first = sched.choose_locked();
    sched.grant_locked(first);
    sched.done_cv_.wait(lk, [&] { return sched.done_; });
  }
  // Every non-root task thread was joined by user code inside root
  // (ThreadPool destructors, race::thread::join) before root finished.
  root_thread.join();

  Result result;
  result.completed = true;
  result.steps = sched.steps_;
  result.tasks = sched.tasks_.size();
  result.schedule_hash = sched.hash_;
  result.task_errors = std::move(sched.errors_);
  return result;
}

}  // namespace ca::race
