// Deterministic cooperative scheduler for schedule exploration (ca::race).
//
// Tasks are real OS threads, but exactly one runs at a time: every
// instrumented synchronization operation (race/sync.hpp) is a *schedule
// point* where the scheduler may hand the execution token to another
// runnable task.  Decisions are drawn from a seeded PRNG (random-walk) or
// from PCT-style priorities, so a schedule is a pure function of the seed:
// replaying a seed replays the interleaving, instruction for instruction.
//
// Blocking primitives are modeled, not real: a task that would block on a
// mutex/condition variable/join parks in the scheduler until the model
// makes it runnable again, which is what lets the explorer drive the
// *modeled* world (simulated clock, transfer retirement) through orderings
// the host OS would essentially never produce.
//
// Threads created while a task runs (ThreadPool workers, race::thread) are
// adopted at their first instrumented operation; spawners use adoption
// barriers (await_adoptions) so the task set at every decision point is a
// deterministic function of the program, not of OS startup timing.
//
// A genuine deadlock of the model (every task blocked) or a livelock
// (max_steps exceeded) prints the seed and every task's state, then
// aborts: those are findings, and the seed reproduces them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "race/vector_clock.hpp"

namespace ca::race {

class Scheduler {
 public:
  enum class Strategy { kRandomWalk, kPct };

  struct Options {
    std::uint64_t seed = 1;
    Strategy strategy = Strategy::kRandomWalk;
    /// PCT depth parameter d: d-1 priority change points per schedule.
    int pct_depth = 3;
    /// Livelock bound: abort past this many schedule decisions.
    std::size_t max_steps = 200000;
  };

  struct Result {
    bool completed = false;
    std::size_t steps = 0;
    std::size_t tasks = 0;
    /// FNV-1a over the sequence of scheduling decisions: two runs explored
    /// the same interleaving iff their hashes match.
    std::uint64_t schedule_hash = 0xcbf29ce484222325ull;
    std::vector<std::string> task_errors;
  };

  /// Run `root` as task 0 under a fresh runtime/scheduler and drive it (and
  /// every thread it spawns) through one seed-determined interleaving.
  static Result run(const Options& options, const std::function<void()>& root);

  /// The scheduler controlling the calling thread (nullptr when the thread
  /// is not a task of an active exploration).
  static Scheduler* current() noexcept;

  // --- schedule points (called by race/sync.hpp on the running task) --------

  void yield_point();
  void mutex_lock(const void* m);
  bool mutex_try_lock(const void* m);
  void mutex_unlock(const void* m);
  void cv_wait(const void* cv, const void* m);
  void cv_notify(const void* cv, bool all);

  // --- task lifecycle --------------------------------------------------------

  /// Register the calling thread as a task and park until first scheduled.
  /// The task id (== ca::race::Tid) is assigned under the scheduler lock,
  /// so id order always matches adoption order.
  void adopt_current_thread();

  /// Mark the calling task finished, wake its joiners, hand off the token.
  /// The thread must not touch instrumented state afterwards.
  void task_finished();

  /// Adoption barrier: spawners snapshot `adoption_mark()`, create their
  /// threads, then `await_adoptions(mark + n)` so the task set is fixed
  /// before the next schedule decision.
  [[nodiscard]] std::size_t adoption_mark();
  void await_adoptions(std::size_t count);

  /// Model join on the task running on OS thread `os`: parks the caller
  /// until that task calls task_finished().  No-op for unknown or already
  /// finished tasks; the caller then performs the real std::thread::join,
  /// which completes promptly.
  void join_os_thread(std::thread::id os);

 private:
  struct Task;

  explicit Scheduler(const Options& options);
  ~Scheduler();

  Task* self() const noexcept;
  Task* choose_locked();
  void grant_locked(Task* t);
  static void park(Task* t);
  /// Hand the token onward after `self` updated its state.  Returns true
  /// when the caller must park (someone else got the token).
  bool schedule_from_locked(Task* current);
  void finish_if_done_locked();
  [[noreturn]] void stuck_abort_locked(const char* what);
  void wake_mutex_waiters_locked(const void* m);
  void acquire_or_block_locked(std::unique_lock<std::mutex>& lk,
                               const void* m);
  std::uint64_t rng_next();

  Options options_;
  std::mutex smu_;
  std::condition_variable adopt_cv_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::unordered_map<const void*, Task*> mutex_owner_;
  std::uint64_t rng_state_ = 0;
  std::size_t steps_ = 0;
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
  bool done_ = false;
  std::vector<std::string> errors_;
  // PCT state
  std::vector<std::size_t> switch_points_;  ///< sorted, ascending
  std::size_t next_switch_ = 0;
  std::uint64_t low_priority_ = 1u << 20;
  Task* last_chosen_ = nullptr;
};

}  // namespace ca::race
