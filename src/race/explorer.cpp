#include "race/explorer.hpp"

#include <cstdio>
#include <unordered_set>

#include "race/runtime.hpp"

namespace ca::race {

namespace {
constexpr std::size_t kMaxKeptFailures = 16;

void log_failure_line(const FailingSchedule& f) {
  std::fprintf(stderr,
               "ca::race: FAILURE seed=0x%llx strategy=%s schedule=0x%llx "
               "reports=%zu errors=%zu\n",
               static_cast<unsigned long long>(f.seed), to_string(f.strategy),
               static_cast<unsigned long long>(f.schedule_hash),
               f.reports.size(), f.task_errors.size());
  for (const RaceReport& r : f.reports) {
    std::fprintf(stderr, "ca::race:   %s\n", r.to_string().c_str());
  }
  for (const std::string& e : f.task_errors) {
    std::fprintf(stderr, "ca::race:   task error: %s\n", e.c_str());
  }
}
}  // namespace

const char* to_string(Scheduler::Strategy strategy) noexcept {
  switch (strategy) {
    case Scheduler::Strategy::kRandomWalk:
      return "random-walk";
    case Scheduler::Strategy::kPct:
      return "pct";
  }
  return "?";
}

ExplorerResult explore(const ExplorerOptions& options,
                       const std::function<void()>& scenario) {
  ExplorerResult result;
  std::unordered_set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < options.schedules; ++i) {
    Scheduler::Options sopts;
    sopts.seed = options.base_seed + i;
    sopts.strategy = options.mix_strategies && (i % 2 == 1)
                         ? Scheduler::Strategy::kPct
                         : Scheduler::Strategy::kRandomWalk;
    sopts.pct_depth = options.pct_depth;
    sopts.max_steps = options.max_steps;

    const Scheduler::Result run = Scheduler::run(sopts, scenario);
    std::vector<RaceReport> reports = Runtime::instance().take_reports();
    ++result.schedules_run;
    hashes.insert(run.schedule_hash);

    if (!reports.empty() || !run.task_errors.empty()) {
      ++result.failing_schedules;
      FailingSchedule f;
      f.seed = sopts.seed;
      f.strategy = sopts.strategy;
      f.schedule_hash = run.schedule_hash;
      f.reports = std::move(reports);
      f.task_errors = run.task_errors;
      if (options.log_failures) log_failure_line(f);
      if (result.failures.size() < kMaxKeptFailures) {
        result.failures.push_back(std::move(f));
      }
      if (options.stop_on_failure) break;
    }
  }
  result.distinct_schedules = hashes.size();
  return result;
}

FailingSchedule replay(std::uint64_t seed, Scheduler::Strategy strategy,
                       const std::function<void()>& scenario, int pct_depth,
                       std::size_t max_steps) {
  Scheduler::Options sopts;
  sopts.seed = seed;
  sopts.strategy = strategy;
  sopts.pct_depth = pct_depth;
  sopts.max_steps = max_steps;
  const Scheduler::Result run = Scheduler::run(sopts, scenario);

  FailingSchedule f;
  f.seed = seed;
  f.strategy = strategy;
  f.schedule_hash = run.schedule_hash;
  f.reports = Runtime::instance().take_reports();
  f.task_errors = run.task_errors;
  std::fprintf(stderr,
               "ca::race: REPLAY seed=0x%llx strategy=%s schedule=0x%llx "
               "reports=%zu errors=%zu\n",
               static_cast<unsigned long long>(seed), to_string(strategy),
               static_cast<unsigned long long>(f.schedule_hash),
               f.reports.size(), f.task_errors.size());
  return f;
}

}  // namespace ca::race
