// Data-access hooks for the ca::race detector.
//
// Sprinkle CA_RACE_READ / CA_RACE_WRITE over the byte ranges a thread is
// about to touch (e.g. the source and destination of a copy chunk) and
// CA_RACE_ALLOC / CA_RACE_FREE at region lifetime boundaries.  The label
// must be a string literal (static storage): it names the site in race
// reports.  Without CA_RACE every macro compiles to nothing.
#pragma once

#if defined(CA_RACE)

#include "race/runtime.hpp"

#define CA_RACE_READ(addr, size, label)                              \
  ::ca::race::Runtime::instance().record_access(                     \
      (addr), (size), ::ca::race::AccessKind::kRead, (label))
#define CA_RACE_WRITE(addr, size, label)                             \
  ::ca::race::Runtime::instance().record_access(                     \
      (addr), (size), ::ca::race::AccessKind::kWrite, (label))
#define CA_RACE_ALLOC(addr, size, label)                             \
  ::ca::race::Runtime::instance().record_access(                     \
      (addr), (size), ::ca::race::AccessKind::kAlloc, (label))
#define CA_RACE_FREE(addr, size, label)                              \
  ::ca::race::Runtime::instance().record_access(                     \
      (addr), (size), ::ca::race::AccessKind::kFree, (label))

#else  // !CA_RACE

#define CA_RACE_READ(addr, size, label) ((void)0)
#define CA_RACE_WRITE(addr, size, label) ((void)0)
#define CA_RACE_ALLOC(addr, size, label) ((void)0)
#define CA_RACE_FREE(addr, size, label) ((void)0)

#endif  // CA_RACE
