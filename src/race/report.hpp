// Structured race findings produced by the ca::race runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "race/vector_clock.hpp"

namespace ca::race {

enum class AccessKind : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kAlloc = 2,  ///< storage (re)claimed for a new region: treated as a write
  kFree = 3,   ///< storage released: treated as a write, range marked freed
};

[[nodiscard]] const char* to_string(AccessKind kind) noexcept;

/// One detected race: two accesses to overlapping bytes, at least one a
/// write-kind access, with no happens-before edge between them.
struct RaceReport {
  AccessKind prior_kind = AccessKind::kRead;
  AccessKind current_kind = AccessKind::kRead;
  Tid prior_tid = 0;
  Tid current_tid = 0;
  const char* prior_label = "";    ///< static string from the access hook
  const char* current_label = "";  ///< static string from the access hook
  std::uintptr_t addr = 0;         ///< start of the overlap
  std::size_t size = 0;            ///< bytes in the conflicting range
  bool use_after_free = false;     ///< the prior access freed the range

  [[nodiscard]] std::string to_string() const;
};

}  // namespace ca::race
