// ca::audit -- the invariant-audit subsystem.
//
// The paper's data manager (§III-C) is only correct while a strict set of
// invariants holds: the heap tiling, the free-index, the exactly-one-primary
// rule, the one-region-per-device rule, pin discipline, and dirty-bit
// synchronization between sibling regions.  The policy layer drives
// aggressive movement, eviction and compaction against exactly this
// pointer-rich mutable state, so violations corrupt silently unless they are
// caught mechanically.
//
// `verify()` re-derives every invariant from scratch by walking the public
// read-only surface of the allocator / data manager -- deliberately NOT
// reusing the structures' own internal checks -- and returns a structured
// AuditReport listing each violation by stable name (catalogued with paper
// references in docs/INVARIANTS.md).  It never throws and never mutates.
//
// Debug builds run the audit automatically at every DataManager mutation
// boundary via the CA_AUDIT() macro (see dm/audit_hook.hpp); install the
// hook with ScopedAbortHook.  Release builds can call verify() explicitly
// and inspect the report.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ca::mem {
class FreeListAllocator;
}
namespace ca::dm {
class DataManager;
}

namespace ca::audit {

/// One broken invariant.  `invariant` is a stable identifier from the
/// catalog in docs/INVARIANTS.md (e.g. "alloc.coalesced", "dm.primary");
/// `detail` says where and how it is broken.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// The result of an audit: the full violation list, not just a bool, so a
/// caller (or a CI log) can see every broken invariant at once.
class AuditReport {
 public:
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// True iff some violation carries exactly this invariant name.
  [[nodiscard]] bool has(std::string_view invariant) const noexcept;

  /// Human-readable multi-line rendering ("" when ok).
  [[nodiscard]] std::string to_string() const;

  void add(std::string invariant, std::string detail);

 private:
  std::vector<Violation> violations_;
};

/// Audit one allocator: tiling, alignment, coalescing, free-index agreement,
/// counter accounting.
[[nodiscard]] AuditReport verify(const mem::FreeListAllocator& alloc);

/// Audit a data manager: every device allocator plus the cross-structure
/// invariants (cookie round-trips, primary uniqueness, device slots, pin
/// discipline, dirty-sibling consistency, async ready times).
[[nodiscard]] AuditReport verify(const dm::DataManager& dm);

/// While alive, CA_AUDIT() runs the full audit and, on the first violation,
/// prints the report to stderr and aborts.  Intended for tests and debug
/// sessions; the constructor replaces any previously-installed hook and the
/// destructor restores none (hooks do not stack).
class ScopedAbortHook {
 public:
  ScopedAbortHook();
  ~ScopedAbortHook();

  ScopedAbortHook(const ScopedAbortHook&) = delete;
  ScopedAbortHook& operator=(const ScopedAbortHook&) = delete;
};

}  // namespace ca::audit
