#include "audit/audit.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "dm/audit_hook.hpp"
#include "dm/data_manager.hpp"
#include "dm/object.hpp"
#include "mem/freelist_allocator.hpp"
#include "ptrprov/ptrprov.hpp"
#include "util/align.hpp"

namespace ca::audit {

namespace {

std::string object_label(const dm::Object& object) {
  std::string label = "object #" + std::to_string(object.id());
  if (!object.name().empty()) label += " '" + object.name() + "'";
  return label;
}

std::string region_label(const dm::Region& region) {
  return "region dev" + std::to_string(region.device().value) + "@" +
         std::to_string(region.offset()) + "+" +
         std::to_string(region.size());
}

}  // namespace

bool AuditReport::has(std::string_view invariant) const noexcept {
  return std::any_of(
      violations_.begin(), violations_.end(),
      [invariant](const Violation& v) { return v.invariant == invariant; });
}

std::string AuditReport::to_string() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "[" + v.invariant + "] " + v.detail + "\n";
  }
  return out;
}

void AuditReport::add(std::string invariant, std::string detail) {
  violations_.push_back({std::move(invariant), std::move(detail)});
}

// --- allocator audit --------------------------------------------------------

AuditReport verify(const mem::FreeListAllocator& alloc) {
  AuditReport report;
  const auto blocks = alloc.blocks();
  const std::size_t alignment = alloc.alignment();

  // alloc.tiling / alloc.block-align / alloc.coalesced -- one address-order
  // walk establishes the tiling and gathers the ground truth for the index
  // and counter checks below.
  std::size_t expected_offset = 0;
  std::size_t walk_alloc_bytes = 0;
  std::size_t walk_alloc_blocks = 0;
  std::size_t walk_free_bytes = 0;
  std::size_t walk_largest_free = 0;
  std::vector<std::pair<std::size_t, std::size_t>> walk_free;  // (size, off)
  bool prev_free = false;
  for (const auto& b : blocks) {
    if (b.offset != expected_offset) {
      report.add("alloc.tiling",
                 "block at " + std::to_string(b.offset) + " but previous " +
                     "block ends at " + std::to_string(expected_offset) +
                     (b.offset > expected_offset ? " (gap)" : " (overlap)"));
    }
    if (b.size == 0) {
      report.add("alloc.block-align",
                 "zero-sized block at " + std::to_string(b.offset));
    }
    if (!util::is_aligned(b.offset, alignment) ||
        !util::is_aligned(b.size, alignment)) {
      report.add("alloc.block-align",
                 "block " + std::to_string(b.offset) + "+" +
                     std::to_string(b.size) + " not aligned to " +
                     std::to_string(alignment));
    }
    if (b.allocated) {
      walk_alloc_bytes += b.size;
      ++walk_alloc_blocks;
      prev_free = false;
    } else {
      if (prev_free) {
        report.add("alloc.coalesced",
                   "adjacent free blocks at " + std::to_string(b.offset) +
                       " (missed coalesce)");
      }
      walk_free_bytes += b.size;
      walk_largest_free = std::max(walk_largest_free, b.size);
      walk_free.emplace_back(b.size, b.offset);
      prev_free = true;
    }
    expected_offset = b.offset + b.size;
  }
  if (expected_offset != alloc.capacity()) {
    report.add("alloc.tiling",
               "blocks cover [0, " + std::to_string(expected_offset) +
                   ") but capacity is " + std::to_string(alloc.capacity()));
  }

  // alloc.free-index -- the (size, offset) index must agree with the
  // address-ordered map in both directions.
  auto index = alloc.free_index_snapshot();
  std::sort(walk_free.begin(), walk_free.end());
  std::sort(index.begin(), index.end());
  std::vector<std::pair<std::size_t, std::size_t>> missing, extra;
  std::set_difference(walk_free.begin(), walk_free.end(), index.begin(),
                      index.end(), std::back_inserter(missing));
  std::set_difference(index.begin(), index.end(), walk_free.begin(),
                      walk_free.end(), std::back_inserter(extra));
  for (const auto& [size, off] : missing) {
    report.add("alloc.free-index",
               "free block " + std::to_string(off) + "+" +
                   std::to_string(size) + " missing from the size index");
  }
  for (const auto& [size, off] : extra) {
    report.add("alloc.free-index",
               "index entry (" + std::to_string(size) + ", " +
                   std::to_string(off) +
                   ") does not match any free block");
  }

  // alloc.accounting -- cached counters must match the walk.
  const auto stats = alloc.stats();
  const auto expect = [&report](std::size_t got, std::size_t want,
                                const char* what) {
    if (got != want) {
      report.add("alloc.accounting",
                 std::string(what) + ": stats say " + std::to_string(got) +
                     ", walk says " + std::to_string(want));
    }
  };
  expect(stats.allocated_bytes, walk_alloc_bytes, "allocated_bytes");
  expect(stats.allocated_blocks, walk_alloc_blocks, "allocated_blocks");
  expect(stats.free_bytes, walk_free_bytes, "free_bytes");
  expect(stats.free_blocks, walk_free.size(), "free_blocks");
  expect(stats.largest_free_block, walk_largest_free, "largest_free_block");

  // alloc.bin-membership -- every free block of the walk is reachable from
  // exactly one size-class bin, and that bin is its size class; no bin
  // holds anything that is not a free block.
  const auto bins = alloc.bin_snapshot();
  std::vector<std::pair<std::size_t, std::size_t>> binned;  // (size, off)
  for (const auto& bin : bins) {
    for (const auto& e : bin.entries) {
      binned.emplace_back(e.size, e.offset);
      const std::size_t want = alloc.bin_of(e.size);
      if (bin.bin != want) {
        report.add("alloc.bin-membership",
                   "free block " + std::to_string(e.offset) + "+" +
                       std::to_string(e.size) + " filed under bin " +
                       std::to_string(bin.bin) + " but its size class is " +
                       std::to_string(want));
      }
    }
  }
  std::sort(binned.begin(), binned.end());
  for (std::size_t i = 1; i < binned.size(); ++i) {
    if (binned[i] == binned[i - 1]) {
      report.add("alloc.bin-membership",
                 "free block " + std::to_string(binned[i].second) + "+" +
                     std::to_string(binned[i].first) +
                     " reachable from more than one bin entry");
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> unbinned, stray;
  std::set_difference(walk_free.begin(), walk_free.end(), binned.begin(),
                      binned.end(), std::back_inserter(unbinned));
  std::set_difference(binned.begin(), binned.end(), walk_free.begin(),
                      walk_free.end(), std::back_inserter(stray));
  for (const auto& [size, off] : unbinned) {
    report.add("alloc.bin-membership",
               "free block " + std::to_string(off) + "+" +
                   std::to_string(size) + " not reachable from any bin");
  }
  for (const auto& [size, off] : stray) {
    report.add("alloc.bin-membership",
               "bin entry " + std::to_string(off) + "+" +
                   std::to_string(size) +
                   " does not match any free block of the tiling");
  }

  // alloc.bin-order -- each bin's list keeps the order the fit policy
  // depends on: address order under first-fit, (size, offset) order under
  // best-fit.  Out-of-order entries silently break placement parity.
  for (const auto& bin : bins) {
    for (std::size_t i = 1; i < bin.entries.size(); ++i) {
      const auto& p = bin.entries[i - 1];
      const auto& e = bin.entries[i];
      const bool ok =
          alloc.fit() == mem::FreeListAllocator::Fit::kFirstFit
              ? p.offset < e.offset
              : (p.size < e.size ||
                 (p.size == e.size && p.offset < e.offset));
      if (!ok) {
        report.add("alloc.bin-order",
                   "bin " + std::to_string(bin.bin) + " entry " +
                       std::to_string(e.offset) + "+" +
                       std::to_string(e.size) + " out of order after " +
                       std::to_string(p.offset) + "+" +
                       std::to_string(p.size));
      }
    }
  }

  // alloc.bin-bitmap -- the find-first-set bitmap must mirror bin
  // occupancy in both directions: a cleared bit hides free memory from
  // allocate(); a stray set bit makes allocate() dereference an empty bin.
  const auto words = alloc.bin_bitmap_words();
  std::vector<bool> occupied(mem::FreeListAllocator::bin_count(), false);
  for (const auto& bin : bins) {
    if (!bin.entries.empty()) occupied[bin.bin] = true;
  }
  for (std::size_t b = 0; b < occupied.size(); ++b) {
    const bool bit =
        (words[b >> 6] & (std::uint64_t{1} << (b & 63))) != 0;
    if (bit && !occupied[b]) {
      report.add("alloc.bin-bitmap",
                 "bitmap marks bin " + std::to_string(b) +
                     " occupied but its list is empty");
    }
    if (!bit && occupied[b]) {
      report.add("alloc.bin-bitmap",
                 "bin " + std::to_string(b) +
                     " holds free blocks but its bitmap bit is clear");
    }
  }

  // alloc.boundary-tags -- the offset-index + neighbour-link view of every
  // block must mirror the address-order walk: same block set, and each
  // block's prev/next links name exactly its address neighbours.  A torn
  // link would send free()'s O(1) coalesce to the wrong block.
  const auto tags = alloc.boundary_snapshot();
  if (tags.size() != blocks.size()) {
    report.add("alloc.boundary-tags",
               "boundary view has " + std::to_string(tags.size()) +
                   " blocks but the walk has " +
                   std::to_string(blocks.size()));
  } else {
    for (std::size_t i = 0; i < tags.size(); ++i) {
      const auto& t = tags[i];
      const auto& b = blocks[i];
      if (t.offset != b.offset || t.size != b.size ||
          t.allocated != b.allocated) {
        report.add("alloc.boundary-tags",
                   "boundary tag " + std::to_string(t.offset) + "+" +
                       std::to_string(t.size) +
                       " disagrees with walk block " +
                       std::to_string(b.offset) + "+" +
                       std::to_string(b.size));
        continue;
      }
      if (!t.start_bit) {
        report.add("alloc.boundary-tags",
                   "block " + std::to_string(t.offset) +
                       " missing from the block-start bitmap");
      }
      const bool prev_ok =
          i == 0 ? !t.prev_offset.has_value()
                 : t.prev_offset == std::optional(blocks[i - 1].offset);
      const bool next_ok =
          i + 1 == tags.size()
              ? !t.next_offset.has_value()
              : t.next_offset == std::optional(blocks[i + 1].offset);
      if (!prev_ok || !next_ok) {
        report.add("alloc.boundary-tags",
                   "block " + std::to_string(t.offset) +
                       " neighbour links do not match the tiling");
      }
    }
  }
  if (alloc.start_bit_count() != blocks.size()) {
    report.add("alloc.boundary-tags",
               "start bitmap population " +
                   std::to_string(alloc.start_bit_count()) +
                   " does not match block count " +
                   std::to_string(blocks.size()));
  }
  return report;
}

// --- data-manager audit -----------------------------------------------------

AuditReport verify(const dm::DataManager& dm) {
  AuditReport report;
  const std::size_t devices = dm.device_count();

  // Per-device allocator audits, with details prefixed by the device.
  // Collect each device's block map for the round-trip checks below.
  std::vector<std::vector<mem::FreeListAllocator::BlockView>> dev_blocks;
  dev_blocks.reserve(devices);
  std::size_t allocated_blocks = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    const auto id = sim::DeviceId{static_cast<std::uint32_t>(d)};
    const auto& alloc = dm.allocator(id);
    AuditReport sub = verify(alloc);
    for (const Violation& v : sub.violations()) {
      report.add(v.invariant, "device " + std::to_string(d) + ": " + v.detail);
    }
    dev_blocks.push_back(alloc.blocks());
    for (const auto& b : dev_blocks.back()) {
      if (!b.allocated) continue;
      ++allocated_blocks;
      // dm.block-cookie -- every live block belongs to a live region.
      const auto* region = static_cast<const dm::Region*>(b.cookie);
      if (region == nullptr) {
        report.add("dm.block-cookie",
                   "device " + std::to_string(d) + ": allocated block at " +
                       std::to_string(b.offset) + " has no owner cookie");
      } else if (!dm.owns_region(region)) {
        report.add("dm.block-cookie",
                   "device " + std::to_string(d) + ": allocated block at " +
                       std::to_string(b.offset) +
                       " points at a dead or foreign region");
      }
    }
  }

  // dm.region-roundtrip -- every live region's (device, offset, size) must
  // round-trip through the allocator walk: the block at its offset exists,
  // is allocated, is cookie-tagged back to the region, and has the
  // align-rounded size.  Together with the block count equality this makes
  // the region<->block mapping a bijection.
  std::size_t live_regions = 0;
  // Per-tenant, per-device resident-byte recomputation for dm.tenant.*
  // below (heap-aligned sizes, matching what allocate charged).
  std::array<std::array<std::size_t, dm::TenantStats::kMaxDevices>,
             dm::kMaxTenants>
      tenant_resident{};
  dm.for_each_region([&](const dm::Region& region) {
    ++live_regions;
    const std::size_t d = region.device().value;
    if (d >= devices) {
      report.add("dm.region-roundtrip",
                 region_label(region) + ": device id out of range");
      return;
    }
    if (region.tenant().value >= dm::kMaxTenants) {
      report.add("dm.tenant.resident",
                 region_label(region) + ": tenant id " +
                     std::to_string(region.tenant().value) + " out of range");
    } else if (d < dm::TenantStats::kMaxDevices) {
      tenant_resident[region.tenant().value][d] += util::align_up(
          region.size(), dm.allocator(region.device()).alignment());
    }
    const auto& blocks = dev_blocks[d];
    const auto it = std::lower_bound(
        blocks.begin(), blocks.end(), region.offset(),
        [](const mem::FreeListAllocator::BlockView& b, std::size_t off) {
          return b.offset < off;
        });
    if (it == blocks.end() || it->offset != region.offset() ||
        !it->allocated) {
      report.add("dm.region-roundtrip",
                 region_label(region) +
                     ": no allocated block starts at its offset");
      return;
    }
    if (it->cookie != &region) {
      report.add("dm.region-roundtrip",
                 region_label(region) +
                     ": backing block's cookie points elsewhere");
    }
    const std::size_t want =
        util::align_up(region.size(), dm.allocator(region.device()).alignment());
    if (it->size != want) {
      report.add("dm.region-roundtrip",
                 region_label(region) + ": backing block holds " +
                     std::to_string(it->size) + " bytes, expected " +
                     std::to_string(want));
    }
    // dm.ready-at -- an async fill completes no later than the mover's
    // horizon, and completion times never go negative.
    if (region.ready_at() < 0.0 ||
        region.ready_at() > dm.mover_busy_until()) {
      report.add("dm.ready-at",
                 region_label(region) + ": ready_at " +
                     std::to_string(region.ready_at()) +
                     " outside [0, mover_busy_until=" +
                     std::to_string(dm.mover_busy_until()) + "]");
    }
  });
  if (live_regions != allocated_blocks) {
    report.add("dm.region-roundtrip",
               std::to_string(live_regions) + " live regions but " +
                   std::to_string(allocated_blocks) +
                   " allocated heap blocks");
  }
  if (dm.mover_busy_until() < 0.0) {
    report.add("dm.ready-at", "mover_busy_until is negative");
  }

  // dm.inflight -- every registry entry points at live (never freed or
  // relocated) regions whose stored data pointers still match, and its
  // modeled completion lies within [0, mover horizon].
  for (const auto& t : dm.inflight_transfers()) {
    if (!t.transfer.valid()) {
      report.add("dm.inflight", "registry entry without a transfer handle");
      continue;
    }
    if (!dm.owns_region(t.dst)) {
      report.add("dm.inflight",
                 "in-flight transfer destination is not a live region");
    }
    if (!dm.owns_region(t.src)) {
      report.add("dm.inflight",
                 "in-flight transfer source is not a live region");
    }
    if (t.transfer.done_time() < 0.0 ||
        t.transfer.done_time() > dm.mover_busy_until()) {
      report.add("dm.inflight",
                 "in-flight transfer completes at " +
                     std::to_string(t.transfer.done_time()) +
                     ", outside [0, mover_busy_until=" +
                     std::to_string(dm.mover_busy_until()) + "]");
    }
    if (t.transfer.channel() >= dm.engine().channel_count()) {
      report.add("dm.inflight", "in-flight transfer on unknown channel " +
                                    std::to_string(t.transfer.channel()));
    }
  }

  // dm.tenant.resident -- each tenant's accounted resident bytes per device
  // must equal the heap-aligned sum of its live regions there (so the
  // per-tenant accounting partitions the device's allocated bytes exactly),
  // and dm.tenant.quota -- accounted residency never exceeds a non-zero
  // quota (the QoS knob is an admission bound, not advisory).
  for (std::size_t t = 0; t < dm::kMaxTenants; ++t) {
    const auto stats = dm.tenant_stats(dm::TenantId{
        static_cast<std::uint32_t>(t)});
    for (std::size_t d = 0;
         d < std::min<std::size_t>(devices, dm::TenantStats::kMaxDevices);
         ++d) {
      const auto id = sim::DeviceId{static_cast<std::uint32_t>(d)};
      if (stats.resident[d] != tenant_resident[t][d]) {
        report.add("dm.tenant.resident",
                   "tenant " + std::to_string(t) + " device " +
                       std::to_string(d) + ": accounts " +
                       std::to_string(stats.resident[d]) +
                       " resident bytes but its live regions hold " +
                       std::to_string(tenant_resident[t][d]));
      }
      const std::size_t quota =
          dm.tenant_quota(dm::TenantId{static_cast<std::uint32_t>(t)}, id);
      if (quota != 0 && stats.resident[d] > quota) {
        report.add("dm.tenant.quota",
                   "tenant " + std::to_string(t) + " device " +
                       std::to_string(d) + ": " +
                       std::to_string(stats.resident[d]) +
                       " resident bytes exceed the " + std::to_string(quota) +
                       "-byte quota");
      }
    }
  }

  // Object-level invariants.
  dm.for_each_object([&](const dm::Object& object) {
    const std::string label = object_label(object);
    std::size_t filed = 0;
    std::size_t dirty_count = 0;
    const dm::Region* dirty_region = nullptr;
    for (std::size_t d = 0; d < dm::Object::kMaxDevices; ++d) {
      const auto id = sim::DeviceId{static_cast<std::uint32_t>(d)};
      const dm::Region* region = object.region_on(id);
      if (region == nullptr) continue;
      ++filed;
      // dm.device-slot -- the slot, the region's own device, and the parent
      // back-pointer must agree ("at most one region per device" is implied
      // by the slot structure plus this agreement).
      if (!dm.owns_region(region)) {
        report.add("dm.device-slot",
                   label + ": slot " + std::to_string(d) +
                       " points at a dead region");
        continue;
      }
      if (region->device().value != d) {
        report.add("dm.device-slot",
                   label + ": " + region_label(*region) + " filed in slot " +
                       std::to_string(d));
      }
      if (region->parent() != &object) {
        report.add("dm.device-slot",
                   label + ": " + region_label(*region) +
                       " parent back-pointer points elsewhere");
      }
      // dm.region-size -- a linked region can hold the whole object.
      if (region->size() < object.size()) {
        report.add("dm.region-size",
                   label + " (" + std::to_string(object.size()) +
                       " bytes): " + region_label(*region) +
                       " is too small");
      }
      if (region->dirty()) {
        ++dirty_count;
        dirty_region = region;
      }
    }
    // dm.primary -- exactly one primary among the linked regions (none only
    // while the object holds no storage at all).
    const dm::Region* primary = object.primary();
    if (filed == 0) {
      if (primary != nullptr) {
        report.add("dm.primary",
                   label + ": primary set but no region is linked");
      }
    } else if (primary == nullptr) {
      report.add("dm.primary",
                 label + ": has " + std::to_string(filed) +
                     " region(s) but no primary");
    } else if (object.region_on(primary->device()) != primary) {
      report.add("dm.primary",
                 label + ": primary is not among the object's regions");
    }
    // dm.pin -- pin counts never go negative; a pinned object must have a
    // primary (the pointer a kernel is holding), that primary's storage
    // must be live with an intact back-pointer (never orphaned: the kernel
    // dereferences it), and no pinned object may hold a region on a device
    // being defragmented (compaction memmoves every live region there).
    if (object.pin_count() < 0) {
      report.add("dm.pin", label + ": negative pin count");
    }
    if (object.pinned() && primary == nullptr) {
      report.add("dm.pin", label + ": pinned but has no primary region");
    } else if (object.pinned()) {
      if (!dm.owns_region(primary)) {
        report.add("dm.pin",
                   label + ": pinned but its primary region is orphaned "
                           "(storage no longer live)");
      } else if (primary->parent() != &object) {
        report.add("dm.pin",
                   label + ": pinned primary's parent back-pointer points "
                           "elsewhere");
      }
    }
    if (object.pinned() && dm.defragmenting_device() >= 0) {
      const auto dd = sim::DeviceId{
          static_cast<std::uint32_t>(dm.defragmenting_device())};
      if (object.region_on(dd) != nullptr) {
        report.add("dm.pin",
                   label + ": pinned object holds a region on device " +
                       std::to_string(dm.defragmenting_device()) +
                       " during defragment");
      }
    }
    // dm.dirty-siblings -- at most one region of an object may be modified
    // relative to its siblings, and with siblings present the modified one
    // must be the primary (secondaries are only ever stale, never written).
    if (dirty_count > 1) {
      report.add("dm.dirty-siblings",
                 label + ": " + std::to_string(dirty_count) +
                     " dirty sibling regions (divergent copies)");
    } else if (dirty_count == 1 && filed > 1 && dirty_region != primary) {
      report.add("dm.dirty-siblings",
                 label + ": non-primary sibling " +
                     region_label(*dirty_region) + " is dirty");
    }
  });

#if defined(CA_PTRPROV_ENABLED)
  // prov.* -- every live PinnedSpan must still be backed by what it
  // recorded at acquire: its region neither relocated nor freed since
  // (prov.stale), and its owning object still pinned (prov.unpinned).
  const auto spans = ptrprov::active_spans();
  for (const auto& s : spans) {
    if (s.region_freed) {
      report.add("prov.stale",
                 "live span on '" + s.label + "' acquired at " +
                     s.acquire_site + ": region freed by " + s.mutation_op);
    } else if (s.gen_now != s.gen_at_acquire) {
      report.add("prov.stale",
                 "live span on '" + s.label + "' acquired at " +
                     s.acquire_site + " (generation " +
                     std::to_string(s.gen_at_acquire) +
                     "): region relocated by " + s.mutation_op +
                     " to generation " + std::to_string(s.gen_now));
    }
  }
  if (!spans.empty()) {
    dm.for_each_object([&](const dm::Object& object) {
      if (object.pinned()) return;
      for (const auto& s : spans) {
        if (s.object == &object) {
          report.add("prov.unpinned",
                     object_label(object) + ": live span acquired at " +
                         s.acquire_site +
                         " but the object is no longer pinned");
        }
      }
    });
  }
#endif
  return report;
}

// --- CA_AUDIT hook ----------------------------------------------------------

namespace {

void abort_on_violation(const dm::DataManager& dm) {
  const AuditReport report = verify(dm);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "CA_AUDIT: data-manager invariant violations:\n%s",
                 report.to_string().c_str());
    std::abort();
  }
}

}  // namespace

ScopedAbortHook::ScopedAbortHook() { dm::set_audit_hook(&abort_on_violation); }
ScopedAbortHook::~ScopedAbortHook() { dm::set_audit_hook(nullptr); }

}  // namespace ca::audit
