#include "comm/comm_engine.hpp"

#include <algorithm>

#include "race/access.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ca::comm {

CommEngine::CommEngine(CommConfig config)
    : config_(config),
      net_(config_.workers, config_.link),
      pool_(std::max<std::size_t>(1, config_.pool_threads)) {
  CA_CHECK(config_.workers >= 1, "comm engine needs at least one worker");
}

CommEngine::~CommEngine() { drain(); }

Algorithm CommEngine::pick(std::size_t bytes) const {
  if (config_.force_algorithm.has_value()) return *config_.force_algorithm;
  return pick_algorithm(config_.link, config_.workers, bytes);
}

Reduction CommEngine::allreduce_async(std::vector<dm::PinnedSpan> parts,
                                      double earliest) {
  CA_CHECK(parts.size() == config_.workers,
           "allreduce needs one shard per worker");
  const std::size_t bytes = parts.front().size_bytes();
  for (const dm::PinnedSpan& p : parts) {
    CA_CHECK(p.valid(), "allreduce shard span is empty");
    CA_CHECK(p.size_bytes() == bytes, "allreduce shards differ in size");
  }
  CA_CHECK(bytes % sizeof(float) == 0,
           "gradient shards must be whole floats");

  auto state = std::make_shared<Reduction::State>();
  state->bytes = bytes;
  state->algo = pick(bytes);
  state->parts = std::move(parts);

  {
    // The whole modeled schedule is computed here, under mu_, on the
    // submitting thread: modeled times depend only on submission order,
    // never on pool timing.
    sync::lock lock(mu_);
    const Interconnect::Timeline tl =
        net_.schedule_allreduce(state->algo, bytes, earliest);
    state->start = tl.start;
    state->done = tl.done;
    state->steps = tl.steps;
    ++stats_.reductions;
    stats_.bytes_on_wire += wire_bytes(state->algo, config_.workers, bytes);
    if (state->algo == Algorithm::kRing) {
      ++stats_.ring_picks;
    } else {
      ++stats_.tree_picks;
    }
    stats_.busy_seconds += tl.done - tl.start;
    stats_.last_done = std::max(stats_.last_done, tl.done);
  }

  // Submit outside mu_ (leaf discipline: never hold a comm lock while
  // taking the pool's queue lock).
  pool_.submit([state] { reduce_now(*state); });
  return Reduction(state);
}

void CommEngine::reduce_now(Reduction::State& state) {
  const std::size_t bytes = state.bytes;
  const std::size_t n = bytes / sizeof(float);
  const std::size_t workers = state.parts.size();

  // acc starts as worker 0's shard; every byte that "crosses the wire"
  // moves through util::copy_bytes so the race detector sees the access
  // and the comm-route lint rule has a single funnel to check.
  std::vector<float> acc(n);
  util::copy_bytes(acc.data(), state.parts[0].data(), bytes,
                   "comm::allreduce:gather");
  for (std::size_t w = 1; w < workers; ++w) {
    const auto* src =
        reinterpret_cast<const float*>(state.parts[w].data());
    // The summation is arithmetic, not byte movement, so it does not go
    // through copy_bytes; record the read explicitly for the detector.
    CA_RACE_READ(src, bytes, "comm::allreduce:sum");
    for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
  }
  for (std::size_t w = 0; w < workers; ++w) {
    util::copy_bytes(state.parts[w].data(), acc.data(), bytes,
                     "comm::allreduce:scatter");
  }

  // Drop the pins before signalling: a joiner may immediately retire the
  // bucket, and pin release takes DataManager locks that must never nest
  // under State::mu (leaf).
  for (dm::PinnedSpan& p : state.parts) p.reset();

  {
    sync::lock lock(state.mu);
    state.real_done.store(true, std::memory_order_release);
  }
  state.cv.notify_all();
}

void CommEngine::drain() {
  CA_LOCKDEP_ON_BLOCKING("comm::CommEngine::drain");
  pool_.wait_idle();
}

CommStats CommEngine::stats() const {
  sync::lock lock(mu_);
  return stats_;
}

}  // namespace ca::comm
