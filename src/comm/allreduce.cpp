#include "comm/allreduce.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ca::comm {

namespace {

// Scale factor matching sim::Platform: paper GB/s == model MiB/s.
constexpr double kGBs = 1024.0 * 1024.0;

[[nodiscard]] std::size_t ceil_log2(std::size_t n) {
  std::size_t r = 0;
  while ((std::size_t{1} << r) < n) ++r;
  return r;
}

[[nodiscard]] std::size_t ring_chunk(std::size_t workers, std::size_t bytes) {
  return (bytes + workers - 1) / workers;
}

/// One synchronized step: which egress/ingress ports participate and how
/// many bytes each moving link carries.
struct StepPlan {
  std::vector<std::size_t> senders;
  std::vector<std::size_t> receivers;
  std::size_t bytes = 0;
};

[[nodiscard]] std::vector<StepPlan> plan_steps(Algorithm algo,
                                               std::size_t workers,
                                               std::size_t bytes) {
  std::vector<StepPlan> plan;
  std::vector<std::size_t> all(workers);
  for (std::size_t w = 0; w < workers; ++w) all[w] = w;

  if (algo == Algorithm::kRing) {
    // Reduce-scatter then allgather: every step is all-links-active, each
    // worker forwarding one B/K chunk around the ring.
    const std::size_t chunk = ring_chunk(workers, bytes);
    for (std::size_t s = 0; s < 2 * (workers - 1); ++s) {
      plan.push_back({all, all, chunk});
    }
    return plan;
  }

  // Binomial tree.  Reduce round r pairs receiver w (w % 2^(r+1) == 0)
  // with sender w + 2^r; broadcast replays the rounds in reverse with the
  // roles swapped.
  const std::size_t rounds = ceil_log2(workers);
  std::vector<StepPlan> reduce;
  for (std::size_t r = 0; r < rounds; ++r) {
    StepPlan step;
    step.bytes = bytes;
    const std::size_t span = std::size_t{1} << r;
    for (std::size_t w = 0; w + span < workers; w += 2 * span) {
      step.receivers.push_back(w);
      step.senders.push_back(w + span);
    }
    reduce.push_back(std::move(step));
  }
  plan = reduce;
  for (auto it = reduce.rbegin(); it != reduce.rend(); ++it) {
    StepPlan down;
    down.bytes = bytes;
    down.senders = it->receivers;    // parents now send ...
    down.receivers = it->senders;    // ... back down the same pairs
    plan.push_back(std::move(down));
  }
  return plan;
}

}  // namespace

std::string_view to_string(Algorithm algo) noexcept {
  switch (algo) {
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kTree:
      return "tree";
  }
  return "?";
}

double ring_seconds(const LinkModel& link, std::size_t workers,
                    std::size_t bytes) {
  if (workers < 2 || bytes == 0) return 0.0;
  return static_cast<double>(2 * (workers - 1)) *
         link.seconds(ring_chunk(workers, bytes));
}

double tree_seconds(const LinkModel& link, std::size_t workers,
                    std::size_t bytes) {
  if (workers < 2 || bytes == 0) return 0.0;
  return static_cast<double>(2 * ceil_log2(workers)) * link.seconds(bytes);
}

Algorithm pick_algorithm(const LinkModel& link, std::size_t workers,
                         std::size_t bytes) {
  return ring_seconds(link, workers, bytes) <=
                 tree_seconds(link, workers, bytes)
             ? Algorithm::kRing
             : Algorithm::kTree;
}

std::size_t crossover_bytes(const LinkModel& link, std::size_t workers) {
  if (pick_algorithm(link, workers, 1) == Algorithm::kRing) return 0;
  // Cost difference is monotone in bytes (ring's bandwidth slope is the
  // smaller one), so binary-search the smallest size where ring wins.
  std::size_t lo = 1;                        // tree wins here
  std::size_t hi = std::size_t{1} << 40;     // ring certainly wins here
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pick_algorithm(link, workers, mid) == Algorithm::kRing) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::uint64_t wire_bytes(Algorithm algo, std::size_t workers,
                         std::size_t bytes) {
  if (workers < 2 || bytes == 0) return 0;
  if (algo == Algorithm::kRing) {
    return std::uint64_t{workers} * 2 * (workers - 1) *
           ring_chunk(workers, bytes);
  }
  return std::uint64_t{2} * (workers - 1) * bytes;
}

LinkModel LinkModel::ethernet_scaled() {
  LinkModel link;
  link.latency_s = 4e-3;
  link.curve = sim::BandwidthCurve{{1, 12.5 * kGBs},
                                   {2, 6.8 * kGBs},
                                   {4, 3.6 * kGBs},
                                   {8, 1.9 * kGBs}};
  return link;
}

LinkModel LinkModel::ethernet_25g_scaled() {
  LinkModel link;
  link.latency_s = 4e-3;
  link.curve = sim::BandwidthCurve{{1, 3.125 * kGBs},
                                   {2, 1.7 * kGBs},
                                   {4, 0.9 * kGBs},
                                   {8, 0.475 * kGBs}};
  return link;
}

Interconnect::Interconnect(std::size_t workers, LinkModel link)
    : workers_(workers), link_(std::move(link)) {
  CA_CHECK(workers_ >= 1, "an interconnect needs at least one worker");
  CA_CHECK(!link_.curve.empty(), "link model needs a bandwidth curve");
  egress_.resize(workers_);
  ingress_.resize(workers_);
}

std::size_t Interconnect::overlap(const Port& port, double start,
                                  double done) {
  std::size_t n = 0;
  for (const Interval& iv : port) {
    if (iv.start < done && start < iv.done) ++n;
  }
  return n;
}

Interconnect::Timeline Interconnect::schedule_allreduce(Algorithm algo,
                                                        std::size_t bytes,
                                                        double earliest) {
  Timeline tl;
  tl.start = earliest;
  tl.done = earliest;
  if (workers_ < 2 || bytes == 0) return tl;

  double t = earliest;
  const auto plan = plan_steps(algo, workers_, bytes);
  for (const StepPlan& step : plan) {
    // Contention probe: count collectives already holding any participating
    // port during the window this step would occupy on an idle network.
    // Deterministic one-pass approximation -- earlier collectives are never
    // re-timed by later arrivals (causal, like CopyEngine channel claims).
    const double probe = link_.seconds(step.bytes, 1);
    std::size_t streams = 1;
    for (std::size_t s : step.senders) {
      streams = std::max(streams, 1 + overlap(egress_[s], t, t + probe));
    }
    for (std::size_t r : step.receivers) {
      streams = std::max(streams, 1 + overlap(ingress_[r], t, t + probe));
    }
    const double dur = link_.seconds(step.bytes, streams);
    for (std::size_t s : step.senders) egress_[s].push_back({t, t + dur});
    for (std::size_t r : step.receivers) ingress_[r].push_back({t, t + dur});
    tl.max_streams = std::max(tl.max_streams, streams);
    t += dur;
  }
  tl.done = t;
  tl.steps = plan.size();
  return tl;
}

}  // namespace ca::comm
