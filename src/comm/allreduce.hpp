// Allreduce algorithms over the simulated interconnect.
//
// Two classic schedules, selected per bucket by modeled cost:
//
//   * ring (bandwidth-optimal): 2(K-1) synchronized steps, each moving a
//     B/K chunk per link, so every worker sends/receives 2(K-1)/K * B total
//     -- within 2/K of the lower bound -- at the price of 2(K-1) latency
//     terms.
//   * binomial tree (latency-optimal): ceil(log2 K) reduce rounds up plus
//     ceil(log2 K) broadcast rounds down, each moving the whole buffer B
//     over the active links: only 2*ceil(log2 K) latency terms, but K-1
//     full-buffer transfers per phase.
//
// Small buckets are latency-bound (tree wins); large buckets are
// bandwidth-bound (ring wins).  pick_algorithm compares the idle-network
// cost models; crossover_bytes locates the boundary the bench sweep
// records in BENCH_allreduce.json.
//
// The Interconnect tracks per-worker, per-direction port schedules so that
// *overlapping* collectives (buckets reduced while later layers are still
// in backward) contend: a step that shares a port with n in-flight
// collectives runs at curve.at(n+1) per-stream bandwidth.  All schedules
// are computed at submit time on the submitting thread, so modeled times
// are deterministic regardless of host thread timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "comm/link_model.hpp"

namespace ca::comm {

enum class Algorithm : std::uint8_t {
  kRing = 0,  ///< bandwidth-optimal: 2(K-1) steps of B/K per link
  kTree = 1,  ///< latency-optimal: 2*ceil(log2 K) rounds of B per link
};

[[nodiscard]] std::string_view to_string(Algorithm algo) noexcept;

/// Idle-network cost of a K-worker allreduce of `bytes` (zero when K < 2).
[[nodiscard]] double ring_seconds(const LinkModel& link, std::size_t workers,
                                  std::size_t bytes);
[[nodiscard]] double tree_seconds(const LinkModel& link, std::size_t workers,
                                  std::size_t bytes);

/// The cheaper algorithm for this bucket size on an idle network (ties go
/// to ring, the bandwidth-optimal choice).
[[nodiscard]] Algorithm pick_algorithm(const LinkModel& link,
                                       std::size_t workers,
                                       std::size_t bytes);

/// Smallest bucket size (bytes) at which ring becomes no worse than tree,
/// i.e. the latency-bound/bandwidth-bound boundary.  Returns 0 when ring
/// wins at every size (e.g. K == 2).
[[nodiscard]] std::size_t crossover_bytes(const LinkModel& link,
                                          std::size_t workers);

/// Total bytes that cross links during one allreduce (the wire-traffic
/// number CommStats accumulates): ring moves K * 2(K-1) * ceil(B/K), tree
/// moves 2(K-1) * B.
[[nodiscard]] std::uint64_t wire_bytes(Algorithm algo, std::size_t workers,
                                       std::size_t bytes);

/// The simulated interconnect: K workers, each with one egress and one
/// ingress port.  Not internally synchronized -- CommEngine serializes
/// access under its own mutex.
class Interconnect {
 public:
  struct Timeline {
    double start = 0.0;        ///< first step's begin (== earliest)
    double done = 0.0;         ///< last step's end
    std::size_t steps = 0;     ///< synchronized steps/rounds executed
    std::size_t max_streams = 1;  ///< worst port contention seen
  };

  Interconnect(std::size_t workers, LinkModel link);

  /// Reserve a full allreduce starting no earlier than `earliest`; every
  /// step begins when the previous one ends, and runs at the per-stream
  /// bandwidth its port contention allows.  Port occupancy is recorded so
  /// later collectives see this one as contention.
  Timeline schedule_allreduce(Algorithm algo, std::size_t bytes,
                              double earliest);

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] const LinkModel& link() const noexcept { return link_; }

 private:
  struct Interval {
    double start = 0.0;
    double done = 0.0;
  };
  /// One direction of one worker's port: the modeled windows during which
  /// a collective step occupies it.
  using Port = std::vector<Interval>;

  /// Collectives already overlapping [start, done) on the port.
  [[nodiscard]] static std::size_t overlap(const Port& port, double start,
                                           double done);

  std::size_t workers_;
  LinkModel link_;
  std::vector<Port> egress_;
  std::vector<Port> ingress_;
};

}  // namespace ca::comm
