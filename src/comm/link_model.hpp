// comm::LinkModel: the cost model for one direction of one worker's
// interconnect port.
//
// The data-parallel extension (DESIGN.md §3.6) runs K training workers as
// tenants of one DataManager and reduces their gradients over a simulated
// interconnect.  Like every other device in this repository the link is
// described by a sim::BandwidthCurve -- here the x-axis is *concurrent
// streams sharing the port* rather than copy threads, so contention between
// overlapping collectives degrades per-stream bandwidth exactly the way
// copy parallelism degrades NVRAM write bandwidth (paper §V-d machinery,
// reused unchanged).
//
// Times follow the standard alpha-beta model: a transfer of B bytes at
// stream count s costs latency_s + B / curve.at(s).  The latency term is
// dominated by per-message software injection overhead (same reasoning as
// sim::DeviceSpec::op_latency_s), which is what gives small buckets a
// latency-bound regime where tree allreduce beats ring.
#pragma once

#include <cstddef>

#include "sim/bandwidth.hpp"

namespace ca::comm {

struct LinkModel {
  /// Fixed per-message cost (injection, progress-engine overhead).  At the
  /// 1:1000 reproduction scale this is the term that makes the ring/tree
  /// crossover land at realistic bucket sizes (tens of KiB).
  double latency_s = 4e-3;

  /// Per-stream bandwidth as a function of concurrent streams on the port,
  /// in model bytes/sec (paper GB/s == model MiB/s, as in sim::Platform).
  sim::BandwidthCurve curve;

  /// Seconds for one point-to-point message of `bytes` when `streams`
  /// transfers share the port.
  [[nodiscard]] double seconds(std::size_t bytes,
                               std::size_t streams = 1) const {
    const double bw = curve.at(streams);
    return latency_s +
           (bw > 0.0 ? static_cast<double>(bytes) / bw : 0.0);
  }

  /// A 100GbE-class full-duplex port at the repository's 1:1000 scale:
  /// 12.5 paper-GB/s peak, fair-shared (slightly better than 1/n thanks to
  /// pipelining) as streams pile onto the port.
  static LinkModel ethernet_scaled();

  /// A 25GbE-class port (3.125 paper-GB/s peak, same latency and sharing
  /// shape): the commodity-cluster fabric where gradient exchange is
  /// genuinely compute-scale and overlap pays for itself.
  static LinkModel ethernet_25g_scaled();
};

}  // namespace ca::comm
