// comm::CommEngine: asynchronous gradient allreduce over the simulated
// interconnect, mirroring mem::CopyEngine's two-completion discipline.
//
// A Reduction, like a mem::Transfer, has two decoupled completions:
//   * the *modeled* completion (done_time()): the simulated second the
//     collective retires from the interconnect, computed at submit time on
//     the submitting thread under mu_ -- deterministic regardless of host
//     scheduling.  dp::Trainer folds this into its overlap timeline.
//   * the *real* completion: the engine's thread pool has actually summed
//     the K workers' gradient shards (canonical worker order 0..K-1, so
//     the reduced bytes are bitwise deterministic) and broadcast the
//     result back.  join() blocks for it; it never advances any clock.
//
// Bucket access runs entirely through dm::PinnedSpan: allreduce_async
// takes ownership of one pinned span per worker, the pool task reads and
// writes through them (every byte move via util::copy_bytes, so the race
// detector and the comm-route lint rule see them), and the pins drop only
// after the reduced result has landed.  Releasing a bucket while it is on
// the wire is therefore structurally impossible through this API -- the
// race tests re-create that hazard by stealing the spans (CommTestPeer)
// and watching CA_RACE flag the free-while-on-wire conflict.
//
// Locks (docs/lock_hierarchy.json): comm::CommEngine::mu_ guards the
// interconnect schedules and stats; comm::Reduction::State::mu guards the
// completion condition variable.  Both are leaves: the modeled schedule is
// computed entirely under mu_, and pool submission / pin release happen
// outside any comm lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/link_model.hpp"
#include "dm/pinned_span.hpp"
#include "race/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace ca::comm {

class CommEngine;
class CommTestPeer;

struct CommConfig {
  std::size_t workers = 2;
  LinkModel link = LinkModel::ethernet_scaled();
  /// Host threads doing the real summation (never affects modeled times).
  std::size_t pool_threads = 2;
  /// Force one algorithm for every bucket; unset picks per bucket by size
  /// (the ring/tree crossover, allreduce.hpp).
  std::optional<Algorithm> force_algorithm;
};

struct CommStats {
  std::uint64_t reductions = 0;
  std::uint64_t bytes_on_wire = 0;  ///< wire_bytes() summed over reductions
  std::uint64_t ring_picks = 0;
  std::uint64_t tree_picks = 0;
  double busy_seconds = 0.0;  ///< modeled collective durations, summed
  double last_done = 0.0;     ///< latest modeled completion time
};

/// Handle to one in-flight allreduce (shape of mem::Transfer).
class Reduction {
 public:
  Reduction() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Modeled interconnect occupancy, in simulated seconds.
  [[nodiscard]] double start_time() const noexcept {
    return state_ ? state_->start : 0.0;
  }
  [[nodiscard]] double done_time() const noexcept {
    return state_ ? state_->done : 0.0;
  }

  /// Per-worker shard size (every worker contributes this many bytes).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return state_ ? state_->bytes : 0;
  }
  [[nodiscard]] Algorithm algorithm() const noexcept {
    return state_ ? state_->algo : Algorithm::kRing;
  }
  [[nodiscard]] std::size_t steps() const noexcept {
    return state_ ? state_->steps : 0;
  }

  /// True once the real summation has landed (host-side fact; never branch
  /// simulated behaviour on it).
  [[nodiscard]] bool real_done() const {
    return state_ == nullptr ||
           state_->real_done.load(std::memory_order_acquire);
  }

  /// Block the calling host thread until the reduced bytes have landed in
  /// every worker's bucket.  Does not touch any clock; idempotent.
  void join() const {
    if (state_ == nullptr) return;
    // As with mem::Transfer::join: flag held-across-blocking before the
    // early-out so the hazard is caught in every schedule.
    CA_LOCKDEP_ON_BLOCKING("comm::Reduction::join");
    if (state_->real_done.load(std::memory_order_acquire)) return;
    sync::lock lock(state_->mu);
    state_->cv.wait(lock, [s = state_.get()] {
      return s->real_done.load(std::memory_order_acquire);
    });
  }

  void reset() noexcept { state_.reset(); }

 private:
  friend class CommEngine;
  friend class CommTestPeer;

  struct State {
    double start = 0.0;
    double done = 0.0;
    std::size_t bytes = 0;
    std::size_t steps = 0;
    Algorithm algo = Algorithm::kRing;
    /// The pinned gradient shards, one per worker, held until the reduced
    /// result has been broadcast back (then reset, dropping the pins).
    std::vector<dm::PinnedSpan> parts;
    sync::atomic<bool> real_done{false};
    sync::mutex mu CA_LEAF{CA_LOCK_CLASS("comm::Reduction::State::mu")};
    sync::condition_variable cv;
  };

  explicit Reduction(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class CommEngine {
 public:
  explicit CommEngine(CommConfig config = {});

  CommEngine(const CommEngine&) = delete;
  CommEngine& operator=(const CommEngine&) = delete;

  /// Destructor drains the pool, so every in-flight reduction lands first.
  ~CommEngine();

  /// Launch an allreduce of one gradient bucket: `parts[w]` is worker w's
  /// pinned shard, all the same size.  The modeled schedule starts no
  /// earlier than simulated second `earliest` (the bucket's gradient-ready
  /// time); the real summation runs on the engine's pool.  Takes ownership
  /// of the spans -- the buckets stay pinned while on the wire.
  Reduction allreduce_async(std::vector<dm::PinnedSpan> parts,
                            double earliest) CA_EXCLUDES(mu_);

  /// Block until every submitted reduction's real work has finished.
  void drain() CA_EXCLUDES(mu_);

  /// Algorithm this engine would use for a bucket of `bytes` (the config
  /// override, or the idle-network cost comparison).
  [[nodiscard]] Algorithm pick(std::size_t bytes) const;

  [[nodiscard]] CommStats stats() const CA_EXCLUDES(mu_);
  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }

 private:
  friend class CommTestPeer;

  /// The real math: acc = sum over workers (canonical order), broadcast
  /// back, drop the pins, signal completion.  Runs on the pool.
  static void reduce_now(Reduction::State& state);

  CommConfig config_;
  mutable sync::mutex mu_ CA_LEAF{CA_LOCK_CLASS("comm::CommEngine::mu_")};
  Interconnect net_ CA_GUARDED_BY(mu_);
  CommStats stats_ CA_GUARDED_BY(mu_);
  util::ThreadPool pool_;  ///< last member: destroyed (joined) first
};

}  // namespace ca::comm
