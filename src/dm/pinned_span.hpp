// dm::PinnedSpan: the sanctioned RAII accessor for an object's bytes, and
// the runtime half of the ca::ptrprov pin-discipline analysis.
//
// The paper's §III-C access model says: a kernel may hold a raw pointer
// from Region::data() only while the owning object is pinned, because
// evictfrom and defragment relocate unpinned regions at will.  PinnedSpan
// makes the discipline structural instead of conventional:
//
//   * construction (DataManager::access) pins the object FIRST — from that
//     point the primary cannot be displaced — then stalls for any pending
//     async fill and resolves the indirection once;
//   * every data() call is checked (Debug/CA_RACE builds) against the
//     provenance registry: a region whose generation advanced, whose
//     storage was freed, or whose pin was dropped under the span produces
//     a structured ProvenanceReport naming this span's acquire site and
//     the mutation that invalidated it;
//   * destruction unpins and retires the registry record; using the span
//     afterwards (a moved-from or reset span) is itself a report.
//
// In release builds the ptrprov hooks inline to nothing and data() is a
// plain pointer load — the "essentially zero overhead" indirection of the
// paper, verified by bench/micro_ptrprov.cpp.
//
// The bare `Region::data()` escape hatch remains for the DataManager's own
// copy/relocation machinery; the region-data-route lint rule confines it
// to the sanctioned sites listed in docs/pointer_provenance.json.
#pragma once

#include <cstddef>
#include <source_location>
#include <utility>

#include "dm/data_manager.hpp"
#include "ptrprov/ptrprov.hpp"
#include "util/error.hpp"

namespace ca::dm {

class PinnedSpan {
 public:
  /// An empty span: holds no pin; data() returns nullptr (and, under the
  /// analyzer, reports nothing — only a once-valid span can go stale).
  PinnedSpan() = default;

  PinnedSpan(PinnedSpan&& other) noexcept
      : dm_(std::exchange(other.dm_, nullptr)),
        object_(std::exchange(other.object_, nullptr)),
        region_(std::exchange(other.region_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        id_(std::exchange(other.id_, 0)) {}

  PinnedSpan& operator=(PinnedSpan&& other) noexcept {
    if (this != &other) {
      reset();
      dm_ = std::exchange(other.dm_, nullptr);
      object_ = std::exchange(other.object_, nullptr);
      region_ = std::exchange(other.region_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }

  PinnedSpan(const PinnedSpan&) = delete;
  PinnedSpan& operator=(const PinnedSpan&) = delete;

  ~PinnedSpan() { reset(); }

  /// Drop the pin (and the registry record) early.  Idempotent.
  void reset() {
    if (object_ != nullptr) {
      ptrprov::on_release(id_);
      dm_->unpin(*object_);
    }
    dm_ = nullptr;
    object_ = nullptr;
    region_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    id_ = 0;
  }

  [[nodiscard]] bool valid() const noexcept { return object_ != nullptr; }

  /// The resolved pointer, provenance-checked on every call in analyzer
  /// builds; a plain load in release.
  [[nodiscard]] std::byte* data(
      std::source_location loc = std::source_location::current()) const {
    ptrprov::on_access(id_, object_ != nullptr ? object_->pin_count() : 0,
                       loc);
    return data_;
  }

  /// Bytes addressable through the span (the owning object's size).
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }

  [[nodiscard]] Object* object() const noexcept { return object_; }
  [[nodiscard]] Region* region() const noexcept { return region_; }

  /// Registry identity, for tests and audits.
  [[nodiscard]] ptrprov::SpanId span_id() const noexcept { return id_; }

 private:
  friend class DataManager;

  PinnedSpan(DataManager& dm, Object& object, Region& region,
             ptrprov::SpanId id) noexcept
      : dm_(&dm),
        object_(&object),
        region_(&region),
        data_(region.data()),  // ca_lint: allow(region-data-route)
        size_(object.size()),
        id_(id) {}

  DataManager* dm_ = nullptr;
  Object* object_ = nullptr;
  Region* region_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  ptrprov::SpanId id_ = 0;
};

inline PinnedSpan DataManager::access(Object& object, bool write,
                                      std::source_location loc) {
  Region* primary = object.primary();
  if (primary == nullptr) {
    throw UsageError("access: object '" + object.name() +
                     "' has no primary region");
  }
  // Pin BEFORE waiting: from here the primary cannot be displaced, so the
  // pointer recorded below stays valid for the span's whole lifetime.
  pin(object);
  wait_ready(*primary);
  if (write) markdirty(*primary);
  const ptrprov::SpanId id = ptrprov::on_acquire(
      &object, primary, primary->generation(), object.pin_count(),
      object.name().c_str(), loc);
  return PinnedSpan(*this, object, *primary, id);
}

}  // namespace ca::dm
