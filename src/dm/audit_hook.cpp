#include "dm/audit_hook.hpp"

#include <atomic>

namespace ca::dm {

namespace {
std::atomic<AuditHookFn> g_audit_hook{nullptr};
}  // namespace

void set_audit_hook(AuditHookFn fn) noexcept {
  g_audit_hook.store(fn, std::memory_order_release);
}

AuditHookFn audit_hook() noexcept {
  return g_audit_hook.load(std::memory_order_acquire);
}

void detail::run_audit_hook(const DataManager& dm) {
  if (AuditHookFn fn = audit_hook()) fn(dm);
}

}  // namespace ca::dm
