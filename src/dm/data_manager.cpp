#include "dm/data_manager.hpp"

#include "dm/audit_hook.hpp"

#include <algorithm>
#include <source_location>
#include <utility>

#include "ptrprov/ptrprov.hpp"
#include "race/access.hpp"
#include "util/align.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ca::dm {

namespace {
constexpr std::size_t kHeapAlignment = 64;  // cache-line aligned regions

/// Names the release path in flight for provenance reports ("free" vs
/// "evictfrom" vs "destroy_object"): a dangling pointer into a region the
/// eviction loop reclaimed reads very differently from one into a region
/// the application freed.  Thread-local so each tenant thread labels only
/// its own release path.
thread_local const char* t_release_op = "free";

struct ScopedReleaseOp {
  const char* prev;
  explicit ScopedReleaseOp(const char* op) : prev(t_release_op) {
    t_release_op = op;
  }
  ~ScopedReleaseOp() { t_release_op = prev; }
};
}  // namespace

DataManager::DeviceHeap::DeviceHeap(const sim::DeviceSpec& spec)
    : arena(spec.capacity),
      alloc(std::make_unique<mem::FreeListAllocator>(spec.capacity,
                                                     kHeapAlignment)) {}

DataManager::DataManager(const sim::Platform& platform, sim::Clock& clock,
                         telemetry::TrafficCounters& counters)
    : platform_(platform),
      clock_(clock),
      counters_(counters),
      engine_(platform, clock, counters) {
  CA_CHECK(!platform.devices.empty(), "platform has no devices");
  CA_CHECK(platform.devices.size() <= Object::kMaxDevices,
           "too many devices for per-object region tracking");
  CA_CHECK(platform.devices.size() <= TenantStats::kMaxDevices,
           "too many devices for per-tenant accounting");
  heaps_.reserve(platform.devices.size());
  for (const auto& spec : platform.devices) {
    heaps_.push_back(std::make_unique<DeviceHeap>(spec));
  }
}

DataManager::~DataManager() {
  // Mover threads may still hold raw pointers into the arenas; the heaps are
  // destroyed before the engine (reverse member order), so join them first.
  engine_.drain();
}

DataManager::DeviceHeap& DataManager::heap(sim::DeviceId dev) {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  return *heaps_[dev.value];
}

const DataManager::DeviceHeap& DataManager::heap(sim::DeviceId dev) const {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  return *heaps_[dev.value];
}

DataManager::TenantSlot& DataManager::tenant_slot(TenantId tenant) const {
  CA_CHECK(tenant.value < kMaxTenants, "unknown tenant id");
  return tenants_[tenant.value];
}

// --- Object functions -----------------------------------------------------

Object* DataManager::create_object(std::size_t size, std::string name,
                                   TenantId tenant, ObjectClass cls) {
  if (size == 0) throw UsageError("objects must have a positive size");
  (void)tenant_slot(tenant);  // bounds-check the id up front
  auto owned = std::make_unique<Object>();
  Object* object = owned.get();
  object->size_ = size;
  object->name_ = std::move(name);
  object->tenant_ = tenant;
  object->class_ = cls;
  {
    sync::lock lock(objects_mu_);
    object->id_ = next_object_id_++;
    objects_.emplace(object, std::move(owned));
  }
  CA_AUDIT(*this);
  return object;
}

void DataManager::destroy_object(Object* object) {
  CA_CHECK(object != nullptr, "destroy_object(nullptr)");
  const ScopedReleaseOp op("destroy_object");
  // Phase 1 (objects_mu_): validate, detach and claim every region, and
  // pull the object out of the table so no other path can reach it.  The
  // Object itself stays alive (local unique_ptr) until the regions are
  // gone.
  std::unique_ptr<Object> owned;
  std::vector<Region*> doomed;
  {
    sync::lock lock(objects_mu_);
    const auto it = objects_.find(object);
    if (it == objects_.end()) {
      throw UsageError("destroy_object: unknown or already-destroyed object");
    }
    if (object->pinned()) {
      throw UsageError("destroy_object: object '" + object->name() +
                       "' is pinned by a running kernel");
    }
    for (auto*& region : object->regions_) {
      if (region != nullptr) {
        Region* r = region;
        region = nullptr;
        r->parent_ = nullptr;
        CA_CHECK(!r->releasing_, "destroy_object: region already being freed");
        r->releasing_ = true;
        doomed.push_back(r);
      }
    }
    object->primary_ = nullptr;
    owned = std::move(it->second);
    objects_.erase(it);
  }
  // Phase 2 (no locks held on entry): release each claimed region.
  for (Region* r : doomed) release_region(r);
  CA_AUDIT(*this);
}

void DataManager::setprimary(Object& object, Region& region) {
  {
    sync::lock lock(objects_mu_);
    if (object.pinned()) {
      throw UsageError("setprimary: object '" + object.name() +
                       "' is pinned by a running kernel");
    }
    if (region.parent_ == nullptr) {
      // Attach the orphan first (the Listing-1 fast path: a fresh
      // slow-memory region becomes primary directly, without an explicit
      // link).
      if (region.size() < object.size()) {
        throw UsageError("setprimary: region is smaller than the object");
      }
      if (object.region_on(region.device()) != nullptr) {
        throw UsageError(
            "setprimary: object already has a region on that device");
      }
      if (region.tenant() != object.tenant()) {
        throw UsageError(
            "setprimary: region and object belong to different tenants");
      }
      region.parent_ = &object;
      object.regions_[region.device().value] = &region;
    } else if (region.parent_ != &object) {
      throw UsageError("setprimary: region belongs to a different object");
    }
    object.primary_ = &region;
  }
  CA_AUDIT(*this);
}

void DataManager::unpin(Object& object) {
  const int prev = object.pin_count_.fetch_sub(1);
  CA_CHECK(prev > 0, "unpin of an unpinned object");
  CA_AUDIT(*this);
}

// --- Region functions -------------------------------------------------------

Region* DataManager::allocate(sim::DeviceId dev, std::size_t size,
                              TenantId tenant) {
  if (size == 0) throw UsageError("allocate: size must be positive");
  auto& h = heap(dev);  // bounds-checks dev; does not touch the allocator
  TenantSlot& slot = tenant_slot(tenant);

  // Quota admission (the QoS knob): reserve the charged bytes atomically
  // *before* taking any lock, so two tenants' admissions can never race
  // past a limit; roll the reservation back on any failure.  `charged` is
  // the block size the allocator will account, so the per-tenant resident
  // sums stay equal to the device's allocated bytes (dm.tenant.resident).
  const std::size_t charged = util::align_up(size, kHeapAlignment);
  const std::size_t prev =
      slot.resident[dev.value].fetch_add(charged, std::memory_order_relaxed);
  const std::size_t quota =
      slot.quota[dev.value].load(std::memory_order_relaxed);
  if (quota != 0 && prev + charged > quota) {
    slot.resident[dev.value].fetch_sub(charged, std::memory_order_relaxed);
    slot.quota_denials.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  auto owned = std::make_unique<Region>();
  Region* region = owned.get();
  region->device_ = dev;
  region->size_ = size;
  region->tenant_ = tenant;
  std::optional<std::size_t> offset;
  {
    // The hierarchy's one sanctioned nesting: table + heap mutate together
    // so an allocated block's cookie always names a live table entry.
    sync::lock lock(objects_mu_);
    sync::lock heap_lock(heap_mu_);
    offset = h.alloc->allocate(size);
    if (offset) {
      region->offset_ = *offset;
      region->data_ = h.arena.at(*offset);
      h.alloc->set_cookie(*offset, region);
      regions_.emplace(region, std::move(owned));
    }
  }
  if (!offset) {
    slot.resident[dev.value].fetch_sub(charged, std::memory_order_relaxed);
    return nullptr;
  }
  slot.allocations.fetch_add(1, std::memory_order_relaxed);
  CA_RACE_ALLOC(region->data_, region->size_, "DataManager::allocate");
  // Fresh storage starts a fresh provenance history (the address may have
  // belonged to a freed region whose tombstone must not outlive it).
  ptrprov::on_region_alloc(region);
  CA_AUDIT(*this);
  return region;
}

void DataManager::detach(Region& region) noexcept {
  Object* object = region.parent_;
  if (object == nullptr) return;
  object->regions_[region.device().value] = nullptr;
  if (object->primary_ == &region) object->primary_ = nullptr;
  region.parent_ = nullptr;
}

void DataManager::sync_region_real(Region& region) {
  // Copy the matching handles out of the registry before joining: joins can
  // block, and the registry lock is a leaf that must never be held across a
  // blocking call (another task might need it to make progress).
  std::vector<mem::Transfer> pending;
  {
    sync::lock lock(inflight_mu_);
    for (const auto& t : inflight_) {
      if (t.dst == &region || t.src == &region) pending.push_back(t.transfer);
    }
  }
  for (const auto& t : pending) t.join();
  if (region.fill_.valid()) region.fill_.join();
}

void DataManager::release_region(Region* region) {
  // The caller detached + claimed the region under objects_mu_ (releasing_),
  // so this path owns it exclusively even though no lock is held here.
  //
  // A region's storage may not be reused while a mover thread still reads
  // or writes it: join the real copies, then abandon the modeled completions
  // (an evicted-before-use prefetch is legitimate and must not throw).
  sync_region_real(*region);
  {
    sync::lock lock(inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : inflight_) {
      if (t.dst == region || t.src == region) {
        async_counters_.retired.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (&inflight_[kept] != &t) inflight_[kept] = std::move(t);
      ++kept;
    }
    inflight_.resize(kept);
  }

  ++region->generation_;
  ptrprov::on_region_free(region, t_release_op,
                          std::source_location::current());
  CA_RACE_FREE(region->data(), region->size(), "DataManager::release_region");

  // Free the heap block and drop the table entry together under the
  // hierarchy's edge; the Region object itself dies only after the locks
  // release (by then the block is free, so no heap walk can reach it).
  std::unique_ptr<Region> owned;
  {
    sync::lock lock(objects_mu_);
    sync::lock heap_lock(heap_mu_);
    heap(region->device()).alloc->free(region->offset());
    auto node = regions_.extract(region);
    CA_CHECK(!node.empty(), "release of an unknown region");
    owned = std::move(node.mapped());
  }
  TenantSlot& slot = tenant_slot(region->tenant());
  slot.resident[region->device().value].fetch_sub(
      util::align_up(region->size(), kHeapAlignment),
      std::memory_order_relaxed);
  slot.frees.fetch_add(1, std::memory_order_relaxed);
}

void DataManager::free(Region* region) {
  CA_CHECK(region != nullptr, "free(nullptr)");
  {
    sync::lock lock(objects_mu_);
    if (regions_.find(region) == regions_.end() || region->releasing_) {
      throw UsageError("free: unknown or already-freed region");
    }
    Object* object = region->parent();
    if (object != nullptr) {
      if (object->primary() == region && object->region_count() > 1) {
        throw UsageError(
            "free: region is the primary of an object with other regions; "
            "setprimary elsewhere first");
      }
      if (object->pinned() && object->primary() == region) {
        throw UsageError("free: region is pinned by a running kernel");
      }
      detach(*region);
    }
    region->releasing_ = true;
  }
  release_region(region);
  CA_AUDIT(*this);
}

void DataManager::copyto(Region& dst, Region& src) {
  if (dst.size() < src.size()) {
    throw UsageError("copyto: destination region is too small");
  }
  // A synchronous copy consumes the source now: stall for any in-flight
  // fill of it (modeled + real).  The destination only needs its real
  // copies joined -- whatever was being written there is overwritten.
  wait_ready(src);
  sync_region_real(dst);
  const bool non_temporal = true;  // the engine always streams its stores
  engine_.copy(dst.data(), dst.device(), src.data(), src.device(), src.size(),
               non_temporal);
  dst.ready_at_ = 0.0;
  dst.fill_.reset();
  dst.dirty_ = false;
  if (src.parent() != nullptr && src.parent() == dst.parent()) {
    // Linked siblings are now synchronized.
    src.dirty_ = false;
  }
  CA_AUDIT(*this);
}

double DataManager::copyto_async(Region& dst, Region& src) {
  if (dst.size() < src.size()) {
    throw UsageError("copyto_async: destination region is too small");
  }
  // Real-copy ordering: the mover must not read `src` before a pending fill
  // of it has landed, nor write `dst` while another mover still touches it.
  // These joins block the host briefly; they never advance the clock.
  sync_region_real(dst);
  if (src.fill_.valid()) src.fill_.join();

  // Modeled ordering: the transfer cannot start before its source is ready
  // (nor before an earlier modeled fill of the destination completes, so a
  // region's ready_at is always its *latest* writer).
  const double earliest = std::max(src.ready_at_, dst.ready_at_);
  mem::Transfer t =
      engine_.copy_async(dst.data(), dst.device(), src.data(), src.device(),
                         src.size(), earliest, /*non_temporal=*/true);
  const double done = t.done_time();
  dst.ready_at_ = done;
  dst.fill_ = t;
  dst.dirty_ = false;
  if (src.parent() != nullptr && src.parent() == dst.parent()) {
    src.dirty_ = false;
  }
  {
    sync::lock lock(inflight_mu_);
    inflight_.push_back(InflightTransfer{std::move(t), &dst, &src});
    // Peak depth: only ever updated under inflight_mu_, so load+store is a
    // race-free max; stored atomically for the lock-free async_stats().
    const std::size_t depth = inflight_.size();
    if (depth >
        async_counters_.inflight_peak.load(std::memory_order_relaxed)) {
      async_counters_.inflight_peak.store(depth, std::memory_order_relaxed);
    }
  }
  async_counters_.scheduled.fetch_add(1, std::memory_order_relaxed);
  async_counters_.bytes.fetch_add(src.size(), std::memory_order_relaxed);
  CA_AUDIT(*this);
  return done;
}

void DataManager::wait_ready(Region& region) {
  double stall = 0.0;
  // One now() sample: another tenant may be advancing the shared clock
  // concurrently, and the stall charged must match the comparison made.
  const double now = clock_.now();
  if (region.ready_at_ > now) {
    stall = region.ready_at_ - now;
    clock_.advance(stall, sim::TimeCategory::kMovement);
    async_counters_.stalls.fetch_add(1, std::memory_order_relaxed);
    async_counters_.stall_seconds.fetch_add(stall, std::memory_order_relaxed);
    TenantSlot& slot = tenant_slot(region.tenant());
    slot.stalls.fetch_add(1, std::memory_order_relaxed);
    slot.stall_seconds.fetch_add(stall, std::memory_order_relaxed);
  }
  if (region.fill_.valid()) {
    // Whatever part of the modeled transfer we did NOT stall for was hidden
    // behind other work -- that is the win the async engine exists for.
    const double duration =
        region.fill_.done_time() - region.fill_.start_time();
    async_counters_.overlap_seconds.fetch_add(std::max(0.0, duration - stall),
                                              std::memory_order_relaxed);
    region.fill_.join();
    region.fill_.reset();
  }
  region.ready_at_ = 0.0;
  retire_transfers();
  CA_AUDIT(*this);
}

void DataManager::retire_transfers() {
  const double now = clock_.now();
  // Pull retirees out of the registry under the lock, then join their real
  // copies outside it: a registry entry must never outlive its join (the
  // regions could be freed the moment the entry is gone), but the leaf lock
  // must not be held across a blocking join either -- so entries leave the
  // registry and are joined before this function returns control to code
  // that could free them.
  std::vector<mem::Transfer> retired;
  {
    sync::lock lock(inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : inflight_) {
      if (t.transfer.done_time() <= now) {
        retired.push_back(std::move(t.transfer));
        async_counters_.retired.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (&inflight_[kept] != &t) inflight_[kept] = std::move(t);
      ++kept;
    }
    inflight_.resize(kept);
  }
  for (const auto& t : retired) t.join();
  CA_AUDIT(*this);
}

void DataManager::drain_transfers() {
  engine_.drain();
  retire_transfers();
  CA_AUDIT(*this);
}

void DataManager::link(Region& attached, Region& orphan) {
  {
    sync::lock lock(objects_mu_);
    Object* object = attached.parent();
    if (object == nullptr) {
      throw UsageError("link: first region is not attached to an object");
    }
    if (orphan.parent() != nullptr) {
      throw UsageError("link: second region is already attached to an object");
    }
    if (orphan.size() < object->size()) {
      throw UsageError("link: region is smaller than the object");
    }
    if (object->region_on(orphan.device()) != nullptr) {
      throw UsageError("link: object already has a region on that device");
    }
    if (orphan.tenant() != object->tenant()) {
      throw UsageError("link: region and object belong to different tenants");
    }
    orphan.parent_ = object;
    object->regions_[orphan.device().value] = &orphan;
  }
  CA_AUDIT(*this);
}

void DataManager::unlink(Region& region) {
  {
    sync::lock lock(objects_mu_);
    Object* object = region.parent();
    if (object == nullptr) {
      throw UsageError("unlink: region is not attached to an object");
    }
    if (object->primary() == &region) {
      throw UsageError("unlink: cannot unlink the primary region");
    }
    detach(region);
  }
  CA_AUDIT(*this);
}

Region* DataManager::getlinked(const Region& region,
                               sim::DeviceId dev) const noexcept {
  const Object* object = region.parent();
  if (object == nullptr) return nullptr;
  return object->region_on(dev);
}

bool DataManager::evictfrom(sim::DeviceId dev, std::size_t start_offset,
                            std::size_t size,
                            const std::function<bool(Region&)>& evict,
                            TenantId requester) {
  CA_CHECK(evict != nullptr, "evictfrom requires an eviction callback");
  auto& h = heap(dev);
  TenantSlot& slot = tenant_slot(requester);
  std::size_t align = 0;
  std::size_t capacity = 0;
  {
    sync::lock heap_lock(heap_mu_);
    align = h.alloc->alignment();
    capacity = h.alloc->capacity();
  }
  size = util::align_up(size, align);
  if (size > capacity) return false;

  std::size_t cursor =
      std::min(util::align_down(start_offset, align), capacity - size);
  const std::size_t initial = cursor;
  bool wrapped = false;

  for (;;) {
    CA_AUDIT(*this);
    // Candidate scan under heap_mu_: the cookie Region of any allocated
    // block is live and its identity fields are stable while the heap lock
    // is held, because every release path frees the block under
    // objects_mu_ -> heap_mu_ and destroys the Region only after those
    // locks drop.  Find the first live block intersecting the window
    // [cursor, cursor + size).
    std::optional<std::size_t> blocked;
    Region* region = nullptr;
    std::size_t block_end = 0;
    TenantId victim;
    {
      sync::lock heap_lock(heap_mu_);
      h.alloc->for_blocks_from(cursor, [&](const mem::FreeListAllocator::
                                               BlockView& b) {
        if (b.offset >= cursor + size) return false;
        if (b.allocated) {
          blocked = b.offset;
          return false;
        }
        return true;
      });
      if (blocked) {
        region = static_cast<Region*>(h.alloc->cookie(*blocked));
        CA_CHECK(region != nullptr, "heap block without an owning region");
        block_end = *blocked + h.alloc->block_size(*blocked);
        victim = region->tenant();
      }
    }
    if (!blocked) return true;  // window is entirely free (and coalesced)

    bool relocated = false;
    if (victim == requester) {
      // The callback runs with no lock held (it re-enters allocate / free /
      // copyto).  `region` stays valid: it belongs to `requester`, whose
      // own operations are serial with this call.
      const ScopedReleaseOp op("evictfrom");
      relocated = evict(*region);
    } else {
      // Tenant isolation -- a foreign tenant's live storage is never
      // handed to the callback (the owner could be using it concurrently,
      // and only its own policy may displace it).  Treated as a refusal,
      // and counted: a tenant whose reclaim scans keep bouncing off
      // foreign storage is starving, and the counter is what makes that
      // visible (tenant_stats().evictions_refused).
      slot.evictions_refused.fetch_add(1, std::memory_order_relaxed);
    }

    if (relocated) {
      // The callback claims the region was relocated and freed; verify so a
      // misbehaving policy cannot spin us forever.
      bool still_there = false;
      {
        sync::lock heap_lock(heap_mu_);
        still_there = h.alloc->is_allocated(*blocked) &&
                      h.alloc->cookie(*blocked) == region;
      }
      if (still_there) {
        throw UsageError(
            "evictfrom: eviction callback returned success without freeing "
            "the region");
      }
      slot.evictions_caused.fetch_add(1, std::memory_order_relaxed);
      tenant_slot(victim).evictions_suffered.fetch_add(
          1, std::memory_order_relaxed);
      continue;  // re-examine the same window
    }

    // Refused (pinned object, foreign tenant): restart the search past this
    // block.
    std::size_t next = block_end;
    if (next + size > capacity) {
      if (wrapped) return false;
      wrapped = true;
      next = 0;
    }
    if (wrapped && next >= initial) return false;
    cursor = next;
  }
}

// --- Tenant functions -------------------------------------------------------

TenantId DataManager::register_tenant(std::string name) {
  sync::lock lock(tenants_mu_);
  if (tenant_count_ >= kMaxTenants) {
    throw UsageError("register_tenant: tenant slots exhausted");
  }
  const TenantId id{static_cast<std::uint32_t>(tenant_count_++)};
  tenant_names_[id.value] = std::move(name);
  return id;
}

std::size_t DataManager::tenant_count() const {
  sync::lock lock(tenants_mu_);
  return tenant_count_;
}

void DataManager::set_tenant_quota(TenantId tenant, sim::DeviceId dev,
                                   std::size_t bytes) {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  TenantSlot& slot = tenant_slot(tenant);
  // A quota below what is already resident would put the tenant in
  // immediate overrun (audit invariant dm.tenant.quota); shrink only after
  // the tenant has drained below the new bound.
  if (bytes != 0) {
    CA_CHECK(bytes >= slot.resident[dev.value].load(std::memory_order_relaxed),
             "tenant quota set below current residency");
  }
  slot.quota[dev.value].store(bytes, std::memory_order_relaxed);
}

std::size_t DataManager::tenant_quota(TenantId tenant,
                                      sim::DeviceId dev) const {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  return tenant_slot(tenant).quota[dev.value].load(std::memory_order_relaxed);
}

TenantStats DataManager::tenant_stats(TenantId tenant) const {
  const TenantSlot& slot = tenant_slot(tenant);
  TenantStats s;
  for (std::size_t d = 0; d < TenantStats::kMaxDevices; ++d) {
    s.resident[d] = slot.resident[d].load(std::memory_order_relaxed);
  }
  s.allocations = slot.allocations.load(std::memory_order_relaxed);
  s.frees = slot.frees.load(std::memory_order_relaxed);
  s.evictions_caused =
      slot.evictions_caused.load(std::memory_order_relaxed);
  s.evictions_suffered =
      slot.evictions_suffered.load(std::memory_order_relaxed);
  s.evictions_refused =
      slot.evictions_refused.load(std::memory_order_relaxed);
  s.quota_denials = slot.quota_denials.load(std::memory_order_relaxed);
  s.stalls = slot.stalls.load(std::memory_order_relaxed);
  s.stall_seconds = slot.stall_seconds.load(std::memory_order_relaxed);
  return s;
}

// --- Device functions -------------------------------------------------------

DataManager::DeviceStats DataManager::device_stats(sim::DeviceId dev) const {
  const auto& h = heap(dev);
  DeviceStats out;
  {
    sync::lock heap_lock(heap_mu_);
    const auto s = h.alloc->stats();
    out.capacity = s.capacity;
    out.allocated = s.allocated_bytes;
    out.free_bytes = s.free_bytes;
    out.largest_free_block = s.largest_free_block;
    out.regions = s.allocated_blocks;
    out.fragmentation = s.fragmentation();
    out.alloc = s.counters();
  }
  for (std::size_t t = 0; t < kMaxTenants; ++t) {
    out.tenant_resident[t] =
        tenants_[t].resident[dev.value].load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t DataManager::capacity(sim::DeviceId dev) const {
  sync::lock heap_lock(heap_mu_);
  return heap(dev).alloc->capacity();
}

std::size_t DataManager::free_bytes(sim::DeviceId dev) const {
  sync::lock heap_lock(heap_mu_);
  return heap(dev).alloc->stats().free_bytes;
}

std::size_t DataManager::resident_bytes() const {
  sync::lock heap_lock(heap_mu_);
  std::size_t total = 0;
  for (const auto& h : heaps_) total += h->alloc->stats().allocated_bytes;
  return total;
}

void DataManager::defragment(sim::DeviceId dev) {
  // Compaction memmoves live regions: no mover thread may still be touching
  // the arena.  Join every in-flight real copy first -- drain blocks, so it
  // must happen before any lock.  Defragment is a step-boundary op: the
  // caller guarantees no concurrent *data-path* traffic targets this device
  // (metadata ops -- allocate / free / evictfrom from other tenants --
  // serialize on the locks below and are fully safe).
  engine_.drain();
  auto& h = heap(dev);
  {
    sync::lock lock(objects_mu_);
    sync::lock heap_lock(heap_mu_);

    // Window the audit invariant "no pinned object on a defragmenting
    // device": set for the whole compaction (including the throw path -- a
    // mid-defragment audit must see it), cleared on every exit.
    struct DefragWindow {
      std::atomic<int>& slot;
      ~DefragWindow() { slot.store(-1, std::memory_order_relaxed); }
    } window{defragmenting_};
    defragmenting_.store(static_cast<int>(dev.value),
                         std::memory_order_relaxed);

    // Gather live regions in address order; refuse if any is pinned (its
    // kernel holds a raw pointer into the arena).
    std::vector<Region*> live;
    for (const auto& b : h.alloc->blocks()) {
      if (!b.allocated) continue;
      auto* region = static_cast<Region*>(b.cookie);
      CA_CHECK(region != nullptr, "heap block without an owning region");
      if (region->parent() != nullptr && region->parent()->pinned()) {
        throw UsageError("defragment: device holds a pinned region");
      }
      live.push_back(region);
    }

    auto fresh = std::make_unique<mem::FreeListAllocator>(
        h.arena.size(), h.alloc->alignment());
    std::size_t moved = 0;
    for (Region* region : live) {
      const auto new_offset = fresh->allocate(region->size());
      CA_CHECK(new_offset.has_value(),
               "defragment: compacted heap cannot hold its own contents");
      CA_CHECK(*new_offset <= region->offset(),
               "defragment: compaction moved a region to a higher address");
      if (*new_offset != region->offset()) {
        util::move_bytes(h.arena.at(*new_offset),
                         h.arena.at(region->offset()), region->size(),
                         "DataManager::defragment");
        moved += region->size();
        // The region's bytes moved: every raw pointer extracted before this
        // point is invalid.  Advance the generation so ca::ptrprov flags
        // any later use as use-after-relocate naming this site.
        ++region->generation_;
        ptrprov::on_region_mutate(region, region->generation_, "defragment",
                                  std::source_location::current());
      }
      region->offset_ = *new_offset;
      region->data_ = h.arena.at(*new_offset);
      fresh->set_cookie(*new_offset, region);
    }
    h.alloc = std::move(fresh);

    if (moved > 0) {
      // Compaction is same-device traffic: one read + one write per byte.
      const auto& spec = platform_.spec(dev);
      const std::size_t t = engine_.threads_for(moved);
      const double bw =
          std::min(spec.read_bw.at(t), spec.write_curve(true).at(t));
      clock_.advance(static_cast<double>(moved) / bw,
                     sim::TimeCategory::kOther);
      counters_.record_read(dev, moved);
      counters_.record_write(dev, moved);
    }
  }
  CA_AUDIT(*this);
}

void DataManager::for_each_object(
    const std::function<void(const Object&)>& fn) const {
  for (const auto& [ptr, owned] : objects_) fn(*owned);
}

void DataManager::for_each_region(
    const std::function<void(const Region&)>& fn) const {
  for (const auto& [ptr, owned] : regions_) fn(*owned);
}

bool DataManager::owns_region(const Region* region) const noexcept {
  sync::lock lock(objects_mu_);
  return regions_.find(const_cast<Region*>(region)) != regions_.end();
}

void DataManager::check_invariants() const {
  // Snapshot the in-flight registry before taking the table locks:
  // inflight_mu_ is a leaf and must not nest under objects_mu_.
  const auto inflight = inflight_transfers();

  sync::lock lock(objects_mu_);
  sync::lock heap_lock(heap_mu_);

  std::size_t blocks_with_regions = 0;
  for (std::size_t d = 0; d < heaps_.size(); ++d) {
    const auto& h = *heaps_[d];
    h.alloc->check_invariants();
    std::array<std::size_t, kMaxTenants> resident{};
    for (const auto& b : h.alloc->blocks()) {
      if (!b.allocated) continue;
      ++blocks_with_regions;
      const auto* region = static_cast<const Region*>(b.cookie);
      CA_CHECK(region != nullptr, "allocated block without a region cookie");
      CA_CHECK(regions_.count(const_cast<Region*>(region)) == 1,
               "block cookie does not point at a live region");
      CA_CHECK(region->offset() == b.offset, "region/block offset mismatch");
      CA_CHECK(region->device().value == d, "region/block device mismatch");
      CA_CHECK(util::align_up(region->size(), h.alloc->alignment()) == b.size,
               "region/block size mismatch");
      CA_CHECK(region->tenant().value < kMaxTenants,
               "region charged to an out-of-range tenant");
      resident[region->tenant().value] += b.size;
    }
    // dm.tenant.resident / dm.tenant.quota: the lock-free accounting must
    // agree with the heap, and never overrun a set quota.
    for (std::size_t t = 0; t < kMaxTenants; ++t) {
      const std::size_t acct =
          tenants_[t].resident[d].load(std::memory_order_relaxed);
      CA_CHECK(resident[t] == acct,
               "per-tenant resident bytes disagree with the heap");
      const std::size_t quota =
          tenants_[t].quota[d].load(std::memory_order_relaxed);
      CA_CHECK(quota == 0 || acct <= quota,
               "tenant resident bytes exceed its quota");
    }
  }
  CA_CHECK(blocks_with_regions == regions_.size(),
           "region count does not match allocated block count");

  for (const auto& t : inflight) {
    CA_CHECK(t.transfer.valid(), "in-flight registry entry without a handle");
    CA_CHECK(regions_.count(t.dst) == 1,
             "in-flight transfer destination is not a live region");
    CA_CHECK(regions_.count(t.src) == 1,
             "in-flight transfer source is not a live region");
  }

  for (const auto& [ptr, owned] : objects_) {
    const Object& object = *owned;
    CA_CHECK(ptr == owned.get(), "object map key mismatch");
    bool primary_found = object.primary() == nullptr;
    for (std::size_t d = 0; d < Object::kMaxDevices; ++d) {
      const Region* region = object.regions_[d];
      if (region == nullptr) continue;
      CA_CHECK(region->parent() == &object,
               "region parent back-pointer broken");
      CA_CHECK(region->device().value == d, "region filed on wrong device");
      CA_CHECK(region->size() >= object.size(),
               "region smaller than its object");
      CA_CHECK(region->tenant() == object.tenant(),
               "region and parent object tenant mismatch");
      if (region == object.primary()) primary_found = true;
    }
    CA_CHECK(primary_found, "object primary is not among its regions");
  }
}

}  // namespace ca::dm
