#include "dm/data_manager.hpp"

#include "dm/audit_hook.hpp"

#include <algorithm>
#include <source_location>

#include "ptrprov/ptrprov.hpp"
#include "race/access.hpp"
#include "util/align.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ca::dm {

namespace {
constexpr std::size_t kHeapAlignment = 64;  // cache-line aligned regions

/// Names the release path in flight for provenance reports ("free" vs
/// "evictfrom" vs "destroy_object"): a dangling pointer into a region the
/// eviction loop reclaimed reads very differently from one into a region
/// the application freed.
struct ScopedReleaseOp {
  const char*& slot;
  const char* prev;
  ScopedReleaseOp(const char*& s, const char* op) : slot(s), prev(s) {
    s = op;
  }
  ~ScopedReleaseOp() { slot = prev; }
};
}  // namespace

DataManager::DeviceHeap::DeviceHeap(const sim::DeviceSpec& spec)
    : arena(spec.capacity),
      alloc(std::make_unique<mem::FreeListAllocator>(spec.capacity,
                                                     kHeapAlignment)) {}

DataManager::DataManager(const sim::Platform& platform, sim::Clock& clock,
                         telemetry::TrafficCounters& counters)
    : platform_(platform),
      clock_(clock),
      counters_(counters),
      engine_(platform, clock, counters) {
  CA_CHECK(!platform.devices.empty(), "platform has no devices");
  CA_CHECK(platform.devices.size() <= Object::kMaxDevices,
           "too many devices for per-object region tracking");
  heaps_.reserve(platform.devices.size());
  for (const auto& spec : platform.devices) {
    heaps_.push_back(std::make_unique<DeviceHeap>(spec));
  }
}

DataManager::~DataManager() {
  // Mover threads may still hold raw pointers into the arenas; the heaps are
  // destroyed before the engine (reverse member order), so join them first.
  engine_.drain();
}

DataManager::DeviceHeap& DataManager::heap(sim::DeviceId dev) {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  return *heaps_[dev.value];
}

const DataManager::DeviceHeap& DataManager::heap(sim::DeviceId dev) const {
  CA_CHECK(dev.value < heaps_.size(), "unknown device id");
  return *heaps_[dev.value];
}

// --- Object functions -----------------------------------------------------

Object* DataManager::create_object(std::size_t size, std::string name) {
  if (size == 0) throw UsageError("objects must have a positive size");
  auto owned = std::make_unique<Object>();
  Object* object = owned.get();
  object->id_ = next_object_id_++;
  object->size_ = size;
  object->name_ = std::move(name);
  objects_.emplace(object, std::move(owned));
  CA_AUDIT(*this);
  return object;
}

void DataManager::destroy_object(Object* object) {
  CA_CHECK(object != nullptr, "destroy_object(nullptr)");
  const auto it = objects_.find(object);
  if (it == objects_.end()) {
    throw UsageError("destroy_object: unknown or already-destroyed object");
  }
  if (object->pinned()) {
    throw UsageError("destroy_object: object '" + object->name() +
                     "' is pinned by a running kernel");
  }
  const ScopedReleaseOp op(release_op_, "destroy_object");
  for (auto*& region : object->regions_) {
    if (region != nullptr) {
      Region* r = region;
      region = nullptr;
      r->parent_ = nullptr;
      release_region(r);
    }
  }
  object->primary_ = nullptr;
  objects_.erase(it);
  CA_AUDIT(*this);
}

void DataManager::setprimary(Object& object, Region& region) {
  if (object.pinned()) {
    throw UsageError("setprimary: object '" + object.name() +
                     "' is pinned by a running kernel");
  }
  if (region.parent_ == nullptr) {
    // Attach the orphan first (the Listing-1 fast path: a fresh slow-memory
    // region becomes primary directly, without an explicit link).
    if (region.size() < object.size()) {
      throw UsageError("setprimary: region is smaller than the object");
    }
    if (object.region_on(region.device()) != nullptr) {
      throw UsageError(
          "setprimary: object already has a region on that device");
    }
    region.parent_ = &object;
    object.regions_[region.device().value] = &region;
  } else if (region.parent_ != &object) {
    throw UsageError("setprimary: region belongs to a different object");
  }
  object.primary_ = &region;
  CA_AUDIT(*this);
}

void DataManager::unpin(Object& object) {
  CA_CHECK(object.pin_count_ > 0, "unpin of an unpinned object");
  --object.pin_count_;
  CA_AUDIT(*this);
}

// --- Region functions -------------------------------------------------------

Region* DataManager::allocate(sim::DeviceId dev, std::size_t size) {
  if (size == 0) throw UsageError("allocate: size must be positive");
  auto& h = heap(dev);
  const auto offset = h.alloc->allocate(size);
  if (!offset) return nullptr;
  auto owned = std::make_unique<Region>();
  Region* region = owned.get();
  region->device_ = dev;
  region->offset_ = *offset;
  region->size_ = size;
  region->data_ = h.arena.at(*offset);
  h.alloc->set_cookie(*offset, region);
  regions_.emplace(region, std::move(owned));
  CA_RACE_ALLOC(region->data_, region->size_, "DataManager::allocate");
  // Fresh storage starts a fresh provenance history (the address may have
  // belonged to a freed region whose tombstone must not outlive it).
  ptrprov::on_region_alloc(region);
  CA_AUDIT(*this);
  return region;
}

void DataManager::detach(Region& region) noexcept {
  Object* object = region.parent_;
  if (object == nullptr) return;
  object->regions_[region.device().value] = nullptr;
  if (object->primary_ == &region) object->primary_ = nullptr;
  region.parent_ = nullptr;
}

void DataManager::sync_region_real(Region& region) {
  // Copy the matching handles out of the registry before joining: joins can
  // block, and the registry lock is a leaf that must never be held across a
  // blocking call (another task might need it to make progress).
  std::vector<mem::Transfer> pending;
  {
    sync::lock lock(inflight_mu_);
    for (const auto& t : inflight_) {
      if (t.dst == &region || t.src == &region) pending.push_back(t.transfer);
    }
  }
  for (const auto& t : pending) t.join();
  if (region.fill_.valid()) region.fill_.join();
}

void DataManager::release_region(Region* region) {
  // A region's storage may not be reused while a mover thread still reads
  // or writes it: join the real copies, then abandon the modeled completions
  // (an evicted-before-use prefetch is legitimate and must not throw).
  sync_region_real(*region);
  {
    sync::lock lock(inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : inflight_) {
      if (t.dst == region || t.src == region) {
        ++async_stats_.retired;
        continue;
      }
      if (&inflight_[kept] != &t) inflight_[kept] = std::move(t);
      ++kept;
    }
    inflight_.resize(kept);
  }

  ++region->generation_;
  ptrprov::on_region_free(region, release_op_,
                          std::source_location::current());
  CA_RACE_FREE(region->data(), region->size(), "DataManager::release_region");
  auto& h = heap(region->device());
  h.alloc->free(region->offset());
  const auto it = regions_.find(region);
  CA_CHECK(it != regions_.end(), "release of an unknown region");
  regions_.erase(it);
}

void DataManager::free(Region* region) {
  CA_CHECK(region != nullptr, "free(nullptr)");
  if (regions_.find(region) == regions_.end()) {
    throw UsageError("free: unknown or already-freed region");
  }
  Object* object = region->parent();
  if (object != nullptr) {
    if (object->primary() == region && object->region_count() > 1) {
      throw UsageError(
          "free: region is the primary of an object with other regions; "
          "setprimary elsewhere first");
    }
    if (object->pinned() && object->primary() == region) {
      throw UsageError("free: region is pinned by a running kernel");
    }
    detach(*region);
  }
  release_region(region);
  CA_AUDIT(*this);
}

void DataManager::copyto(Region& dst, Region& src) {
  if (dst.size() < src.size()) {
    throw UsageError("copyto: destination region is too small");
  }
  // A synchronous copy consumes the source now: stall for any in-flight
  // fill of it (modeled + real).  The destination only needs its real
  // copies joined -- whatever was being written there is overwritten.
  wait_ready(src);
  sync_region_real(dst);
  const bool non_temporal = true;  // the engine always streams its stores
  engine_.copy(dst.data(), dst.device(), src.data(), src.device(), src.size(),
               non_temporal);
  dst.ready_at_ = 0.0;
  dst.fill_.reset();
  dst.dirty_ = false;
  if (src.parent() != nullptr && src.parent() == dst.parent()) {
    // Linked siblings are now synchronized.
    src.dirty_ = false;
  }
  CA_AUDIT(*this);
}

double DataManager::copyto_async(Region& dst, Region& src) {
  if (dst.size() < src.size()) {
    throw UsageError("copyto_async: destination region is too small");
  }
  // Real-copy ordering: the mover must not read `src` before a pending fill
  // of it has landed, nor write `dst` while another mover still touches it.
  // These joins block the host briefly; they never advance the clock.
  sync_region_real(dst);
  if (src.fill_.valid()) src.fill_.join();

  // Modeled ordering: the transfer cannot start before its source is ready
  // (nor before an earlier modeled fill of the destination completes, so a
  // region's ready_at is always its *latest* writer).
  const double earliest = std::max(src.ready_at_, dst.ready_at_);
  mem::Transfer t =
      engine_.copy_async(dst.data(), dst.device(), src.data(), src.device(),
                         src.size(), earliest, /*non_temporal=*/true);
  const double done = t.done_time();
  dst.ready_at_ = done;
  dst.fill_ = t;
  dst.dirty_ = false;
  if (src.parent() != nullptr && src.parent() == dst.parent()) {
    src.dirty_ = false;
  }
  {
    sync::lock lock(inflight_mu_);
    inflight_.push_back(InflightTransfer{std::move(t), &dst, &src});
    ++async_stats_.scheduled;
    async_stats_.bytes += src.size();
    async_stats_.inflight_peak =
        std::max(async_stats_.inflight_peak, inflight_.size());
  }
  CA_AUDIT(*this);
  return done;
}

void DataManager::wait_ready(Region& region) {
  double stall = 0.0;
  if (region.ready_at_ > clock_.now()) {
    stall = region.ready_at_ - clock_.now();
    clock_.advance(stall, sim::TimeCategory::kMovement);
    sync::lock lock(inflight_mu_);
    ++async_stats_.stalls;
    async_stats_.stall_seconds += stall;
  }
  if (region.fill_.valid()) {
    // Whatever part of the modeled transfer we did NOT stall for was hidden
    // behind other work -- that is the win the async engine exists for.
    const double duration =
        region.fill_.done_time() - region.fill_.start_time();
    {
      sync::lock lock(inflight_mu_);
      async_stats_.overlap_seconds += std::max(0.0, duration - stall);
    }
    region.fill_.join();
    region.fill_.reset();
  }
  region.ready_at_ = 0.0;
  retire_transfers();
  CA_AUDIT(*this);
}

void DataManager::retire_transfers() {
  const double now = clock_.now();
  // Pull retirees out of the registry under the lock, then join their real
  // copies outside it: a registry entry must never outlive its join (the
  // regions could be freed the moment the entry is gone), but the leaf lock
  // must not be held across a blocking join either -- so entries leave the
  // registry and are joined before this function returns control to code
  // that could free them.
  std::vector<mem::Transfer> retired;
  {
    sync::lock lock(inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : inflight_) {
      if (t.transfer.done_time() <= now) {
        retired.push_back(std::move(t.transfer));
        ++async_stats_.retired;
        continue;
      }
      if (&inflight_[kept] != &t) inflight_[kept] = std::move(t);
      ++kept;
    }
    inflight_.resize(kept);
  }
  for (const auto& t : retired) t.join();
  CA_AUDIT(*this);
}

void DataManager::drain_transfers() {
  engine_.drain();
  retire_transfers();
  CA_AUDIT(*this);
}

void DataManager::link(Region& owned, Region& orphan) {
  Object* object = owned.parent();
  if (object == nullptr) {
    throw UsageError("link: first region is not attached to an object");
  }
  if (orphan.parent() != nullptr) {
    throw UsageError("link: second region is already attached to an object");
  }
  if (orphan.size() < object->size()) {
    throw UsageError("link: region is smaller than the object");
  }
  if (object->region_on(orphan.device()) != nullptr) {
    throw UsageError("link: object already has a region on that device");
  }
  orphan.parent_ = object;
  object->regions_[orphan.device().value] = &orphan;
  CA_AUDIT(*this);
}

void DataManager::unlink(Region& region) {
  Object* object = region.parent();
  if (object == nullptr) {
    throw UsageError("unlink: region is not attached to an object");
  }
  if (object->primary() == &region) {
    throw UsageError("unlink: cannot unlink the primary region");
  }
  detach(region);
  CA_AUDIT(*this);
}

Region* DataManager::getlinked(const Region& region,
                               sim::DeviceId dev) const noexcept {
  const Object* object = region.parent();
  if (object == nullptr) return nullptr;
  return object->region_on(dev);
}

bool DataManager::evictfrom(sim::DeviceId dev, std::size_t start_offset,
                            std::size_t size,
                            const std::function<bool(Region&)>& evict) {
  CA_CHECK(evict != nullptr, "evictfrom requires an eviction callback");
  auto& h = heap(dev);
  const std::size_t align = h.alloc->alignment();
  size = util::align_up(size, align);
  const std::size_t capacity = h.alloc->capacity();
  if (size > capacity) return false;

  std::size_t cursor =
      std::min(util::align_down(start_offset, align), capacity - size);
  const std::size_t initial = cursor;
  bool wrapped = false;

  for (;;) {
    CA_AUDIT(*this);
    // Find the first live block intersecting the window [cursor, cursor+size).
    std::optional<std::size_t> blocked;
    h.alloc->for_blocks_from(cursor, [&](const mem::FreeListAllocator::
                                             BlockView& b) {
      if (b.offset >= cursor + size) return false;
      if (b.allocated) {
        blocked = b.offset;
        return false;
      }
      return true;
    });
    if (!blocked) return true;  // window is entirely free (and coalesced)

    auto* region = static_cast<Region*>(h.alloc->cookie(*blocked));
    CA_CHECK(region != nullptr, "heap block without an owning region");
    const std::size_t block_end = *blocked + h.alloc->block_size(*blocked);

    bool relocated = false;
    {
      const ScopedReleaseOp op(release_op_, "evictfrom");
      relocated = evict(*region);
    }
    if (relocated) {
      // The callback claims the region was relocated and freed; verify so a
      // misbehaving policy cannot spin us forever.
      if (h.alloc->is_allocated(*blocked) &&
          h.alloc->cookie(*blocked) == region) {
        throw UsageError(
            "evictfrom: eviction callback returned success without freeing "
            "the region");
      }
      continue;  // re-examine the same window
    }

    // Refused (e.g. pinned object): restart the search past this block.
    std::size_t next = block_end;
    if (next + size > capacity) {
      if (wrapped) return false;
      wrapped = true;
      next = 0;
    }
    if (wrapped && next >= initial) return false;
    cursor = next;
  }
}

// --- Device functions -------------------------------------------------------

DataManager::DeviceStats DataManager::device_stats(sim::DeviceId dev) const {
  const auto& h = heap(dev);
  const auto s = h.alloc->stats();
  DeviceStats out;
  out.capacity = s.capacity;
  out.allocated = s.allocated_bytes;
  out.free_bytes = s.free_bytes;
  out.largest_free_block = s.largest_free_block;
  out.regions = s.allocated_blocks;
  out.fragmentation = s.fragmentation();
  out.alloc = s.counters();
  return out;
}

std::size_t DataManager::capacity(sim::DeviceId dev) const {
  return heap(dev).alloc->capacity();
}

std::size_t DataManager::free_bytes(sim::DeviceId dev) const {
  return heap(dev).alloc->stats().free_bytes;
}

std::size_t DataManager::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& h : heaps_) total += h->alloc->stats().allocated_bytes;
  return total;
}

void DataManager::defragment(sim::DeviceId dev) {
  // Compaction memmoves live regions: no mover thread may still be touching
  // the arena.  Join every in-flight real copy first (host-side only).
  engine_.drain();
  auto& h = heap(dev);

  // Window the audit invariant "no pinned object on a defragmenting
  // device": set for the whole compaction (including the throw path — a
  // mid-defragment audit must see it), cleared on every exit.
  struct DefragWindow {
    int& slot;
    ~DefragWindow() { slot = -1; }
  } window{defragmenting_};
  defragmenting_ = static_cast<int>(dev.value);

  // Gather live regions in address order; refuse if any is pinned (its
  // kernel holds a raw pointer into the arena).
  std::vector<Region*> live;
  for (const auto& b : h.alloc->blocks()) {
    if (!b.allocated) continue;
    auto* region = static_cast<Region*>(b.cookie);
    CA_CHECK(region != nullptr, "heap block without an owning region");
    if (region->parent() != nullptr && region->parent()->pinned()) {
      throw UsageError("defragment: device holds a pinned region");
    }
    live.push_back(region);
  }

  auto fresh = std::make_unique<mem::FreeListAllocator>(
      h.arena.size(), h.alloc->alignment());
  std::size_t moved = 0;
  for (Region* region : live) {
    const auto new_offset = fresh->allocate(region->size());
    CA_CHECK(new_offset.has_value(),
             "defragment: compacted heap cannot hold its own contents");
    CA_CHECK(*new_offset <= region->offset(),
             "defragment: compaction moved a region to a higher address");
    if (*new_offset != region->offset()) {
      util::move_bytes(h.arena.at(*new_offset), h.arena.at(region->offset()),
                       region->size(), "DataManager::defragment");
      moved += region->size();
      // The region's bytes moved: every raw pointer extracted before this
      // point is invalid.  Advance the generation so ca::ptrprov flags any
      // later use as use-after-relocate naming this site.
      ++region->generation_;
      ptrprov::on_region_mutate(region, region->generation_, "defragment",
                                std::source_location::current());
    }
    region->offset_ = *new_offset;
    region->data_ = h.arena.at(*new_offset);
    fresh->set_cookie(*new_offset, region);
  }
  h.alloc = std::move(fresh);

  if (moved > 0) {
    // Compaction is same-device traffic: one read + one write per byte.
    const auto& spec = platform_.spec(dev);
    const std::size_t t = engine_.threads_for(moved);
    const double bw =
        std::min(spec.read_bw.at(t), spec.write_curve(true).at(t));
    clock_.advance(static_cast<double>(moved) / bw,
                   sim::TimeCategory::kOther);
    counters_.record_read(dev, moved);
    counters_.record_write(dev, moved);
  }
  CA_AUDIT(*this);
}

void DataManager::for_each_object(
    const std::function<void(const Object&)>& fn) const {
  for (const auto& [ptr, owned] : objects_) fn(*owned);
}

void DataManager::for_each_region(
    const std::function<void(const Region&)>& fn) const {
  for (const auto& [ptr, owned] : regions_) fn(*owned);
}

bool DataManager::owns_region(const Region* region) const noexcept {
  return regions_.find(const_cast<Region*>(region)) != regions_.end();
}

void DataManager::check_invariants() const {
  std::size_t blocks_with_regions = 0;
  for (std::size_t d = 0; d < heaps_.size(); ++d) {
    const auto& h = *heaps_[d];
    h.alloc->check_invariants();
    for (const auto& b : h.alloc->blocks()) {
      if (!b.allocated) continue;
      ++blocks_with_regions;
      const auto* region = static_cast<const Region*>(b.cookie);
      CA_CHECK(region != nullptr, "allocated block without a region cookie");
      CA_CHECK(regions_.count(const_cast<Region*>(region)) == 1,
               "block cookie does not point at a live region");
      CA_CHECK(region->offset() == b.offset, "region/block offset mismatch");
      CA_CHECK(region->device().value == d, "region/block device mismatch");
      CA_CHECK(util::align_up(region->size(), h.alloc->alignment()) == b.size,
               "region/block size mismatch");
    }
  }
  CA_CHECK(blocks_with_regions == regions_.size(),
           "region count does not match allocated block count");

  {
    sync::lock lock(inflight_mu_);
    for (const auto& t : inflight_) {
      CA_CHECK(t.transfer.valid(),
               "in-flight registry entry without a handle");
      CA_CHECK(regions_.count(t.dst) == 1,
               "in-flight transfer destination is not a live region");
      CA_CHECK(regions_.count(t.src) == 1,
               "in-flight transfer source is not a live region");
    }
  }

  for (const auto& [ptr, owned] : objects_) {
    const Object& object = *owned;
    CA_CHECK(ptr == owned.get(), "object map key mismatch");
    bool primary_found = object.primary() == nullptr;
    for (std::size_t d = 0; d < Object::kMaxDevices; ++d) {
      const Region* region = object.regions_[d];
      if (region == nullptr) continue;
      CA_CHECK(region->parent() == &object, "region parent back-pointer broken");
      CA_CHECK(region->device().value == d, "region filed on wrong device");
      CA_CHECK(region->size() >= object.size(),
               "region smaller than its object");
      if (region == object.primary()) primary_found = true;
    }
    CA_CHECK(primary_found, "object primary is not among its regions");
  }
}

}  // namespace ca::dm
