// Objects and regions: the level of indirection at the heart of
// CachedArrays (paper §III-C).
//
// An Object is the logical entity the application sees (e.g. the storage of
// one tensor).  A Region is a contiguous slice of one device's heap that
// holds data for an object.  Exactly one region per object is the *primary*
// (holds the current data); any other linked region is a *secondary* copy
// that is valid while the primary is clean and stale once the primary has
// been written.  At most one region per device may be linked to an object.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "dm/tenant.hpp"
#include "mem/transfer.hpp"
#include "race/sync.hpp"
#include "sim/device.hpp"

namespace ca::dm {

class Object;

using ObjectId = std::uint64_t;

/// Semantic class of an object, set at creation.  The data manager itself
/// is class-agnostic; the tag exists so a semantic policy can key lifetime
/// rules off it (DESIGN.md §3.6).  `kGradient` marks write-once
/// read-by-peers gradient buckets: allocated hot at backward start,
/// archived/retired the instant the reduced result is applied, so the
/// policy may demote them off DRAM between steps while plain LRU cannot.
enum class ObjectClass : std::uint8_t {
  kGeneric = 0,
  kGradient = 1,
};

[[nodiscard]] constexpr const char* to_string(ObjectClass cls) noexcept {
  switch (cls) {
    case ObjectClass::kGeneric:
      return "generic";
    case ObjectClass::kGradient:
      return "gradient";
  }
  return "?";
}

/// A contiguous slice of one device's heap.  Regions are created and owned
/// by the DataManager; all pointers here are non-owning views into its
/// state.
class Region {
 public:
  [[nodiscard]] sim::DeviceId device() const noexcept { return device_; }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::byte* data() const noexcept { return data_; }

  /// Object this region is linked to; nullptr for an orphan region fresh
  /// out of `allocate`.
  [[nodiscard]] Object* parent() const noexcept { return parent_; }

  /// Dirty means: this region's data has been modified since it was last
  /// synchronized with its linked sibling(s).
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }

  /// Simulated time at which an in-flight asynchronous fill of this region
  /// completes; consumers must wait until then (0 = ready now).
  [[nodiscard]] double ready_at() const noexcept { return ready_at_; }

  /// Handle to the asynchronous transfer currently filling this region
  /// (invalid when no fill is pending).  The real bytes may still be in
  /// flight on a mover thread even after `ready_at` has passed on the
  /// simulated clock, and vice versa.
  [[nodiscard]] const mem::Transfer& pending_fill() const noexcept {
    return fill_;
  }

  /// Relocation generation (paper §III-C pin discipline, made checkable):
  /// bumped by the DataManager whenever this region's bytes move
  /// (defragment compaction) or its storage is released.  A raw pointer
  /// obtained from data() is valid only for the generation it was
  /// extracted under; ca::ptrprov flags any use after the counter has
  /// advanced.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Tenant whose quota this region's bytes are charged against: the
  /// allocating tenant, fixed for the region's lifetime.  link/setprimary
  /// require it to match the object's tenant (a tenant may only attach its
  /// own storage).
  [[nodiscard]] TenantId tenant() const noexcept { return tenant_; }

 private:
  friend class DataManager;
  friend struct DataManagerTestPeer;
  friend struct RaceTestPeer;

  sim::DeviceId device_{};
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
  std::byte* data_ = nullptr;
  Object* parent_ = nullptr;
  bool dirty_ = false;
  double ready_at_ = 0.0;
  mem::Transfer fill_;
  std::uint64_t generation_ = 0;
  TenantId tenant_{};
  /// Two-phase release claim (guarded by the manager's objects_mu_): set
  /// when a release path has committed to freeing this region, so a
  /// concurrent second free is diagnosed as a usage error instead of
  /// corrupting the heap.
  bool releasing_ = false;
};

/// The logical data entity.  Holds up to one region per device; the primary
/// region holds the authoritative bytes.
class Object {
 public:
  static constexpr std::size_t kMaxDevices = 4;

  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] Region* primary() const noexcept { return primary_; }

  /// Linked region on `dev`, or nullptr.
  [[nodiscard]] Region* region_on(sim::DeviceId dev) const noexcept {
    return dev.value < kMaxDevices ? regions_[dev.value] : nullptr;
  }

  /// Number of devices currently holding a region for this object.
  [[nodiscard]] std::size_t region_count() const noexcept {
    std::size_t n = 0;
    for (auto* r : regions_) n += (r != nullptr);
    return n;
  }

  /// While pinned (a kernel is executing against the primary's pointer) the
  /// primary region must not change (paper §III-C, Data Access).  The
  /// counter is a lock-free atomic: cross-tenant machinery (evictfrom
  /// candidate checks, audits) reads it without the object-table lock.
  [[nodiscard]] bool pinned() const noexcept { return pin_count_.load() > 0; }
  [[nodiscard]] int pin_count() const noexcept { return pin_count_.load(); }

  /// Owning tenant (set at creation; regions allocated for this object
  /// default to the same tenant).
  [[nodiscard]] TenantId tenant() const noexcept { return tenant_; }

  /// Semantic class (set at creation, immutable).  Policies key lifetime
  /// rules off it; the manager itself never branches on it.
  [[nodiscard]] ObjectClass object_class() const noexcept { return class_; }

 private:
  friend class DataManager;
  friend struct DataManagerTestPeer;

  ObjectId id_ = 0;
  std::size_t size_ = 0;
  std::string name_;
  Region* primary_ = nullptr;
  std::array<Region*, kMaxDevices> regions_{};
  mutable sync::atomic<int> pin_count_{0};
  TenantId tenant_{};
  ObjectClass class_ = ObjectClass::kGeneric;
};

}  // namespace ca::dm
