// The CA_AUDIT() seam: lets the ca::audit library observe every
// DataManager mutation boundary without creating a dependency cycle
// (ca_audit links ca_dm, so ca_dm cannot call ca::audit::verify directly).
//
// The data manager invokes CA_AUDIT(*this) at the end of every mutating
// operation.  When CA_AUDIT_ENABLED is defined (Debug builds, or any build
// configured with -DCA_AUDIT=ON) the macro forwards to an installed hook --
// typically ca::audit::ScopedAbortHook, which runs the full invariant audit
// and aborts with a report on the first violation.  When the macro is
// compiled out, or no hook is installed, the cost is zero / one relaxed
// atomic load respectively.
#pragma once

namespace ca::dm {

class DataManager;

/// Hook invoked by CA_AUDIT() with the manager that just mutated.  The hook
/// must not call back into mutating DataManager operations.
using AuditHookFn = void (*)(const DataManager&);

void set_audit_hook(AuditHookFn fn) noexcept;
[[nodiscard]] AuditHookFn audit_hook() noexcept;

namespace detail {
void run_audit_hook(const DataManager& dm);
}  // namespace detail

}  // namespace ca::dm

#if defined(CA_AUDIT_ENABLED)
#define CA_AUDIT(manager) ::ca::dm::detail::run_audit_hook(manager)
#else
#define CA_AUDIT(manager) static_cast<void>(manager)
#endif
