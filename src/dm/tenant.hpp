// Tenant identity and per-tenant accounting for the shared DataManager.
//
// The paper's prototype serves one trainer; the production setting the
// ROADMAP targets is N models/request streams contending for one
// DRAM+NVRAM heap (cf. "Online Application Guidance for Heterogeneous
// Memory Systems", which manages multiple applications' tier placement
// online).  A TenantId names one such client.  It is threaded through
// allocate/evictfrom/create_object so the manager can account bytes,
// evictions and stalls per tenant and enforce the per-tenant device
// quota that is the fairness/QoS knob: with a quota set, one tenant's
// allocation burst cannot displace every other tenant's working set.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ca::dm {

/// Identifies one client (trainer / request stream) of a shared
/// DataManager.  Value 0 is the default tenant: single-client code that
/// never registers tenants runs entirely under it and sees no behaviour
/// change.
struct TenantId {
  std::uint32_t value = 0;

  friend bool operator==(TenantId a, TenantId b) noexcept {
    return a.value == b.value;
  }
  friend bool operator!=(TenantId a, TenantId b) noexcept {
    return a.value != b.value;
  }
};

/// Fixed tenant-slot count: accounting lives in flat per-slot atomic
/// blocks (no map, no lock on the hot path).  16 slots cover the default
/// tenant plus the widest data-parallel trainer fleet (dp::Trainer at
/// K = 8) with headroom.
inline constexpr std::size_t kMaxTenants = 16;

/// Snapshot of one tenant's accounting (returned by value from
/// DataManager::tenant_stats; internally these are lock-free atomics).
struct TenantStats {
  static constexpr std::size_t kMaxDevices = 8;

  /// Bytes currently resident per device tier (heap-aligned sizes, so the
  /// per-tenant sum over live tenants equals the device's allocated bytes
  /// -- audit invariant dm.tenant.resident).
  std::array<std::size_t, kMaxDevices> resident = {};

  std::uint64_t allocations = 0;       ///< successful region allocations
  std::uint64_t frees = 0;             ///< region releases (any path)
  std::uint64_t evictions_caused = 0;  ///< evictfrom calls this tenant issued
                                       ///< that displaced another tenant
  std::uint64_t evictions_suffered = 0;  ///< regions this tenant lost to
                                         ///< another tenant's evictfrom
  std::uint64_t evictions_refused = 0;  ///< foreign victims this tenant's
                                        ///< evictfrom scans skipped (tenant
                                        ///< isolation refusals)
  std::uint64_t quota_denials = 0;  ///< allocations refused by the QoS quota
  std::uint64_t stalls = 0;         ///< wait_ready calls that had to stall
  double stall_seconds = 0.0;       ///< simulated seconds spent stalling
};

}  // namespace ca::dm
