// The data manager: owner of the per-device heaps and the data-management
// API the policy layer drives (paper §III-C, "Data management API").
//
// Functions fall into the paper's three categories:
//   * object functions: getprimary, setprimary (plus object lifecycle and
//     kernel pinning);
//   * region functions: allocate, free, copyto, link, unlink, size_of,
//     getlinked, in, parent, dirty tracking, evictfrom;
//   * device functions: capacity / occupancy queries, defragmentation.
//
// The data manager knows nothing about *why* data moves -- that is the
// policy's job -- and the application never calls it directly.  This is the
// separation of concerns the paper argues for.
//
// Multi-tenant sharing (ROADMAP north-star; DESIGN.md §3.5): one manager
// may be driven by K concurrent clients, each identified by a TenantId.
// The serial monolith is split into fine-grained lock domains --
// `objects_mu_` (object/region tables and linkage), `heap_mu_` (the device
// allocators), `tenants_mu_` (tenant registration), and the existing
// `inflight_mu_` (async-transfer registry) -- with the single sanctioned
// nesting objects_mu_ -> heap_mu_ declared in docs/lock_hierarchy.json and
// enforced by ca::lockdep.  Per-tenant accounting and the per-tenant device
// quota (the fairness/QoS knob) are lock-free atomics.  The per-*object*
// data path (copyto, wait_ready, dirty bits) remains owner-serial: a tenant
// may not operate on another tenant's objects, and `evictfrom` refuses
// cross-tenant victims -- displacement of another tenant's data only ever
// happens through that tenant's own policy.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "dm/object.hpp"
#include "dm/tenant.hpp"
#include "mem/arena.hpp"
#include "mem/copy_engine.hpp"
#include "mem/freelist_allocator.hpp"
#include "race/sync.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "util/thread_annotations.hpp"

namespace ca::dm {

struct DataManagerTestPeer;
struct RaceTestPeer;
class PinnedSpan;

class DataManager {
 public:
  struct DeviceStats {
    std::size_t capacity = 0;
    std::size_t allocated = 0;
    std::size_t free_bytes = 0;
    std::size_t largest_free_block = 0;
    std::size_t regions = 0;
    double fragmentation = 0.0;

    /// Hot-path counters of the device's binned heap allocator (splits,
    /// coalesces, bin hit rate); see telemetry::AllocatorCounters.
    telemetry::AllocatorCounters alloc;

    /// Bytes resident on this device per tenant slot (heap-aligned; the
    /// sum over live tenants equals `allocated` -- audit invariant
    /// dm.tenant.resident).
    std::array<std::size_t, kMaxTenants> tenant_resident = {};
  };

  /// Aggregate statistics for asynchronous transfers (paper §V-c).
  struct AsyncStats {
    std::uint64_t scheduled = 0;      ///< copyto_async calls
    std::uint64_t bytes = 0;          ///< bytes scheduled asynchronously
    std::uint64_t retired = 0;        ///< transfers fully completed + retired
    std::uint64_t stalls = 0;         ///< wait_ready calls that had to stall
    double stall_seconds = 0.0;       ///< simulated seconds spent stalling
    double overlap_seconds = 0.0;     ///< modeled transfer time hidden behind
                                      ///< other work (duration - stall)
    std::size_t inflight_peak = 0;    ///< max transfers in the registry
  };

  /// One scheduled-but-not-yet-retired asynchronous transfer.  `dst` and
  /// `src` stay live (never freed or relocated) until the entry retires;
  /// the audit library checks exactly that.
  struct InflightTransfer {
    mem::Transfer transfer;
    Region* dst = nullptr;
    Region* src = nullptr;
  };

  DataManager(const sim::Platform& platform, sim::Clock& clock,
              telemetry::TrafficCounters& counters);
  ~DataManager();

  DataManager(const DataManager&) = delete;
  DataManager& operator=(const DataManager&) = delete;

  // --- Object functions -------------------------------------------------

  /// Create a logical object of `size` bytes for `tenant`.  No storage is
  /// attached yet; the policy decides where the first region goes.  `cls`
  /// tags the object's semantic class (gradient buckets etc.) for
  /// class-aware policies; the manager never branches on it.
  Object* create_object(std::size_t size, std::string name = {},
                        TenantId tenant = {},
                        ObjectClass cls = ObjectClass::kGeneric);

  /// Destroy an object and free all its regions.  Must not be pinned.
  void destroy_object(Object* object);

  [[nodiscard]] Region* getprimary(const Object& object) const noexcept {
    return object.primary();
  }

  /// Make `region` the primary for `object`.  If `region` is an orphan it
  /// is attached to the object first; otherwise it must already be linked
  /// to this object.  Fails if the object is pinned.
  void setprimary(Object& object, Region& region);

  /// Pin/unpin: while pinned, the primary pointer handed to a kernel stays
  /// valid (setprimary and destroy_object are rejected).  The counter is
  /// atomic so cross-tenant machinery (evictfrom candidate checks, audits)
  /// may read it without taking the object-table lock.
  void pin(Object& object) noexcept { object.pin_count_.fetch_add(1); }
  void unpin(Object& object);

  /// The sanctioned data accessor (ca::ptrprov runtime half): pins the
  /// object, stalls for any pending async fill of its primary, marks it
  /// dirty on write intent, and returns a provenance-tracked RAII span.
  /// Destroying the span unpins.  Defined in dm/pinned_span.hpp.
  PinnedSpan access(Object& object, bool write = false,
                    std::source_location loc = std::source_location::current());

  // --- Region functions -------------------------------------------------

  /// Allocate an orphan region of `size` bytes on `dev`, charged to
  /// `tenant`.  Returns nullptr when the device heap cannot satisfy the
  /// request (not an error: the policy probes and falls back) or when the
  /// tenant's quota on `dev` would be exceeded (the QoS knob; counted as a
  /// quota denial).
  [[nodiscard]] Region* allocate(sim::DeviceId dev, std::size_t size,
                                 TenantId tenant = {});

  /// Free a region.  If linked, it is unlinked first; the primary of an
  /// object with other regions cannot be freed directly (re-assign first).
  void free(Region* region);

  /// High-performance copy between regions (sizes must match).  Marks `dst`
  /// clean: after a copy the two regions hold identical bytes.  If both are
  /// linked to the same object, `src` is marked clean as well (they are now
  /// synchronized).
  void copyto(Region& dst, Region& src);

  /// Asynchronous copy (the paper's §V-c future-work item: "asynchronous
  /// data movement could be implemented with a separate thread pool").
  /// The real bytes move in the background on one of the copy engine's
  /// mover channels; the *modeled* transfer starts at
  /// max(now, channel availability, source readiness) and completes
  /// `modeled_copy_time` later.  The destination's `ready_at()` is set to
  /// the completion time; consumers stall only for whatever remains at use
  /// time (see `wait_ready`).  The transfer is tracked in an in-flight
  /// registry until it retires; both regions must stay live until then
  /// (free and defragment enforce this by joining first).  Returns the
  /// modeled completion time.
  double copyto_async(Region& dst, Region& src);

  /// Stall (advance the clock, charged as movement) until any in-flight
  /// async fill of `region` has completed, and join the real bytes so the
  /// caller may touch the region's memory.
  void wait_ready(Region& region);

  /// Latest modeled completion across all mover channels (no in-flight
  /// transfer completes later than this).
  [[nodiscard]] double mover_busy_until() const {
    return engine_.mover_horizon();
  }

  /// Remove registry entries whose modeled completion has passed (joining
  /// their real copies).  Called automatically by wait_ready/copyto_async;
  /// exposed for step-boundary housekeeping.
  void retire_transfers();

  /// Block the host until every scheduled real memcpy has finished, then
  /// retire everything the clock has caught up with.  Never advances the
  /// simulated clock.
  void drain_transfers();

  /// Snapshot of the async-transfer statistics.  Lock-free: the counters
  /// are plain relaxed atomics, so telemetry polling from one tenant never
  /// contends with another tenant's retire_transfers on the registry lock.
  [[nodiscard]] AsyncStats async_stats() const {
    AsyncStats s;
    s.scheduled = async_counters_.scheduled.load(std::memory_order_relaxed);
    s.bytes = async_counters_.bytes.load(std::memory_order_relaxed);
    s.retired = async_counters_.retired.load(std::memory_order_relaxed);
    s.stalls = async_counters_.stalls.load(std::memory_order_relaxed);
    s.stall_seconds =
        async_counters_.stall_seconds.load(std::memory_order_relaxed);
    s.overlap_seconds =
        async_counters_.overlap_seconds.load(std::memory_order_relaxed);
    s.inflight_peak =
        async_counters_.inflight_peak.load(std::memory_order_relaxed);
    return s;
  }

  /// Snapshot of the scheduled-but-not-retired transfer registry (for
  /// ca::audit).  Copied under the registry lock.
  [[nodiscard]] std::vector<InflightTransfer> inflight_transfers() const
      CA_EXCLUDES(inflight_mu_) {
    sync::lock lock(inflight_mu_);
    return inflight_;
  }

  /// Link an orphan region to the object of an owned region (they become
  /// siblings holding copies of the same logical data).
  void link(Region& owned, Region& orphan);

  /// Detach `region` from its object.  The primary cannot be unlinked.
  void unlink(Region& region);

  /// Size, device membership, parent (paper query functions).
  [[nodiscard]] std::size_t size_of(const Region& region) const noexcept {
    return region.size();
  }
  [[nodiscard]] bool in(const Region& region,
                        sim::DeviceId dev) const noexcept {
    return region.device() == dev;
  }
  [[nodiscard]] Region* getlinked(const Region& region,
                                  sim::DeviceId dev) const noexcept;
  [[nodiscard]] Object* parent(const Region& region) const noexcept {
    return region.parent();
  }

  void markdirty(Region& region) noexcept { region.dirty_ = true; }
  void markclean(Region& region) noexcept { region.dirty_ = false; }
  [[nodiscard]] bool isdirty(const Region& region) const noexcept {
    return region.dirty();
  }

  /// Reclaim a contiguous window of at least `size` bytes on `dev`.
  ///
  /// Walks blocks in address order starting at `start_offset`; for every
  /// live region in the candidate window the `evict` callback is invoked
  /// and must either relocate-and-free the region (returning true) or
  /// refuse (returning false, e.g. the object is pinned), in which case the
  /// search restarts past the refused block.  Wraps around the heap once.
  /// Returns true once a free window of `size` bytes exists.
  ///
  /// Tenant isolation: a candidate region owned by a tenant other than
  /// `requester` is refused *without* invoking the callback -- one tenant
  /// must never relocate or free another tenant's live storage (the owner
  /// could be using it concurrently); cross-tenant displacement only
  /// happens through the owning tenant's own policy.  Refused foreign
  /// blocks restart the search like a callback refusal.
  bool evictfrom(sim::DeviceId dev, std::size_t start_offset,
                 std::size_t size,
                 const std::function<bool(Region&)>& evict,
                 TenantId requester = {});

  // --- Tenant functions ---------------------------------------------------

  /// Register a named tenant and return its id.  Tenant 0 is the implicit
  /// default client and needs no registration; at most kMaxTenants tenants
  /// (including the default) may exist.
  TenantId register_tenant(std::string name) CA_EXCLUDES(tenants_mu_);

  /// Number of registered tenants (>= 1: the default tenant).
  [[nodiscard]] std::size_t tenant_count() const CA_EXCLUDES(tenants_mu_);

  /// The fairness/QoS knob: cap `tenant`'s resident bytes on `dev` at
  /// `bytes` (0 = unlimited, the default).  An allocation that would push
  /// the tenant past its quota fails like heap exhaustion and is counted
  /// as a quota denial, so one tenant's allocation storm cannot displace
  /// every other tenant's working set.  A non-zero quota below the
  /// tenant's current residency is rejected (it would be an instant
  /// overrun -- audit invariant dm.tenant.quota); drain first, then shrink.
  void set_tenant_quota(TenantId tenant, sim::DeviceId dev, std::size_t bytes);

  [[nodiscard]] std::size_t tenant_quota(TenantId tenant,
                                         sim::DeviceId dev) const;

  /// Lock-free snapshot of one tenant's accounting (resident bytes per
  /// tier, evictions caused/suffered, quota denials, stall time).
  [[nodiscard]] TenantStats tenant_stats(TenantId tenant) const;

  // --- Device functions ---------------------------------------------------

  [[nodiscard]] std::size_t device_count() const noexcept {
    return heaps_.size();
  }
  [[nodiscard]] DeviceStats device_stats(sim::DeviceId dev) const;
  [[nodiscard]] std::size_t capacity(sim::DeviceId dev) const;
  [[nodiscard]] std::size_t free_bytes(sim::DeviceId dev) const;

  /// Total bytes currently allocated across all device heaps (the resident
  /// heap footprint plotted in Fig. 3).
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Compact `dev`'s heap: slide every live region to the lowest possible
  /// address (objects are relocated; pinned objects must not exist on this
  /// device).  Charges TimeCategory::kOther; the paper defragments between
  /// iterations and reports the overhead as negligible.
  void defragment(sim::DeviceId dev);

  /// Device currently being defragmented, or -1.  While set, no pinned
  /// object may hold a region on that device (audit invariant dm.pin:
  /// compaction memmoves every live region on it).
  [[nodiscard]] int defragmenting_device() const noexcept {
    return defragmenting_.load(std::memory_order_relaxed);
  }

  /// Verify cross-structure invariants (allocator tiling, region/block
  /// agreement, object/region back-pointers, the fast-primary invariant is
  /// policy-level and not checked here).  For tests.  `audit::verify` is the
  /// exhaustive, non-throwing counterpart that returns a structured report.
  void check_invariants() const;

  // --- Read-only introspection (the ca::audit library and tests) ----------

  /// The offset-space allocator backing `dev`'s heap.
  [[nodiscard]] const mem::FreeListAllocator& allocator(sim::DeviceId dev)
      const {
    return *heap(dev).alloc;
  }

  /// Visit every live object / region.  Order unspecified.  Audit-only:
  /// walks the tables without objects_mu_ (the audit runs at mutation
  /// boundaries on a quiescent manager, and its callbacks re-enter
  /// owns_region, which does lock), so callers must guarantee no
  /// concurrent mutators.
  void for_each_object(const std::function<void(const Object&)>& fn) const
      CA_NO_THREAD_SAFETY_ANALYSIS;
  void for_each_region(const std::function<void(const Region&)>& fn) const
      CA_NO_THREAD_SAFETY_ANALYSIS;

  /// True iff `region` is currently owned by this manager (its storage is
  /// live).  Lets an auditor validate allocator cookies without touching
  /// possibly-dangling memory.
  [[nodiscard]] bool owns_region(const Region* region) const noexcept
      CA_EXCLUDES(objects_mu_);

  [[nodiscard]] const sim::Clock& clock() const noexcept { return clock_; }

  [[nodiscard]] mem::CopyEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const mem::CopyEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] sim::Clock& clock() noexcept { return clock_; }
  [[nodiscard]] telemetry::TrafficCounters& counters() noexcept {
    return counters_;
  }

  /// Number of live objects (for leak tests).
  [[nodiscard]] std::size_t live_objects() const CA_EXCLUDES(objects_mu_) {
    sync::lock lock(objects_mu_);
    return objects_.size();
  }
  [[nodiscard]] std::size_t live_regions() const CA_EXCLUDES(objects_mu_) {
    sync::lock lock(objects_mu_);
    return regions_.size();
  }

 private:
  friend struct DataManagerTestPeer;
  friend struct RaceTestPeer;

  struct DeviceHeap {
    explicit DeviceHeap(const sim::DeviceSpec& spec);
    mem::Arena arena;
    std::unique_ptr<mem::FreeListAllocator> alloc;
  };

  DeviceHeap& heap(sim::DeviceId dev);
  const DeviceHeap& heap(sim::DeviceId dev) const;
  void detach(Region& region) noexcept CA_REQUIRES(objects_mu_);
  /// Second half of every release path.  Caller has already detached the
  /// region and claimed it (releasing_) under objects_mu_; this joins the
  /// region's real copies lock-free, then frees block + table entry under
  /// objects_mu_ -> heap_mu_ and charges the owning tenant's accounting.
  void release_region(Region* region) CA_EXCLUDES(objects_mu_);

  /// Join (host-block on) the real copy of every in-flight transfer that
  /// reads from or writes into `region`, so its bytes may be touched, moved
  /// or its storage reused.  Never advances the simulated clock.
  void sync_region_real(Region& region);

  /// One tenant's accounting block: lock-free relaxed atomics (pure
  /// accounting sums).  Quota admission is an atomic reserve on `resident`
  /// (fetch_add before the heap lock, rolled back on failure), so the
  /// invariant "resident never exceeds a non-zero quota" holds without any
  /// lock.
  struct TenantSlot {
    std::array<std::atomic<std::size_t>, TenantStats::kMaxDevices> resident{};
    std::array<std::atomic<std::size_t>, TenantStats::kMaxDevices> quota{};
    std::atomic<std::uint64_t> allocations{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> evictions_caused{0};
    std::atomic<std::uint64_t> evictions_suffered{0};
    std::atomic<std::uint64_t> evictions_refused{0};
    std::atomic<std::uint64_t> quota_denials{0};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<double> stall_seconds{0.0};
  };

  /// Async-transfer statistics as relaxed atomics, mirroring AsyncStats
  /// field-for-field, so async_stats() needs no lock.
  struct AsyncCounters {
    std::atomic<std::uint64_t> scheduled{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> retired{0};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<double> stall_seconds{0.0};
    std::atomic<double> overlap_seconds{0.0};
    std::atomic<std::size_t> inflight_peak{0};
  };

  /// Accounting slot for `tenant` (bounds-checked: ids come from
  /// register_tenant or are the default 0).
  TenantSlot& tenant_slot(TenantId tenant) const;

  const sim::Platform& platform_;
  sim::Clock& clock_;
  telemetry::TrafficCounters& counters_;
  mem::CopyEngine engine_;
  /// Device currently being compacted, -1 when none.  Atomic so the
  /// lock-free defragmenting_device() query (audit, pin checks) is safe.
  std::atomic<int> defragmenting_{-1};
  /// The vector itself is immutable after construction (one heap per
  /// platform device); all allocator/arena state inside is guarded by
  /// heap_mu_.
  std::vector<std::unique_ptr<DeviceHeap>> heaps_;

  /// Heap lock: guards every device allocator + arena in heaps_, including
  /// reads of allocator block cookies.  One lock for all tiers -- the
  /// multi-tenant win comes from separating heap work from the object
  /// table and the transfer registry, not from per-tier splits.  Leaf;
  /// declared before objects_mu_ so its acquired_before can name it.
  mutable sync::mutex heap_mu_
      CA_LEAF{CA_LOCK_CLASS("dm::DataManager::heap_mu_")};

  /// Object/region-table lock: guards the ownership maps, the id counter
  /// and all object<->region linkage fields.  May acquire heap_mu_
  /// (allocate, release, defragment) -- the hierarchy's only edge.
  mutable sync::mutex objects_mu_ CA_ACQUIRED_BEFORE(heap_mu_){
      CA_LOCK_CLASS("dm::DataManager::objects_mu_")};
  std::unordered_map<Region*, std::unique_ptr<Region>> regions_
      CA_GUARDED_BY(objects_mu_);
  std::unordered_map<Object*, std::unique_ptr<Object>> objects_
      CA_GUARDED_BY(objects_mu_);
  ObjectId next_object_id_ CA_GUARDED_BY(objects_mu_) = 1;

  /// Tenant-registration lock (leaf; registration is cold).  The hot-path
  /// accounting lives lock-free in tenants_.
  mutable sync::mutex tenants_mu_
      CA_LEAF{CA_LOCK_CLASS("dm::DataManager::tenants_mu_")};
  std::array<std::string, kMaxTenants> tenant_names_
      CA_GUARDED_BY(tenants_mu_);
  std::size_t tenant_count_ CA_GUARDED_BY(tenants_mu_) = 1;

  /// Per-tenant accounting (slot 0 = default tenant).  mutable: stall time
  /// is charged from paths reachable via const queries.
  mutable std::array<TenantSlot, kMaxTenants> tenants_{};

  /// Guards the in-flight registry.  Leaf lock: it is never held across
  /// Transfer::join(), engine calls, or CA_AUDIT() (docs/CONCURRENCY.md has
  /// the full hierarchy).
  mutable sync::mutex inflight_mu_
      CA_LEAF{CA_LOCK_CLASS("dm::DataManager::inflight_mu_")};
  std::vector<InflightTransfer> inflight_ CA_GUARDED_BY(inflight_mu_);
  /// Lock-free async statistics (see async_stats()); cache-line-aligned so
  /// retire-path increments do not false-share with the registry lock.
  alignas(64) AsyncCounters async_counters_{};
};

}  // namespace ca::dm
