// The data manager: owner of the per-device heaps and the data-management
// API the policy layer drives (paper §III-C, "Data management API").
//
// Functions fall into the paper's three categories:
//   * object functions: getprimary, setprimary (plus object lifecycle and
//     kernel pinning);
//   * region functions: allocate, free, copyto, link, unlink, size_of,
//     getlinked, in, parent, dirty tracking, evictfrom;
//   * device functions: capacity / occupancy queries, defragmentation.
//
// The data manager knows nothing about *why* data moves -- that is the
// policy's job -- and the application never calls it directly.  This is the
// separation of concerns the paper argues for.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "dm/object.hpp"
#include "mem/arena.hpp"
#include "mem/copy_engine.hpp"
#include "mem/freelist_allocator.hpp"
#include "race/sync.hpp"
#include "sim/clock.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "util/thread_annotations.hpp"

namespace ca::dm {

struct DataManagerTestPeer;
struct RaceTestPeer;
class PinnedSpan;

class DataManager {
 public:
  struct DeviceStats {
    std::size_t capacity = 0;
    std::size_t allocated = 0;
    std::size_t free_bytes = 0;
    std::size_t largest_free_block = 0;
    std::size_t regions = 0;
    double fragmentation = 0.0;

    /// Hot-path counters of the device's binned heap allocator (splits,
    /// coalesces, bin hit rate); see telemetry::AllocatorCounters.
    telemetry::AllocatorCounters alloc;
  };

  /// Aggregate statistics for asynchronous transfers (paper §V-c).
  struct AsyncStats {
    std::uint64_t scheduled = 0;      ///< copyto_async calls
    std::uint64_t bytes = 0;          ///< bytes scheduled asynchronously
    std::uint64_t retired = 0;        ///< transfers fully completed + retired
    std::uint64_t stalls = 0;         ///< wait_ready calls that had to stall
    double stall_seconds = 0.0;       ///< simulated seconds spent stalling
    double overlap_seconds = 0.0;     ///< modeled transfer time hidden behind
                                      ///< other work (duration - stall)
    std::size_t inflight_peak = 0;    ///< max transfers in the registry
  };

  /// One scheduled-but-not-yet-retired asynchronous transfer.  `dst` and
  /// `src` stay live (never freed or relocated) until the entry retires;
  /// the audit library checks exactly that.
  struct InflightTransfer {
    mem::Transfer transfer;
    Region* dst = nullptr;
    Region* src = nullptr;
  };

  DataManager(const sim::Platform& platform, sim::Clock& clock,
              telemetry::TrafficCounters& counters);
  ~DataManager();

  DataManager(const DataManager&) = delete;
  DataManager& operator=(const DataManager&) = delete;

  // --- Object functions -------------------------------------------------

  /// Create a logical object of `size` bytes.  No storage is attached yet;
  /// the policy decides where the first region goes.
  Object* create_object(std::size_t size, std::string name = {});

  /// Destroy an object and free all its regions.  Must not be pinned.
  void destroy_object(Object* object);

  [[nodiscard]] Region* getprimary(const Object& object) const noexcept {
    return object.primary();
  }

  /// Make `region` the primary for `object`.  If `region` is an orphan it
  /// is attached to the object first; otherwise it must already be linked
  /// to this object.  Fails if the object is pinned.
  void setprimary(Object& object, Region& region);

  /// Pin/unpin: while pinned, the primary pointer handed to a kernel stays
  /// valid (setprimary and destroy_object are rejected).
  void pin(Object& object) noexcept { ++object.pin_count_; }
  void unpin(Object& object);

  /// The sanctioned data accessor (ca::ptrprov runtime half): pins the
  /// object, stalls for any pending async fill of its primary, marks it
  /// dirty on write intent, and returns a provenance-tracked RAII span.
  /// Destroying the span unpins.  Defined in dm/pinned_span.hpp.
  PinnedSpan access(Object& object, bool write = false,
                    std::source_location loc = std::source_location::current());

  // --- Region functions -------------------------------------------------

  /// Allocate an orphan region of `size` bytes on `dev`.  Returns nullptr
  /// when the device heap cannot satisfy the request (not an error: the
  /// policy probes and falls back).
  [[nodiscard]] Region* allocate(sim::DeviceId dev, std::size_t size);

  /// Free a region.  If linked, it is unlinked first; the primary of an
  /// object with other regions cannot be freed directly (re-assign first).
  void free(Region* region);

  /// High-performance copy between regions (sizes must match).  Marks `dst`
  /// clean: after a copy the two regions hold identical bytes.  If both are
  /// linked to the same object, `src` is marked clean as well (they are now
  /// synchronized).
  void copyto(Region& dst, Region& src);

  /// Asynchronous copy (the paper's §V-c future-work item: "asynchronous
  /// data movement could be implemented with a separate thread pool").
  /// The real bytes move in the background on one of the copy engine's
  /// mover channels; the *modeled* transfer starts at
  /// max(now, channel availability, source readiness) and completes
  /// `modeled_copy_time` later.  The destination's `ready_at()` is set to
  /// the completion time; consumers stall only for whatever remains at use
  /// time (see `wait_ready`).  The transfer is tracked in an in-flight
  /// registry until it retires; both regions must stay live until then
  /// (free and defragment enforce this by joining first).  Returns the
  /// modeled completion time.
  double copyto_async(Region& dst, Region& src);

  /// Stall (advance the clock, charged as movement) until any in-flight
  /// async fill of `region` has completed, and join the real bytes so the
  /// caller may touch the region's memory.
  void wait_ready(Region& region);

  /// Latest modeled completion across all mover channels (no in-flight
  /// transfer completes later than this).
  [[nodiscard]] double mover_busy_until() const {
    return engine_.mover_horizon();
  }

  /// Remove registry entries whose modeled completion has passed (joining
  /// their real copies).  Called automatically by wait_ready/copyto_async;
  /// exposed for step-boundary housekeeping.
  void retire_transfers();

  /// Block the host until every scheduled real memcpy has finished, then
  /// retire everything the clock has caught up with.  Never advances the
  /// simulated clock.
  void drain_transfers();

  /// Snapshot of the async-transfer statistics (copied under the registry
  /// lock; safe to call from any thread).
  [[nodiscard]] AsyncStats async_stats() const CA_EXCLUDES(inflight_mu_) {
    sync::lock lock(inflight_mu_);
    return async_stats_;
  }

  /// Snapshot of the scheduled-but-not-retired transfer registry (for
  /// ca::audit).  Copied under the registry lock.
  [[nodiscard]] std::vector<InflightTransfer> inflight_transfers() const
      CA_EXCLUDES(inflight_mu_) {
    sync::lock lock(inflight_mu_);
    return inflight_;
  }

  /// Link an orphan region to the object of an owned region (they become
  /// siblings holding copies of the same logical data).
  void link(Region& owned, Region& orphan);

  /// Detach `region` from its object.  The primary cannot be unlinked.
  void unlink(Region& region);

  /// Size, device membership, parent (paper query functions).
  [[nodiscard]] std::size_t size_of(const Region& region) const noexcept {
    return region.size();
  }
  [[nodiscard]] bool in(const Region& region,
                        sim::DeviceId dev) const noexcept {
    return region.device() == dev;
  }
  [[nodiscard]] Region* getlinked(const Region& region,
                                  sim::DeviceId dev) const noexcept;
  [[nodiscard]] Object* parent(const Region& region) const noexcept {
    return region.parent();
  }

  void markdirty(Region& region) noexcept { region.dirty_ = true; }
  void markclean(Region& region) noexcept { region.dirty_ = false; }
  [[nodiscard]] bool isdirty(const Region& region) const noexcept {
    return region.dirty();
  }

  /// Reclaim a contiguous window of at least `size` bytes on `dev`.
  ///
  /// Walks blocks in address order starting at `start_offset`; for every
  /// live region in the candidate window the `evict` callback is invoked
  /// and must either relocate-and-free the region (returning true) or
  /// refuse (returning false, e.g. the object is pinned), in which case the
  /// search restarts past the refused block.  Wraps around the heap once.
  /// Returns true once a free window of `size` bytes exists.
  bool evictfrom(sim::DeviceId dev, std::size_t start_offset,
                 std::size_t size,
                 const std::function<bool(Region&)>& evict);

  // --- Device functions ---------------------------------------------------

  [[nodiscard]] std::size_t device_count() const noexcept {
    return heaps_.size();
  }
  [[nodiscard]] DeviceStats device_stats(sim::DeviceId dev) const;
  [[nodiscard]] std::size_t capacity(sim::DeviceId dev) const;
  [[nodiscard]] std::size_t free_bytes(sim::DeviceId dev) const;

  /// Total bytes currently allocated across all device heaps (the resident
  /// heap footprint plotted in Fig. 3).
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Compact `dev`'s heap: slide every live region to the lowest possible
  /// address (objects are relocated; pinned objects must not exist on this
  /// device).  Charges TimeCategory::kOther; the paper defragments between
  /// iterations and reports the overhead as negligible.
  void defragment(sim::DeviceId dev);

  /// Device currently being defragmented, or -1.  While set, no pinned
  /// object may hold a region on that device (audit invariant dm.pin:
  /// compaction memmoves every live region on it).
  [[nodiscard]] int defragmenting_device() const noexcept {
    return defragmenting_;
  }

  /// Verify cross-structure invariants (allocator tiling, region/block
  /// agreement, object/region back-pointers, the fast-primary invariant is
  /// policy-level and not checked here).  For tests.  `audit::verify` is the
  /// exhaustive, non-throwing counterpart that returns a structured report.
  void check_invariants() const;

  // --- Read-only introspection (the ca::audit library and tests) ----------

  /// The offset-space allocator backing `dev`'s heap.
  [[nodiscard]] const mem::FreeListAllocator& allocator(sim::DeviceId dev)
      const {
    return *heap(dev).alloc;
  }

  /// Visit every live object / region.  Order unspecified.
  void for_each_object(const std::function<void(const Object&)>& fn) const;
  void for_each_region(const std::function<void(const Region&)>& fn) const;

  /// True iff `region` is currently owned by this manager (its storage is
  /// live).  Lets an auditor validate allocator cookies without touching
  /// possibly-dangling memory.
  [[nodiscard]] bool owns_region(const Region* region) const noexcept;

  [[nodiscard]] const sim::Clock& clock() const noexcept { return clock_; }

  [[nodiscard]] mem::CopyEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const mem::CopyEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] sim::Clock& clock() noexcept { return clock_; }
  [[nodiscard]] telemetry::TrafficCounters& counters() noexcept {
    return counters_;
  }

  /// Number of live objects (for leak tests).
  [[nodiscard]] std::size_t live_objects() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] std::size_t live_regions() const noexcept {
    return regions_.size();
  }

 private:
  friend struct DataManagerTestPeer;
  friend struct RaceTestPeer;

  struct DeviceHeap {
    explicit DeviceHeap(const sim::DeviceSpec& spec);
    mem::Arena arena;
    std::unique_ptr<mem::FreeListAllocator> alloc;
  };

  DeviceHeap& heap(sim::DeviceId dev);
  const DeviceHeap& heap(sim::DeviceId dev) const;
  void detach(Region& region) noexcept;
  void release_region(Region* region);

  /// Join (host-block on) the real copy of every in-flight transfer that
  /// reads from or writes into `region`, so its bytes may be touched, moved
  /// or its storage reused.  Never advances the simulated clock.
  void sync_region_real(Region& region);

  const sim::Platform& platform_;
  sim::Clock& clock_;
  telemetry::TrafficCounters& counters_;
  mem::CopyEngine engine_;
  /// Provenance label for the release path in flight ("free", "evictfrom",
  /// "destroy_object"): names the mutation in ProvenanceReports.
  const char* release_op_ = "free";
  int defragmenting_ = -1;
  std::vector<std::unique_ptr<DeviceHeap>> heaps_;
  std::unordered_map<Region*, std::unique_ptr<Region>> regions_;
  std::unordered_map<Object*, std::unique_ptr<Object>> objects_;
  ObjectId next_object_id_ = 1;
  /// Guards the in-flight registry and async statistics.  Leaf lock: it is
  /// never held across Transfer::join(), engine calls, or CA_AUDIT()
  /// (docs/CONCURRENCY.md has the full hierarchy).
  mutable sync::mutex inflight_mu_
      CA_LEAF{CA_LOCK_CLASS("dm::DataManager::inflight_mu_")};
  std::vector<InflightTransfer> inflight_ CA_GUARDED_BY(inflight_mu_);
  AsyncStats async_stats_ CA_GUARDED_BY(inflight_mu_);
};

}  // namespace ca::dm
