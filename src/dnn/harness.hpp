// Experiment harness: wires up a complete system for one of the paper's
// operating modes (§IV):
//
//   2LM: 0    memory mode, no memory optimizations
//   2LM: M    memory mode + eager memory freeing
//   CA: 0     CachedArrays, no optimizations (true-cache emulation:
//             objects born in NVRAM, faulted to DRAM before use)
//   CA: L     + local (DRAM-direct) allocation
//   CA: LM    + eager retire
//   CA: LMP   + prefetch on will_read
//   NVRAM-only  app direct with zero DRAM (Fig. 7 left edge)
//
// A Harness owns the runtime, the execution context (device-direct or
// 2LM-cache-filtered), and the engine; benches and integration tests only
// deal in Modes.
#pragma once

#include <memory>
#include <string>

#include "dnn/engine.hpp"
#include "policy/lru_policy.hpp"
#include "policy/static_policy.hpp"
#include "twolm/direct_mapped_cache.hpp"

namespace ca::dnn {

enum class Mode {
  kTwoLmNone,
  kTwoLmM,
  kCaNone,
  kCaL,
  kCaLM,
  kCaLMP,
  kNvramOnly,
};

[[nodiscard]] constexpr const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kTwoLmNone:
      return "2LM: 0";
    case Mode::kTwoLmM:
      return "2LM: M";
    case Mode::kCaNone:
      return "CA: 0";
    case Mode::kCaL:
      return "CA: L";
    case Mode::kCaLM:
      return "CA: LM";
    case Mode::kCaLMP:
      return "CA: LMP";
    case Mode::kNvramOnly:
      return "NVRAM only";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_two_lm(Mode mode) noexcept {
  return mode == Mode::kTwoLmNone || mode == Mode::kTwoLmM;
}

struct HarnessConfig {
  Mode mode = Mode::kCaLM;
  std::size_t dram_bytes = 180 * util::MiB;
  std::size_t nvram_bytes = 1300 * util::MiB;
  Backend backend = Backend::kSim;
  double compute_efficiency = 0.35;  ///< usually from the ModelSpec
  int conv_read_passes = 2;          ///< usually from the ModelSpec
  double flop_rate = 2.9e9;
  std::size_t kernel_threads = 8;

  /// LruPolicy small-object threshold (CA modes only); see LruPolicyConfig.
  std::size_t min_migratable = 64 * util::KiB;

  /// Asynchronous staging (SV-c future work): prefetches overlap with
  /// execution on a background mover, and eviction writebacks run
  /// write-behind on the mover's writeback channels.  CA modes only.
  bool async_movement = false;

  /// Background-mover channels (Platform::mover_channels).  1 = a single
  /// fully-serialized mover, the ablation baseline.
  std::size_t mover_channels = 4;

  /// With async_movement: issue look-ahead prefetches this many objects
  /// ahead along the archive trace during the backward pass.  0 disables.
  std::size_t prefetch_distance = 0;
};

class Harness {
 public:
  explicit Harness(const HarnessConfig& config);

  [[nodiscard]] core::Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const HarnessConfig& config() const noexcept {
    return config_;
  }

  /// The 2LM cache model (nullptr in app-direct modes).
  [[nodiscard]] twolm::DirectMappedCache* cache() noexcept {
    return cache_.get();
  }

 private:
  HarnessConfig config_;
  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<twolm::DirectMappedCache> cache_;
  std::unique_ptr<ExecContext> ctx_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace ca::dnn
