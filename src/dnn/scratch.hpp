// Per-thread kernel scratch buffers (im2col patch matrices, GEMM packing
// panels, partial weight-gradient accumulators).
//
// The fast kernels run on the ExecContext's ThreadPool; any participant --
// a pool worker or the calling thread -- may need a private scratch buffer
// at any moment, and buffers must be reused across kernel launches so a
// training step does not churn the host allocator.  A ScratchPool is a
// mutex-guarded freelist of float buffers handed out as RAII leases: the
// acquire/release critical sections go through ca::sync, so CA_RACE builds
// see the handoff edges and TSan sees clean synchronization.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "race/sync.hpp"
#include "util/thread_annotations.hpp"

namespace ca::dnn::real {

class ScratchPool {
 public:
  struct Stats {
    std::uint64_t leases = 0;       ///< acquire() calls
    std::size_t buffers = 0;        ///< buffers ever created
    std::size_t peak_bytes = 0;     ///< largest single buffer, in bytes
  };

  /// RAII lease of one buffer; returns it to the pool's freelist on
  /// destruction.  Move-only.
  class Lease {
   public:
    Lease() = default;
    Lease(ScratchPool* pool, std::vector<float> buf)
        : pool_(pool), buf_(std::move(buf)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        buf_ = std::move(other.buf_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] float* data() noexcept { return buf_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

   private:
    void release() {
      if (pool_ != nullptr) {
        pool_->put_back(std::move(buf_));
        pool_ = nullptr;
      }
    }

    ScratchPool* pool_ = nullptr;
    std::vector<float> buf_;
  };

  /// Lease a buffer of at least `floats` elements.  Contents are
  /// unspecified (kernels fully overwrite or explicitly zero their
  /// scratch).  Safe to call from any thread.
  [[nodiscard]] Lease acquire(std::size_t floats) {
    std::vector<float> buf;
    {
      sync::lock lock(mu_);
      ++stats_.leases;
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
      } else {
        ++stats_.buffers;
      }
    }
    if (buf.size() < floats) {
      buf.resize(floats);
      sync::lock lock(mu_);
      stats_.peak_bytes =
          std::max(stats_.peak_bytes, buf.size() * sizeof(float));
    }
    return Lease(this, std::move(buf));
  }

  [[nodiscard]] Stats stats() const {
    sync::lock lock(mu_);
    return stats_;
  }

 private:
  friend class Lease;

  void put_back(std::vector<float> buf) {
    sync::lock lock(mu_);
    free_.push_back(std::move(buf));
  }

  mutable sync::mutex mu_ CA_LEAF{CA_LOCK_CLASS("dnn::ScratchPool::mu_")};
  std::vector<std::vector<float>> free_ CA_GUARDED_BY(mu_);
  Stats stats_ CA_GUARDED_BY(mu_);
};

}  // namespace ca::dnn::real
