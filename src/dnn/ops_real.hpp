// Numeric kernels (NCHW, float32), forward and backward, in two tiers:
//
//   * The plain-signature functions below are the seed *scalar reference
//     kernels*: straightforward direct loops, kept bit-stable as the
//     parity oracle (Backend::kReference) for the fast tier and still used
//     directly by unit tests and gradient checks.
//
//   * The KernelCtx overloads are the *fast tier* (Backend::kReal): conv
//     and dense reduce to a cache-blocked, register-tiled GEMM core
//     (dnn/gemm.hpp) via im2col packing; elementwise / pooling / norm ops
//     run wide on the ExecContext's ThreadPool with a grain heuristic so
//     tiny tensors stay serial.  Passing ctx.reference = true routes every
//     overload back to the scalar tier, which is how the parity tests
//     compare the two within tolerance.
//
// The benchmark harness uses the "sim" backend instead (same data movement
// and cost accounting, no arithmetic) because real convolutions at the
// paper's scaled footprints would measure the host CPU, not the memory
// system under study -- but with this fast tier the real backend runs near
// roofline, so real-backend wall-clock is dominated by data movement, not
// compute noise (the Sentinel argument).
//
// All functions are pure: raw pointers + dimensions in, results out.  The
// ctx overloads additionally use ctx.pool / ctx.scratch and record wall
// time into ctx.counters; all scratch row copies route through
// util::copy_bytes (tools/ca_lint.py rule `kernel-scratch-route`).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dnn/kernel_ctx.hpp"

namespace ca::dnn::real {

/// Square-kernel 2D convolution geometry.
struct ConvDims {
  std::size_t n = 1;     ///< batch
  std::size_t cin = 1;   ///< input channels
  std::size_t h = 1;     ///< input height
  std::size_t w = 1;     ///< input width
  std::size_t cout = 1;  ///< output channels
  std::size_t k = 3;     ///< kernel size (k x k)
  std::size_t stride = 1;
  std::size_t pad = 1;

  [[nodiscard]] std::size_t hout() const {
    return (h + 2 * pad - k) / stride + 1;
  }
  [[nodiscard]] std::size_t wout() const {
    return (w + 2 * pad - k) / stride + 1;
  }
  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(n) * static_cast<double>(cout) *
           static_cast<double>(hout()) * static_cast<double>(wout()) *
           static_cast<double>(cin) * static_cast<double>(k) *
           static_cast<double>(k);
  }
};

// x: (n,cin,h,w)  w: (cout,cin,k,k)  b: (cout)  y: (n,cout,hout,wout)
void conv2d_fwd(const float* x, const float* w, const float* b, float* y,
                const ConvDims& d);
void conv2d_bwd_data(const float* w, const float* gy, float* gx,
                     const ConvDims& d);
void conv2d_bwd_weights(const float* x, const float* gy, float* gw,
                        const ConvDims& d);
void conv2d_bwd_bias(const float* gy, float* gb, const ConvDims& d);

void relu_fwd(const float* x, float* y, std::size_t n);
void relu_bwd(const float* x, const float* gy, float* gx, std::size_t n);

// 2x2 max pooling with stride 2; h and w must be even.
void maxpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w);
void maxpool2_bwd(const float* x, const float* gy, float* gx, std::size_t n,
                  std::size_t c, std::size_t h, std::size_t w);

// 2x2 average pooling with stride 2; h and w must be even.
void avgpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w);
void avgpool2_bwd(const float* gy, float* gx, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w);

// Inverted dropout: mask[i] is 0 (dropped) or 1/(1-p) (kept), generated
// deterministically from `seed`; y = x * mask, gx = gy * mask.
void dropout_fwd(const float* x, float* y, float* mask, float p,
                 std::uint64_t seed, std::size_t n);
void dropout_bwd(const float* mask, const float* gy, float* gx,
                 std::size_t n);

// Global average pooling: (n,c,h,w) -> (n,c).
void global_avgpool_fwd(const float* x, float* y, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w);
void global_avgpool_bwd(const float* gy, float* gx, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w);

// Training-mode batch normalization over (n,h,w) per channel.
// save_mean/save_istd: (c), produced by fwd and consumed by bwd.
void batchnorm_fwd(const float* x, const float* gamma, const float* beta,
                   float* y, float* save_mean, float* save_istd,
                   std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w, float eps);
void batchnorm_bwd(const float* x, const float* gamma, const float* save_mean,
                   const float* save_istd, const float* gy, float* gx,
                   float* ggamma, float* gbeta, std::size_t n, std::size_t c,
                   std::size_t h, std::size_t w);

// Fully connected: x (n,in), w (out,in), b (out), y (n,out).
void dense_fwd(const float* x, const float* w, const float* b, float* y,
               std::size_t n, std::size_t in, std::size_t out);
void dense_bwd_data(const float* w, const float* gy, float* gx, std::size_t n,
                    std::size_t in, std::size_t out);
void dense_bwd_weights(const float* x, const float* gy, float* gw,
                       std::size_t n, std::size_t in, std::size_t out);
void dense_bwd_bias(const float* gy, float* gb, std::size_t n,
                    std::size_t out);

// Softmax + cross-entropy against integer labels stored as floats.
// probs (n,classes) is saved for the backward pass.  Returns mean loss.
float softmax_ce_fwd(const float* logits, const float* labels, float* probs,
                     std::size_t n, std::size_t classes);
void softmax_ce_bwd(const float* probs, const float* labels, float* gx,
                    std::size_t n, std::size_t classes);

// Elementwise.
void add_fwd(const float* a, const float* b, float* y, std::size_t n);

// Channel concatenation of (n,ca,h,w) and (n,cb,h,w) into (n,ca+cb,h,w),
// and the matching gradient split.
void concat_fwd(const float* a, const float* b, float* y, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h, std::size_t w);
void concat_bwd(const float* gy, float* ga, float* gb, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h, std::size_t w);

// Sparse embedding primitives (SVI extension): gather rows of a (rows,dim)
// table by float-encoded indices, and the fused sparse SGD scatter update.
void embedding_gather(const float* table, const float* indices, float* out,
                      std::size_t batch, std::size_t dim);
void embedding_scatter_sgd(float* table, const float* indices,
                           const float* grads, float lr, std::size_t batch,
                           std::size_t dim);

// Optimizer and accumulation helpers.
void sgd_update(float* w, const float* g, float lr, std::size_t n);
void accumulate(float* acc, const float* g, std::size_t n);  // acc += g

// --- fast tier: KernelCtx dispatch overloads --------------------------------
//
// Same contracts as the scalar functions above.  With ctx.reference the
// scalar kernel runs; otherwise the blocked/parallel implementation does.
// Results agree with the reference within ~1e-4 relative tolerance (FP
// summation order differs); tests/dnn/kernel_parity_test.cpp holds the
// line.

void conv2d_fwd(const KernelCtx& ctx, const float* x, const float* w,
                const float* b, float* y, const ConvDims& d);
void conv2d_bwd_data(const KernelCtx& ctx, const float* w, const float* gy,
                     float* gx, const ConvDims& d);
void conv2d_bwd_weights(const KernelCtx& ctx, const float* x,
                        const float* gy, float* gw, const ConvDims& d);
void conv2d_bwd_bias(const KernelCtx& ctx, const float* gy, float* gb,
                     const ConvDims& d);

void relu_fwd(const KernelCtx& ctx, const float* x, float* y, std::size_t n);
void relu_bwd(const KernelCtx& ctx, const float* x, const float* gy,
              float* gx, std::size_t n);

void maxpool2_fwd(const KernelCtx& ctx, const float* x, float* y,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w);
void maxpool2_bwd(const KernelCtx& ctx, const float* x, const float* gy,
                  float* gx, std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w);
void avgpool2_fwd(const KernelCtx& ctx, const float* x, float* y,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w);
void avgpool2_bwd(const KernelCtx& ctx, const float* gy, float* gx,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w);

// dropout_fwd stays scalar in both tiers: the mask stream is defined as a
// *sequential* draw from one seeded generator, and parity (plus replay
// determinism) would break if chunks drew from split streams.
void dropout_fwd(const KernelCtx& ctx, const float* x, float* y, float* mask,
                 float p, std::uint64_t seed, std::size_t n);
void dropout_bwd(const KernelCtx& ctx, const float* mask, const float* gy,
                 float* gx, std::size_t n);

void global_avgpool_fwd(const KernelCtx& ctx, const float* x, float* y,
                        std::size_t n, std::size_t c, std::size_t h,
                        std::size_t w);
void global_avgpool_bwd(const KernelCtx& ctx, const float* gy, float* gx,
                        std::size_t n, std::size_t c, std::size_t h,
                        std::size_t w);

void batchnorm_fwd(const KernelCtx& ctx, const float* x, const float* gamma,
                   const float* beta, float* y, float* save_mean,
                   float* save_istd, std::size_t n, std::size_t c,
                   std::size_t h, std::size_t w, float eps);
void batchnorm_bwd(const KernelCtx& ctx, const float* x, const float* gamma,
                   const float* save_mean, const float* save_istd,
                   const float* gy, float* gx, float* ggamma, float* gbeta,
                   std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w);

void dense_fwd(const KernelCtx& ctx, const float* x, const float* w,
               const float* b, float* y, std::size_t n, std::size_t in,
               std::size_t out);
void dense_bwd_data(const KernelCtx& ctx, const float* w, const float* gy,
                    float* gx, std::size_t n, std::size_t in,
                    std::size_t out);
void dense_bwd_weights(const KernelCtx& ctx, const float* x, const float* gy,
                       float* gw, std::size_t n, std::size_t in,
                       std::size_t out);
void dense_bwd_bias(const KernelCtx& ctx, const float* gy, float* gb,
                    std::size_t n, std::size_t out);

float softmax_ce_fwd(const KernelCtx& ctx, const float* logits,
                     const float* labels, float* probs, std::size_t n,
                     std::size_t classes);
void softmax_ce_bwd(const KernelCtx& ctx, const float* probs,
                    const float* labels, float* gx, std::size_t n,
                    std::size_t classes);

void add_fwd(const KernelCtx& ctx, const float* a, const float* b, float* y,
             std::size_t n);

void concat_fwd(const KernelCtx& ctx, const float* a, const float* b,
                float* y, std::size_t n, std::size_t ca, std::size_t cb,
                std::size_t h, std::size_t w);
void concat_bwd(const KernelCtx& ctx, const float* gy, float* ga, float* gb,
                std::size_t n, std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w);

void embedding_gather(const KernelCtx& ctx, const float* table,
                      const float* indices, float* out, std::size_t batch,
                      std::size_t dim);
// Scatter stays serial in both tiers: duplicate indices in one batch alias
// the same table row, so a parallel scatter would race with itself.
void embedding_scatter_sgd(const KernelCtx& ctx, float* table,
                           const float* indices, const float* grads,
                           float lr, std::size_t batch, std::size_t dim);

void sgd_update(const KernelCtx& ctx, float* w, const float* g, float lr,
                std::size_t n);
void accumulate(const KernelCtx& ctx, float* acc, const float* g,
                std::size_t n);

}  // namespace ca::dnn::real
