#include "dnn/ops_real.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace ca::dnn::real {

namespace {
// Index helpers for NCHW layouts.
inline std::size_t idx4(std::size_t n, std::size_t c, std::size_t y,
                        std::size_t x, std::size_t C, std::size_t H,
                        std::size_t W) {
  return ((n * C + c) * H + y) * W + x;
}
}  // namespace

void conv2d_fwd(const float* x, const float* w, const float* b, float* y,
                const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          float acc = (b != nullptr) ? b[co] : 0.0f;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                acc += x[idx4(n, ci, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix), d.cin, d.h, d.w)] *
                       w[((co * d.cin + ci) * d.k + ky) * d.k + kx];
              }
            }
          }
          y[idx4(n, co, oy, ox, d.cout, ho, wo)] = acc;
        }
      }
    }
  }
}

void conv2d_bwd_data(const float* w, const float* gy, float* gx,
                     const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gx, 0, sizeof(float) * d.n * d.cin * d.h * d.w);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = gy[idx4(n, co, oy, ox, d.cout, ho, wo)];
          if (g == 0.0f) continue;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                gx[idx4(n, ci, static_cast<std::size_t>(iy),
                        static_cast<std::size_t>(ix), d.cin, d.h, d.w)] +=
                    g * w[((co * d.cin + ci) * d.k + ky) * d.k + kx];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_bwd_weights(const float* x, const float* gy, float* gw,
                        const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gw, 0, sizeof(float) * d.cout * d.cin * d.k * d.k);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = gy[idx4(n, co, oy, ox, d.cout, ho, wo)];
          if (g == 0.0f) continue;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                gw[((co * d.cin + ci) * d.k + ky) * d.k + kx] +=
                    g * x[idx4(n, ci, static_cast<std::size_t>(iy),
                               static_cast<std::size_t>(ix), d.cin, d.h, d.w)];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_bwd_bias(const float* gy, float* gb, const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gb, 0, sizeof(float) * d.cout);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < ho * wo; ++i) {
        acc += gy[(n * d.cout + co) * ho * wo + i];
      }
      gb[co] += acc;
    }
  }
}

void relu_fwd(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_bwd(const float* x, const float* gy, float* gx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) gx[i] = x[i] > 0.0f ? gy[i] : 0.0f;
}

void maxpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    float* yc = y + i * ho * wo;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        yc[oy * wo + ox] = std::max(std::max(xc[base], xc[base + 1]),
                                    std::max(xc[base + w], xc[base + w + 1]));
      }
    }
  }
}

void maxpool2_bwd(const float* x, const float* gy, float* gx, std::size_t n,
                  std::size_t c, std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  std::memset(gx, 0, sizeof(float) * n * c * h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    const float* gyc = gy + i * ho * wo;
    float* gxc = gx + i * h * w;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        // Route the gradient to the (first) maximal element of the window.
        std::size_t best = base;
        for (const std::size_t cand :
             {base + 1, base + w, base + w + 1}) {
          if (xc[cand] > xc[best]) best = cand;
        }
        gxc[best] += gyc[oy * wo + ox];
      }
    }
  }
}

void avgpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    float* yc = y + i * ho * wo;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        yc[oy * wo + ox] = 0.25f * (xc[base] + xc[base + 1] + xc[base + w] +
                                    xc[base + w + 1]);
      }
    }
  }
}

void avgpool2_bwd(const float* gy, float* gx, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* gyc = gy + i * ho * wo;
    float* gxc = gx + i * h * w;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const float g = 0.25f * gyc[oy * wo + ox];
        const std::size_t base = (2 * oy) * w + 2 * ox;
        gxc[base] = g;
        gxc[base + 1] = g;
        gxc[base + w] = g;
        gxc[base + w + 1] = g;
      }
    }
  }
}

void dropout_fwd(const float* x, float* y, float* mask, float p,
                 std::uint64_t seed, std::size_t n) {
  ca::util::Xoshiro256 rng(seed);
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = rng.uniform() < p ? 0.0f : keep_scale;
    y[i] = x[i] * mask[i];
  }
}

void dropout_bwd(const float* mask, const float* gy, float* gx,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) gx[i] = gy[i] * mask[i];
}

void global_avgpool_fwd(const float* x, float* y, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w) {
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < h * w; ++j) acc += x[i * h * w + j];
    y[i] = acc * inv;
  }
}

void global_avgpool_bwd(const float* gy, float* gx, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w) {
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float g = gy[i] * inv;
    for (std::size_t j = 0; j < h * w; ++j) gx[i * h * w + j] = g;
  }
}

void batchnorm_fwd(const float* x, const float* gamma, const float* beta,
                   float* y, float* save_mean, float* save_istd,
                   std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w, float eps) {
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const float* xc = x + (b * c + ch) * hw;
      for (std::size_t j = 0; j < hw; ++j) sum += xc[j];
    }
    const float mean = static_cast<float>(sum) / m;
    double var = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const float* xc = x + (b * c + ch) * hw;
      for (std::size_t j = 0; j < hw; ++j) {
        const float d = xc[j] - mean;
        var += static_cast<double>(d) * d;
      }
    }
    const float istd =
        1.0f / std::sqrt(static_cast<float>(var) / m + eps);
    save_mean[ch] = mean;
    save_istd[ch] = istd;
    for (std::size_t b = 0; b < n; ++b) {
      const float* xc = x + (b * c + ch) * hw;
      float* yc = y + (b * c + ch) * hw;
      for (std::size_t j = 0; j < hw; ++j) {
        yc[j] = gamma[ch] * (xc[j] - mean) * istd + beta[ch];
      }
    }
  }
}

void batchnorm_bwd(const float* x, const float* gamma, const float* save_mean,
                   const float* save_istd, const float* gy, float* gx,
                   float* ggamma, float* gbeta, std::size_t n, std::size_t c,
                   std::size_t h, std::size_t w) {
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float mean = save_mean[ch];
    const float istd = save_istd[ch];
    double sum_gy = 0.0;
    double sum_gy_xhat = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const float* xc = x + (b * c + ch) * hw;
      const float* gyc = gy + (b * c + ch) * hw;
      for (std::size_t j = 0; j < hw; ++j) {
        const float xhat = (xc[j] - mean) * istd;
        sum_gy += gyc[j];
        sum_gy_xhat += static_cast<double>(gyc[j]) * xhat;
      }
    }
    ggamma[ch] = static_cast<float>(sum_gy_xhat);
    gbeta[ch] = static_cast<float>(sum_gy);
    const float k1 = static_cast<float>(sum_gy) / m;
    const float k2 = static_cast<float>(sum_gy_xhat) / m;
    for (std::size_t b = 0; b < n; ++b) {
      const float* xc = x + (b * c + ch) * hw;
      const float* gyc = gy + (b * c + ch) * hw;
      float* gxc = gx + (b * c + ch) * hw;
      for (std::size_t j = 0; j < hw; ++j) {
        const float xhat = (xc[j] - mean) * istd;
        gxc[j] = gamma[ch] * istd * (gyc[j] - k1 - xhat * k2);
      }
    }
  }
}

void dense_fwd(const float* x, const float* w, const float* b, float* y,
               std::size_t n, std::size_t in, std::size_t out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      float acc = (b != nullptr) ? b[o] : 0.0f;
      for (std::size_t j = 0; j < in; ++j) acc += x[i * in + j] * w[o * in + j];
      y[i * out + o] = acc;
    }
  }
}

void dense_bwd_data(const float* w, const float* gy, float* gx, std::size_t n,
                    std::size_t in, std::size_t out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < in; ++j) {
      float acc = 0.0f;
      for (std::size_t o = 0; o < out; ++o) {
        acc += gy[i * out + o] * w[o * in + j];
      }
      gx[i * in + j] = acc;
    }
  }
}

void dense_bwd_weights(const float* x, const float* gy, float* gw,
                       std::size_t n, std::size_t in, std::size_t out) {
  std::memset(gw, 0, sizeof(float) * in * out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      const float g = gy[i * out + o];
      if (g == 0.0f) continue;
      for (std::size_t j = 0; j < in; ++j) gw[o * in + j] += g * x[i * in + j];
    }
  }
}

void dense_bwd_bias(const float* gy, float* gb, std::size_t n,
                    std::size_t out) {
  std::memset(gb, 0, sizeof(float) * out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) gb[o] += gy[i * out + o];
  }
}

float softmax_ce_fwd(const float* logits, const float* labels, float* probs,
                     std::size_t n, std::size_t classes) {
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits + i * classes;
    float* prow = probs + i * classes;
    float mx = row[0];
    for (std::size_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      prow[c] = std::exp(row[c] - mx);
      denom += prow[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) prow[c] *= inv;
    const auto label = static_cast<std::size_t>(labels[i]);
    loss -= std::log(std::max(prow[label], 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

void softmax_ce_bwd(const float* probs, const float* labels, float* gx,
                    std::size_t n, std::size_t classes) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = probs[i * classes + c];
      gx[i * classes + c] = (p - (c == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
}

void add_fwd(const float* a, const float* b, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void concat_fwd(const float* a, const float* b, float* y, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w) {
  const std::size_t hw = h * w;
  for (std::size_t i = 0; i < n; ++i) {
    util::copy_bytes(y + i * (ca + cb) * hw, a + i * ca * hw,
                     sizeof(float) * ca * hw, "ops::concat_fwd");
    util::copy_bytes(y + (i * (ca + cb) + ca) * hw, b + i * cb * hw,
                     sizeof(float) * cb * hw, "ops::concat_fwd");
  }
}

void concat_bwd(const float* gy, float* ga, float* gb, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w) {
  const std::size_t hw = h * w;
  for (std::size_t i = 0; i < n; ++i) {
    util::copy_bytes(ga + i * ca * hw, gy + i * (ca + cb) * hw,
                     sizeof(float) * ca * hw, "ops::concat_bwd");
    util::copy_bytes(gb + i * cb * hw, gy + (i * (ca + cb) + ca) * hw,
                     sizeof(float) * cb * hw, "ops::concat_bwd");
  }
}

void embedding_gather(const float* table, const float* indices, float* out,
                      std::size_t batch, std::size_t dim) {
  for (std::size_t i = 0; i < batch; ++i) {
    const auto row = static_cast<std::size_t>(indices[i]);
    util::copy_bytes(out + i * dim, table + row * dim, sizeof(float) * dim,
                     "ops::embedding_gather");
  }
}

void embedding_scatter_sgd(float* table, const float* indices,
                           const float* grads, float lr, std::size_t batch,
                           std::size_t dim) {
  for (std::size_t i = 0; i < batch; ++i) {
    const auto row = static_cast<std::size_t>(indices[i]);
    for (std::size_t j = 0; j < dim; ++j) {
      table[row * dim + j] -= lr * grads[i * dim + j];
    }
  }
}

void sgd_update(float* w, const float* g, float lr, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] -= lr * g[i];
}

void accumulate(float* acc, const float* g, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += g[i];
}

}  // namespace ca::dnn::real
