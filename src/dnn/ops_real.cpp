#include "dnn/ops_real.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "dnn/gemm.hpp"
#include "dnn/scratch.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/stopwatch.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace ca::dnn::real {

namespace {
// Index helpers for NCHW layouts.
inline std::size_t idx4(std::size_t n, std::size_t c, std::size_t y,
                        std::size_t x, std::size_t C, std::size_t H,
                        std::size_t W) {
  return ((n * C + c) * H + y) * W + x;
}

// Per-channel batchnorm bodies, shared by the scalar reference kernels and
// the channel-parallel fast tier: channels are independent, so running them
// concurrently keeps the arithmetic (and therefore the result) bit-identical
// to the sequential reference.
void bn_fwd_channel(const float* x, const float* gamma, const float* beta,
                    float* y, float* save_mean, float* save_istd,
                    std::size_t ch, std::size_t n, std::size_t c,
                    std::size_t hw, float m, float eps) {
  double sum = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    const float* xc = x + (b * c + ch) * hw;
    for (std::size_t j = 0; j < hw; ++j) sum += xc[j];
  }
  const float mean = static_cast<float>(sum) / m;
  double var = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    const float* xc = x + (b * c + ch) * hw;
    for (std::size_t j = 0; j < hw; ++j) {
      const float d = xc[j] - mean;
      var += static_cast<double>(d) * d;
    }
  }
  const float istd = 1.0f / std::sqrt(static_cast<float>(var) / m + eps);
  save_mean[ch] = mean;
  save_istd[ch] = istd;
  for (std::size_t b = 0; b < n; ++b) {
    const float* xc = x + (b * c + ch) * hw;
    float* yc = y + (b * c + ch) * hw;
    for (std::size_t j = 0; j < hw; ++j) {
      yc[j] = gamma[ch] * (xc[j] - mean) * istd + beta[ch];
    }
  }
}

void bn_bwd_channel(const float* x, const float* gamma,
                    const float* save_mean, const float* save_istd,
                    const float* gy, float* gx, float* ggamma, float* gbeta,
                    std::size_t ch, std::size_t n, std::size_t c,
                    std::size_t hw, float m) {
  const float mean = save_mean[ch];
  const float istd = save_istd[ch];
  double sum_gy = 0.0;
  double sum_gy_xhat = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    const float* xc = x + (b * c + ch) * hw;
    const float* gyc = gy + (b * c + ch) * hw;
    for (std::size_t j = 0; j < hw; ++j) {
      const float xhat = (xc[j] - mean) * istd;
      sum_gy += gyc[j];
      sum_gy_xhat += static_cast<double>(gyc[j]) * xhat;
    }
  }
  ggamma[ch] = static_cast<float>(sum_gy_xhat);
  gbeta[ch] = static_cast<float>(sum_gy);
  const float k1 = static_cast<float>(sum_gy) / m;
  const float k2 = static_cast<float>(sum_gy_xhat) / m;
  for (std::size_t b = 0; b < n; ++b) {
    const float* xc = x + (b * c + ch) * hw;
    const float* gyc = gy + (b * c + ch) * hw;
    float* gxc = gx + (b * c + ch) * hw;
    for (std::size_t j = 0; j < hw; ++j) {
      const float xhat = (xc[j] - mean) * istd;
      gxc[j] = gamma[ch] * istd * (gyc[j] - k1 - xhat * k2);
    }
  }
}
}  // namespace

void conv2d_fwd(const float* x, const float* w, const float* b, float* y,
                const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          float acc = (b != nullptr) ? b[co] : 0.0f;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                acc += x[idx4(n, ci, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix), d.cin, d.h, d.w)] *
                       w[((co * d.cin + ci) * d.k + ky) * d.k + kx];
              }
            }
          }
          y[idx4(n, co, oy, ox, d.cout, ho, wo)] = acc;
        }
      }
    }
  }
}

void conv2d_bwd_data(const float* w, const float* gy, float* gx,
                     const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gx, 0, sizeof(float) * d.n * d.cin * d.h * d.w);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = gy[idx4(n, co, oy, ox, d.cout, ho, wo)];
          if (g == 0.0f) continue;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                gx[idx4(n, ci, static_cast<std::size_t>(iy),
                        static_cast<std::size_t>(ix), d.cin, d.h, d.w)] +=
                    g * w[((co * d.cin + ci) * d.k + ky) * d.k + kx];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_bwd_weights(const float* x, const float* gy, float* gw,
                        const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gw, 0, sizeof(float) * d.cout * d.cin * d.k * d.k);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = gy[idx4(n, co, oy, ox, d.cout, ho, wo)];
          if (g == 0.0f) continue;
          for (std::size_t ci = 0; ci < d.cin; ++ci) {
            for (std::size_t ky = 0; ky < d.k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * d.stride + ky) -
                  static_cast<std::ptrdiff_t>(d.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
              for (std::size_t kx = 0; kx < d.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * d.stride + kx) -
                    static_cast<std::ptrdiff_t>(d.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(d.w)) continue;
                gw[((co * d.cin + ci) * d.k + ky) * d.k + kx] +=
                    g * x[idx4(n, ci, static_cast<std::size_t>(iy),
                               static_cast<std::size_t>(ix), d.cin, d.h, d.w)];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_bwd_bias(const float* gy, float* gb, const ConvDims& d) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  std::memset(gb, 0, sizeof(float) * d.cout);
  for (std::size_t n = 0; n < d.n; ++n) {
    for (std::size_t co = 0; co < d.cout; ++co) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < ho * wo; ++i) {
        acc += gy[(n * d.cout + co) * ho * wo + i];
      }
      gb[co] += acc;
    }
  }
}

void relu_fwd(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_bwd(const float* x, const float* gy, float* gx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) gx[i] = x[i] > 0.0f ? gy[i] : 0.0f;
}

void maxpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    float* yc = y + i * ho * wo;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        yc[oy * wo + ox] = std::max(std::max(xc[base], xc[base + 1]),
                                    std::max(xc[base + w], xc[base + w + 1]));
      }
    }
  }
}

void maxpool2_bwd(const float* x, const float* gy, float* gx, std::size_t n,
                  std::size_t c, std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  std::memset(gx, 0, sizeof(float) * n * c * h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    const float* gyc = gy + i * ho * wo;
    float* gxc = gx + i * h * w;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        // Route the gradient to the (first) maximal element of the window.
        std::size_t best = base;
        for (const std::size_t cand :
             {base + 1, base + w, base + w + 1}) {
          if (xc[cand] > xc[best]) best = cand;
        }
        gxc[best] += gyc[oy * wo + ox];
      }
    }
  }
}

void avgpool2_fwd(const float* x, float* y, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* xc = x + i * h * w;
    float* yc = y + i * ho * wo;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t base = (2 * oy) * w + 2 * ox;
        yc[oy * wo + ox] = 0.25f * (xc[base] + xc[base + 1] + xc[base + w] +
                                    xc[base + w + 1]);
      }
    }
  }
}

void avgpool2_bwd(const float* gy, float* gx, std::size_t n, std::size_t c,
                  std::size_t h, std::size_t w) {
  const std::size_t ho = h / 2;
  const std::size_t wo = w / 2;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* gyc = gy + i * ho * wo;
    float* gxc = gx + i * h * w;
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const float g = 0.25f * gyc[oy * wo + ox];
        const std::size_t base = (2 * oy) * w + 2 * ox;
        gxc[base] = g;
        gxc[base + 1] = g;
        gxc[base + w] = g;
        gxc[base + w + 1] = g;
      }
    }
  }
}

void dropout_fwd(const float* x, float* y, float* mask, float p,
                 std::uint64_t seed, std::size_t n) {
  ca::util::Xoshiro256 rng(seed);
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = rng.uniform() < p ? 0.0f : keep_scale;
    y[i] = x[i] * mask[i];
  }
}

void dropout_bwd(const float* mask, const float* gy, float* gx,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) gx[i] = gy[i] * mask[i];
}

void global_avgpool_fwd(const float* x, float* y, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w) {
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < h * w; ++j) acc += x[i * h * w + j];
    y[i] = acc * inv;
  }
}

void global_avgpool_bwd(const float* gy, float* gx, std::size_t n,
                        std::size_t c, std::size_t h, std::size_t w) {
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float g = gy[i] * inv;
    for (std::size_t j = 0; j < h * w; ++j) gx[i * h * w + j] = g;
  }
}

void batchnorm_fwd(const float* x, const float* gamma, const float* beta,
                   float* y, float* save_mean, float* save_istd,
                   std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w, float eps) {
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  for (std::size_t ch = 0; ch < c; ++ch) {
    bn_fwd_channel(x, gamma, beta, y, save_mean, save_istd, ch, n, c, hw, m,
                   eps);
  }
}

void batchnorm_bwd(const float* x, const float* gamma, const float* save_mean,
                   const float* save_istd, const float* gy, float* gx,
                   float* ggamma, float* gbeta, std::size_t n, std::size_t c,
                   std::size_t h, std::size_t w) {
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  for (std::size_t ch = 0; ch < c; ++ch) {
    bn_bwd_channel(x, gamma, save_mean, save_istd, gy, gx, ggamma, gbeta, ch,
                   n, c, hw, m);
  }
}

void dense_fwd(const float* x, const float* w, const float* b, float* y,
               std::size_t n, std::size_t in, std::size_t out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      float acc = (b != nullptr) ? b[o] : 0.0f;
      for (std::size_t j = 0; j < in; ++j) acc += x[i * in + j] * w[o * in + j];
      y[i * out + o] = acc;
    }
  }
}

void dense_bwd_data(const float* w, const float* gy, float* gx, std::size_t n,
                    std::size_t in, std::size_t out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < in; ++j) {
      float acc = 0.0f;
      for (std::size_t o = 0; o < out; ++o) {
        acc += gy[i * out + o] * w[o * in + j];
      }
      gx[i * in + j] = acc;
    }
  }
}

void dense_bwd_weights(const float* x, const float* gy, float* gw,
                       std::size_t n, std::size_t in, std::size_t out) {
  std::memset(gw, 0, sizeof(float) * in * out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      const float g = gy[i * out + o];
      if (g == 0.0f) continue;
      for (std::size_t j = 0; j < in; ++j) gw[o * in + j] += g * x[i * in + j];
    }
  }
}

void dense_bwd_bias(const float* gy, float* gb, std::size_t n,
                    std::size_t out) {
  std::memset(gb, 0, sizeof(float) * out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) gb[o] += gy[i * out + o];
  }
}

float softmax_ce_fwd(const float* logits, const float* labels, float* probs,
                     std::size_t n, std::size_t classes) {
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits + i * classes;
    float* prow = probs + i * classes;
    float mx = row[0];
    for (std::size_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      prow[c] = std::exp(row[c] - mx);
      denom += prow[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) prow[c] *= inv;
    const auto label = static_cast<std::size_t>(labels[i]);
    loss -= std::log(std::max(prow[label], 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

void softmax_ce_bwd(const float* probs, const float* labels, float* gx,
                    std::size_t n, std::size_t classes) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = probs[i * classes + c];
      gx[i * classes + c] = (p - (c == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
}

void add_fwd(const float* a, const float* b, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void concat_fwd(const float* a, const float* b, float* y, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w) {
  const std::size_t hw = h * w;
  for (std::size_t i = 0; i < n; ++i) {
    util::copy_bytes(y + i * (ca + cb) * hw, a + i * ca * hw,
                     sizeof(float) * ca * hw, "ops::concat_fwd");
    util::copy_bytes(y + (i * (ca + cb) + ca) * hw, b + i * cb * hw,
                     sizeof(float) * cb * hw, "ops::concat_fwd");
  }
}

void concat_bwd(const float* gy, float* ga, float* gb, std::size_t n,
                std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w) {
  const std::size_t hw = h * w;
  for (std::size_t i = 0; i < n; ++i) {
    util::copy_bytes(ga + i * ca * hw, gy + i * (ca + cb) * hw,
                     sizeof(float) * ca * hw, "ops::concat_bwd");
    util::copy_bytes(gb + i * cb * hw, gy + (i * (ca + cb) + ca) * hw,
                     sizeof(float) * cb * hw, "ops::concat_bwd");
  }
}

void embedding_gather(const float* table, const float* indices, float* out,
                      std::size_t batch, std::size_t dim) {
  for (std::size_t i = 0; i < batch; ++i) {
    const auto row = static_cast<std::size_t>(indices[i]);
    util::copy_bytes(out + i * dim, table + row * dim, sizeof(float) * dim,
                     "ops::embedding_gather");
  }
}

void embedding_scatter_sgd(float* table, const float* indices,
                           const float* grads, float lr, std::size_t batch,
                           std::size_t dim) {
  for (std::size_t i = 0; i < batch; ++i) {
    const auto row = static_cast<std::size_t>(indices[i]);
    for (std::size_t j = 0; j < dim; ++j) {
      table[row * dim + j] -= lr * grads[i * dim + j];
    }
  }
}

void sgd_update(float* w, const float* g, float lr, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] -= lr * g[i];
}

void accumulate(float* acc, const float* g, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += g[i];
}

// ---------------------------------------------------------------------------
// Fast tier: KernelCtx overloads (blocked GEMM + im2col + pool-parallel
// elementwise).  Every overload first checks ctx.reference and falls back to
// the scalar oracle above.
// ---------------------------------------------------------------------------

namespace {

/// Fold a task-private counter slot back into the shared sink.  Only ever
/// called on the launching thread, after the parallel section's barrier --
/// KernelCounters itself is not thread-safe.
void fold_counters(telemetry::KernelCounters* dst,
                   const telemetry::KernelCounters& s) {
  if (dst == nullptr) return;
  dst->gemm_calls += s.gemm_calls;
  dst->gemm_seconds += s.gemm_seconds;
  dst->gemm_flops += s.gemm_flops;
  dst->im2col_calls += s.im2col_calls;
  dst->im2col_seconds += s.im2col_seconds;
  dst->eltwise_calls += s.eltwise_calls;
  dst->eltwise_seconds += s.eltwise_seconds;
}

/// Shared launch path for the elementwise/pool/norm family: record the op
/// into ctx.counters on the calling thread, then run `fn` over [0, n) --
/// wide on the pool when n * work_per_item clears the grain heuristic,
/// inline otherwise.  `fn` must only write state owned by its subrange.
void eltwise_launch(const KernelCtx& ctx, std::size_t n,
                    std::size_t work_per_item,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  double* sink = nullptr;
  if (ctx.counters != nullptr) {
    ++ctx.counters->eltwise_calls;
    sink = &ctx.counters->eltwise_seconds;
  }
  telemetry::ScopedKernelTimer timer(sink);
  if (ctx.pool != nullptr) {
    ctx.pool->parallel_for(n, fn, util::ThreadPool::grain_for(work_per_item));
  } else {
    fn(0, n);
  }
}

/// Patch-matrix extent for one image: (cin*k*k) x (hout*wout), row-major.
std::size_t conv_col_floats(const ConvDims& d) {
  return d.cin * d.k * d.k * d.hout() * d.wout();
}

/// 1x1 / stride-1 / pad-0 convolutions need no patch matrix: the image
/// itself already is the (cin x h*w) col operand.
bool conv_identity_col(const ConvDims& d) {
  return d.k == 1 && d.stride == 1 && d.pad == 0;
}

/// Scatter one image (cin,h,w) into the patch matrix col (cin*k*k, ho*wo).
/// Stride-1 interior rows are contiguous in x and go through
/// util::copy_bytes; padding is zero-filled; stride > 1 gathers scalar.
void im2col_image(const float* x, const ConvDims& d, float* col) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  const auto pad = static_cast<std::ptrdiff_t>(d.pad);
  float* crow = col;
  for (std::size_t ci = 0; ci < d.cin; ++ci) {
    for (std::size_t ky = 0; ky < d.k; ++ky) {
      for (std::size_t kx = 0; kx < d.k; ++kx, crow += ho * wo) {
        for (std::size_t oy = 0; oy < ho; ++oy) {
          float* dst = crow + oy * wo;
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * d.stride + ky) - pad;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) {
            std::fill(dst, dst + wo, 0.0f);
            continue;
          }
          const float* src =
              x + (ci * d.h + static_cast<std::size_t>(iy)) * d.w;
          if (d.stride == 1) {
            // ix = ox + kx - pad stays inside [0, w) for ox in [ox0, ox1).
            const std::ptrdiff_t shift =
                static_cast<std::ptrdiff_t>(kx) - pad;
            const auto ox0 = static_cast<std::size_t>(
                std::max<std::ptrdiff_t>(0, -shift));
            const auto ox1 = static_cast<std::size_t>(
                std::clamp(static_cast<std::ptrdiff_t>(d.w) - shift,
                           std::ptrdiff_t{0},
                           static_cast<std::ptrdiff_t>(wo)));
            std::fill(dst, dst + std::min(ox0, ox1), 0.0f);
            if (ox1 > ox0) {
              util::copy_bytes(dst + ox0, src + ox0 + kx - d.pad,
                               sizeof(float) * (ox1 - ox0), "ops::im2col");
            }
            std::fill(dst + std::max(ox0, ox1), dst + wo, 0.0f);
          } else {
            for (std::size_t ox = 0; ox < wo; ++ox) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * d.stride + kx) - pad;
              dst[ox] = (ix >= 0 && ix < static_cast<std::ptrdiff_t>(d.w))
                            ? src[ix]
                            : 0.0f;
            }
          }
        }
      }
    }
  }
}

/// Inverse scatter: accumulate the patch matrix back into the (pre-zeroed)
/// image gradient.  Overlapping receptive fields make this += even at
/// stride 1, so there is no memcpy fast path.
void col2im_add_image(const float* col, const ConvDims& d, float* gx) {
  const std::size_t ho = d.hout();
  const std::size_t wo = d.wout();
  const auto pad = static_cast<std::ptrdiff_t>(d.pad);
  const float* crow = col;
  for (std::size_t ci = 0; ci < d.cin; ++ci) {
    for (std::size_t ky = 0; ky < d.k; ++ky) {
      for (std::size_t kx = 0; kx < d.k; ++kx, crow += ho * wo) {
        for (std::size_t oy = 0; oy < ho; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * d.stride + ky) - pad;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(d.h)) continue;
          const float* src = crow + oy * wo;
          float* dst = gx + (ci * d.h + static_cast<std::size_t>(iy)) * d.w;
          for (std::size_t ox = 0; ox < wo; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * d.stride + kx) - pad;
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(d.w)) {
              dst[ix] += src[ox];
            }
          }
        }
      }
    }
  }
}

/// Dispatch `run_image(i, col, pool, counters)` over a conv batch.  When
/// the batch cannot feed the workers, images run serially on the caller
/// and the inner GEMM gets the pool; otherwise images fan out one-per-task
/// with private scratch leases and private per-image counter slots (folded
/// after the barrier), and the inner GEMM runs serially inside its task.
void conv_batch_launch(
    const KernelCtx& ctx, std::size_t n, std::size_t col_floats,
    const std::function<void(std::size_t, float*, util::ThreadPool*,
                             telemetry::KernelCounters*)>& run_image) {
  const bool batch_wide =
      ctx.pool != nullptr && n > 1 && ctx.pool->thread_count() > 1;
  if (!batch_wide) {
    ScratchPool local;
    ScratchPool& sp = ctx.scratch != nullptr ? *ctx.scratch : local;
    ScratchPool::Lease lease;
    if (col_floats > 0) lease = sp.acquire(col_floats);
    for (std::size_t i = 0; i < n; ++i) {
      run_image(i, lease.data(), ctx.pool, ctx.counters);
    }
    return;
  }
  std::vector<telemetry::KernelCounters> slots(ctx.counters != nullptr ? n
                                                                       : 0);
  ctx.pool->parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        ScratchPool local;
        ScratchPool& sp = ctx.scratch != nullptr ? *ctx.scratch : local;
        ScratchPool::Lease lease;
        if (col_floats > 0) lease = sp.acquire(col_floats);
        for (std::size_t i = begin; i < end; ++i) {
          run_image(i, lease.data(), nullptr,
                    slots.empty() ? nullptr : &slots[i]);
        }
      },
      /*min_grain=*/1);
  for (const auto& s : slots) fold_counters(ctx.counters, s);
}

}  // namespace

void conv2d_fwd(const KernelCtx& ctx, const float* x, const float* w,
                const float* b, float* y, const ConvDims& d) {
  if (ctx.reference) {
    conv2d_fwd(x, w, b, y, d);
    return;
  }
  const std::size_t hw_o = d.hout() * d.wout();
  const std::size_t cikk = d.cin * d.k * d.k;
  const std::size_t xsz = d.cin * d.h * d.w;
  const std::size_t ysz = d.cout * hw_o;
  const bool identity = conv_identity_col(d);
  conv_batch_launch(
      ctx, d.n, identity ? 0 : conv_col_floats(d),
      [&](std::size_t i, float* col, util::ThreadPool* pool,
          telemetry::KernelCounters* kc) {
        const float* xi = x + i * xsz;
        float* yi = y + i * ysz;
        const float* colp = xi;
        if (!identity) {
          double* sink = kc != nullptr ? &kc->im2col_seconds : nullptr;
          {
            telemetry::ScopedKernelTimer t(sink);
            im2col_image(xi, d, col);
          }
          if (kc != nullptr) ++kc->im2col_calls;
          colp = col;
        }
        KernelCtx inner{pool, ctx.scratch, kc, false};
        // Y_i (cout x hw_o) = W (cout x cikk) * col (cikk x hw_o).
        gemm(inner, false, false, d.cout, hw_o, cikk, 1.0f, w, cikk, colp,
             hw_o, 0.0f, yi, hw_o);
        if (b != nullptr) {
          for (std::size_t co = 0; co < d.cout; ++co) {
            float* yr = yi + co * hw_o;
            const float bias = b[co];
            for (std::size_t j = 0; j < hw_o; ++j) yr[j] += bias;
          }
        }
      });
}

void conv2d_bwd_data(const KernelCtx& ctx, const float* w, const float* gy,
                     float* gx, const ConvDims& d) {
  if (ctx.reference) {
    conv2d_bwd_data(w, gy, gx, d);
    return;
  }
  const std::size_t hw_o = d.hout() * d.wout();
  const std::size_t cikk = d.cin * d.k * d.k;
  const std::size_t xsz = d.cin * d.h * d.w;
  const std::size_t ysz = d.cout * hw_o;
  const bool identity = conv_identity_col(d);
  conv_batch_launch(
      ctx, d.n, identity ? 0 : conv_col_floats(d),
      [&](std::size_t i, float* col, util::ThreadPool* pool,
          telemetry::KernelCounters* kc) {
        const float* gyi = gy + i * ysz;
        float* gxi = gx + i * xsz;
        KernelCtx inner{pool, ctx.scratch, kc, false};
        // col (cikk x hw_o) = W^T (cikk x cout) * GY_i (cout x hw_o); for
        // identity convs the patch matrix *is* the image gradient.
        gemm(inner, true, false, cikk, hw_o, d.cout, 1.0f, w, cikk, gyi,
             hw_o, 0.0f, identity ? gxi : col, hw_o);
        if (!identity) {
          double* sink = kc != nullptr ? &kc->im2col_seconds : nullptr;
          telemetry::ScopedKernelTimer t(sink);
          if (kc != nullptr) ++kc->im2col_calls;  // counts the col2im dual
          std::fill(gxi, gxi + xsz, 0.0f);
          col2im_add_image(col, d, gxi);
        }
      });
}

void conv2d_bwd_weights(const KernelCtx& ctx, const float* x,
                        const float* gy, float* gw, const ConvDims& d) {
  if (ctx.reference) {
    conv2d_bwd_weights(x, gy, gw, d);
    return;
  }
  const std::size_t hw_o = d.hout() * d.wout();
  const std::size_t cikk = d.cin * d.k * d.k;
  const std::size_t xsz = d.cin * d.h * d.w;
  const std::size_t ysz = d.cout * hw_o;
  const std::size_t wsz = d.cout * cikk;
  const bool identity = conv_identity_col(d);
  const std::size_t col_floats = identity ? 0 : conv_col_floats(d);
  if (d.n == 0) {
    std::fill(gw, gw + wsz, 0.0f);
    return;
  }

  // acc (cout x cikk) += GY_i (cout x hw_o) * col_i^T (hw_o x cikk), over
  // images [i0, i1); beta = 0 on the first image writes acc fully.
  auto run_range = [&](std::size_t i0, std::size_t i1, float* col,
                       float* acc, util::ThreadPool* pool,
                       telemetry::KernelCounters* kc) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* xi = x + i * xsz;
      const float* colp = xi;
      if (!identity) {
        double* sink = kc != nullptr ? &kc->im2col_seconds : nullptr;
        {
          telemetry::ScopedKernelTimer t(sink);
          im2col_image(xi, d, col);
        }
        if (kc != nullptr) ++kc->im2col_calls;
        colp = col;
      }
      KernelCtx inner{pool, ctx.scratch, kc, false};
      gemm(inner, false, true, d.cout, cikk, hw_o, 1.0f, gy + i * ysz, hw_o,
           colp, hw_o, i == i0 ? 0.0f : 1.0f, acc, cikk);
    }
  };

  const bool batch_wide =
      ctx.pool != nullptr && d.n > 1 && ctx.pool->thread_count() > 1;
  if (!batch_wide) {
    ScratchPool local;
    ScratchPool& sp = ctx.scratch != nullptr ? *ctx.scratch : local;
    ScratchPool::Lease lease;
    if (col_floats > 0) lease = sp.acquire(col_floats);
    run_range(0, d.n, lease.data(), gw, ctx.pool, ctx.counters);
    return;
  }

  // Chunked reduction: each task accumulates its image range into a private
  // partial buffer, then the partials are summed into gw (also in
  // parallel, over disjoint element ranges).  No two tasks ever write the
  // same floats.
  const std::size_t nchunks = std::min(ctx.pool->thread_count(), d.n);
  std::vector<float> partial(nchunks * wsz);
  std::vector<telemetry::KernelCounters> slots(
      ctx.counters != nullptr ? nchunks : 0);
  ctx.pool->parallel_for(
      nchunks,
      [&](std::size_t begin, std::size_t end) {
        ScratchPool local;
        ScratchPool& sp = ctx.scratch != nullptr ? *ctx.scratch : local;
        ScratchPool::Lease lease;
        if (col_floats > 0) lease = sp.acquire(col_floats);
        for (std::size_t chunk = begin; chunk < end; ++chunk) {
          const std::size_t i0 = chunk * d.n / nchunks;
          const std::size_t i1 = (chunk + 1) * d.n / nchunks;
          run_range(i0, i1, lease.data(), partial.data() + chunk * wsz,
                    nullptr, slots.empty() ? nullptr : &slots[chunk]);
        }
      },
      /*min_grain=*/1);
  for (const auto& s : slots) fold_counters(ctx.counters, s);
  ctx.pool->parallel_for(wsz, [&](std::size_t begin, std::size_t end) {
    util::copy_bytes(gw + begin, partial.data() + begin,
                     sizeof(float) * (end - begin),
                     "ops::conv2d_bwd_weights");
    for (std::size_t chunk = 1; chunk < nchunks; ++chunk) {
      const float* p = partial.data() + chunk * wsz;
      for (std::size_t j = begin; j < end; ++j) gw[j] += p[j];
    }
  });
}

void conv2d_bwd_bias(const KernelCtx& ctx, const float* gy, float* gb,
                     const ConvDims& d) {
  if (ctx.reference) {
    conv2d_bwd_bias(gy, gb, d);
    return;
  }
  const std::size_t hw_o = d.hout() * d.wout();
  eltwise_launch(ctx, d.cout, d.n * hw_o,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t co = begin; co < end; ++co) {
                     float total = 0.0f;
                     for (std::size_t b = 0; b < d.n; ++b) {
                       const float* g = gy + (b * d.cout + co) * hw_o;
                       float acc = 0.0f;
                       for (std::size_t i = 0; i < hw_o; ++i) acc += g[i];
                       total += acc;
                     }
                     gb[co] = total;
                   }
                 });
}

void relu_fwd(const KernelCtx& ctx, const float* x, float* y, std::size_t n) {
  if (ctx.reference) {
    relu_fwd(x, y, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t b, std::size_t e) {
    relu_fwd(x + b, y + b, e - b);
  });
}

void relu_bwd(const KernelCtx& ctx, const float* x, const float* gy,
              float* gx, std::size_t n) {
  if (ctx.reference) {
    relu_bwd(x, gy, gx, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t b, std::size_t e) {
    relu_bwd(x + b, gy + b, gx + b, e - b);
  });
}

void maxpool2_fwd(const KernelCtx& ctx, const float* x, float* y,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  if (ctx.reference) {
    maxpool2_fwd(x, y, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    maxpool2_fwd(x + b * hw, y + b * (hw / 4), e - b, 1, h, w);
  });
}

void maxpool2_bwd(const KernelCtx& ctx, const float* x, const float* gy,
                  float* gx, std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  if (ctx.reference) {
    maxpool2_bwd(x, gy, gx, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    maxpool2_bwd(x + b * hw, gy + b * (hw / 4), gx + b * hw, e - b, 1, h, w);
  });
}

void avgpool2_fwd(const KernelCtx& ctx, const float* x, float* y,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  if (ctx.reference) {
    avgpool2_fwd(x, y, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    avgpool2_fwd(x + b * hw, y + b * (hw / 4), e - b, 1, h, w);
  });
}

void avgpool2_bwd(const KernelCtx& ctx, const float* gy, float* gx,
                  std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  if (ctx.reference) {
    avgpool2_bwd(gy, gx, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    avgpool2_bwd(gy + b * (hw / 4), gx + b * hw, e - b, 1, h, w);
  });
}

void dropout_fwd(const KernelCtx& ctx, const float* x, float* y, float* mask,
                 float p, std::uint64_t seed, std::size_t n) {
  // Always scalar (both tiers): the mask is defined as a sequential draw
  // from one seeded generator -- see the header.
  (void)ctx;
  dropout_fwd(x, y, mask, p, seed, n);
}

void dropout_bwd(const KernelCtx& ctx, const float* mask, const float* gy,
                 float* gx, std::size_t n) {
  if (ctx.reference) {
    dropout_bwd(mask, gy, gx, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t b, std::size_t e) {
    dropout_bwd(mask + b, gy + b, gx + b, e - b);
  });
}

void global_avgpool_fwd(const KernelCtx& ctx, const float* x, float* y,
                        std::size_t n, std::size_t c, std::size_t h,
                        std::size_t w) {
  if (ctx.reference) {
    global_avgpool_fwd(x, y, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    global_avgpool_fwd(x + b * hw, y + b, e - b, 1, h, w);
  });
}

void global_avgpool_bwd(const KernelCtx& ctx, const float* gy, float* gx,
                        std::size_t n, std::size_t c, std::size_t h,
                        std::size_t w) {
  if (ctx.reference) {
    global_avgpool_bwd(gy, gx, n, c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n * c, hw, [&](std::size_t b, std::size_t e) {
    global_avgpool_bwd(gy + b, gx + b * hw, e - b, 1, h, w);
  });
}

void batchnorm_fwd(const KernelCtx& ctx, const float* x, const float* gamma,
                   const float* beta, float* y, float* save_mean,
                   float* save_istd, std::size_t n, std::size_t c,
                   std::size_t h, std::size_t w, float eps) {
  if (ctx.reference) {
    batchnorm_fwd(x, gamma, beta, y, save_mean, save_istd, n, c, h, w, eps);
    return;
  }
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  // Channels are independent; each one reads its plane three times.
  eltwise_launch(ctx, c, 3 * n * hw, [&](std::size_t b, std::size_t e) {
    for (std::size_t ch = b; ch < e; ++ch) {
      bn_fwd_channel(x, gamma, beta, y, save_mean, save_istd, ch, n, c, hw,
                     m, eps);
    }
  });
}

void batchnorm_bwd(const KernelCtx& ctx, const float* x, const float* gamma,
                   const float* save_mean, const float* save_istd,
                   const float* gy, float* gx, float* ggamma, float* gbeta,
                   std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  if (ctx.reference) {
    batchnorm_bwd(x, gamma, save_mean, save_istd, gy, gx, ggamma, gbeta, n,
                  c, h, w);
    return;
  }
  const std::size_t hw = h * w;
  const float m = static_cast<float>(n * hw);
  eltwise_launch(ctx, c, 3 * n * hw, [&](std::size_t b, std::size_t e) {
    for (std::size_t ch = b; ch < e; ++ch) {
      bn_bwd_channel(x, gamma, save_mean, save_istd, gy, gx, ggamma, gbeta,
                     ch, n, c, hw, m);
    }
  });
}

void dense_fwd(const KernelCtx& ctx, const float* x, const float* w,
               const float* b, float* y, std::size_t n, std::size_t in,
               std::size_t out) {
  if (ctx.reference) {
    dense_fwd(x, w, b, y, n, in, out);
    return;
  }
  // Y (n x out) = X (n x in) * W^T (in x out); W is stored (out x in).
  gemm(ctx, false, true, n, out, in, 1.0f, x, in, w, in, 0.0f, y, out);
  if (b != nullptr) {
    eltwise_launch(ctx, n, out, [&](std::size_t rb, std::size_t re) {
      for (std::size_t i = rb; i < re; ++i) {
        float* yr = y + i * out;
        for (std::size_t o = 0; o < out; ++o) yr[o] += b[o];
      }
    });
  }
}

void dense_bwd_data(const KernelCtx& ctx, const float* w, const float* gy,
                    float* gx, std::size_t n, std::size_t in,
                    std::size_t out) {
  if (ctx.reference) {
    dense_bwd_data(w, gy, gx, n, in, out);
    return;
  }
  // GX (n x in) = GY (n x out) * W (out x in).
  gemm(ctx, false, false, n, in, out, 1.0f, gy, out, w, in, 0.0f, gx, in);
}

void dense_bwd_weights(const KernelCtx& ctx, const float* x, const float* gy,
                       float* gw, std::size_t n, std::size_t in,
                       std::size_t out) {
  if (ctx.reference) {
    dense_bwd_weights(x, gy, gw, n, in, out);
    return;
  }
  // GW (out x in) = GY^T (out x n) * X (n x in).
  gemm(ctx, true, false, out, in, n, 1.0f, gy, out, x, in, 0.0f, gw, in);
}

void dense_bwd_bias(const KernelCtx& ctx, const float* gy, float* gb,
                    std::size_t n, std::size_t out) {
  if (ctx.reference) {
    dense_bwd_bias(gy, gb, n, out);
    return;
  }
  eltwise_launch(ctx, out, n, [&](std::size_t b, std::size_t e) {
    for (std::size_t o = b; o < e; ++o) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < n; ++i) acc += gy[i * out + o];
      gb[o] = acc;
    }
  });
}

float softmax_ce_fwd(const KernelCtx& ctx, const float* logits,
                     const float* labels, float* probs, std::size_t n,
                     std::size_t classes) {
  // Scalar in both tiers: the mean-loss reduction is a sequential sum and
  // the op is a few n*classes exps -- below any useful grain.
  (void)ctx;
  return softmax_ce_fwd(logits, labels, probs, n, classes);
}

void softmax_ce_bwd(const KernelCtx& ctx, const float* probs,
                    const float* labels, float* gx, std::size_t n,
                    std::size_t classes) {
  if (ctx.reference) {
    softmax_ce_bwd(probs, labels, gx, n, classes);
    return;
  }
  const float inv_n = 1.0f / static_cast<float>(n);
  eltwise_launch(ctx, n, classes, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const auto label = static_cast<std::size_t>(labels[i]);
      for (std::size_t cc = 0; cc < classes; ++cc) {
        const float p = probs[i * classes + cc];
        gx[i * classes + cc] = (p - (cc == label ? 1.0f : 0.0f)) * inv_n;
      }
    }
  });
}

void add_fwd(const KernelCtx& ctx, const float* a, const float* b, float* y,
             std::size_t n) {
  if (ctx.reference) {
    add_fwd(a, b, y, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t i0, std::size_t i1) {
    add_fwd(a + i0, b + i0, y + i0, i1 - i0);
  });
}

void concat_fwd(const KernelCtx& ctx, const float* a, const float* b,
                float* y, std::size_t n, std::size_t ca, std::size_t cb,
                std::size_t h, std::size_t w) {
  if (ctx.reference) {
    concat_fwd(a, b, y, n, ca, cb, h, w);
    return;
  }
  // Batch the per-image row copies across the pool; each subrange delegates
  // to the scalar kernel, whose copies already route through copy_bytes.
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n, (ca + cb) * hw, [&](std::size_t i0, std::size_t i1) {
    concat_fwd(a + i0 * ca * hw, b + i0 * cb * hw,
               y + i0 * (ca + cb) * hw, i1 - i0, ca, cb, h, w);
  });
}

void concat_bwd(const KernelCtx& ctx, const float* gy, float* ga, float* gb,
                std::size_t n, std::size_t ca, std::size_t cb, std::size_t h,
                std::size_t w) {
  if (ctx.reference) {
    concat_bwd(gy, ga, gb, n, ca, cb, h, w);
    return;
  }
  const std::size_t hw = h * w;
  eltwise_launch(ctx, n, (ca + cb) * hw, [&](std::size_t i0, std::size_t i1) {
    concat_bwd(gy + i0 * (ca + cb) * hw, ga + i0 * ca * hw,
               gb + i0 * cb * hw, i1 - i0, ca, cb, h, w);
  });
}

void embedding_gather(const KernelCtx& ctx, const float* table,
                      const float* indices, float* out, std::size_t batch,
                      std::size_t dim) {
  if (ctx.reference) {
    embedding_gather(table, indices, out, batch, dim);
    return;
  }
  eltwise_launch(ctx, batch, dim, [&](std::size_t b, std::size_t e) {
    embedding_gather(table, indices + b, out + b * dim, e - b, dim);
  });
}

void embedding_scatter_sgd(const KernelCtx& ctx, float* table,
                           const float* indices, const float* grads,
                           float lr, std::size_t batch, std::size_t dim) {
  // Serial in both tiers: duplicate indices alias table rows -- see the
  // header.
  (void)ctx;
  embedding_scatter_sgd(table, indices, grads, lr, batch, dim);
}

void sgd_update(const KernelCtx& ctx, float* w, const float* g, float lr,
                std::size_t n) {
  if (ctx.reference) {
    sgd_update(w, g, lr, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t b, std::size_t e) {
    sgd_update(w + b, g + b, lr, e - b);
  });
}

void accumulate(const KernelCtx& ctx, float* acc, const float* g,
                std::size_t n) {
  if (ctx.reference) {
    accumulate(acc, g, n);
    return;
  }
  eltwise_launch(ctx, n, 1, [&](std::size_t b, std::size_t e) {
    accumulate(acc + b, g + b, e - b);
  });
}

}  // namespace ca::dnn::real
