// How kernels touch memory: the execution-context abstraction.
//
// The same workload (tape, kernels, annotations) runs in two regimes:
//   * CaExecContext -- app-direct CachedArrays: kernels read/write the
//     device their argument currently lives on, at that device's bandwidth.
//     Kernel *writes* to NVRAM use regular stores ("oneDNN kernels are not
//     optimized for writing to NVRAM", §V-d) -- only the copy engine gets
//     the non-temporal fast path.
//   * TwoLmExecContext -- memory mode: every access filters through the
//     direct-mapped hardware DRAM cache model.
// Both record traffic to the shared counters and return modeled stall
// seconds for the kernel's roofline.
#pragma once

#include <memory>
#include <span>

#include "core/runtime.hpp"
#include "dnn/scratch.hpp"
#include "twolm/direct_mapped_cache.hpp"
#include "util/threadpool.hpp"

namespace ca::dnn {

/// One kernel argument's memory footprint.
struct ArgAccess {
  dm::Object* object = nullptr;
  std::size_t bytes = 0;
  bool write = false;

  /// How many passes the kernel makes over this argument.  Conv/dense
  /// kernels sweep their inputs more than once (imperfect cache blocking);
  /// this is what makes staging data in DRAM profitable -- the paper's
  /// "arrays are moved from NVRAM to DRAM where they are referenced
  /// multiple times to compute the backwards pass" (§V).
  int passes = 1;
};

class ExecContext {
 public:
  /// `kernel_threads` sizes the worker pool handed to the real-backend
  /// fast kernels (1 = run everything serially, no pool ever spawned).
  explicit ExecContext(std::size_t kernel_threads = 1)
      : kernel_threads_(std::max<std::size_t>(1, kernel_threads)) {}
  virtual ~ExecContext() = default;

  /// Account the memory side of one kernel launch: record traffic for each
  /// argument and return the total modeled memory seconds.
  virtual double charge_memory(std::span<const ArgAccess> args) = 0;

  /// Worker pool for the fast kernel tier, created on first use so
  /// sim-backend runs never pay for the threads.  Null when configured
  /// with a single thread (kernels then run serially on the caller).
  [[nodiscard]] util::ThreadPool* kernel_pool() {
    if (kernel_threads_ <= 1) return nullptr;
    if (pool_ == nullptr) {
      pool_ = std::make_unique<util::ThreadPool>(kernel_threads_);
    }
    return pool_.get();
  }

  /// Reusable scratch buffers (im2col patch matrices, GEMM packing panels)
  /// shared by every kernel launched through this context.
  [[nodiscard]] real::ScratchPool& kernel_scratch() noexcept {
    return scratch_;
  }

 private:
  std::size_t kernel_threads_;
  std::unique_ptr<util::ThreadPool> pool_;
  real::ScratchPool scratch_;
};

/// App-direct mode: arguments are accessed wherever their primary lives.
class CaExecContext final : public ExecContext {
 public:
  /// Kernel access patterns (blocked, strided) reach only a fraction of
  /// NVRAM's sequential read bandwidth; the copy engine's shaped streams
  /// get the full curve.  This is the read-side counterpart of "oneDNN
  /// kernels are not optimized for writing to NVRAM" (paper SV-d).
  static constexpr double kNvramKernelReadEfficiency = 0.35;

  CaExecContext(core::Runtime& rt, std::size_t kernel_threads)
      : ExecContext(kernel_threads), rt_(&rt), threads_(kernel_threads) {}

  double charge_memory(std::span<const ArgAccess> args) override {
    double seconds = 0.0;
    for (const auto& a : args) {
      if (a.object == nullptr || a.bytes == 0) continue;
      const dm::Region* primary = rt_->manager().getprimary(*a.object);
      const sim::DeviceId dev = primary->device();
      const auto& spec = rt_->platform().spec(dev);
      double bw = a.write ? spec.write_bw.at(threads_)  // regular stores
                          : spec.read_bw.at(threads_);
      if (!a.write && spec.kind == sim::DeviceKind::kNvram) {
        bw *= kNvramKernelReadEfficiency;
      }
      const std::size_t bytes =
          a.bytes * static_cast<std::size_t>(a.passes);
      seconds += static_cast<double>(bytes) / bw;
      if (a.write) {
        rt_->counters().record_write(dev, bytes);
      } else {
        rt_->counters().record_read(dev, bytes);
      }
    }
    return seconds;
  }

 private:
  core::Runtime* rt_;
  std::size_t threads_;
};

/// Memory mode: all arguments live in the NVRAM heap; accesses go through
/// the hardware cache model (which records its own traffic).
class TwoLmExecContext final : public ExecContext {
 public:
  TwoLmExecContext(core::Runtime& rt, twolm::DirectMappedCache& cache,
                   std::size_t kernel_threads = 1)
      : ExecContext(kernel_threads), rt_(&rt), cache_(&cache) {}

  double charge_memory(std::span<const ArgAccess> args) override {
    double seconds = 0.0;
    for (const auto& a : args) {
      if (a.object == nullptr || a.bytes == 0) continue;
      const dm::Region* primary = rt_->manager().getprimary(*a.object);
      for (int p = 0; p < a.passes; ++p) {
        // Later passes mostly hit in the hardware cache -- exactly the
        // locality the 2LM model should capture.
        seconds += cache_->access(primary->offset(), a.bytes, a.write);
      }
    }
    return seconds;
  }

  [[nodiscard]] twolm::DirectMappedCache& cache() noexcept { return *cache_; }

 private:
  core::Runtime* rt_;
  twolm::DirectMappedCache* cache_;
};

}  // namespace ca::dnn
