// How kernels touch memory: the execution-context abstraction.
//
// The same workload (tape, kernels, annotations) runs in two regimes:
//   * CaExecContext -- app-direct CachedArrays: kernels read/write the
//     device their argument currently lives on, at that device's bandwidth.
//     Kernel *writes* to NVRAM use regular stores ("oneDNN kernels are not
//     optimized for writing to NVRAM", §V-d) -- only the copy engine gets
//     the non-temporal fast path.
//   * TwoLmExecContext -- memory mode: every access filters through the
//     direct-mapped hardware DRAM cache model.
// Both record traffic to the shared counters and return modeled stall
// seconds for the kernel's roofline.
#pragma once

#include <span>

#include "core/runtime.hpp"
#include "twolm/direct_mapped_cache.hpp"

namespace ca::dnn {

/// One kernel argument's memory footprint.
struct ArgAccess {
  dm::Object* object = nullptr;
  std::size_t bytes = 0;
  bool write = false;

  /// How many passes the kernel makes over this argument.  Conv/dense
  /// kernels sweep their inputs more than once (imperfect cache blocking);
  /// this is what makes staging data in DRAM profitable -- the paper's
  /// "arrays are moved from NVRAM to DRAM where they are referenced
  /// multiple times to compute the backwards pass" (§V).
  int passes = 1;
};

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Account the memory side of one kernel launch: record traffic for each
  /// argument and return the total modeled memory seconds.
  virtual double charge_memory(std::span<const ArgAccess> args) = 0;
};

/// App-direct mode: arguments are accessed wherever their primary lives.
class CaExecContext final : public ExecContext {
 public:
  /// Kernel access patterns (blocked, strided) reach only a fraction of
  /// NVRAM's sequential read bandwidth; the copy engine's shaped streams
  /// get the full curve.  This is the read-side counterpart of "oneDNN
  /// kernels are not optimized for writing to NVRAM" (paper SV-d).
  static constexpr double kNvramKernelReadEfficiency = 0.35;

  CaExecContext(core::Runtime& rt, std::size_t kernel_threads)
      : rt_(&rt), threads_(kernel_threads) {}

  double charge_memory(std::span<const ArgAccess> args) override {
    double seconds = 0.0;
    for (const auto& a : args) {
      if (a.object == nullptr || a.bytes == 0) continue;
      const dm::Region* primary = rt_->manager().getprimary(*a.object);
      const sim::DeviceId dev = primary->device();
      const auto& spec = rt_->platform().spec(dev);
      double bw = a.write ? spec.write_bw.at(threads_)  // regular stores
                          : spec.read_bw.at(threads_);
      if (!a.write && spec.kind == sim::DeviceKind::kNvram) {
        bw *= kNvramKernelReadEfficiency;
      }
      const std::size_t bytes =
          a.bytes * static_cast<std::size_t>(a.passes);
      seconds += static_cast<double>(bytes) / bw;
      if (a.write) {
        rt_->counters().record_write(dev, bytes);
      } else {
        rt_->counters().record_read(dev, bytes);
      }
    }
    return seconds;
  }

 private:
  core::Runtime* rt_;
  std::size_t threads_;
};

/// Memory mode: all arguments live in the NVRAM heap; accesses go through
/// the hardware cache model (which records its own traffic).
class TwoLmExecContext final : public ExecContext {
 public:
  TwoLmExecContext(core::Runtime& rt, twolm::DirectMappedCache& cache)
      : rt_(&rt), cache_(&cache) {}

  double charge_memory(std::span<const ArgAccess> args) override {
    double seconds = 0.0;
    for (const auto& a : args) {
      if (a.object == nullptr || a.bytes == 0) continue;
      const dm::Region* primary = rt_->manager().getprimary(*a.object);
      for (int p = 0; p < a.passes; ++p) {
        // Later passes mostly hit in the hardware cache -- exactly the
        // locality the 2LM model should capture.
        seconds += cache_->access(primary->offset(), a.bytes, a.write);
      }
    }
    return seconds;
  }

  [[nodiscard]] twolm::DirectMappedCache& cache() noexcept { return *cache_; }

 private:
  core::Runtime* rt_;
  twolm::DirectMappedCache* cache_;
};

}  // namespace ca::dnn
