// dp::Trainer: data-parallel multi-worker training over one shared
// heterogeneous-memory heap, with bucketed allreduce overlapped with the
// backward pass (DESIGN.md §3.6).
//
// K workers each own a full training stack -- Runtime, ExecContext,
// Engine, Model replica -- but all attach to ONE core::SharedHeap: one
// Platform's DRAM+NVRAM, one DataManager, each worker charged to its own
// TenantId.  Workers execute sequentially on the host; their *modeled*
// timelines run in parallel.  Per-worker virtual time within a step is the
// worker's own engine kernel-seconds delta (never the shared clock, which
// sums all tenants), so modeled results are deterministic and
// host-independent.
//
// Gradient buckets: parameters are coalesced, in gradient-ready order
// (Engine::set_grad_ready_hook, fired per parameter as the reverse tape
// walk passes its last use), into fixed-capacity buckets.  Buckets are
// first-class DM objects of class ObjectClass::kGradient -- born DRAM-hot
// (LruPolicy gradient_aware) and retired the moment the reduced result is
// applied.  A bucket's allreduce launches, in overlap mode, at the
// simulated second its last gradient became ready -- while earlier layers
// are still running backward -- and the optimizer waits only for comm the
// backward pass could not hide (the exposed remainder).  The serialized
// baseline launches every bucket after backward completes, chained.
//
// All real bucket access is PinnedSpan-sanctioned; the spans travel into
// comm::CommEngine, which holds the pins while the bucket is on the wire.
// Reduction order is canonical (workers 0..K-1, then scale by 1/K), so the
// reduced gradients are bitwise deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "comm/comm_engine.hpp"
#include "core/runtime.hpp"
#include "core/shared_heap.hpp"
#include "dnn/engine.hpp"
#include "dnn/exec_context.hpp"
#include "dnn/models.hpp"
#include "telemetry/counters.hpp"
#include "util/align.hpp"

namespace ca::dp {

struct TrainerConfig {
  std::size_t workers = 4;
  dnn::ModelSpec model = dnn::ModelSpec::vgg416_large();
  dnn::Backend backend = dnn::Backend::kSim;

  /// Bucket capacity: gradients are packed, in ready order, into buckets
  /// of at most this many bytes (one oversized gradient gets its own).
  std::size_t bucket_bytes = 4 * util::MiB;

  /// true: launch each bucket's allreduce at its gradient-ready time,
  /// overlapping comm with the rest of backward.  false: the serialized
  /// baseline -- every bucket launches after backward completes, chained.
  bool overlap = true;

  comm::LinkModel link = comm::LinkModel::ethernet_scaled();
  std::optional<comm::Algorithm> force_algorithm;
  std::size_t comm_pool_threads = 2;

  /// Shared-heap geometry (all K tenants share these devices).
  std::size_t dram_bytes = 512 * util::MiB;
  std::size_t nvram_bytes = 1300 * util::MiB;

  std::size_t kernel_threads = 8;
  std::size_t min_migratable = 64 * util::KiB;
  float lr = 1e-2f;
  std::uint64_t seed = 1;
};

/// One data-parallel iteration's modeled timeline.  All seconds are
/// simulated; workers run in parallel in model time.
struct StepMetrics {
  double step_seconds = 0.0;     ///< compute + exposed comm + optimizer
  double compute_seconds = 0.0;  ///< max over workers, forward + backward
  double optimizer_seconds = 0.0;
  double comm_busy_seconds = 0.0;     ///< modeled collective occupancy
  double comm_exposed_seconds = 0.0;  ///< comm the step stalled on
  double comm_overlapped_seconds = 0.0;
  std::size_t buckets = 0;
  std::uint64_t ring_picks = 0;
  std::uint64_t tree_picks = 0;
  /// Aggregate throughput: workers * batch / step_seconds.
  double samples_per_second = 0.0;
  float loss = 0.0f;  ///< worker 0's (0 under kSim)
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config);
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Run one data-parallel iteration: per-worker forward+backward with
  /// bucketed allreduce, canonical reduce, per-worker SGD apply.
  StepMetrics step();

  [[nodiscard]] const TrainerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] core::SharedHeap& heap() noexcept { return *heap_; }
  [[nodiscard]] comm::CommEngine& comm() noexcept { return comm_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] dnn::Engine& worker_engine(std::size_t w) {
    return *workers_.at(w)->engine;
  }
  [[nodiscard]] core::Runtime& worker_runtime(std::size_t w) {
    return *workers_.at(w)->rt;
  }

  /// Cumulative comm accounting across steps (telemetry rollup).
  [[nodiscard]] const telemetry::CommCounters& comm_counters() const noexcept {
    return comm_counters_;
  }

  /// Bucket count (valid after the first step, when the layout is built).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bucket_sizes_.size();
  }

 private:
  /// One replica's full stack plus its per-step scratch.
  struct GradEvent {
    dnn::Tensor grad;     ///< the finished parameter gradient
    double ready = 0.0;   ///< worker-virtual seconds into the step
  };
  struct Worker {
    dm::TenantId tenant;
    std::unique_ptr<core::Runtime> rt;
    std::unique_ptr<dnn::CaExecContext> ctx;
    std::unique_ptr<dnn::Engine> engine;
    std::unique_ptr<dnn::Model> model;
    std::vector<GradEvent> events;     ///< this step, in ready order
    std::vector<dm::Object*> buckets;  ///< this step's kGradient objects
  };
  /// Where ready-order gradient #i lives: identical for every worker
  /// because the replicas' tapes are identical.
  struct Segment {
    std::size_t bucket = 0;
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };

  void build_layout(const std::vector<GradEvent>& events);
  void allocate_buckets(Worker& w);

  TrainerConfig config_;
  std::shared_ptr<core::SharedHeap> heap_;
  comm::CommEngine comm_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::vector<Segment> layout_;            ///< by ready-order index
  std::vector<std::size_t> bucket_sizes_;  ///< bytes per bucket
  bool layout_built_ = false;

  double step_base_ = 0.0;  ///< absolute modeled start of the next step
  std::uint64_t iter_ = 0;
  telemetry::CommCounters comm_counters_;
};

}  // namespace ca::dp
