// Tensors over CachedArrays -- the workload-side data type (paper §IV).
//
// A Tensor is a shape plus a CachedArray<float>.  All semantic hints reach
// the policy through the array; the DNN engine never touches the data
// manager directly.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>

#include "core/cached_array.hpp"
#include "util/error.hpp"

namespace ca::dnn {

/// Up to 4 dimensions, NCHW order for feature maps, (rows, cols) for
/// matrices, (n) for vectors.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) {
    CA_CHECK(dims.size() >= 1 && dims.size() <= 4, "1..4 dimensions");
    rank_ = dims.size();
    std::size_t i = 0;
    for (const auto d : dims) dims_[i++] = d;
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t operator[](std::size_t i) const {
    CA_CHECK(i < rank_, "shape index out of range");
    return dims_[i];
  }
  [[nodiscard]] std::size_t numel() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  // NCHW accessors for rank-4 shapes.
  [[nodiscard]] std::size_t n() const { return (*this)[0]; }
  [[nodiscard]] std::size_t c() const { return (*this)[1]; }
  [[nodiscard]] std::size_t h() const { return (*this)[2]; }
  [[nodiscard]] std::size_t w() const { return (*this)[3]; }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string str() const {
    std::string s = "(";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i > 0) s += "x";
      s += std::to_string(dims_[i]);
    }
    return s + ")";
  }

 private:
  std::array<std::size_t, 4> dims_{1, 1, 1, 1};
  std::size_t rank_ = 0;
};

class Tensor {
 public:
  Tensor() = default;

  Tensor(core::Runtime& rt, Shape shape, std::string name = {},
         bool parameter = false)
      : shape_(shape),
        array_(rt, shape.numel(), std::move(name)),
        parameter_(parameter) {}

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t numel() const noexcept { return shape_.numel(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return numel() * sizeof(float);
  }
  [[nodiscard]] bool valid() const noexcept { return array_.valid(); }

  /// Parameters (weights, biases) persist across iterations and are never
  /// retired by the engine.
  [[nodiscard]] bool is_parameter() const noexcept { return parameter_; }

  [[nodiscard]] core::CachedArray<float>& array() noexcept { return array_; }
  [[nodiscard]] const core::CachedArray<float>& array() const noexcept {
    return array_;
  }
  [[nodiscard]] dm::Object* object() const noexcept {
    return array_.object();
  }

  /// Identity: two Tensor handles alias iff they share the object.
  friend bool operator==(const Tensor& a, const Tensor& b) noexcept {
    return a.object() != nullptr && a.object() == b.object();
  }

 private:
  Shape shape_;
  core::CachedArray<float> array_;
  bool parameter_ = false;
};

}  // namespace ca::dnn
