#include "dnn/dp_trainer.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "policy/lru_policy.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ca::dp {

Trainer::Trainer(TrainerConfig config)
    : config_(std::move(config)),
      heap_(std::make_shared<core::SharedHeap>(
          sim::Platform::cascade_lake_scaled(config_.dram_bytes,
                                             config_.nvram_bytes))),
      comm_(comm::CommConfig{config_.workers, config_.link,
                             config_.comm_pool_threads,
                             config_.force_algorithm}) {
  CA_CHECK(config_.workers >= 1, "dp::Trainer needs at least one worker");
  CA_CHECK(config_.bucket_bytes > 0, "bucket capacity must be positive");

  policy::LruPolicyConfig pcfg;
  pcfg.min_migratable = config_.min_migratable;
  pcfg.gradient_aware = true;
  const auto factory = [pcfg](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, pcfg);
  };

  for (std::size_t w = 0; w < config_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->tenant =
        heap_->manager.register_tenant("dp:worker" + std::to_string(w));
    core::RuntimeOptions opts;
    opts.tenant = worker->tenant;
    worker->rt = std::make_unique<core::Runtime>(heap_, factory, opts);
    worker->ctx = std::make_unique<dnn::CaExecContext>(
        *worker->rt, config_.kernel_threads);
    dnn::EngineConfig ec;
    ec.backend = config_.backend;
    ec.compute_efficiency = config_.model.compute_efficiency;
    ec.conv_read_passes = config_.model.conv_read_passes;
    ec.kernel_threads = config_.kernel_threads;
    worker->engine =
        std::make_unique<dnn::Engine>(*worker->rt, *worker->ctx, ec);
    worker->model = dnn::build_model(*worker->engine, config_.model);
    // Every replica starts from the SAME parameters (the data-parallel
    // contract); only the minibatches differ per worker.
    worker->model->init(*worker->engine, config_.seed);
    workers_.push_back(std::move(worker));
  }
}

Trainer::~Trainer() {
  comm_.drain();
  for (auto& w : workers_) w->engine->set_grad_ready_hook(nullptr);
}

void Trainer::build_layout(const std::vector<GradEvent>& events) {
  layout_.resize(events.size());
  bucket_sizes_.clear();
  std::size_t cur_bytes = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::size_t bytes = events[i].grad.bytes();
    if (cur_bytes > 0 && cur_bytes + bytes > config_.bucket_bytes) {
      bucket_sizes_.push_back(cur_bytes);
      cur_bytes = 0;
    }
    layout_[i] = {bucket_sizes_.size(), cur_bytes, bytes};
    cur_bytes += bytes;
  }
  if (cur_bytes > 0 || bucket_sizes_.empty()) {
    bucket_sizes_.push_back(cur_bytes);
  }
  layout_built_ = true;
}

void Trainer::allocate_buckets(Worker& w) {
  w.buckets.clear();
  w.buckets.reserve(bucket_sizes_.size());
  for (std::size_t b = 0; b < bucket_sizes_.size(); ++b) {
    dm::Object& obj = w.rt->new_object(
        bucket_sizes_[b], "grad_bucket:b" + std::to_string(b),
        dm::ObjectClass::kGradient);
    w.buckets.push_back(&obj);
  }
}

StepMetrics Trainer::step() {
  const std::uint64_t step_seed = config_.seed + 31 * iter_;
  const std::size_t n_workers = workers_.size();
  const comm::CommStats comm0 = comm_.stats();

  StepMetrics m;

  // --- forward + backward, one worker at a time (parallel in model time) --
  for (std::size_t w = 0; w < n_workers; ++w) {
    Worker& W = *workers_[w];
    auto& eng = *W.engine;
    W.events.clear();
    // Buckets are born DRAM-hot at backward start (steps >= 2, once the
    // layout is known) so gradients stream into resident fast memory.
    if (layout_built_) allocate_buckets(W);

    const double k0 = eng.stats().kernel_seconds;
    eng.set_grad_ready_hook(
        [&W, &eng, k0](const dnn::Tensor&, const dnn::Tensor& grad) {
          // Worker-virtual ready time: this worker's own kernel-seconds
          // into the step (the shared clock sums all tenants and would
          // serialize the replicas).
          W.events.push_back({grad, eng.stats().kernel_seconds - k0});
        });

    {
      const std::uint64_t wseed = step_seed + 1000003 * w;
      dnn::Tensor input = eng.tensor(W.model->input_shape(), "input");
      eng.fill_normal(input, 1.0f, wseed);
      dnn::Tensor labels = eng.tensor({config_.model.batch}, "labels");
      eng.fill_labels(labels, config_.model.classes, wseed ^ 0x5555);
      dnn::Tensor logits = W.model->forward(eng, input);
      const float loss = eng.softmax_ce_loss(logits, labels);
      if (w == 0) m.loss = loss;
      eng.backward();
    }
    eng.set_grad_ready_hook(nullptr);
    m.compute_seconds =
        std::max(m.compute_seconds, eng.stats().kernel_seconds - k0);
  }

  // --- bucket layout (worker 0's ready order; replicas are identical) ----
  if (!layout_built_) {
    build_layout(workers_[0]->events);
    for (auto& W : workers_) allocate_buckets(*W);
  }
  const std::size_t n_buckets = bucket_sizes_.size();
  const std::size_t n_events = layout_.size();
  for (const auto& W : workers_) {
    CA_CHECK(W->events.size() == n_events,
             "replica gradient-ready sequences diverged");
  }

  // --- pack gradients into buckets; collect per-bucket ready times -------
  std::vector<double> ready(n_buckets, 0.0);
  for (std::size_t w = 0; w < n_workers; ++w) {
    Worker& W = *workers_[w];
    for (std::size_t i = 0; i < n_events; ++i) {
      const Segment& seg = layout_[i];
      const GradEvent& ev = W.events[i];
      CA_CHECK(ev.grad.bytes() == seg.bytes,
               "replica gradient sizes diverged");
      dm::PinnedSpan src = W.rt->access(*ev.grad.object(), /*write=*/false);
      dm::PinnedSpan dst =
          W.rt->access(*W.buckets[seg.bucket], /*write=*/true);
      util::copy_bytes(dst.data() + seg.offset, src.data(), seg.bytes,
                       "dp::pack");
      ready[seg.bucket] = std::max(ready[seg.bucket], ev.ready);
    }
  }

  // --- launch allreduces ---------------------------------------------------
  // Absolute interconnect time: contention bookkeeping spans steps.
  const double base = step_base_;
  std::vector<comm::Reduction> reductions(n_buckets);
  double prev_done = 0.0;
  double comm_done = base;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const double earliest =
        config_.overlap
            ? base + ready[b]
            : std::max(base + m.compute_seconds, prev_done);
    std::vector<dm::PinnedSpan> parts;
    parts.reserve(n_workers);
    for (auto& W : workers_) {
      parts.push_back(W->rt->access(*W->buckets[b], /*write=*/true));
    }
    reductions[b] = comm_.allreduce_async(std::move(parts), earliest);
    prev_done = reductions[b].done_time();
    comm_done = std::max(comm_done, prev_done);
  }

  // --- drain the real reductions, scale, unpack ---------------------------
  const float inv_k = 1.0f / static_cast<float>(n_workers);
  for (auto& r : reductions) r.join();
  for (std::size_t w = 0; w < n_workers; ++w) {
    Worker& W = *workers_[w];
    for (std::size_t b = 0; b < n_buckets; ++b) {
      dm::PinnedSpan span = W.rt->access(*W.buckets[b], /*write=*/true);
      auto* f = reinterpret_cast<float*>(span.data());
      const std::size_t n = bucket_sizes_[b] / sizeof(float);
      for (std::size_t i = 0; i < n; ++i) f[i] *= inv_k;
    }
    for (std::size_t i = 0; i < n_events; ++i) {
      const Segment& seg = layout_[i];
      dm::PinnedSpan src =
          W.rt->access(*W.buckets[seg.bucket], /*write=*/false);
      dm::PinnedSpan dst =
          W.rt->access(*W.events[i].grad.object(), /*write=*/true);
      util::copy_bytes(dst.data(), src.data() + seg.offset, seg.bytes,
                       "dp::unpack");
    }
  }

  // --- apply + bucket retirement ------------------------------------------
  for (std::size_t w = 0; w < n_workers; ++w) {
    Worker& W = *workers_[w];
    auto& eng = *W.engine;
    const double k1 = eng.stats().kernel_seconds;
    eng.sgd_step(config_.lr);
    m.optimizer_seconds =
        std::max(m.optimizer_seconds, eng.stats().kernel_seconds - k1);
    W.events.clear();
    // The reduced result is applied: the buckets are dead until the next
    // backward pass.  retire (optimization M) frees the DRAM now; a
    // non-eager policy would archive instead and let gradient_aware
    // demotion move them off the fast tier.
    for (dm::Object* obj : W.buckets) W.rt->retire(*obj);
    W.buckets.clear();
    eng.end_iteration();
  }
  heap_->manager.drain_transfers();

  // --- modeled step timeline ----------------------------------------------
  const comm::CommStats comm1 = comm_.stats();
  m.buckets = n_buckets;
  m.ring_picks = comm1.ring_picks - comm0.ring_picks;
  m.tree_picks = comm1.tree_picks - comm0.tree_picks;
  m.comm_busy_seconds = comm1.busy_seconds - comm0.busy_seconds;
  m.comm_exposed_seconds =
      std::max(0.0, comm_done - (base + m.compute_seconds));
  m.comm_overlapped_seconds =
      std::max(0.0, m.comm_busy_seconds - m.comm_exposed_seconds);
  m.step_seconds =
      m.compute_seconds + m.comm_exposed_seconds + m.optimizer_seconds;
  if (m.step_seconds > 0.0) {
    m.samples_per_second =
        static_cast<double>(n_workers * config_.model.batch) /
        m.step_seconds;
  }
  // The shared clock already carries every tenant's kernel time; fold in
  // the comm seconds the step could not hide.
  heap_->clock.advance(m.comm_exposed_seconds, sim::TimeCategory::kMovement);
  step_base_ += m.step_seconds;

  comm_counters_.reductions += comm1.reductions - comm0.reductions;
  comm_counters_.bytes_on_wire += comm1.bytes_on_wire - comm0.bytes_on_wire;
  comm_counters_.ring_picks += m.ring_picks;
  comm_counters_.tree_picks += m.tree_picks;
  comm_counters_.comm_seconds += m.comm_busy_seconds;
  comm_counters_.exposed_seconds += m.comm_exposed_seconds;
  comm_counters_.overlapped_seconds += m.comm_overlapped_seconds;

  ++iter_;
  return m;
}

}  // namespace ca::dp
