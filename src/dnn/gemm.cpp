#include "dnn/gemm.hpp"

#include <algorithm>

#include "dnn/scratch.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/stopwatch.hpp"
#include "util/align.hpp"
#include "util/threadpool.hpp"

namespace ca::dnn::real {

namespace {

/// One operand element, resolving the transpose while packing.
inline float a_at(const float* a, std::size_t lda, bool trans, std::size_t r,
                  std::size_t c) {
  return trans ? a[c * lda + r] : a[r * lda + c];
}

/// Pack the A block [ic, ic+mc) x [pc, pc+kc) into kMR-row micro-panels:
/// pa[(i/kMR)*(kMR*kc) + p*kMR + i%kMR], rows beyond mc zero-padded so the
/// micro-kernel never branches on the fringe.
void pack_a(const float* a, std::size_t lda, bool trans, std::size_t ic,
            std::size_t pc, std::size_t mc, std::size_t kc, float* pa) {
  for (std::size_t ip = 0; ip < mc; ip += kGemmMR) {
    float* panel = pa + (ip / kGemmMR) * (kGemmMR * kc);
    const std::size_t rows = std::min(kGemmMR, mc - ip);
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * kGemmMR;
      for (std::size_t r = 0; r < rows; ++r) {
        dst[r] = a_at(a, lda, trans, ic + ip + r, pc + p);
      }
      for (std::size_t r = rows; r < kGemmMR; ++r) dst[r] = 0.0f;
    }
  }
}

/// Pack the B block [pc, pc+kc) x [jc, jc+nc) into kNR-column micro-panels:
/// pb[(j/kNR)*(kNR*kc) + p*kNR + j%kNR], columns beyond nc zero-padded.
/// B is stored (k x n, ldb) when !trans, (n x k, ldb) when trans.
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t pc,
            std::size_t jc, std::size_t kc, std::size_t nc, float* pb) {
  for (std::size_t jp = 0; jp < nc; jp += kGemmNR) {
    float* panel = pb + (jp / kGemmNR) * (kGemmNR * kc);
    const std::size_t cols = std::min(kGemmNR, nc - jp);
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * kGemmNR;
      if (!trans) {
        const float* src = b + (pc + p) * ldb + jc + jp;
        for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j];
      } else {
        for (std::size_t j = 0; j < cols; ++j) {
          dst[j] = b[(jc + jp + j) * ldb + pc + p];
        }
      }
      for (std::size_t j = cols; j < kGemmNR; ++j) dst[j] = 0.0f;
    }
  }
}

/// kMR x kNR register tile over packed micro-panels.  The accumulator loop
/// is branch-free over the full tile (panels are zero-padded); only the
/// write-back respects the mr x nr fringe.  Plain C on purpose: with the
/// fixed tile bounds the compiler fully unrolls and vectorizes the j loop.
void micro_kernel(std::size_t kc, const float* pa, const float* pb,
                  float alpha, float beta, bool first_pc, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  float acc[kGemmMR][kGemmNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = pa + p * kGemmMR;
    const float* bp = pb + p * kGemmNR;
    for (std::size_t i = 0; i < kGemmMR; ++i) {
      const float av = ap[i];
      for (std::size_t j = 0; j < kGemmNR; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    if (!first_pc) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * acc[i][j];
    } else if (beta == 0.0f) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = alpha * acc[i][j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = alpha * acc[i][j] + beta * crow[j];
      }
    }
  }
}

struct GemmArgs {
  bool trans_a, trans_b;
  std::size_t m, n, k;
  float alpha;
  const float* a;
  std::size_t lda;
  const float* b;
  std::size_t ldb;
  float beta;
  float* c;
  std::size_t ldc;
};

/// The full blocked loop nest over the C column band [n0, n1), packing
/// into caller-private panels `pa` / `pb`.
void run_band(const GemmArgs& g, std::size_t n0, std::size_t n1, float* pa,
              float* pb) {
  for (std::size_t pc = 0; pc < g.k; pc += kGemmKC) {
    const std::size_t kc = std::min(kGemmKC, g.k - pc);
    const bool first_pc = pc == 0;
    for (std::size_t jc = n0; jc < n1; jc += kGemmNC) {
      const std::size_t nc = std::min(kGemmNC, n1 - jc);
      pack_b(g.b, g.ldb, g.trans_b, pc, jc, kc, nc, pb);
      for (std::size_t ic = 0; ic < g.m; ic += kGemmMC) {
        const std::size_t mc = std::min(kGemmMC, g.m - ic);
        pack_a(g.a, g.lda, g.trans_a, ic, pc, mc, kc, pa);
        for (std::size_t jr = 0; jr < nc; jr += kGemmNR) {
          const std::size_t nr = std::min(kGemmNR, nc - jr);
          const float* pbp = pb + (jr / kGemmNR) * (kGemmNR * kc);
          for (std::size_t ir = 0; ir < mc; ir += kGemmMR) {
            const std::size_t mr = std::min(kGemmMR, mc - ir);
            micro_kernel(kc, pa + (ir / kGemmMR) * (kGemmMR * kc), pbp,
                         g.alpha, g.beta, first_pc,
                         g.c + (ic + ir) * g.ldc + jc + jr, g.ldc, mr, nr);
          }
        }
      }
    }
  }
}

constexpr std::size_t panel_floats(std::size_t band_cols) {
  // pack_b zero-pads every panel to full kNR columns, so the B scratch must
  // hold the kNR-rounded band width (kNC is itself a multiple of kNR).
  return kGemmMC * kGemmKC +
         kGemmKC *
             std::min(util::ceil_div(band_cols, kGemmNR) * kGemmNR, kGemmNC);
}

}  // namespace

void gemm(const KernelCtx& ctx, bool trans_a, bool trans_b, std::size_t m,
          std::size_t n, std::size_t k, float alpha, const float* a,
          std::size_t lda, const float* b, std::size_t ldb, float beta,
          float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Degenerate products reduce to a beta-scale of C.
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = beta == 0.0f ? 0.0f : beta * crow[j];
      }
    }
    return;
  }

  double* time_sink = nullptr;
  if (ctx.counters != nullptr) {
    ++ctx.counters->gemm_calls;
    ctx.counters->gemm_flops += 2.0 * static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(k);
    time_sink = &ctx.counters->gemm_seconds;
  }
  telemetry::ScopedKernelTimer timer(time_sink);

  GemmArgs g{trans_a, trans_b, m,    n, k,   alpha, a,
             lda,     b,       ldb,  beta,   c,     ldc};

  ScratchPool local;
  ScratchPool& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;

  const double flops =
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
      static_cast<double>(k);
  const bool wide = ctx.pool != nullptr && ctx.pool->thread_count() > 1 &&
                    n >= 2 * kGemmNR && flops >= 262144.0;
  if (!wide) {
    auto lease = scratch.acquire(panel_floats(n));
    run_band(g, 0, n, lease.data(), lease.data() + kGemmMC * kGemmKC);
    return;
  }

  // Parallel path: partition C's columns into kNR-aligned bands, one task
  // each.  Bands are disjoint, so tasks share only read-mostly A/B and the
  // pool's own synchronization -- no kernel-level locking.
  const std::size_t threads = ctx.pool->thread_count();
  const std::size_t band_target = threads * 2;  // 2 bands/thread for balance
  const std::size_t band_cols = std::max(
      kGemmNR,
      util::ceil_div(util::ceil_div(n, band_target), kGemmNR) * kGemmNR);
  const std::size_t bands = util::ceil_div(n, band_cols);
  ctx.pool->parallel_for(
      bands,
      [&](std::size_t begin, std::size_t end) {
        auto lease = scratch.acquire(panel_floats(band_cols));
        for (std::size_t bi = begin; bi < end; ++bi) {
          const std::size_t n0 = bi * band_cols;
          const std::size_t n1 = std::min(n0 + band_cols, n);
          run_band(g, n0, n1, lease.data(),
                   lease.data() + kGemmMC * kGemmKC);
        }
      },
      /*min_grain=*/1);
}

}  // namespace ca::dnn::real
