#include "dnn/gemm.hpp"

#include <algorithm>

#include "dnn/scratch.hpp"
#include "simd/gemm_kernel.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/stopwatch.hpp"
#include "util/align.hpp"
#include "util/threadpool.hpp"

namespace ca::dnn::real {

namespace {

/// One operand element, resolving the transpose while packing.
inline float a_at(const float* a, std::size_t lda, bool trans, std::size_t r,
                  std::size_t c) {
  return trans ? a[c * lda + r] : a[r * lda + c];
}

/// Pack the A block [ic, ic+mc) x [pc, pc+kc) into mr-row micro-panels:
/// pa[(i/mr)*(mr*kc) + p*mr + i%mr], rows beyond mc zero-padded so the
/// micro-kernel never branches on the fringe.  `mr` is the active
/// dispatch tile's row count -- packing is shared across ISA tiers.
void pack_a(const float* a, std::size_t lda, bool trans, std::size_t ic,
            std::size_t pc, std::size_t mc, std::size_t kc, float* pa,
            std::size_t mr) {
  for (std::size_t ip = 0; ip < mc; ip += mr) {
    float* panel = pa + (ip / mr) * (mr * kc);
    const std::size_t rows = std::min(mr, mc - ip);
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * mr;
      for (std::size_t r = 0; r < rows; ++r) {
        dst[r] = a_at(a, lda, trans, ic + ip + r, pc + p);
      }
      for (std::size_t r = rows; r < mr; ++r) dst[r] = 0.0f;
    }
  }
}

/// Pack the B block [pc, pc+kc) x [jc, jc+nc) into nr-column micro-panels:
/// pb[(j/nr)*(nr*kc) + p*nr + j%nr], columns beyond nc zero-padded.
/// B is stored (k x n, ldb) when !trans, (n x k, ldb) when trans.
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t pc,
            std::size_t jc, std::size_t kc, std::size_t nc, float* pb,
            std::size_t nr) {
  for (std::size_t jp = 0; jp < nc; jp += nr) {
    float* panel = pb + (jp / nr) * (nr * kc);
    const std::size_t cols = std::min(nr, nc - jp);
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * nr;
      if (!trans) {
        const float* src = b + (pc + p) * ldb + jc + jp;
        for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j];
      } else {
        for (std::size_t j = 0; j < cols; ++j) {
          dst[j] = b[(jc + jp + j) * ldb + pc + p];
        }
      }
      for (std::size_t j = cols; j < nr; ++j) dst[j] = 0.0f;
    }
  }
}

struct GemmArgs {
  bool trans_a, trans_b;
  std::size_t m, n, k;
  float alpha;
  const float* a;
  std::size_t lda;
  const float* b;
  std::size_t ldb;
  float beta;
  float* c;
  std::size_t ldc;
  const simd::GemmTile* tile;  ///< resolved once per gemm() call
};

/// Floats in a packed A block at the given tile: mc rounded up to whole
/// mr-row micro-panels times the panel depth.
std::size_t a_panel_floats(std::size_t mr) {
  return util::ceil_div(kGemmMC, mr) * mr * kGemmKC;
}

/// The full blocked loop nest over the C column band [n0, n1), packing
/// into caller-private panels `pa` / `pb`.
void run_band(const GemmArgs& g, std::size_t n0, std::size_t n1, float* pa,
              float* pb) {
  const std::size_t mr_t = g.tile->mr;
  const std::size_t nr_t = g.tile->nr;
  const simd::GemmMicroKernelFn kernel = g.tile->kernel;
  for (std::size_t pc = 0; pc < g.k; pc += kGemmKC) {
    const std::size_t kc = std::min(kGemmKC, g.k - pc);
    const bool first_pc = pc == 0;
    for (std::size_t jc = n0; jc < n1; jc += kGemmNC) {
      const std::size_t nc = std::min(kGemmNC, n1 - jc);
      pack_b(g.b, g.ldb, g.trans_b, pc, jc, kc, nc, pb, nr_t);
      for (std::size_t ic = 0; ic < g.m; ic += kGemmMC) {
        const std::size_t mc = std::min(kGemmMC, g.m - ic);
        pack_a(g.a, g.lda, g.trans_a, ic, pc, mc, kc, pa, mr_t);
        for (std::size_t jr = 0; jr < nc; jr += nr_t) {
          const std::size_t nr = std::min(nr_t, nc - jr);
          const float* pbp = pb + (jr / nr_t) * (nr_t * kc);
          for (std::size_t ir = 0; ir < mc; ir += mr_t) {
            const std::size_t mr = std::min(mr_t, mc - ir);
            kernel(kc, pa + (ir / mr_t) * (mr_t * kc), pbp, g.alpha, g.beta,
                   first_pc, g.c + (ic + ir) * g.ldc + jc + jr, g.ldc, mr,
                   nr);
          }
        }
      }
    }
  }
}

std::size_t panel_floats(std::size_t band_cols, std::size_t mr,
                         std::size_t nr) {
  // pack_b zero-pads every panel to full nr columns, so the B scratch must
  // hold the nr-rounded band width (kNC is a multiple of every tier's nr).
  return a_panel_floats(mr) +
         kGemmKC * std::min(util::ceil_div(band_cols, nr) * nr, kGemmNC);
}

}  // namespace

void gemm(const KernelCtx& ctx, bool trans_a, bool trans_b, std::size_t m,
          std::size_t n, std::size_t k, float alpha, const float* a,
          std::size_t lda, const float* b, std::size_t ldb, float beta,
          float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Degenerate products reduce to a beta-scale of C.
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = beta == 0.0f ? 0.0f : beta * crow[j];
      }
    }
    return;
  }

  double* time_sink = nullptr;
  if (ctx.counters != nullptr) {
    ++ctx.counters->gemm_calls;
    ctx.counters->gemm_flops += 2.0 * static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(k);
    time_sink = &ctx.counters->gemm_seconds;
  }
  telemetry::ScopedKernelTimer timer(time_sink);

  const simd::GemmTile& tile = simd::gemm_tile(simd::active_level());
  GemmArgs g{trans_a, trans_b, m,    n, k,   alpha, a,
             lda,     b,       ldb,  beta,   c,     ldc, &tile};

  ScratchPool local;
  ScratchPool& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;

  const double flops =
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
      static_cast<double>(k);
  const bool wide = ctx.pool != nullptr && ctx.pool->thread_count() > 1 &&
                    n >= 2 * tile.nr && flops >= 262144.0;
  if (!wide) {
    auto lease = scratch.acquire(panel_floats(n, tile.mr, tile.nr));
    run_band(g, 0, n, lease.data(), lease.data() + a_panel_floats(tile.mr));
    return;
  }

  // Parallel path: partition C's columns into nr-aligned bands, one task
  // each.  Bands are disjoint, so tasks share only read-mostly A/B and the
  // pool's own synchronization -- no kernel-level locking.
  const std::size_t threads = ctx.pool->thread_count();
  const std::size_t band_target = threads * 2;  // 2 bands/thread for balance
  const std::size_t band_cols = std::max(
      tile.nr,
      util::ceil_div(util::ceil_div(n, band_target), tile.nr) * tile.nr);
  const std::size_t bands = util::ceil_div(n, band_cols);
  ctx.pool->parallel_for(
      bands,
      [&](std::size_t begin, std::size_t end) {
        auto lease = scratch.acquire(panel_floats(band_cols, tile.mr,
                                                  tile.nr));
        for (std::size_t bi = begin; bi < end; ++bi) {
          const std::size_t n0 = bi * band_cols;
          const std::size_t n1 = std::min(n0 + band_cols, n);
          run_band(g, n0, n1, lease.data(),
                   lease.data() + a_panel_floats(tile.mr));
        }
      },
      /*min_grain=*/1);
}

}  // namespace ca::dnn::real
