#include "dnn/harness.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ca::dnn {

Harness::Harness(const HarnessConfig& config) : config_(config) {
  // In 2LM modes the DRAM device *is* the hardware cache: the object heap
  // lives entirely in NVRAM.  In app-direct modes both devices hold heaps.
  // A zero DRAM budget (Fig. 7's left edge) still needs a token arena so
  // the platform is well-formed; no allocation ever lands there.
  const std::size_t dram_arena =
      std::max<std::size_t>(config.dram_bytes, 64 * util::KiB);
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(dram_arena, config.nvram_bytes);
  platform.mover_channels = std::max<std::size_t>(1, config.mover_channels);

  const bool eager = config.mode == Mode::kTwoLmM ||
                     config.mode == Mode::kCaLM ||
                     config.mode == Mode::kCaLMP ||
                     config.mode == Mode::kNvramOnly;

  core::Runtime::PolicyFactory factory;
  switch (config.mode) {
    case Mode::kTwoLmNone:
    case Mode::kTwoLmM:
    case Mode::kNvramOnly:
      factory = [eager](dm::DataManager& dm) {
        return std::make_unique<policy::PinnedDevicePolicy>(dm, sim::kSlow,
                                                            eager);
      };
      break;
    case Mode::kCaNone:
    case Mode::kCaL:
    case Mode::kCaLM:
    case Mode::kCaLMP: {
      policy::LruPolicyConfig cfg;
      cfg.local_alloc = config.mode != Mode::kCaNone;
      cfg.eager_retire = eager;
      cfg.prefetch = config.mode == Mode::kCaLMP;
      cfg.min_migratable = config.min_migratable;
      cfg.async_prefetch = config.async_movement;
      cfg.async_writeback = config.async_movement;
      if (config.async_movement) cfg.prefetch_distance = config.prefetch_distance;
      factory = [cfg](dm::DataManager& dm) {
        return std::make_unique<policy::LruPolicy>(dm, cfg);
      };
      break;
    }
  }

  rt_ = std::make_unique<core::Runtime>(std::move(platform), factory);

  if (is_two_lm(config.mode)) {
    twolm::CacheConfig cc;
    cc.capacity = config.dram_bytes;
    cc.kernel_threads = config.kernel_threads;
    cache_ = std::make_unique<twolm::DirectMappedCache>(
        cc, rt_->platform(), rt_->counters());
    ctx_ = std::make_unique<TwoLmExecContext>(*rt_, *cache_,
                                              config.kernel_threads);
  } else {
    ctx_ = std::make_unique<CaExecContext>(*rt_, config.kernel_threads);
  }

  EngineConfig ec;
  ec.backend = config.backend;
  ec.issue_archive = true;
  ec.issue_retire = eager;
  ec.flop_rate = config.flop_rate;
  ec.compute_efficiency = config.compute_efficiency;
  ec.conv_read_passes = config.conv_read_passes;
  ec.kernel_threads = config.kernel_threads;
  engine_ = std::make_unique<Engine>(*rt_, *ctx_, ec);
}

}  // namespace ca::dnn
