// KernelCtx: execution resources threaded through every real-backend
// kernel launch.
//
// The fast kernels (blocked GEMM, im2col conv, ThreadPool-parallel
// elementwise) need a worker pool, per-thread scratch buffers and a place
// to record wall-time counters; the scalar reference kernels need none of
// it.  A KernelCtx bundles the three and carries the backend switch, so
// the Engine's launch lambdas are written once and dispatch at the
// ops_real entry points:
//
//   * reference == false  -> the blocked/parallel fast path (Backend::kReal)
//   * reference == true   -> the seed scalar loops (Backend::kReference),
//     kept as the parity oracle for tests
//
// A default-constructed ctx (null pool/scratch) is valid: kernels fall
// back to the serial fast path with locally allocated scratch-free
// algorithms where possible, which is what unit tests calling ops
// directly get.
#pragma once

namespace ca::util {
class ThreadPool;
}
namespace ca::telemetry {
struct KernelCounters;
}

namespace ca::dnn::real {

class ScratchPool;

struct KernelCtx {
  util::ThreadPool* pool = nullptr;        ///< null = run serial
  ScratchPool* scratch = nullptr;          ///< null = lease-free fallback
  telemetry::KernelCounters* counters = nullptr;  ///< null = untimed
  bool reference = false;  ///< true = scalar seed kernels (parity oracle)
};

}  // namespace ca::dnn::real
