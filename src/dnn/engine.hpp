// The DNN engine: kernels, reverse-mode autodiff tape, and automatic
// insertion of CachedArrays policy annotations (paper §III-E and §IV).
//
// This module plays the role Julia + Zygote + the oneDNN wrapper play in
// the paper's prototype:
//   * each kernel launch issues will_read on read arguments and will_write
//     on written arguments before executing;
//   * after each forward kernel the inputs (weights, bias, previous
//     activations) are archived -- they will not be touched again until the
//     backward pass;
//   * during the backward pass, activations and temporary gradients are
//     retired at their last use (the memory optimization M).  With
//     issue_retire off the engine relies on the runtime's GC emulation
//     instead, exactly like the paper's unannotated modes.
//
// Three execution backends share all of this machinery:
//   * kReal: kernels run the fast tier from ops_real.hpp -- blocked GEMM,
//     im2col conv, ThreadPool-parallel elementwise (tests, examples,
//     gradient checks, kernel benchmarks);
//   * kReference: kernels run the scalar seed loops -- the parity oracle
//     the kernel tests compare kReal against;
//   * kSim: kernels skip the arithmetic but still stage, pin, touch and
//     dirty their arguments, and charge modeled time
//     max(compute, memory) -- the roofline -- where the memory term comes
//     from the ExecContext (device bandwidths or the 2LM cache model).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnn/exec_context.hpp"
#include "dnn/kernel_ctx.hpp"
#include "dnn/tensor.hpp"
#include "telemetry/counters.hpp"

namespace ca::dnn {

enum class Backend {
  kReal,       ///< run real math, fast kernel tier (small shapes)
  kSim,        ///< cost model only (paper-scale shapes)
  kReference,  ///< run real math, scalar reference tier (parity oracle)
};

struct EngineConfig {
  Backend backend = Backend::kReal;

  /// Issue `archive` after forward kernels (§III-E).
  bool issue_archive = true;

  /// Issue `retire` at last use on the backward pass (optimization M).
  bool issue_retire = true;

  /// Peak arithmetic rate in flops per simulated second.  Together with a
  /// per-model efficiency this calibrates where kernels sit on the
  /// roofline (see DESIGN.md §6).
  double flop_rate = 2.9e9;

  /// Fraction of flop_rate the model's conv/dense kernels achieve.  Higher
  /// efficiency means compute finishes sooner and kernels become
  /// memory-bound -- the paper's "VGG kernels are more sensitive to read
  /// bandwidth" (§V-c) is a high-efficiency configuration.
  double compute_efficiency = 0.35;

  /// Passes conv/dense kernels make over their read arguments (see
  /// ArgAccess::passes); per-model calibration from ModelSpec.
  int conv_read_passes = 2;

  /// Modeled parallelism of kernel execution (memory-access side).
  std::size_t kernel_threads = 8;
};

struct EngineStats {
  std::uint64_t kernels = 0;
  double compute_seconds = 0.0;  ///< roofline compute term, summed
  double memory_seconds = 0.0;   ///< roofline memory term, summed
  double kernel_seconds = 0.0;   ///< max(compute, memory), summed
  std::uint64_t archives_issued = 0;
  std::uint64_t retires_issued = 0;

  /// Host-side kernel timing (real backends only; wall seconds, never fed
  /// into sim::Clock).  See telemetry::KernelCounters.
  telemetry::KernelCounters kernel_counters;

  /// Per-op-type roofline seconds (simulated), keyed by launch name: which
  /// layer family the modeled time went to.  See telemetry::OpHistogram.
  telemetry::OpHistogram op_histogram;
};

class Engine {
 public:
  Engine(core::Runtime& rt, ExecContext& ctx, EngineConfig config);

  // --- tensor creation and initialization --------------------------------

  Tensor tensor(Shape shape, std::string name = {});
  Tensor parameter(Shape shape, std::string name = {});

  /// Initialize with N(0, stddev^2) (real backend; no-op under kSim).
  void fill_normal(Tensor& t, float stddev, std::uint64_t seed);
  void fill_zero(Tensor& t);
  void fill_const(Tensor& t, float value);
  /// Integer class labels in [0, classes), stored as floats.
  void fill_labels(Tensor& t, std::size_t classes, std::uint64_t seed);

  // --- differentiable kernels (recorded on the tape) ----------------------

  Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
                std::size_t stride, std::size_t pad);
  Tensor relu(const Tensor& x);
  Tensor maxpool2(const Tensor& x);
  Tensor avgpool2(const Tensor& x);

  /// Inverted dropout with probability `p`; the mask is deterministic from
  /// `seed` (a no-op scaling under the sim backend).
  Tensor dropout(const Tensor& x, float p, std::uint64_t seed);
  Tensor global_avgpool(const Tensor& x);
  Tensor batchnorm(const Tensor& x, const Tensor& gamma, const Tensor& beta);
  Tensor dense(const Tensor& x, const Tensor& w, const Tensor& b);
  Tensor add(const Tensor& a, const Tensor& b);
  Tensor concat(const Tensor& a, const Tensor& b);

  /// Sparse embedding lookup (the SVI DLRM-style extension).  `table` is a
  /// (rows, dim) tensor -- typically a huge, NVRAM-resident parameter --
  /// and `indices` holds `batch` float-encoded row ids.  Returns the
  /// gathered (batch, dim) rows.  Only the touched rows are charged (and
  /// hinted via will_read_partial), so a sparse-aware policy leaves the
  /// table in slow memory.  The backward pass applies a fused sparse SGD
  /// update (rate `lr`) directly to the touched rows instead of
  /// materializing a table-sized gradient.
  Tensor embedding_lookup(const Tensor& table, const Tensor& indices,
                          float lr);

  /// Softmax cross-entropy against integer labels; seeds the backward
  /// pass.  Returns the mean loss (0 under kSim).
  float softmax_ce_loss(const Tensor& logits, const Tensor& labels);

  // --- training loop -------------------------------------------------------

  /// Reverse pass over the tape.  Populates parameter gradients; retires
  /// activations and temporary gradients at last use when issue_retire.
  void backward();

  /// SGD update on every parameter with a recorded gradient.
  void sgd_step(float lr);

  /// End of a training iteration: drop the tape, run the GC (the paper
  /// collects after every iteration), defragment the heaps (§IV-A).
  void end_iteration();

  // --- introspection ---------------------------------------------------------

  /// Gradient recorded for `t`, or an invalid tensor.
  [[nodiscard]] Tensor grad(const Tensor& t) const;

  [[nodiscard]] std::size_t tape_size() const noexcept {
    return tape_.size();
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<Tensor>& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] core::Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }

  /// Hook invoked after every kernel launch (used by the benches to sample
  /// heap occupancy over simulated time for Fig. 3).
  void set_kernel_hook(std::function<void()> hook) {
    kernel_hook_ = std::move(hook);
  }

  /// Hook invoked during backward() the moment one parameter's gradient is
  /// complete -- no remaining tape entry can accumulate into it.  This is
  /// the bucketed-allreduce launch point (dp::Trainer): a gradient bucket
  /// whose last parameter became ready can go on the wire while earlier
  /// layers are still running their backward kernels.
  using GradReadyHook =
      std::function<void(const Tensor& param, const Tensor& grad)>;
  void set_grad_ready_hook(GradReadyHook hook) {
    grad_ready_hook_ = std::move(hook);
  }

 private:
  struct TapeEntry {
    std::string name;
    std::vector<Tensor> inputs;
    std::vector<Tensor> outputs;
    bool is_loss = false;
    /// grad_out is aligned with outputs (entries may be invalid); returns
    /// grads aligned with inputs (invalid = no gradient).
    std::function<std::vector<Tensor>(Engine&, const std::vector<Tensor>&)>
        backward;
  };

  /// Real-math kernel body.  The KernelCtx carries the ExecContext's
  /// worker pool + scratch, the engine's kernel counters, and the
  /// fast-vs-reference tier switch; launch lambdas pass it straight to the
  /// ops_real dispatch overloads.
  using RealFn = std::function<void(const real::KernelCtx&,
                                    const std::vector<const float*>&,
                                    const std::vector<float*>&)>;

  /// One kernel argument for the generalized launch path.
  struct KernelArg {
    Tensor tensor;
    bool write = false;
    std::size_t bytes = 0;  ///< bytes actually touched; 0 = whole tensor
    int passes = 1;
    bool partial = false;  ///< sparse access: hint via will_read_partial
  };

  /// Generalized kernel launch: hints, staging protection, pinning, cost
  /// charge, optional real math.  `real_fn` receives read pointers (in
  /// read-arg order) and write pointers (in write-arg order).
  void execute_args(const std::string& name,
                    const std::vector<KernelArg>& args, double flops,
                    double efficiency, const RealFn& real_fn);

  /// Convenience wrapper: whole-tensor reads/writes, with `read_passes`
  /// applied to every read argument (conv/dense kernels sweep their inputs
  /// more than once).
  void execute(const std::string& name, const std::vector<Tensor>& reads,
               const std::vector<Tensor>& writes, double flops,
               double efficiency, const RealFn& real_fn,
               int read_passes = 1);

  void record(TapeEntry entry);
  void accumulate_grad(const Tensor& target, Tensor g);
  void drop_grad(const void* target_id);
  void retire_temp(Tensor t);

  core::Runtime* rt_;
  ExecContext* ctx_;
  EngineConfig config_;
  std::vector<TapeEntry> tape_;
  std::unordered_map<const void*, Tensor> grads_;
  /// Reference counts for gradient tensors shared by several targets
  /// (pass-through gradients, e.g. residual adds), keyed by grad identity.
  std::unordered_map<const void*, int> grad_uses_;
  std::vector<Tensor> params_;
  EngineStats stats_;
  std::function<void()> kernel_hook_;
  GradReadyHook grad_ready_hook_;
  bool loss_recorded_ = false;
};

}  // namespace ca::dnn
