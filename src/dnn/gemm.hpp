// Cache-blocked single-precision GEMM -- the compute core every conv and
// dense kernel reduces to (Neural Cache's observation; oneDNN's design).
//
// Layout and blocking follow the classic Goto scheme:
//
//   C (m x n) += alpha * op(A) (m x k) * op(B) (k x n)        row-major
//
//   jc loop: columns of C in kNC strips        (parallelized: each strip is
//            an independent task writing a disjoint C column band)
//   pc loop: k in kKC panels                   (packed B panel: kKC x strip)
//   ic loop: rows of C in kMC blocks           (packed A panel: kMC x kKC,
//            laid out in mr-row micro-panels)
//   micro-kernel: an mr x nr register tile accumulated over the packed
//            panels.  The tile shape and kernel are runtime-dispatched per
//            ISA (simd::gemm_tile): scalar 4x8, AVX2 6x16, AVX-512 8x32.
//            Packing is shared -- the pack routines take the active tile's
//            mr/nr -- so only the innermost kernel is per-ISA code.
//
// Packing uses leased ScratchPool buffers, so repeated launches reuse the
// same panels and every participant (pool worker or caller) packs into
// private memory: the only shared write target is the caller's C, and the
// jc strips partition it.  Transposed operands are handled while packing --
// no materialized transpose, which is what makes the conv backward passes
// (W^T, col^T) free of extra copies.
#pragma once

#include <cstddef>

#include "dnn/kernel_ctx.hpp"

namespace ca::dnn::real {

// The *scalar baseline* register tile: 4 x 8 fits the baseline x86-64
// budget (16 SIMD registers) as 8 SSE accumulator vectors plus the A
// broadcast and two B loads.  The tile actually executed is a per-ISA
// trait resolved at run time -- simd::gemm_tile(simd::active_level())
// returns 6x16 on AVX2 and 8x32 on AVX-512F hosts, hand-written with
// native-width FMAs, so a CA_NATIVE=OFF portable binary hits native
// throughput.  CA_ISA=scalar forces this baseline shape (bitwise the seed
// kernel); these constants remain as the scalar tier's documented shape.
inline constexpr std::size_t kGemmMR = 4;
inline constexpr std::size_t kGemmNR = 8;
// Cache blocking: A panel (kMC x kKC floats = 96 KiB) in L2, B strip panel
// (kKC x kNC floats <= 1 MiB) streamed through L3.  kMC is divisible by
// every dispatch tier's mr (4, 6, 8) and kNC by every nr (8, 16, 32), so
// the packed-panel geometry stays exact at any level.
inline constexpr std::size_t kGemmMC = 96;
inline constexpr std::size_t kGemmKC = 256;
inline constexpr std::size_t kGemmNC = 1024;

/// C = alpha * op(A) * op(B) + beta * C, row-major.
///
/// op(A) is (m x k): `a` is stored (m x k, lda) when !trans_a, else
/// (k x m, lda).  op(B) is (k x n): `b` is stored (k x n, ldb) when
/// !trans_b, else (n x k, ldb).  `c` is (m x n, ldc) and is the only
/// memory written.  Parallelized over the ctx's ThreadPool when the
/// problem is large enough to amortize the wakeup; always runs serially
/// (same arithmetic) when ctx.pool is null.  Timing lands in
/// ctx.counters->gemm_* when set.
void gemm(const KernelCtx& ctx, bool trans_a, bool trans_b, std::size_t m,
          std::size_t n, std::size_t k, float alpha, const float* a,
          std::size_t lda, const float* b, std::size_t ldb, float beta,
          float* c, std::size_t ldc);

}  // namespace ca::dnn::real
