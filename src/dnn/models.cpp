#include "dnn/models.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ca::dnn {

namespace {

/// He-normal initialization stddev for a conv/dense weight.
float he_std(std::size_t fan_in) {
  return std::sqrt(2.0f / static_cast<float>(fan_in));
}

struct ConvParams {
  Tensor w;
  Tensor b;
  std::size_t stride = 1;
  std::size_t pad = 1;
  std::size_t fan_in = 0;
};

ConvParams make_conv(Engine& eng, std::size_t cin, std::size_t cout,
                     std::size_t k, std::size_t stride, std::size_t pad,
                     const std::string& name) {
  ConvParams p;
  p.w = eng.parameter({cout, cin, k, k}, name + ".w");
  p.b = eng.parameter({cout}, name + ".b");
  p.stride = stride;
  p.pad = pad;
  p.fan_in = cin * k * k;
  return p;
}

struct BnParams {
  Tensor gamma;
  Tensor beta;
};

BnParams make_bn(Engine& eng, std::size_t c, const std::string& name) {
  return {eng.parameter({c}, name + ".gamma"),
          eng.parameter({c}, name + ".beta")};
}

std::size_t count_params(const std::vector<Tensor>& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.numel();
  return n;
}

// --- VGG --------------------------------------------------------------------

class VggNet final : public Model {
 public:
  VggNet(Engine& eng, ModelSpec spec) : spec_(std::move(spec)) {
    CA_CHECK(!spec_.stages.empty(), "VGG needs at least one stage");
    std::size_t cin = 3;
    for (std::size_t s = 0; s < spec_.stages.size(); ++s) {
      const std::size_t cout =
          spec_.base_channels * std::min<std::size_t>(std::size_t{1} << s, 8);
      std::vector<ConvParams> stage;
      for (std::size_t l = 0; l < spec_.stages[s]; ++l) {
        stage.push_back(make_conv(eng, cin, cout, 3, 1, 1,
                                  "vgg.s" + std::to_string(s) + ".c" +
                                      std::to_string(l)));
        cin = cout;
      }
      stages_.push_back(std::move(stage));
    }
    head_w_ = eng.parameter({spec_.classes, cin}, "vgg.head.w");
    head_b_ = eng.parameter({spec_.classes}, "vgg.head.b");
    head_in_ = cin;
  }

  const ModelSpec& spec() const override { return spec_; }

  Tensor forward(Engine& eng, const Tensor& input) override {
    Tensor x = input;
    for (const auto& stage : stages_) {
      for (const auto& conv : stage) {
        x = eng.relu(eng.conv2d(x, conv.w, conv.b, conv.stride, conv.pad));
      }
      x = eng.maxpool2(x);
    }
    x = eng.global_avgpool(x);
    return eng.dense(x, head_w_, head_b_);
  }

  void init(Engine& eng, std::uint64_t seed) override {
    std::uint64_t s = seed;
    for (auto& stage : stages_) {
      for (auto& conv : stage) {
        eng.fill_normal(conv.w, he_std(conv.fan_in), ++s);
        eng.fill_zero(conv.b);
      }
    }
    eng.fill_normal(head_w_, he_std(head_in_), ++s);
    eng.fill_zero(head_b_);
  }

  std::size_t parameter_count() const override {
    std::size_t n = head_w_.numel() + head_b_.numel();
    for (const auto& stage : stages_) {
      for (const auto& conv : stage) n += conv.w.numel() + conv.b.numel();
    }
    return n;
  }

 private:
  ModelSpec spec_;
  std::vector<std::vector<ConvParams>> stages_;
  Tensor head_w_, head_b_;
  std::size_t head_in_ = 0;
};

// --- ResNet -----------------------------------------------------------------

class ResNet final : public Model {
 public:
  ResNet(Engine& eng, ModelSpec spec) : spec_(std::move(spec)) {
    CA_CHECK(!spec_.stages.empty(), "ResNet needs at least one stage");
    stem_ = make_conv(eng, 3, spec_.base_channels, 3, 1, 1, "rn.stem");
    stem_bn_ = make_bn(eng, spec_.base_channels, "rn.stem");
    std::size_t cin = spec_.base_channels;
    for (std::size_t s = 0; s < spec_.stages.size(); ++s) {
      const std::size_t cout = spec_.base_channels << s;
      for (std::size_t blk = 0; blk < spec_.stages[s]; ++blk) {
        Block b;
        const std::size_t stride = (s > 0 && blk == 0) ? 2 : 1;
        const std::string name =
            "rn.s" + std::to_string(s) + ".b" + std::to_string(blk);
        b.conv1 = make_conv(eng, cin, cout, 3, stride, 1, name + ".c1");
        b.bn1 = make_bn(eng, cout, name + ".bn1");
        b.conv2 = make_conv(eng, cout, cout, 3, 1, 1, name + ".c2");
        b.bn2 = make_bn(eng, cout, name + ".bn2");
        if (stride != 1 || cin != cout) {
          b.proj = make_conv(eng, cin, cout, 1, stride, 0, name + ".proj");
          b.has_proj = true;
        }
        blocks_.push_back(std::move(b));
        cin = cout;
      }
    }
    head_w_ = eng.parameter({spec_.classes, cin}, "rn.head.w");
    head_b_ = eng.parameter({spec_.classes}, "rn.head.b");
    head_in_ = cin;
  }

  const ModelSpec& spec() const override { return spec_; }

  Tensor forward(Engine& eng, const Tensor& input) override {
    Tensor x = eng.relu(
        eng.batchnorm(eng.conv2d(input, stem_.w, stem_.b, 1, 1),
                      stem_bn_.gamma, stem_bn_.beta));
    for (const auto& b : blocks_) {
      Tensor identity = x;
      Tensor y = eng.relu(eng.batchnorm(
          eng.conv2d(x, b.conv1.w, b.conv1.b, b.conv1.stride, b.conv1.pad),
          b.bn1.gamma, b.bn1.beta));
      y = eng.batchnorm(eng.conv2d(y, b.conv2.w, b.conv2.b, 1, 1),
                        b.bn2.gamma, b.bn2.beta);
      if (b.has_proj) {
        identity = eng.conv2d(x, b.proj.w, b.proj.b, b.proj.stride, 0);
      }
      x = eng.relu(eng.add(y, identity));
    }
    x = eng.global_avgpool(x);
    return eng.dense(x, head_w_, head_b_);
  }

  void init(Engine& eng, std::uint64_t seed) override {
    std::uint64_t s = seed;
    auto init_conv = [&](ConvParams& c) {
      eng.fill_normal(c.w, he_std(c.fan_in), ++s);
      eng.fill_zero(c.b);
    };
    auto init_bn = [&](BnParams& bn) {
      eng.fill_const(bn.gamma, 1.0f);
      eng.fill_zero(bn.beta);
    };
    init_conv(stem_);
    init_bn(stem_bn_);
    for (auto& b : blocks_) {
      init_conv(b.conv1);
      init_bn(b.bn1);
      init_conv(b.conv2);
      init_bn(b.bn2);
      if (b.has_proj) init_conv(b.proj);
    }
    eng.fill_normal(head_w_, he_std(head_in_), ++s);
    eng.fill_zero(head_b_);
  }

  std::size_t parameter_count() const override {
    std::vector<Tensor> all = {stem_.w, stem_.b, stem_bn_.gamma,
                               stem_bn_.beta, head_w_, head_b_};
    for (const auto& b : blocks_) {
      all.insert(all.end(), {b.conv1.w, b.conv1.b, b.bn1.gamma, b.bn1.beta,
                             b.conv2.w, b.conv2.b, b.bn2.gamma, b.bn2.beta});
      if (b.has_proj) all.insert(all.end(), {b.proj.w, b.proj.b});
    }
    return count_params(all);
  }

 private:
  struct Block {
    ConvParams conv1, conv2, proj;
    BnParams bn1, bn2;
    bool has_proj = false;
  };

  ModelSpec spec_;
  ConvParams stem_;
  BnParams stem_bn_;
  std::vector<Block> blocks_;
  Tensor head_w_, head_b_;
  std::size_t head_in_ = 0;
};

// --- DenseNet ---------------------------------------------------------------

class DenseNet final : public Model {
 public:
  DenseNet(Engine& eng, ModelSpec spec) : spec_(std::move(spec)) {
    CA_CHECK(!spec_.stages.empty(), "DenseNet needs at least one block");
    stem_ = make_conv(eng, 3, spec_.base_channels, 3, 1, 1, "dn.stem");
    std::size_t channels = spec_.base_channels;
    for (std::size_t blk = 0; blk < spec_.stages.size(); ++blk) {
      BlockParams bp;
      for (std::size_t l = 0; l < spec_.stages[blk]; ++l) {
        const std::string name =
            "dn.b" + std::to_string(blk) + ".l" + std::to_string(l);
        Layer layer;
        layer.bn = make_bn(eng, channels, name);
        layer.conv = make_conv(eng, channels, spec_.growth, 3, 1, 1, name);
        bp.layers.push_back(std::move(layer));
        channels += spec_.growth;
      }
      if (blk + 1 < spec_.stages.size()) {
        const std::size_t half = channels / 2;
        bp.transition = make_conv(eng, channels, half, 1, 1, 0,
                                  "dn.t" + std::to_string(blk));
        bp.has_transition = true;
        channels = half;
      }
      blocks_.push_back(std::move(bp));
    }
    head_w_ = eng.parameter({spec_.classes, channels}, "dn.head.w");
    head_b_ = eng.parameter({spec_.classes}, "dn.head.b");
    head_in_ = channels;
  }

  const ModelSpec& spec() const override { return spec_; }

  Tensor forward(Engine& eng, const Tensor& input) override {
    Tensor x = eng.conv2d(input, stem_.w, stem_.b, 1, 1);
    for (const auto& bp : blocks_) {
      for (const auto& layer : bp.layers) {
        Tensor t = eng.relu(
            eng.batchnorm(x, layer.bn.gamma, layer.bn.beta));
        t = eng.conv2d(t, layer.conv.w, layer.conv.b, 1, 1);
        x = eng.concat(x, t);
      }
      if (bp.has_transition) {
        x = eng.maxpool2(
            eng.conv2d(x, bp.transition.w, bp.transition.b, 1, 0));
      }
    }
    x = eng.global_avgpool(x);
    return eng.dense(x, head_w_, head_b_);
  }

  void init(Engine& eng, std::uint64_t seed) override {
    std::uint64_t s = seed;
    eng.fill_normal(stem_.w, he_std(stem_.fan_in), ++s);
    eng.fill_zero(stem_.b);
    for (auto& bp : blocks_) {
      for (auto& layer : bp.layers) {
        eng.fill_const(layer.bn.gamma, 1.0f);
        eng.fill_zero(layer.bn.beta);
        eng.fill_normal(layer.conv.w, he_std(layer.conv.fan_in), ++s);
        eng.fill_zero(layer.conv.b);
      }
      if (bp.has_transition) {
        eng.fill_normal(bp.transition.w, he_std(bp.transition.fan_in), ++s);
        eng.fill_zero(bp.transition.b);
      }
    }
    eng.fill_normal(head_w_, he_std(head_in_), ++s);
    eng.fill_zero(head_b_);
  }

  std::size_t parameter_count() const override {
    std::vector<Tensor> all = {stem_.w, stem_.b, head_w_, head_b_};
    for (const auto& bp : blocks_) {
      for (const auto& layer : bp.layers) {
        all.insert(all.end(), {layer.bn.gamma, layer.bn.beta, layer.conv.w,
                               layer.conv.b});
      }
      if (bp.has_transition) {
        all.insert(all.end(), {bp.transition.w, bp.transition.b});
      }
    }
    return count_params(all);
  }

 private:
  struct Layer {
    BnParams bn;
    ConvParams conv;
  };
  struct BlockParams {
    std::vector<Layer> layers;
    ConvParams transition;
    bool has_transition = false;
  };

  ModelSpec spec_;
  ConvParams stem_;
  std::vector<BlockParams> blocks_;
  Tensor head_w_, head_b_;
  std::size_t head_in_ = 0;
};

}  // namespace

// --- presets -----------------------------------------------------------------
// Batch sizes are calibrated so the measured iteration footprints land at
// the paper's Table III numbers in MiB (520-530 large, 170-180 small); see
// bench/table3_models.

ModelSpec ModelSpec::vgg416_large() {
  ModelSpec s;
  s.family = Family::kVgg;
  s.name = "VGG 416";
  s.stages = {64, 64, 96, 96, 96};  // 416 convolutions
  s.batch = 20;
  s.image = 32;
  s.base_channels = 16;
  s.compute_efficiency = 1.6;  // memory-bound kernels (paper §V-c)
  s.conv_read_passes = 5;
  return s;
}

ModelSpec ModelSpec::vgg116_small() {
  ModelSpec s = vgg416_large();
  s.name = "VGG 116";
  s.stages = {18, 18, 27, 27, 26};  // 116 convolutions
  s.batch = 27;
  return s;
}

ModelSpec ModelSpec::resnet200_large() {
  ModelSpec s;
  s.family = Family::kResNet;
  s.name = "ResNet 200";
  s.stages = {3, 24, 36, 3};
  s.batch = 21;
  s.image = 32;
  s.base_channels = 32;
  s.compute_efficiency = 0.65;  // uniform basic-block convs vectorize well
  s.conv_read_passes = 1;  // bottleneck convs stream their inputs once
  return s;
}

ModelSpec ModelSpec::resnet200_small() {
  ModelSpec s = resnet200_large();
  s.batch = 5;
  return s;
}

ModelSpec ModelSpec::densenet264_large() {
  ModelSpec s;
  s.family = Family::kDenseNet;
  s.name = "DenseNet 264";
  s.stages = {6, 12, 64, 48};
  s.growth = 16;
  s.batch = 9;
  s.image = 32;
  s.base_channels = 32;
  s.compute_efficiency = 0.15;  // dense blocks: lower achieved flop rate
  s.conv_read_passes = 1;  // small growth-rate convs stream inputs once
  return s;
}

ModelSpec ModelSpec::densenet264_small() {
  ModelSpec s = densenet264_large();
  s.batch = 2;
  return s;
}

ModelSpec ModelSpec::vgg_tiny() {
  ModelSpec s;
  s.family = Family::kVgg;
  s.name = "VGG tiny";
  s.stages = {1, 1};
  s.batch = 2;
  s.image = 8;
  s.classes = 5;
  s.base_channels = 4;
  return s;
}

ModelSpec ModelSpec::resnet_tiny() {
  ModelSpec s;
  s.family = Family::kResNet;
  s.name = "ResNet tiny";
  s.stages = {1, 1};
  s.batch = 2;
  s.image = 8;
  s.classes = 5;
  s.base_channels = 4;
  return s;
}

ModelSpec ModelSpec::densenet_tiny() {
  ModelSpec s;
  s.family = Family::kDenseNet;
  s.name = "DenseNet tiny";
  s.stages = {2, 2};
  s.growth = 4;
  s.batch = 2;
  s.image = 8;
  s.classes = 5;
  s.base_channels = 4;
  return s;
}

std::unique_ptr<Model> build_model(Engine& engine, const ModelSpec& spec) {
  switch (spec.family) {
    case ModelSpec::Family::kVgg:
      return std::make_unique<VggNet>(engine, spec);
    case ModelSpec::Family::kResNet:
      return std::make_unique<ResNet>(engine, spec);
    case ModelSpec::Family::kDenseNet:
      return std::make_unique<DenseNet>(engine, spec);
  }
  throw UsageError("unknown model family");
}

}  // namespace ca::dnn
