// Training loop with per-iteration metric capture (paper §IV-A): random
// normal input, forward + backward + SGD, GC after every iteration, heap
// defragmentation between iterations, and deltas of every counter the
// figures plot.
#pragma once

#include <cstddef>

#include "dnn/harness.hpp"
#include "dnn/models.hpp"
#include "telemetry/trace.hpp"

namespace ca::dnn {

struct IterationMetrics {
  double seconds = 0.0;  ///< simulated wall time of the iteration
  double compute_seconds = 0.0;
  double movement_seconds = 0.0;  ///< synchronous data movement
  double gc_seconds = 0.0;
  float loss = 0.0f;  ///< mean loss (real backend only)

  telemetry::DeviceTraffic dram;   ///< traffic delta over the iteration
  telemetry::DeviceTraffic nvram;

  twolm::CacheStats cache;  ///< tag statistics delta (2LM modes)

  std::size_t peak_resident_bytes = 0;

  /// Average DRAM bus utilization: achieved DRAM traffic over the
  /// iteration divided by peak DRAM bandwidth times elapsed time (Fig. 6).
  double dram_bus_utilization = 0.0;

  // Asynchronous-mover deltas over the iteration (zero without async
  // movement).
  std::uint64_t async_transfers = 0;     ///< copyto_async calls
  double async_stall_seconds = 0.0;      ///< time stalled in wait_ready
  double async_overlap_seconds = 0.0;    ///< modeled movement hidden
  std::size_t async_inflight_peak = 0;   ///< registry high-water mark

  /// Host kernel-timing deltas (wall seconds; real backends only, zero
  /// under kSim).  kernels.gemm_gflops() is the iteration's achieved GEMM
  /// rate.
  telemetry::KernelCounters kernels;

  /// Per-op-type roofline seconds over the iteration, keyed by launch name
  /// ("conv2d", "dense_bwd_data", ...): names the slowest layer family.
  telemetry::OpHistogram ops;
};

struct TrainerOptions {
  float lr = 0.01f;
  std::uint64_t seed = 1234;

  /// Sample (time, resident bytes) after every kernel into this series
  /// (Fig. 3).  Optional.
  telemetry::TimeSeries* occupancy = nullptr;
};

class Trainer {
 public:
  Trainer(Harness& harness, Model& model, TrainerOptions options = {});
  ~Trainer();

  /// One full training iteration (forward + backward + update + GC +
  /// defragmentation), returning the metric deltas.
  IterationMetrics run_iteration();

  [[nodiscard]] std::size_t iterations_run() const noexcept { return iter_; }

 private:
  Harness* harness_;
  Model* model_;
  TrainerOptions options_;
  std::size_t iter_ = 0;
  std::size_t peak_resident_ = 0;
};

}  // namespace ca::dnn
