#include "dnn/engine.hpp"

#include <algorithm>
#include <cmath>

#include "dnn/ops_real.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ca::dnn {

namespace {

/// Elementwise kernels are memory-bound by construction; give them full
/// arithmetic efficiency so the roofline's memory term dominates.
constexpr double kEltwiseEfficiency = 1.0;

}  // namespace

Engine::Engine(core::Runtime& rt, ExecContext& ctx, EngineConfig config)
    : rt_(&rt), ctx_(&ctx), config_(config) {
  CA_CHECK(config_.flop_rate > 0.0, "flop rate must be positive");
  CA_CHECK(config_.compute_efficiency > 0.0, "efficiency must be positive");
}

// --- tensors -----------------------------------------------------------------

Tensor Engine::tensor(Shape shape, std::string name) {
  return Tensor(*rt_, shape, std::move(name), /*parameter=*/false);
}

Tensor Engine::parameter(Shape shape, std::string name) {
  Tensor t(*rt_, shape, std::move(name), /*parameter=*/true);
  params_.push_back(t);
  return t;
}

void Engine::fill_normal(Tensor& t, float stddev, std::uint64_t seed) {
  if (config_.backend == Backend::kSim) return;
  util::Xoshiro256 rng(seed);
  t.array().with_write([&](std::span<float> s) {
    for (auto& v : s) v = static_cast<float>(rng.normal()) * stddev;
  });
}

void Engine::fill_zero(Tensor& t) {
  if (config_.backend == Backend::kSim) return;
  t.array().with_write(
      [](std::span<float> s) { std::fill(s.begin(), s.end(), 0.0f); });
}

void Engine::fill_const(Tensor& t, float value) {
  if (config_.backend == Backend::kSim) return;
  t.array().with_write(
      [value](std::span<float> s) { std::fill(s.begin(), s.end(), value); });
}

void Engine::fill_labels(Tensor& t, std::size_t classes, std::uint64_t seed) {
  if (config_.backend == Backend::kSim) return;
  util::Xoshiro256 rng(seed);
  t.array().with_write([&](std::span<float> s) {
    for (auto& v : s) v = static_cast<float>(rng.bounded(classes));
  });
}

// --- kernel launch ---------------------------------------------------------

void Engine::execute_args(const std::string& name,
                          const std::vector<KernelArg>& args, double flops,
                          double efficiency, const RealFn& real_fn) {
  std::vector<dm::Object*> objs;
  objs.reserve(args.size());
  for (const auto& a : args) {
    CA_CHECK(a.tensor.object() != nullptr,
             "kernel argument is invalid or retired");
    objs.push_back(a.tensor.object());
  }

  // Stage: hints under displacement protection (the policy must not evict
  // one argument while prefetching another).
  auto& pol = rt_->policy();
  pol.begin_kernel(objs);
  for (const auto& a : args) {
    const std::size_t touched =
        a.bytes == 0 ? a.tensor.bytes() : a.bytes;
    if (a.partial) {
      // Sparse access: never worth migrating the whole object for it.
      rt_->will_read_partial(*a.tensor.object(), touched);
    } else if (a.write) {
      rt_->will_write(*a.tensor.object());
    } else {
      rt_->will_read(*a.tensor.object());
    }
  }
  pol.end_kernel();

  // Pin for the kernel's duration; resolve the indirection once.
  rt_->begin_kernel(objs);
  struct Unpin {
    core::Runtime* rt;
    std::span<dm::Object* const> objs;
    ~Unpin() { rt->end_kernel(objs); }
  } unpin{rt_, objs};

  // Cost: roofline of modeled compute vs modeled memory.
  std::vector<ArgAccess> accesses;
  accesses.reserve(args.size());
  for (const auto& a : args) {
    const std::size_t touched =
        a.bytes == 0 ? a.tensor.bytes() : a.bytes;
    accesses.push_back({a.tensor.object(), touched, a.write, a.passes});
  }
  const double mem_s = ctx_->charge_memory(accesses);
  const double comp_s = flops / (config_.flop_rate * efficiency);
  rt_->clock().advance(std::max(mem_s, comp_s), sim::TimeCategory::kCompute);
  ++stats_.kernels;
  stats_.compute_seconds += comp_s;
  stats_.memory_seconds += mem_s;
  stats_.kernel_seconds += std::max(mem_s, comp_s);
  stats_.op_histogram.record(name, std::max(mem_s, comp_s));

  // Resolve the indirection once per argument through the provenance-
  // tracked accessor; writes mark the primary dirty in both backends.
  // Declared after `unpin` so the spans (and their pins) are dropped
  // before end_kernel runs.
  std::vector<dm::PinnedSpan> spans;
  spans.reserve(args.size());
  std::vector<const float*> rptr;
  std::vector<float*> wptr;
  for (const auto& a : args) {
    spans.push_back(rt_->access(*a.tensor.object(), a.write));
    if (a.write) {
      wptr.push_back(reinterpret_cast<float*>(spans.back().data()));
    } else {
      rptr.push_back(reinterpret_cast<const float*>(spans.back().data()));
    }
  }
  if (config_.backend != Backend::kSim && real_fn) {
    const real::KernelCtx kctx{ctx_->kernel_pool(), &ctx_->kernel_scratch(),
                               &stats_.kernel_counters,
                               config_.backend == Backend::kReference};
    real_fn(kctx, rptr, wptr);
  }
  if (kernel_hook_) kernel_hook_();
}

void Engine::execute(const std::string& name,
                     const std::vector<Tensor>& reads,
                     const std::vector<Tensor>& writes, double flops,
                     double efficiency, const RealFn& real_fn,
                     int read_passes) {
  std::vector<KernelArg> args;
  args.reserve(reads.size() + writes.size());
  for (const auto& t : reads) {
    args.push_back({t, /*write=*/false, 0, read_passes, /*partial=*/false});
  }
  for (const auto& t : writes) {
    args.push_back({t, /*write=*/true, 0, 1, /*partial=*/false});
  }
  execute_args(name, args, flops, efficiency, real_fn);
}

void Engine::record(TapeEntry entry) {
  if (config_.issue_archive) {
    // §III-E: after the forward kernel, archive weights, bias and previous
    // activations -- they will not be used again until the backward pass.
    for (const auto& t : entry.inputs) {
      if (t.object() != nullptr) {
        rt_->archive(*t.object());
        ++stats_.archives_issued;
      }
    }
  }
  tape_.push_back(std::move(entry));
}

// --- forward ops -------------------------------------------------------------

Tensor Engine::conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::size_t stride, std::size_t pad) {
  CA_CHECK(x.shape().rank() == 4 && w.shape().rank() == 4,
           "conv2d expects NCHW input and OIKK weights");
  CA_CHECK(x.shape().c() == w.shape()[1], "conv2d channel mismatch");
  CA_CHECK(b.shape().numel() == w.shape()[0], "conv2d bias size mismatch");
  real::ConvDims d;
  d.n = x.shape().n();
  d.cin = x.shape().c();
  d.h = x.shape().h();
  d.w = x.shape().w();
  d.cout = w.shape()[0];
  d.k = w.shape()[2];
  d.stride = stride;
  d.pad = pad;

  Tensor y = tensor({d.n, d.cout, d.hout(), d.wout()}, "conv.y");
  execute("conv2d", {x, w, b}, {y}, d.flops(), config_.compute_efficiency,
          [d](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::conv2d_fwd(kctx, r[0], r[1], r[2], wr[0], d);
          },
          config_.conv_read_passes);

  TapeEntry e;
  e.name = "conv2d";
  e.inputs = {x, w, b};
  e.outputs = {y};
  e.backward = [x, w, b, d](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    const Tensor& gy = gout[0];
    Tensor gx = eng.tensor(x.shape(), "conv.gx");
    eng.execute("conv2d_bwd_data", {w, gy}, {gx}, d.flops(),
                eng.config_.compute_efficiency,
                [d](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::conv2d_bwd_data(kctx, r[0], r[1], wr[0], d);
                },
                eng.config().conv_read_passes);
    Tensor gw = eng.tensor(w.shape(), "conv.gw");
    eng.execute("conv2d_bwd_weights", {x, gy}, {gw}, d.flops(),
                eng.config_.compute_efficiency,
                [d](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::conv2d_bwd_weights(kctx, r[0], r[1], wr[0], d);
                },
                eng.config().conv_read_passes);
    Tensor gb = eng.tensor(b.shape(), "conv.gb");
    eng.execute("conv2d_bwd_bias", {gy}, {gb},
                static_cast<double>(gy.numel()), kEltwiseEfficiency,
                [d](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::conv2d_bwd_bias(kctx, r[0], wr[0], d);
                });
    return {gx, gw, gb};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::relu(const Tensor& x) {
  Tensor y = tensor(x.shape(), "relu.y");
  const auto n = x.numel();
  execute("relu", {x}, {y}, static_cast<double>(n), kEltwiseEfficiency,
          [n](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& w) {
            real::relu_fwd(kctx, r[0], w[0], n);
          });
  TapeEntry e;
  e.name = "relu";
  e.inputs = {x};
  e.outputs = {y};
  e.backward = [x, n](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "relu.gx");
    eng.execute("relu_bwd", {x, gout[0]}, {gx}, static_cast<double>(n),
                kEltwiseEfficiency,
                [n](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& w) {
                  real::relu_bwd(kctx, r[0], r[1], w[0], n);
                });
    return {gx};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::maxpool2(const Tensor& x) {
  const auto& s = x.shape();
  CA_CHECK(s.rank() == 4 && s.h() % 2 == 0 && s.w() % 2 == 0,
           "maxpool2 expects even NCHW spatial dims");
  Tensor y = tensor({s.n(), s.c(), s.h() / 2, s.w() / 2}, "pool.y");
  const std::size_t n = s.n(), c = s.c(), h = s.h(), w = s.w();
  execute("maxpool2", {x}, {y}, static_cast<double>(x.numel()),
          kEltwiseEfficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::maxpool2_fwd(kctx, r[0], wr[0], n, c, h, w);
          });
  TapeEntry e;
  e.name = "maxpool2";
  e.inputs = {x};
  e.outputs = {y};
  e.backward = [x, n, c, h, w](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "pool.gx");
    eng.execute("maxpool2_bwd", {x, gout[0]}, {gx},
                static_cast<double>(x.numel()), kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::maxpool2_bwd(kctx, r[0], r[1], wr[0], n, c, h, w);
                });
    return {gx};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::avgpool2(const Tensor& x) {
  const auto& s = x.shape();
  CA_CHECK(s.rank() == 4 && s.h() % 2 == 0 && s.w() % 2 == 0,
           "avgpool2 expects even NCHW spatial dims");
  Tensor y = tensor({s.n(), s.c(), s.h() / 2, s.w() / 2}, "apool.y");
  const std::size_t n = s.n(), c = s.c(), h = s.h(), w = s.w();
  execute("avgpool2", {x}, {y}, static_cast<double>(x.numel()),
          kEltwiseEfficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::avgpool2_fwd(kctx, r[0], wr[0], n, c, h, w);
          });
  TapeEntry e;
  e.name = "avgpool2";
  e.inputs = {x};
  e.outputs = {y};
  e.backward = [x, n, c, h, w](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "apool.gx");
    eng.execute("avgpool2_bwd", {gout[0]}, {gx},
                static_cast<double>(x.numel()), kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::avgpool2_bwd(kctx, r[0], wr[0], n, c, h, w);
                });
    return {gx};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::dropout(const Tensor& x, float p, std::uint64_t seed) {
  CA_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0, 1)");
  Tensor y = tensor(x.shape(), "drop.y");
  Tensor mask = tensor(x.shape(), "drop.mask");
  const auto n = x.numel();
  execute("dropout", {x}, {y, mask}, static_cast<double>(n),
          kEltwiseEfficiency,
          [n, p, seed](const real::KernelCtx& kctx,
                       const std::vector<const float*>& r,
                       const std::vector<float*>& w) {
            real::dropout_fwd(kctx, r[0], w[0], w[1], p, seed, n);
          });
  TapeEntry e;
  e.name = "dropout";
  e.inputs = {x};
  e.outputs = {y, mask};
  e.backward = [mask, x, n](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "drop.gx");
    eng.execute("dropout_bwd", {mask, gout[0]}, {gx},
                static_cast<double>(n), kEltwiseEfficiency,
                [n](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& w) {
                  real::dropout_bwd(kctx, r[0], r[1], w[0], n);
                });
    return {gx};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::global_avgpool(const Tensor& x) {
  const auto& s = x.shape();
  CA_CHECK(s.rank() == 4, "global_avgpool expects NCHW");
  Tensor y = tensor({s.n(), s.c()}, "gap.y");
  const std::size_t n = s.n(), c = s.c(), h = s.h(), w = s.w();
  execute("global_avgpool", {x}, {y}, static_cast<double>(x.numel()),
          kEltwiseEfficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::global_avgpool_fwd(kctx, r[0], wr[0], n, c, h, w);
          });
  TapeEntry e;
  e.name = "global_avgpool";
  e.inputs = {x};
  e.outputs = {y};
  e.backward = [x, n, c, h, w](Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "gap.gx");
    eng.execute("global_avgpool_bwd", {gout[0]}, {gx},
                static_cast<double>(x.numel()), kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::global_avgpool_bwd(kctx, r[0], wr[0], n, c, h, w);
                });
    return {gx};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::batchnorm(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta) {
  const auto& s = x.shape();
  CA_CHECK(s.rank() == 4, "batchnorm expects NCHW");
  CA_CHECK(gamma.numel() == s.c() && beta.numel() == s.c(),
           "batchnorm parameter size mismatch");
  Tensor y = tensor(s, "bn.y");
  Tensor mean = tensor({s.c()}, "bn.mean");
  Tensor istd = tensor({s.c()}, "bn.istd");
  const std::size_t n = s.n(), c = s.c(), h = s.h(), w = s.w();
  execute("batchnorm", {x, gamma, beta}, {y, mean, istd},
          8.0 * static_cast<double>(x.numel()), kEltwiseEfficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::batchnorm_fwd(kctx, r[0], r[1], r[2], wr[0], wr[1], wr[2],
                                n, c, h, w, 1e-5f);
          });
  TapeEntry e;
  e.name = "batchnorm";
  e.inputs = {x, gamma, beta};
  e.outputs = {y, mean, istd};
  e.backward = [x, gamma, mean, istd, n, c, h, w](
                   Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(x.shape(), "bn.gx");
    Tensor ggamma = eng.tensor(gamma.shape(), "bn.ggamma");
    Tensor gbeta = eng.tensor(gamma.shape(), "bn.gbeta");
    eng.execute("batchnorm_bwd", {x, gamma, mean, istd, gout[0]},
                {gx, ggamma, gbeta}, 12.0 * static_cast<double>(x.numel()),
                kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::batchnorm_bwd(kctx, r[0], r[1], r[2], r[3], r[4],
                                      wr[0], wr[1], wr[2], n, c, h, w);
                });
    return {gx, ggamma, gbeta};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::dense(const Tensor& x, const Tensor& w, const Tensor& b) {
  CA_CHECK(x.shape().rank() == 2 && w.shape().rank() == 2,
           "dense expects (n,in) input and (out,in) weights");
  const std::size_t n = x.shape()[0];
  const std::size_t in = x.shape()[1];
  const std::size_t out = w.shape()[0];
  CA_CHECK(w.shape()[1] == in, "dense weight shape mismatch");
  CA_CHECK(b.numel() == out, "dense bias size mismatch");
  Tensor y = tensor({n, out}, "dense.y");
  const double flops = 2.0 * static_cast<double>(n) * in * out;
  execute("dense", {x, w, b}, {y}, flops, config_.compute_efficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::dense_fwd(kctx, r[0], r[1], r[2], wr[0], n, in, out);
          },
          config_.conv_read_passes);
  TapeEntry e;
  e.name = "dense";
  e.inputs = {x, w, b};
  e.outputs = {y};
  e.backward = [x, w, b, n, in, out, flops](
                   Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    const Tensor& gy = gout[0];
    Tensor gx = eng.tensor(x.shape(), "dense.gx");
    eng.execute("dense_bwd_data", {w, gy}, {gx}, flops,
                eng.config_.compute_efficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::dense_bwd_data(kctx, r[0], r[1], wr[0], n, in, out);
                },
                eng.config().conv_read_passes);
    Tensor gw = eng.tensor(w.shape(), "dense.gw");
    eng.execute("dense_bwd_weights", {x, gy}, {gw}, flops,
                eng.config_.compute_efficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::dense_bwd_weights(kctx, r[0], r[1], wr[0], n, in, out);
                },
                eng.config().conv_read_passes);
    Tensor gb = eng.tensor(b.shape(), "dense.gb");
    eng.execute("dense_bwd_bias", {gy}, {gb}, static_cast<double>(gy.numel()),
                kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::dense_bwd_bias(kctx, r[0], wr[0], n, out);
                });
    return {gx, gw, gb};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::add(const Tensor& a, const Tensor& b) {
  CA_CHECK(a.shape() == b.shape(), "add shape mismatch");
  CA_CHECK(!(a == b), "add(x, x) is not supported");
  Tensor y = tensor(a.shape(), "add.y");
  const auto n = a.numel();
  execute("add", {a, b}, {y}, static_cast<double>(n), kEltwiseEfficiency,
          [n](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& w) {
            real::add_fwd(kctx, r[0], r[1], w[0], n);
          });
  TapeEntry e;
  e.name = "add";
  e.inputs = {a, b};
  e.outputs = {y};
  e.backward = [](Engine&, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    // Pass-through: both inputs receive the same gradient tensor.  The
    // engine's grad reference counting keeps the shared tensor alive until
    // both consumers are done.
    return {gout[0], gout[0]};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::concat(const Tensor& a, const Tensor& b) {
  const auto& sa = a.shape();
  const auto& sb = b.shape();
  CA_CHECK(sa.rank() == 4 && sb.rank() == 4 && sa.n() == sb.n() &&
               sa.h() == sb.h() && sa.w() == sb.w(),
           "concat expects NCHW tensors agreeing in N, H, W");
  Tensor y = tensor({sa.n(), sa.c() + sb.c(), sa.h(), sa.w()}, "concat.y");
  const std::size_t n = sa.n(), ca = sa.c(), cb = sb.c(), h = sa.h(),
                    w = sa.w();
  execute("concat", {a, b}, {y}, static_cast<double>(y.numel()),
          kEltwiseEfficiency,
          [=](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& wr) {
            real::concat_fwd(kctx, r[0], r[1], wr[0], n, ca, cb, h, w);
          });
  TapeEntry e;
  e.name = "concat";
  e.inputs = {a, b};
  e.outputs = {y};
  e.backward = [a, b, n, ca, cb, h, w](Engine& eng,
                                       const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    Tensor ga = eng.tensor(a.shape(), "concat.ga");
    Tensor gb = eng.tensor(b.shape(), "concat.gb");
    eng.execute("concat_bwd", {gout[0]}, {ga, gb},
                static_cast<double>(gout[0].numel()), kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& wr) {
                  real::concat_bwd(kctx, r[0], wr[0], wr[1], n, ca, cb, h, w);
                });
    return {ga, gb};
  };
  record(std::move(e));
  return y;
}

Tensor Engine::embedding_lookup(const Tensor& table, const Tensor& indices,
                                float lr) {
  CA_CHECK(table.shape().rank() == 2, "embedding table must be (rows, dim)");
  CA_CHECK(indices.shape().rank() == 1, "indices must be a flat batch");
  const std::size_t dim = table.shape()[1];
  const std::size_t batch = indices.numel();
  const std::size_t touched = batch * dim * sizeof(float);

  Tensor out = tensor({batch, dim}, "embed.out");
  execute_args(
      "embedding_lookup",
      {{table, /*write=*/false, touched, 1, /*partial=*/true},
       {indices, false, 0, 1, false},
       {out, /*write=*/true, 0, 1, false}},
      static_cast<double>(batch * dim), kEltwiseEfficiency,
      [batch, dim](const real::KernelCtx& kctx,
                   const std::vector<const float*>& r,
                   const std::vector<float*>& w) {
        real::embedding_gather(kctx, r[0], r[1], w[0], batch, dim);
      });

  TapeEntry e;
  e.name = "embedding_lookup";
  e.inputs = {table, indices};
  e.outputs = {out};
  e.backward = [table, indices, lr, batch, dim, touched](
                   Engine& eng, const std::vector<Tensor>& gout)
      -> std::vector<Tensor> {
    // Fused sparse update: scatter -lr * grad into the touched rows.  The
    // table write is partial, so a sparse-aware policy applies it in place
    // instead of migrating the whole table.
    Tensor mutable_table = table;
    eng.execute_args(
        "embedding_scatter_sgd",
        {{gout[0], false, 0, 1, false},
         {indices, false, 0, 1, false},
         {mutable_table, /*write=*/true, touched, 1, /*partial=*/true}},
        2.0 * static_cast<double>(batch * dim), kEltwiseEfficiency,
        [batch, dim, lr](const real::KernelCtx& kctx,
                         const std::vector<const float*>& r,
                         const std::vector<float*>& w) {
          real::embedding_scatter_sgd(kctx, w[0], r[1], r[0], lr, batch, dim);
        });
    return {Tensor{}, Tensor{}};  // gradient is consumed by the update
  };
  record(std::move(e));
  return out;
}

float Engine::softmax_ce_loss(const Tensor& logits, const Tensor& labels) {
  CA_CHECK(logits.shape().rank() == 2, "loss expects (n,classes) logits");
  const std::size_t n = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  CA_CHECK(labels.numel() == n, "one label per sample");
  Tensor probs = tensor(logits.shape(), "loss.probs");
  float loss = 0.0f;
  execute("softmax_ce", {logits, labels}, {probs},
          8.0 * static_cast<double>(logits.numel()), kEltwiseEfficiency,
          [&, n, classes](const real::KernelCtx& kctx,
                          const std::vector<const float*>& r,
                          const std::vector<float*>& w) {
            loss = real::softmax_ce_fwd(kctx, r[0], r[1], w[0], n, classes);
          });
  TapeEntry e;
  e.name = "softmax_ce";
  e.inputs = {logits, labels};
  e.outputs = {probs};
  e.is_loss = true;
  e.backward = [logits, labels, probs, n, classes](
                   Engine& eng, const std::vector<Tensor>&)
      -> std::vector<Tensor> {
    Tensor gx = eng.tensor(logits.shape(), "loss.gx");
    eng.execute("softmax_ce_bwd", {probs, labels}, {gx},
                static_cast<double>(logits.numel()), kEltwiseEfficiency,
                [=](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& w) {
                  real::softmax_ce_bwd(kctx, r[0], r[1], w[0], n, classes);
                });
    return {gx, Tensor{}};  // no gradient for the labels
  };
  record(std::move(e));
  loss_recorded_ = true;
  return loss;
}

// --- gradient bookkeeping ---------------------------------------------------

void Engine::retire_temp(Tensor t) {
  if (!config_.issue_retire || !t.valid() || t.is_parameter()) return;
  if (t.array().retire()) ++stats_.retires_issued;
}

void Engine::accumulate_grad(const Tensor& target, Tensor g) {
  const void* tid = target.array().identity();
  auto it = grads_.find(tid);
  if (it == grads_.end()) {
    ++grad_uses_[g.array().identity()];
    grads_.emplace(tid, std::move(g));
    return;
  }
  Tensor acc = it->second;
  const void* accid = acc.array().identity();
  if (grad_uses_[accid] > 1) {
    // The accumulator is shared with another target (a pass-through
    // gradient); copy-on-write before modifying.
    Tensor copy = tensor(acc.shape(), "grad.cow");
    const auto n = acc.numel();
    execute("grad_copy", {acc}, {copy}, static_cast<double>(n),
            kEltwiseEfficiency,
            [n](const real::KernelCtx&, const std::vector<const float*>& r,
                const std::vector<float*>& w) {
              std::copy(r[0], r[0] + n, w[0]);
            });
    --grad_uses_[accid];
    acc = copy;
    it->second = acc;
    ++grad_uses_[acc.array().identity()];
  }
  const auto n = acc.numel();
  execute("grad_accumulate", {g, acc}, {acc}, static_cast<double>(n),
          kEltwiseEfficiency,
          [n](const real::KernelCtx& kctx,
              const std::vector<const float*>& r,
              const std::vector<float*>& w) {
            real::accumulate(kctx, w[0], r[0], n);
          });
  // `g` has been folded in; release it unless another target holds it.
  const void* gid = g.array().identity();
  if (grad_uses_.find(gid) == grad_uses_.end()) retire_temp(std::move(g));
}

void Engine::drop_grad(const void* target_id) {
  const auto it = grads_.find(target_id);
  if (it == grads_.end()) return;
  Tensor g = std::move(it->second);
  grads_.erase(it);
  const void* gid = g.array().identity();
  const auto uit = grad_uses_.find(gid);
  CA_CHECK(uit != grad_uses_.end() && uit->second > 0,
           "grad use-count out of sync");
  if (--uit->second == 0) {
    grad_uses_.erase(uit);
    retire_temp(std::move(g));
  }
}

Tensor Engine::grad(const Tensor& t) const {
  const auto it = grads_.find(t.array().identity());
  return it == grads_.end() ? Tensor{} : it->second;
}

// --- backward / update / iteration ------------------------------------------

void Engine::backward() {
  CA_CHECK(loss_recorded_, "backward() without a recorded loss");

  // Remaining-use counts for every non-parameter tensor on the tape; a
  // tensor is retired the moment its final (reverse-order) use completes.
  std::unordered_map<const void*, int> uses;
  for (const auto& e : tape_) {
    for (const auto& t : e.inputs) {
      if (t.valid() && !t.is_parameter()) ++uses[t.array().identity()];
    }
    for (const auto& t : e.outputs) {
      if (t.valid() && !t.is_parameter()) ++uses[t.array().identity()];
    }
  }

  // Pending accumulation counts per parameter: once the reverse walk has
  // passed every entry that reads a parameter, its gradient can no longer
  // change and the grad-ready hook may fire for it.
  std::unordered_map<const void*, std::pair<Tensor, int>> param_pending;
  if (grad_ready_hook_) {
    for (const auto& e : tape_) {
      for (const auto& t : e.inputs) {
        if (!t.valid() || !t.is_parameter()) continue;
        auto& slot = param_pending[t.array().identity()];
        slot.first = t;
        ++slot.second;
      }
    }
  }

  for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
    TapeEntry& e = *it;

    std::vector<Tensor> grad_out;
    grad_out.reserve(e.outputs.size());
    bool any = e.is_loss;
    for (const auto& o : e.outputs) {
      Tensor g = grad(o);
      any = any || g.valid();
      grad_out.push_back(std::move(g));
    }

    if (any) {
      std::vector<Tensor> grad_in = e.backward(*this, grad_out);
      CA_CHECK(grad_in.size() == e.inputs.size(),
               "backward returned wrong gradient count");
      for (std::size_t i = 0; i < grad_in.size(); ++i) {
        if (grad_in[i].valid()) {
          accumulate_grad(e.inputs[i], std::move(grad_in[i]));
        }
      }
    }
    grad_out.clear();
    // The gradients of this entry's outputs are complete and consumed.
    for (const auto& o : e.outputs) drop_grad(o.array().identity());

    if (grad_ready_hook_) {
      for (const auto& t : e.inputs) {
        if (!t.valid() || !t.is_parameter()) continue;
        const auto pit = param_pending.find(t.array().identity());
        if (pit == param_pending.end()) continue;
        if (--pit->second.second == 0) {
          // This was the parameter's last (reverse-order) use; hand the
          // finished gradient to the hook (if any gradient flowed at all).
          if (Tensor g = grad(t); g.valid()) {
            grad_ready_hook_(pit->second.first, g);
          }
          param_pending.erase(pit);
        }
      }
    }

    // Last-use retirement (FILO activation lifetimes, §III-E).
    if (config_.issue_retire) {
      auto visit = [&](const Tensor& t) {
        if (!t.valid() || t.is_parameter()) return;
        const auto uit = uses.find(t.array().identity());
        if (uit != uses.end() && --uit->second == 0) {
          // Keep graph inputs alive if their gradient is still wanted by
          // the caller; activations produced on the tape go now.
          retire_temp(t);
          uses.erase(uit);
        }
      };
      for (const auto& t : e.outputs) visit(t);
      for (const auto& t : e.inputs) visit(t);
    }
  }
  loss_recorded_ = false;
}

void Engine::sgd_step(float lr) {
  for (auto& p : params_) {
    Tensor g = grad(p);
    if (!g.valid()) continue;
    const auto n = p.numel();
    execute("sgd_update", {g, p}, {p}, 2.0 * static_cast<double>(n),
            kEltwiseEfficiency,
            [n, lr](const real::KernelCtx& kctx,
                    const std::vector<const float*>& r,
                    const std::vector<float*>& w) {
              real::sgd_update(kctx, w[0], r[0], lr, n);
            });
    drop_grad(p.array().identity());
  }
}

void Engine::end_iteration() {
  tape_.clear();
  // Drop any gradients still held (e.g. for graph inputs).
  while (!grads_.empty()) drop_grad(grads_.begin()->first);
  CA_CHECK(grad_uses_.empty(), "grad use-counts leaked");
  rt_->gc_collect();
  rt_->defragment_all();
}

}  // namespace ca::dnn
