// Model zoo: the paper's benchmark networks (Table III) at 1:1000 scale,
// plus tiny presets for the real-math test suite.
//
// The paper trains VGG 416 (a greatly extended VGG 16 from the vDNN line),
// ResNet 200 and DenseNet 264 with batch sizes chosen so a training
// iteration needs ~520-530 GB (large) or 170-180 GB (small).  We reproduce
// the same architectures with spatial/channel/batch dimensions scaled so
// the footprints land at the same numbers in MiB.  Footprints are measured,
// not asserted: bench/table3_models prints the achieved values.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dnn/engine.hpp"

namespace ca::dnn {

struct ModelSpec {
  enum class Family { kVgg, kResNet, kDenseNet };

  Family family = Family::kVgg;
  std::string name;
  std::size_t batch = 4;
  std::size_t image = 32;    ///< input is (batch, 3, image, image)
  std::size_t classes = 100;
  std::size_t base_channels = 16;

  /// Per-family meaning: VGG = convs per stage; ResNet = residual blocks
  /// per stage; DenseNet = dense layers per block.
  std::vector<std::size_t> stages;

  std::size_t growth = 16;  ///< DenseNet growth rate

  /// Arithmetic efficiency this model's conv kernels achieve (see
  /// EngineConfig::compute_efficiency).  VGG's kernels are configured
  /// memory-bound ("more sensitive to read bandwidth", paper §V-c).
  double compute_efficiency = 0.35;

  /// Passes the model's conv/dense kernels make over their read arguments
  /// (EngineConfig::conv_read_passes).  VGG's dense 3x3 stacks have poor
  /// blocking reuse and sweep inputs more often, which is what makes them
  /// "more sensitive to read bandwidth" (paper SV-c) and what prefetching
  /// exploits.
  int conv_read_passes = 2;

  // --- Table III presets (large: ~520-530 MiB; small: ~170-180 MiB) ------
  static ModelSpec vgg416_large();
  static ModelSpec vgg116_small();
  static ModelSpec resnet200_large();
  static ModelSpec resnet200_small();
  static ModelSpec densenet264_large();
  static ModelSpec densenet264_small();

  // --- tiny presets for the real-math tests/examples ---------------------
  static ModelSpec vgg_tiny();
  static ModelSpec resnet_tiny();
  static ModelSpec densenet_tiny();
};

/// A constructed network: parameters registered with the engine plus a
/// forward function over tape ops.
class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual const ModelSpec& spec() const = 0;

  /// Input shape (batch, 3, image, image).
  [[nodiscard]] Shape input_shape() const {
    const auto& s = spec();
    return {s.batch, 3, s.image, s.image};
  }

  /// Run the forward pass, returning (batch, classes) logits.
  virtual Tensor forward(Engine& engine, const Tensor& input) = 0;

  /// Initialize all parameters (He-normal weights, zero biases).  No-op
  /// arithmetic under the sim backend.
  virtual void init(Engine& engine, std::uint64_t seed) = 0;

  /// Total parameter elements.
  [[nodiscard]] virtual std::size_t parameter_count() const = 0;
};

/// Instantiate a model (allocating its parameters through the engine).
std::unique_ptr<Model> build_model(Engine& engine, const ModelSpec& spec);

}  // namespace ca::dnn
