#include "dnn/trainer.hpp"

#include <algorithm>

namespace ca::dnn {

Trainer::Trainer(Harness& harness, Model& model, TrainerOptions options)
    : harness_(&harness), model_(&model), options_(options) {
  auto& engine = harness_->engine();
  engine.set_kernel_hook([this] {
    auto& rt = harness_->runtime();
    const std::size_t resident = rt.manager().resident_bytes();
    peak_resident_ = std::max(peak_resident_, resident);
    if (options_.occupancy != nullptr) {
      options_.occupancy->record(rt.clock().now(),
                                 static_cast<double>(resident));
    }
  });
}

Trainer::~Trainer() { harness_->engine().set_kernel_hook(nullptr); }

IterationMetrics Trainer::run_iteration() {
  auto& engine = harness_->engine();
  auto& rt = harness_->runtime();

  const auto dram0 = rt.counters().device(sim::kFast);
  const auto nvram0 = rt.counters().device(sim::kSlow);
  const double t0 = rt.clock().now();
  const double compute0 = rt.clock().spent(sim::TimeCategory::kCompute);
  const double move0 = rt.clock().spent(sim::TimeCategory::kMovement);
  const double gc0 = rt.clock().spent(sim::TimeCategory::kGc);
  const twolm::CacheStats cache0 =
      harness_->cache() != nullptr ? harness_->cache()->stats()
                                   : twolm::CacheStats{};
  const dm::DataManager::AsyncStats async0 = rt.manager().async_stats();
  const telemetry::KernelCounters kernels0 =
      engine.stats().kernel_counters;
  const telemetry::OpHistogram ops0 = engine.stats().op_histogram;
  peak_resident_ = rt.manager().resident_bytes();

  IterationMetrics m;
  {
    // Fresh input and labels each iteration (randomly generated, §IV-A).
    const std::uint64_t seed = options_.seed + 31 * iter_;
    Tensor input = engine.tensor(model_->input_shape(), "input");
    engine.fill_normal(input, 1.0f, seed);
    Tensor labels =
        engine.tensor({model_->spec().batch}, "labels");
    engine.fill_labels(labels, model_->spec().classes, seed ^ 0x5555);

    Tensor logits = model_->forward(engine, input);
    m.loss = engine.softmax_ce_loss(logits, labels);
    engine.backward();
    engine.sgd_step(options_.lr);
  }  // input/labels handles drop here; end_iteration collects them
  engine.end_iteration();

  // Step boundary: join every in-flight real copy and retire what the
  // clock has caught up with, so no mover work leaks across iterations
  // (and the TSan suite can prove the overlap race-free).
  rt.manager().drain_transfers();

  m.seconds = rt.clock().now() - t0;
  m.compute_seconds =
      rt.clock().spent(sim::TimeCategory::kCompute) - compute0;
  m.movement_seconds =
      rt.clock().spent(sim::TimeCategory::kMovement) - move0;
  m.gc_seconds = rt.clock().spent(sim::TimeCategory::kGc) - gc0;
  m.dram = rt.counters().delta(sim::kFast, dram0);
  m.nvram = rt.counters().delta(sim::kSlow, nvram0);
  m.peak_resident_bytes = peak_resident_;

  const auto& async1 = rt.manager().async_stats();
  m.async_transfers = async1.scheduled - async0.scheduled;
  m.async_stall_seconds = async1.stall_seconds - async0.stall_seconds;
  m.async_overlap_seconds = async1.overlap_seconds - async0.overlap_seconds;
  m.async_inflight_peak = async1.inflight_peak;
  m.kernels = engine.stats().kernel_counters.delta(kernels0);
  m.ops = engine.stats().op_histogram.delta(ops0);

  if (harness_->cache() != nullptr) {
    const auto& now = harness_->cache()->stats();
    m.cache.accesses = now.accesses - cache0.accesses;
    m.cache.hits = now.hits - cache0.hits;
    m.cache.clean_misses = now.clean_misses - cache0.clean_misses;
    m.cache.dirty_misses = now.dirty_misses - cache0.dirty_misses;
  }

  const double peak_dram_bw = rt.platform().spec(sim::kFast).read_bw.peak();
  if (m.seconds > 0.0) {
    m.dram_bus_utilization =
        static_cast<double>(m.dram.total()) / (peak_dram_bw * m.seconds);
    m.dram_bus_utilization = std::min(m.dram_bus_utilization, 1.0);
  }

  ++iter_;
  return m;
}

}  // namespace ca::dnn
