// ca::lockdep — lock-order analysis for the ca::sync primitives, modeled
// on the Linux kernel's lockdep.
//
// Every `ca::sync::mutex` registers a *lock class* at its declaration site
// (the CA_LOCK_CLASS macro below); the runtime then maintains, per thread,
// the stack of held classes and, globally, the acquisition-order graph:
// an edge A -> B means "some thread acquired a B-class lock while holding
// an A-class lock", with the acquire site that created the edge kept as
// provenance.  Two detectors consume this state:
//
//   * cycle detection on every acquisition: if acquiring class B while
//     holding class A and the graph already contains a path B -> ... -> A,
//     the two chains can deadlock under an unlucky interleaving — a
//     structured LockdepReport names both chains with their sites.  Like
//     the kernel's lockdep, this flags the *potential* deadlock from
//     single-schedule evidence: the two orders never need to collide live.
//
//   * held-across-blocking: a lock held while the thread waits on a
//     condition variable (other than the one the wait releases), a
//     CompletionLatch, a Transfer::join(), or a thread join is reported
//     unless the class is explicitly waiver-listed.  This is what keeps
//     every class in docs/lock_hierarchy.json an honest leaf.
//
// The graph is global and *accumulates* across ca::race explorer
// schedules, so an ordering edge produced by one rare interleaving is
// still visible when tools/lockdep_check.py diffs the dumped graph against
// the sanctioned hierarchy in docs/lock_hierarchy.json.  Reports, by
// contrast, are drained by the tests per schedule (take_reports), so a
// hazard is flagged in every schedule that executes it.
//
// Enabled in Debug and CA_RACE builds (CA_LOCKDEP_ENABLED, set by the
// top-level CMakeLists); everywhere else every hook compiles to nothing
// and CA_LOCK_CLASS expands to nullptr.  The subsystem depends on the C++
// standard library only: race/sync.hpp includes this header, so anything
// above it in the tree may not be referenced here.
#pragma once

#include <cstddef>

namespace ca::lockdep {

/// One registered lock class: a *name* shared by every mutex declared at
/// the same site (e.g. all `ThreadPool::mu_` instances are one class).
/// Instances live forever in the registry; pointers are stable identity.
struct ClassInfo;

}  // namespace ca::lockdep

#if defined(CA_LOCKDEP_ENABLED)

#include <atomic>
#include <cstdint>
#include <source_location>
#include <string>
#include <vector>

namespace ca::lockdep {

struct ClassInfo {
  std::string name;  ///< e.g. "dm::DataManager::inflight_mu_"
  std::string file;  ///< declaration site (registration call)
  unsigned line = 0;
  bool waive_blocking = false;  ///< may legitimately be held across blocking
  /// Acquisitions observed since the last reset_for_testing().  A class
  /// that is merely *registered* (its CA_LOCK_CLASS static ran) but never
  /// acquired by the sanctioned workload gives lockdep zero ordering
  /// evidence -- tools/lockdep_check.py fails such classes as unexercised,
  /// so coverage claims rest on acquisitions, not on registration.
  std::atomic<std::uint64_t> acquires{0};
};

/// One frame of a lock chain in a report: the class plus the acquire site.
struct ChainLink {
  const ClassInfo* cls = nullptr;
  std::string site;  ///< "file:line" of the acquisition

  [[nodiscard]] std::string to_string() const;
};

/// A structured lockdep finding.
struct LockdepReport {
  enum class Kind : std::uint8_t {
    kOrderInversion = 0,     ///< cycle in the acquisition-order graph
    kHeldAcrossBlocking = 1, ///< lock held across a blocking operation
    kRecursiveClass = 2,     ///< same class acquired twice on one stack
  };

  Kind kind = Kind::kOrderInversion;
  /// kOrderInversion: the chain just observed (held -> acquiring).
  /// kHeldAcrossBlocking / kRecursiveClass: the held chain at the report.
  std::vector<ChainLink> chain;
  /// kOrderInversion only: the pre-existing conflicting path through the
  /// graph from the acquiring class back to the held class.
  std::vector<ChainLink> conflict;
  /// kHeldAcrossBlocking: the blocking operation ("mem::Transfer::join").
  std::string blocking_op;
  std::string blocking_site;

  [[nodiscard]] std::string to_string() const;
};

/// One edge of the acquisition-order graph, for dumps and tests.
struct EdgeInfo {
  std::string from;  ///< holder class name
  std::string to;    ///< acquired class name
  std::string site;  ///< acquire site that first created the edge
};

/// One observed lock-held-across-blocking occurrence (deduplicated by
/// class/op), for dumps and tests.  Sanctioned runs keep this list empty.
struct BlockingEdge {
  std::string cls;
  std::string op;
  std::string site;
};

/// Register (or look up) the lock class `name`.  Idempotent: the first
/// registration wins and later calls with the same name return the same
/// entry, so a class declared in a header is shared across translation
/// units and instances.  Thread-safe.
const ClassInfo* register_class(const char* name, const char* file,
                                unsigned line);

/// Mark `name`'s class as legitimately held across blocking operations
/// (the waiver list of docs/lock_hierarchy.json).  Registers the class if
/// it does not exist yet.
void waive_blocking(const char* name);

// --- hooks (called by the ca::sync shims) ----------------------------------

/// The calling thread acquired `mu` (class `cls`, may be nullptr for an
/// unnamed mutex).  Pushes the held stack, inserts the ordering edge from
/// the previous stack top, and reports order inversions / recursive
/// classes.  `trylock` acquisitions are pushed but add no ordering edge
/// (a failed trylock cannot deadlock).
void on_acquire(const void* mu, const ClassInfo* cls,
                const std::source_location& loc, bool trylock = false);

/// The calling thread released `mu`: remove it from the held stack.
void on_release(const void* mu);

/// The calling thread is about to block in `op` (latch wait, transfer
/// join, thread join).  Every held, non-waived lock is reported.
void on_blocking(const char* op, const std::source_location& loc);

/// The calling thread is about to wait on a condition variable that
/// atomically releases `mu`: every held, non-waived lock EXCEPT `mu`
/// itself is reported.
void on_cv_wait(const void* mu, const std::source_location& loc);

// --- findings / introspection ----------------------------------------------

/// Drain the accumulated reports (the graph is left intact).
std::vector<LockdepReport> take_reports();
[[nodiscard]] std::size_t report_count();

/// Snapshot of the acquisition-order graph / blocking occurrences.
[[nodiscard]] std::vector<EdgeInfo> edges();
[[nodiscard]] std::vector<BlockingEdge> blocking_edges();

/// Locks currently held by the calling thread (class names, bottom first).
[[nodiscard]] std::vector<std::string> held_classes();

/// Serialize classes + edges + blocking occurrences as JSON, the format
/// tools/lockdep_check.py diffs against docs/lock_hierarchy.json.
[[nodiscard]] std::string dump_graph_json();

/// Drop every edge, blocking record and report.  Class registrations are
/// kept: CA_LOCK_CLASS statics cache ClassInfo pointers for the process
/// lifetime, so classes are never deallocated.  For tests that need a
/// clean graph (the sanctioned-workload dump, unit fixtures).
void reset_for_testing();

}  // namespace ca::lockdep

/// Names the lock class of a ca::sync::mutex at its declaration site:
///
///   sync::mutex mu_ CA_LEAF{CA_LOCK_CLASS("mem::CopyEngine::mu_")};
///
/// One registry entry per name; the static local keeps re-registration off
/// the construction hot path.
#define CA_LOCK_CLASS(name)                                              \
  ([]() -> const ::ca::lockdep::ClassInfo* {                             \
    static const ::ca::lockdep::ClassInfo* ca_lockdep_cls =              \
        ::ca::lockdep::register_class((name), __FILE__, __LINE__);       \
    return ca_lockdep_cls;                                               \
  }())

#define CA_LOCKDEP_ON_BLOCKING(op)                                       \
  ::ca::lockdep::on_blocking((op), std::source_location::current())

#else  // !CA_LOCKDEP_ENABLED --------------------------------------------------

#include <source_location>

namespace ca::lockdep {

/// Zero-overhead stubs: release builds carry no registry and no held
/// stacks, and every hook inlines to nothing (CA_LOCK_CLASS is a null
/// constant, so no class is ever registered either).
inline void waive_blocking(const char*) {}
inline void on_acquire(const void*, const ClassInfo*,
                       const std::source_location&, bool = false) {}
inline void on_release(const void*) {}
inline void on_blocking(const char*, const std::source_location&) {}
inline void on_cv_wait(const void*, const std::source_location&) {}

}  // namespace ca::lockdep

#define CA_LOCK_CLASS(name) (static_cast<const ::ca::lockdep::ClassInfo*>(nullptr))
#define CA_LOCKDEP_ON_BLOCKING(op) ((void)0)

#endif  // CA_LOCKDEP_ENABLED
