#include "lockdep/lockdep.hpp"

#if defined(CA_LOCKDEP_ENABLED)

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace ca::lockdep {

namespace {

/// A site compressed to the pieces source_location hands out.  The file
/// name is a string literal (static storage), so keeping the pointer is
/// safe and allocation-free on the acquire hot path.
struct Site {
  const char* file = "";
  unsigned line = 0;

  [[nodiscard]] std::string str() const {
    return std::string(file) + ":" + std::to_string(line);
  }
};

/// One held lock on a thread's stack.
struct Held {
  const void* mu = nullptr;
  const ClassInfo* cls = nullptr;  ///< nullptr for an unnamed mutex
  Site site;
  bool trylock = false;
};

struct Edge {
  Site site;  ///< acquire site that first created the edge
};

/// All global lockdep state, guarded by one plain std::mutex.  The guard
/// must NOT be a ca::sync::mutex: the hooks are called from inside the
/// sync shims and an instrumented guard would recurse.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ClassInfo>> classes;
  std::unordered_map<std::string, ClassInfo*> by_name;
  /// Acquisition-order graph: adjacency keyed on stable ClassInfo*.
  std::map<const ClassInfo*, std::map<const ClassInfo*, Edge>> graph;
  /// Held-across-blocking occurrences, deduplicated by (class, op).
  std::map<std::pair<const ClassInfo*, std::string>, Site> blocking;
  std::vector<LockdepReport> reports;

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: ClassInfo* stay valid
    return *r;
  }

  ClassInfo* get_or_register_locked(const char* name, const char* file,
                                    unsigned line) {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    auto cls = std::make_unique<ClassInfo>();
    cls->name = name;
    cls->file = file;
    cls->line = line;
    ClassInfo* raw = cls.get();
    classes.push_back(std::move(cls));
    by_name.emplace(raw->name, raw);
    return raw;
  }
};

/// The calling thread's stack of held locks.  Thread-local: only its own
/// thread ever touches it, so no lock is needed.
thread_local std::vector<Held> t_held;

const ClassInfo* anonymous_class() {
  static const ClassInfo* cls = [] {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> g(r.mu);
    return r.get_or_register_locked("<unnamed>", "<unknown>", 0);
  }();
  return cls;
}

/// DFS for a path `from -> ... -> to` through the graph; fills `path` with
/// one ChainLink per traversed edge (the edge's first-acquire site).
/// Caller holds the registry lock.
bool find_path_locked(const Registry& r, const ClassInfo* from,
                      const ClassInfo* to, std::vector<const ClassInfo*>& seen,
                      std::vector<ChainLink>& path) {
  if (from == to) return true;
  if (std::find(seen.begin(), seen.end(), from) != seen.end()) return false;
  seen.push_back(from);
  const auto adj = r.graph.find(from);
  if (adj == r.graph.end()) return false;
  for (const auto& [next, edge] : adj->second) {
    path.push_back(ChainLink{next, edge.site.str()});
    if (find_path_locked(r, next, to, seen, path)) return true;
    path.pop_back();
  }
  return false;
}

/// The held chain from the oldest named lock to the top of the stack.
std::vector<ChainLink> held_chain() {
  std::vector<ChainLink> chain;
  for (const Held& h : t_held) {
    chain.push_back(ChainLink{h.cls != nullptr ? h.cls : anonymous_class(),
                              h.site.str()});
  }
  return chain;
}

void report_blocking(const char* op, const std::source_location& loc,
                     const void* excluded_mu) {
  if (t_held.empty()) return;
  const Site site{loc.file_name(), loc.line()};
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  bool reported = false;
  for (const Held& h : t_held) {
    if (h.mu == excluded_mu) continue;
    const ClassInfo* cls = h.cls != nullptr ? h.cls : anonymous_class();
    if (cls->waive_blocking) continue;
    r.blocking.insert({{cls, op}, site});
    reported = true;
  }
  if (!reported) return;
  LockdepReport report;
  report.kind = LockdepReport::Kind::kHeldAcrossBlocking;
  for (const Held& h : t_held) {
    if (h.mu == excluded_mu) continue;
    const ClassInfo* cls = h.cls != nullptr ? h.cls : anonymous_class();
    if (cls->waive_blocking) continue;
    report.chain.push_back(ChainLink{cls, h.site.str()});
  }
  report.blocking_op = op;
  report.blocking_site = site.str();
  r.reports.push_back(std::move(report));
}

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string ChainLink::to_string() const {
  return (cls != nullptr ? cls->name : std::string("<unnamed>")) +
         " (acquired at " + site + ")";
}

std::string LockdepReport::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kOrderInversion: {
      out << "lockdep: lock-order inversion\n  observed chain:\n";
      for (const auto& link : chain) out << "    " << link.to_string() << "\n";
      out << "  conflicts with the existing ordering:\n";
      for (const auto& link : conflict)
        out << "    " << link.to_string() << "\n";
      break;
    }
    case Kind::kHeldAcrossBlocking: {
      out << "lockdep: lock held across blocking operation " << blocking_op
          << " at " << blocking_site << "\n  held:\n";
      for (const auto& link : chain) out << "    " << link.to_string() << "\n";
      break;
    }
    case Kind::kRecursiveClass: {
      out << "lockdep: class acquired twice on one stack\n  held:\n";
      for (const auto& link : chain) out << "    " << link.to_string() << "\n";
      break;
    }
  }
  return std::move(out).str();
}

const ClassInfo* register_class(const char* name, const char* file,
                                unsigned line) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  return r.get_or_register_locked(name, file, line);
}

void waive_blocking(const char* name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  r.get_or_register_locked(name, "<waiver>", 0)->waive_blocking = true;
}

void on_acquire(const void* mu, const ClassInfo* cls,
                const std::source_location& loc, bool trylock) {
  const Site site{loc.file_name(), loc.line()};
  const Held* top = t_held.empty() ? nullptr : &t_held.back();

  if (cls != nullptr) {
    // The exercise counter reads are off the registry lock (dump/reset take
    // it); relaxed is fine for a pure count.
    const_cast<ClassInfo*>(cls)->acquires.fetch_add(1,
                                                    std::memory_order_relaxed);
  }

  // Recursive-class check: the same class twice on one stack deadlocks
  // self-sufficiently (our mutexes are non-recursive).
  const ClassInfo* recursive = nullptr;
  if (cls != nullptr) {
    for (const Held& h : t_held) {
      if (h.cls == cls) {
        recursive = cls;
        break;
      }
    }
  }

  const bool add_edge = !trylock && top != nullptr && top->cls != nullptr &&
                        cls != nullptr && top->cls != cls;
  if (add_edge || recursive != nullptr) {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> g(r.mu);
    if (recursive != nullptr) {
      LockdepReport report;
      report.kind = LockdepReport::Kind::kRecursiveClass;
      report.chain = held_chain();
      report.chain.push_back(ChainLink{cls, site.str()});
      r.reports.push_back(std::move(report));
    }
    if (add_edge) {
      // Cycle check BEFORE inserting the new edge, so the conflict path is
      // purely pre-existing ordering evidence.  Checked on every acquire
      // (not only on first insertion): the graph persists across explorer
      // schedules, and each schedule that re-executes the inversion must
      // re-report it.
      std::vector<const ClassInfo*> seen;
      std::vector<ChainLink> conflict;
      conflict.push_back(ChainLink{cls, "held first in the conflicting chain"});
      if (find_path_locked(r, cls, top->cls, seen, conflict)) {
        LockdepReport report;
        report.kind = LockdepReport::Kind::kOrderInversion;
        report.chain = held_chain();
        report.chain.push_back(ChainLink{cls, site.str()});
        report.conflict = std::move(conflict);
        r.reports.push_back(std::move(report));
      }
      r.graph[top->cls].emplace(cls, Edge{site});
    }
  }
  t_held.push_back(Held{mu, cls, site, trylock});
}

void on_release(const void* mu) {
  // Search from the top: releases are almost always LIFO, but basic_lock's
  // unlock/relock dance around condition variables can interleave.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void on_blocking(const char* op, const std::source_location& loc) {
  report_blocking(op, loc, /*excluded_mu=*/nullptr);
}

void on_cv_wait(const void* mu, const std::source_location& loc) {
  report_blocking("sync::condition_variable::wait", loc, mu);
}

std::vector<LockdepReport> take_reports() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  return std::exchange(r.reports, {});
}

std::size_t report_count() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  return r.reports.size();
}

std::vector<EdgeInfo> edges() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  std::vector<EdgeInfo> out;
  for (const auto& [from, adj] : r.graph) {
    for (const auto& [to, edge] : adj) {
      out.push_back(EdgeInfo{from->name, to->name, edge.site.str()});
    }
  }
  std::sort(out.begin(), out.end(), [](const EdgeInfo& a, const EdgeInfo& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  return out;
}

std::vector<BlockingEdge> blocking_edges() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  std::vector<BlockingEdge> out;
  for (const auto& [key, site] : r.blocking) {
    out.push_back(BlockingEdge{key.first->name, key.second, site.str()});
  }
  // The map is keyed on ClassInfo pointers (allocation order); sort by name
  // so dumps and tests are deterministic across runs.
  std::sort(out.begin(), out.end(),
            [](const BlockingEdge& a, const BlockingEdge& b) {
              return std::tie(a.cls, a.op) < std::tie(b.cls, b.op);
            });
  return out;
}

std::vector<std::string> held_classes() {
  std::vector<std::string> out;
  for (const Held& h : t_held) {
    out.push_back(h.cls != nullptr ? h.cls->name : std::string("<unnamed>"));
  }
  return out;
}

std::string dump_graph_json() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);

  std::vector<const ClassInfo*> classes;
  classes.reserve(r.classes.size());
  for (const auto& cls : r.classes) classes.push_back(cls.get());
  std::sort(classes.begin(), classes.end(),
            [](const ClassInfo* a, const ClassInfo* b) {
              return a->name < b->name;
            });

  std::ostringstream out;
  out << "{\n  \"classes\": [";
  bool first = true;
  for (const ClassInfo* cls : classes) {
    out << (first ? "\n" : ",\n") << "    {\"name\": ";
    json_escape(out, cls->name);
    out << ", \"file\": ";
    json_escape(out, cls->file);
    out << ", \"line\": " << cls->line << ", \"waive_blocking\": "
        << (cls->waive_blocking ? "true" : "false") << ", \"acquires\": "
        << cls->acquires.load(std::memory_order_relaxed) << "}";
    first = false;
  }
  // Re-derive the sorted views locked (edges()/blocking_edges() would
  // re-lock); both are name-sorted so the dump is byte-stable across runs.
  std::vector<EdgeInfo> edge_list;
  for (const auto& [from, adj] : r.graph) {
    for (const auto& [to, edge] : adj) {
      edge_list.push_back(EdgeInfo{from->name, to->name, edge.site.str()});
    }
  }
  std::sort(edge_list.begin(), edge_list.end(),
            [](const EdgeInfo& a, const EdgeInfo& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  std::vector<BlockingEdge> blocking_list;
  for (const auto& [key, site] : r.blocking) {
    blocking_list.push_back(
        BlockingEdge{key.first->name, key.second, site.str()});
  }
  std::sort(blocking_list.begin(), blocking_list.end(),
            [](const BlockingEdge& a, const BlockingEdge& b) {
              return std::tie(a.cls, a.op) < std::tie(b.cls, b.op);
            });

  out << "\n  ],\n  \"edges\": [";
  first = true;
  for (const auto& edge : edge_list) {
    out << (first ? "\n" : ",\n") << "    {\"from\": ";
    json_escape(out, edge.from);
    out << ", \"to\": ";
    json_escape(out, edge.to);
    out << ", \"site\": ";
    json_escape(out, edge.site);
    out << "}";
    first = false;
  }
  out << "\n  ],\n  \"blocking\": [";
  first = true;
  for (const auto& b : blocking_list) {
    out << (first ? "\n" : ",\n") << "    {\"class\": ";
    json_escape(out, b.cls);
    out << ", \"op\": ";
    json_escape(out, b.op);
    out << ", \"site\": ";
    json_escape(out, b.site);
    out << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return std::move(out).str();
}

void reset_for_testing() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> g(r.mu);
  r.graph.clear();
  r.blocking.clear();
  r.reports.clear();
  // Exercise counts restart with the graph: the sanctioned-workload dump
  // must prove each class was acquired by *that* workload, not by whatever
  // ran before the reset.
  for (const auto& cls : r.classes) {
    cls->acquires.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ca::lockdep

#else  // !CA_LOCKDEP_ENABLED

// Keep the translation unit non-empty in release builds; the library
// target exists in every configuration.
namespace ca::lockdep {
namespace {
[[maybe_unused]] constexpr int kLockdepDisabled = 0;
}  // namespace
}  // namespace ca::lockdep

#endif  // CA_LOCKDEP_ENABLED
