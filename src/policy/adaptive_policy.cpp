#include "policy/adaptive_policy.hpp"

#include "util/error.hpp"

namespace ca::policy {

AdaptivePolicy::AdaptivePolicy(dm::DataManager& dm,
                               AdaptivePolicyConfig config)
    : dm_(dm),
      config_(config),
      inner_(dm, config.base),
      rng_(config.seed) {
  CA_CHECK(config_.window_kernels > 0, "window must cover >= 1 kernel");
  CA_CHECK(config_.explore >= 0.0 && config_.explore <= 1.0,
           "exploration rate must be a probability");
  CA_CHECK(config_.ema > 0.0 && config_.ema <= 1.0,
           "EMA factor must be in (0, 1]");
  // Start by sampling the 'off' arm; the first two windows always try both.
  inner_.set_prefetch(false);
  window_start_ = dm_.clock().now();
}

void AdaptivePolicy::begin_kernel(std::span<dm::Object* const> args) {
  if (++kernels_in_window_ > config_.window_kernels) finish_window();
  inner_.begin_kernel(args);
}

void AdaptivePolicy::finish_window() {
  const double now = dm_.clock().now();
  const double elapsed = now - window_start_;
  const std::size_t arm = inner_.config().prefetch ? 1 : 0;

  // Score the finished window.
  if (cost_[arm] < 0.0) {
    cost_[arm] = elapsed;
  } else {
    cost_[arm] = (1.0 - config_.ema) * cost_[arm] + config_.ema * elapsed;
  }
  ++windows_;
  if (arm == 1) ++windows_on_;

  // Choose the next arm: sample any unsampled arm first, then
  // epsilon-greedy on the cost estimates.
  bool next_on;
  if (cost_[1 - arm] < 0.0) {
    next_on = arm == 0;  // try the other arm once
  } else if (rng_.uniform() < config_.explore) {
    next_on = rng_.uniform() < 0.5;
  } else {
    next_on = cost_[1] < cost_[0];
  }
  inner_.set_prefetch(next_on);

  kernels_in_window_ = 0;
  window_start_ = now;
}

}  // namespace ca::policy
