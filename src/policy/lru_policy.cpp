#include "policy/lru_policy.hpp"

#include <vector>

#include "util/error.hpp"

namespace ca::policy {

LruPolicy::LruPolicy(dm::DataManager& dm, LruPolicyConfig config)
    : dm_(dm), config_(config) {
  CA_CHECK(config_.fast != config_.slow,
           "fast and slow must be distinct devices");
}

LruPolicy::Node& LruPolicy::node(dm::Object& object) {
  auto [it, inserted] = nodes_.try_emplace(&object);
  if (inserted) it->second.object = &object;
  return it->second;
}

void LruPolicy::touch(Node& n) {
  if (n.lru_hook.linked()) lru_.move_to_front(n);
}

void LruPolicy::remove_from_lru(Node& n) { lru_.erase(n); }

void LruPolicy::set_pressure_handler(PressureHandler handler) {
  pressure_ = std::move(handler);
}

// --- placement --------------------------------------------------------------

dm::Region& LruPolicy::place_new(dm::Object& object) {
  const bool gradient =
      config_.gradient_aware &&
      object.object_class() == dm::ObjectClass::kGradient;
  if (config_.local_alloc || gradient ||
      object.size() < config_.min_migratable) {
    // L: unlinked regions directly in fast memory -- no compulsory NVRAM
    // birth, no initial copy (paper requirement 1, §III-A).
    if (dm::Region* r = allocate_fast_forced(object.size())) {
      dm_.setprimary(object, *r);
      lru_.push_front(node(object));
      if (gradient) ++stats_.gradient_hot_allocs;
      return *r;
    }
  }
  // Either local allocation is disabled (CA:0 emulates a true cache where
  // every object is born in backing memory) or fast memory cannot hold the
  // object at all.
  dm::Region& r = allocate_slow_checked(object.size());
  dm_.setprimary(object, r);
  return r;
}

// --- hints ------------------------------------------------------------------

void LruPolicy::will_use(dm::Object& object) {
  // Generic "about to use": treated like will_read; a kernel that writes
  // will also issue will_write for the written arguments.
  will_read(object);
}

void LruPolicy::will_read(dm::Object& object) {
  if (config_.prefetch || !config_.local_alloc) {
    // P: always stage reads in fast memory.  Without L we emulate a true
    // cache, where reads likewise fault data into the cache first.
    prefetch(object, /*force=*/true);
  }
  // Otherwise: NVRAM read bandwidth is high enough that reads are served in
  // place (paper §III-D).  Touch the LRU either way.
  touch(node(object));
  prefetch_ahead(object);
}

void LruPolicy::will_read_partial(dm::Object& object, std::size_t bytes) {
  if (!config_.sparse_aware) {
    will_read(object);
    return;
  }
  const double fraction = static_cast<double>(bytes) /
                          static_cast<double>(object.size());
  if (fraction >= config_.sparse_threshold) {
    // Mostly-dense read: behave like a plain will_read.
    will_read(object);
    return;
  }
  // Sparse read: migrating the whole object for a fractional touch is a
  // loss under every regime; serve it in place.  NVRAM read bandwidth is
  // high enough for this to be cheap (paper SIII-D).
  ++stats_.sparse_reads_in_place;
  touch(node(object));
}

void LruPolicy::will_write(dm::Object& object) {
  // NVRAM writes are slow and low-bandwidth: written objects always go to
  // fast memory, evicting colder data if necessary.
  prefetch(object, /*force=*/true);
  touch(node(object));
  prefetch_ahead(object);
}

void LruPolicy::archive(dm::Object& object) {
  if (config_.gradient_aware &&
      object.object_class() == dm::ObjectClass::kGradient &&
      !object.pinned()) {
    // A gradient bucket archived after its reduced result was applied is
    // dead until the next backward pass: demote it off the fast tier now
    // rather than letting it squat in DRAM at the cold end of the list.
    // This is the class-aware lifetime rule plain LRU cannot express.
    dm::Region* primary = dm_.getprimary(object);
    if (primary != nullptr && dm_.in(*primary, config_.fast)) {
      evict(object);
      ++stats_.gradient_demotes;
      return;
    }
  }
  // "Will not be used for some time": never evict eagerly (if everything
  // fits in fast memory there must be no downside, §III-E) -- just make the
  // object the preferred victim under future pressure.
  Node& n = node(object);
  if (n.lru_hook.linked()) lru_.move_to_back(n);
  if (config_.prefetch_distance > 0) record_archive(object);
}

void LruPolicy::record_archive(dm::Object& object) {
  if (trace_pos_.count(&object) != 0) {
    // Re-archive of an already-recorded object: the next forward pass has
    // begun and the old trace is stale.
    archive_trace_.clear();
    trace_pos_.clear();
  }
  trace_pos_[&object] = archive_trace_.size();
  archive_trace_.push_back(&object);
}

void LruPolicy::prefetch_ahead(dm::Object& object) {
  if (config_.prefetch_distance == 0) return;
  const auto it = trace_pos_.find(&object);
  if (it == trace_pos_.end()) return;
  // The backward pass consumes objects roughly in reverse archive order:
  // the ones recorded just before `object` are needed next.  Prefetch them
  // asynchronously and gently (never evict to make room for a guess).
  std::size_t issued = 0;
  std::size_t pos = it->second;
  while (pos > 0 && issued < config_.prefetch_distance) {
    dm::Object* ahead = archive_trace_[--pos];
    if (ahead == nullptr || ahead->pinned()) continue;
    if (ahead->size() < config_.min_migratable) continue;
    dm::Region* p = dm_.getprimary(*ahead);
    if (p == nullptr || !dm_.in(*p, config_.slow)) continue;
    if (!prefetch_impl(*ahead, /*force=*/false, /*async=*/true)) {
      break;  // fast memory is full; stop guessing
    }
    ++issued;
    ++stats_.prefetch_ahead;
    stats_.prefetch_ahead_bytes += ahead->size();
  }
}

bool LruPolicy::retire(dm::Object& object) {
  if (config_.eager_retire) {
    // M: release storage now; the runtime destroys the object.
    ++stats_.retires_honored;
    return true;
  }
  // Without M the object lingers until the emulated GC runs; make it the
  // preferred eviction victim in the meantime.
  archive(object);
  return false;
}

void LruPolicy::on_destroy(dm::Object& object) {
  const auto tp = trace_pos_.find(&object);
  if (tp != trace_pos_.end()) {
    archive_trace_[tp->second] = nullptr;  // tombstone; positions are stable
    trace_pos_.erase(tp);
  }
  const auto it = nodes_.find(&object);
  if (it == nodes_.end()) return;
  remove_from_lru(it->second);
  nodes_.erase(it);
}

void LruPolicy::begin_kernel(std::span<dm::Object* const> args) {
  for (dm::Object* obj : args) {
    if (obj != nullptr) node(*obj).in_flight = true;
  }
}

void LruPolicy::end_kernel() {
  for (auto& [obj, n] : nodes_) n.in_flight = false;
}

// --- mechanisms (paper Listings 1 and 2) -------------------------------------

void LruPolicy::evict(dm::Object& object) {
  dm::Region* x = dm_.getprimary(object);
  CA_CHECK(x != nullptr, "evict of an object without storage");
  if (!dm_.in(*x, config_.fast)) return;

  dm::Region* y = dm_.getlinked(*x, config_.slow);
  const std::size_t sz = dm_.size_of(*x);
  bool allocated = false;
  if (y == nullptr) {
    y = &allocate_slow_checked(object.size());
    allocated = true;
    // Link before copying so copyto sees the regions as siblings and
    // synchronizes both dirty bits; copying first would leave a stale
    // dirty bit on x.
    dm_.link(*x, *y);
  }
  if (dm_.isdirty(*x) || allocated) {
    if (config_.async_writeback) {
      // Write-behind: the writeback occupies a mover writeback channel in
      // the background; the evictor does not stall and the fast window is
      // reused immediately.  free(x) below joins the real copy only (no
      // simulated time) so the storage is safe to hand out.
      dm_.copyto_async(*y, *x);
      ++stats_.async_writebacks;
    } else {
      dm_.copyto(*y, *x);
    }
  } else {
    // The slow copy is already valid: the expensive NVRAM write is elided
    // (paper requirement 2, §III-A).
    ++stats_.elided_writebacks;
  }
  dm_.setprimary(object, *y);
  dm_.unlink(*x);
  dm_.free(x);

  ++stats_.evictions;
  stats_.eviction_bytes += sz;
  remove_from_lru(node(object));
}

bool LruPolicy::prefetch(dm::Object& object, bool force) {
  return prefetch_impl(object, force, config_.async_prefetch);
}

bool LruPolicy::prefetch_impl(dm::Object& object, bool force, bool async) {
  dm::Region* x = dm_.getprimary(object);
  CA_CHECK(x != nullptr, "prefetch of an object without storage");
  if (!dm_.in(*x, config_.slow)) return true;  // already fast
  // A pinned object's primary cannot change (a kernel holds its pointer);
  // the hint arrives too late to act on.
  if (object.pinned()) return false;

  dm::Region* y = dm_.allocate(config_.fast, object.size(), tenant_);
  if (y == nullptr) {
    if (!force) return false;
    y = allocate_fast_forced(object.size());
    if (y == nullptr) return false;  // cannot fit in fast at all
  }
  // Link before copying: copyto only synchronizes the source's dirty bit
  // when the two regions are already siblings.  The old order left x
  // spuriously dirty, so a later write to the new primary produced two
  // "dirty" copies of one object.
  dm_.link(*x, *y);
  if (async) {
    dm_.copyto_async(*y, *x);
  } else {
    dm_.copyto(*y, *x);
  }
  dm_.setprimary(object, *y);
  lru_.push_front(node(object));
  ++stats_.prefetches;
  stats_.prefetch_bytes += object.size();
  return true;
}

bool LruPolicy::try_displace(dm::Region& region) {
  dm::Object* object = dm_.parent(region);
  if (object == nullptr) return false;  // orphan: not ours to move
  if (object->pinned()) return false;   // a kernel holds its pointer
  if (object->size() < config_.min_migratable) return false;  // not worth it
  Node& n = node(*object);
  if (n.in_flight) return false;  // argument of the kernel being staged
  evict(*object);
  return true;
}

dm::Region* LruPolicy::allocate_fast_forced(std::size_t size) {
  if (size > dm_.capacity(config_.fast)) return nullptr;
  if (dm::Region* r = dm_.allocate(config_.fast, size, tenant_)) return r;

  // Fast memory is under pressure.  Pick a starting point at the coldest
  // *evictable* resident object (the paper's "some heuristic like LRU",
  // Listing 2 line 8) and reclaim a contiguous window from there.
  std::size_t start = 0;
  Node* victim = lru_.find_from_back([](const Node& n) {
    return !n.in_flight && !n.object->pinned();
  });
  if (victim != nullptr) {
    if (dm::Region* vr = dm_.getprimary(*victim->object);
        vr != nullptr && dm_.in(*vr, config_.fast)) {
      start = vr->offset();
    }
  }
  ++stats_.forced_reclaims;
  if (!dm_.evictfrom(config_.fast, start, size,
                     [this](dm::Region& r) { return try_displace(r); },
                     tenant_)) {
    return nullptr;
  }
  dm::Region* r = dm_.allocate(config_.fast, size, tenant_);
  CA_CHECK(r != nullptr, "evictfrom succeeded but allocation still failed");
  return r;
}

dm::Region& LruPolicy::allocate_slow_checked(std::size_t size) {
  if (dm::Region* r = dm_.allocate(config_.slow, size, tenant_)) return *r;
  // Memory pressure: ask the runtime to collect dead objects, then retry.
  if (pressure_) {
    ++stats_.gc_pressure_calls;
    if (pressure_()) {
      if (dm::Region* r = dm_.allocate(config_.slow, size, tenant_)) return *r;
    }
  }
  // Last resort: compaction (the heap may merely be fragmented).
  dm_.defragment(config_.slow);
  if (dm::Region* r = dm_.allocate(config_.slow, size, tenant_)) return *r;
  throw OutOfMemoryError("slow memory exhausted allocating " +
                         std::to_string(size) + " bytes");
}

}  // namespace ca::policy
