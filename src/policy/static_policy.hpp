// Degenerate single-device policies.
//
// PinnedDevicePolicy places every object on one device and never moves
// anything.  Two uses:
//   * slow-only: the Fig. 7 "0 GB DRAM" end point (NVRAM-only execution);
//   * fast-only: an in-DRAM upper bound for sanity checks.
// Both still honor `retire` (storage release) so the memory-optimization
// toggle remains meaningful.
#pragma once

#include "policy/policy.hpp"
#include "sim/platform.hpp"

namespace ca::policy {

class PinnedDevicePolicy final : public Policy {
 public:
  PinnedDevicePolicy(dm::DataManager& dm, sim::DeviceId device,
                     bool eager_retire = true)
      : dm_(dm), device_(device), eager_retire_(eager_retire) {}

  dm::Region& place_new(dm::Object& object) override {
    if (dm::Region* r = dm_.allocate(device_, object.size(), tenant_)) {
      dm_.setprimary(object, *r);
      return *r;
    }
    if (pressure_ && pressure_()) {
      if (dm::Region* r = dm_.allocate(device_, object.size(), tenant_)) {
        dm_.setprimary(object, *r);
        return *r;
      }
    }
    try {
      dm_.defragment(device_);
    } catch (const UsageError&) {
      // A pinned region blocks compaction; fall through to OOM.
    }
    if (dm::Region* r = dm_.allocate(device_, object.size(), tenant_)) {
      dm_.setprimary(object, *r);
      return *r;
    }
    throw OutOfMemoryError("pinned device exhausted");
  }

  void will_use(dm::Object&) override {}
  void will_read(dm::Object&) override {}
  void will_write(dm::Object&) override {}
  void archive(dm::Object&) override {}
  bool retire(dm::Object&) override { return eager_retire_; }
  void on_destroy(dm::Object&) override {}
  void begin_kernel(std::span<dm::Object* const>) override {}
  void end_kernel() override {}
  void set_pressure_handler(PressureHandler handler) override {
    pressure_ = std::move(handler);
  }

 private:
  dm::DataManager& dm_;
  sim::DeviceId device_;
  bool eager_retire_;
  PressureHandler pressure_;
};

}  // namespace ca::policy
