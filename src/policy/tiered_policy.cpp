#include "policy/tiered_policy.hpp"

#include "util/error.hpp"

namespace ca::policy {

TieredLruPolicy::TieredLruPolicy(dm::DataManager& dm,
                                 TieredLruPolicyConfig config)
    : dm_(dm), config_(std::move(config)), lists_(config_.tiers.size()) {
  CA_CHECK(config_.tiers.size() >= 2, "a tiered policy needs >= 2 tiers");
  for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
    for (std::size_t j = i + 1; j < config_.tiers.size(); ++j) {
      CA_CHECK(config_.tiers[i] != config_.tiers[j],
               "tier list contains a duplicate device");
    }
  }
}

TieredLruPolicy::Node& TieredLruPolicy::node(dm::Object& object) {
  auto [it, inserted] = nodes_.try_emplace(&object);
  if (inserted) it->second.object = &object;
  return it->second;
}

void TieredLruPolicy::file_on(Node& n, std::size_t tier) {
  unfile(n);
  n.tier = tier;
  lists_[tier].push_front(n);
}

void TieredLruPolicy::unfile(Node& n) {
  if (n.hook.linked()) lists_[n.tier].erase(n);
}

std::size_t TieredLruPolicy::tier_of(const dm::Object& object) const {
  const dm::Region* primary = object.primary();
  CA_CHECK(primary != nullptr, "object has no storage");
  for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
    if (primary->device() == config_.tiers[i]) return i;
  }
  throw UsageError("object resides on a device outside the tier list");
}

void TieredLruPolicy::set_pressure_handler(PressureHandler handler) {
  pressure_ = std::move(handler);
}

// --- allocation --------------------------------------------------------------

dm::Region* TieredLruPolicy::allocate_on(std::size_t tier, std::size_t size) {
  const sim::DeviceId dev = config_.tiers[tier];
  if (size > dm_.capacity(dev)) return nullptr;
  if (dm::Region* r = dm_.allocate(dev, size, tenant_)) return r;

  if (tier + 1 == config_.tiers.size()) {
    // Bottom tier: nothing to displace into.  GC then compact.
    if (pressure_ && pressure_()) {
      if (dm::Region* r = dm_.allocate(dev, size, tenant_)) return r;
    }
    dm_.defragment(dev);
    return dm_.allocate(dev, size, tenant_);
  }

  // Reclaim a window by cascading the coldest residents down one tier.
  std::size_t start = 0;
  Node* victim = lists_[tier].find_from_back([](const Node& n) {
    return !n.in_flight && !n.object->pinned();
  });
  if (victim != nullptr) {
    if (dm::Region* vr = dm_.getprimary(*victim->object);
        vr != nullptr && vr->device() == dev) {
      start = vr->offset();
    }
  }
  if (!dm_.evictfrom(
          dev, start, size,
          [this, tier](dm::Region& r) { return try_displace(tier, r); },
          tenant_)) {
    return nullptr;
  }
  return dm_.allocate(dev, size, tenant_);
}

bool TieredLruPolicy::try_displace(std::size_t tier, dm::Region& region) {
  dm::Object* object = dm_.parent(region);
  if (object == nullptr) return false;
  if (object->pinned()) return false;
  if (object->size() < config_.min_migratable) return false;
  Node& n = node(*object);
  if (n.in_flight) return false;
  CA_CHECK(n.tier == tier, "LRU bookkeeping out of sync with placement");
  if (!move_to_tier(*object, tier + 1)) return false;
  ++stats_.demotions;
  return true;
}

bool TieredLruPolicy::move_to_tier(dm::Object& object, std::size_t target) {
  CA_CHECK(target < config_.tiers.size(), "tier index out of range");
  dm::Region* x = dm_.getprimary(object);
  CA_CHECK(x != nullptr, "move of an object without storage");
  if (x->device() == config_.tiers[target]) return true;

  dm::Region* y = allocate_on(target, object.size());
  if (y == nullptr) return false;
  // Link before copying so copyto synchronizes both dirty bits (see the
  // same pattern in LruPolicy::prefetch).
  dm_.link(*x, *y);
  if (config_.async_movement) {
    // The copy rides a mover channel; free(x) below joins the real bytes
    // only, and y's ready_at carries the dependency to the next consumer.
    dm_.copyto_async(*y, *x);
  } else {
    dm_.copyto(*y, *x);
  }
  dm_.setprimary(object, *y);
  dm_.free(x);
  stats_.bytes_moved += object.size();
  file_on(node(object), target);
  return true;
}

// --- policy interface -------------------------------------------------------

dm::Region& TieredLruPolicy::place_new(dm::Object& object) {
  // Born as high as possible; displacement cascades make room at the top.
  for (std::size_t tier = 0; tier < config_.tiers.size(); ++tier) {
    if (dm::Region* r = allocate_on(tier, object.size())) {
      dm_.setprimary(object, *r);
      file_on(node(object), tier);
      return *r;
    }
  }
  throw OutOfMemoryError("all tiers exhausted");
}

void TieredLruPolicy::demote(dm::Object& object) {
  const std::size_t tier = tier_of(object);
  if (tier + 1 >= config_.tiers.size()) return;
  if (move_to_tier(object, tier + 1)) ++stats_.demotions;
}

bool TieredLruPolicy::promote(dm::Object& object) {
  Node& n = node(object);
  if (tier_of(object) == 0) {
    lists_[0].move_to_front(n);
    return true;
  }
  if (object.size() < config_.min_migratable) return false;
  if (!move_to_tier(object, 0)) return false;
  ++stats_.promotions;
  return true;
}

void TieredLruPolicy::will_use(dm::Object& object) { will_read(object); }

void TieredLruPolicy::will_read(dm::Object& object) {
  if (config_.promote_on_use) promote(object);
}

void TieredLruPolicy::will_write(dm::Object& object) {
  if (config_.promote_on_use) promote(object);
}

void TieredLruPolicy::archive(dm::Object& object) {
  Node& n = node(object);
  if (n.hook.linked()) lists_[n.tier].move_to_back(n);
}

bool TieredLruPolicy::retire(dm::Object& object) {
  if (config_.eager_retire) return true;
  archive(object);
  return false;
}

void TieredLruPolicy::on_destroy(dm::Object& object) {
  const auto it = nodes_.find(&object);
  if (it == nodes_.end()) return;
  unfile(it->second);
  nodes_.erase(it);
}

void TieredLruPolicy::begin_kernel(std::span<dm::Object* const> args) {
  for (dm::Object* obj : args) {
    if (obj != nullptr) node(*obj).in_flight = true;
  }
}

void TieredLruPolicy::end_kernel() {
  for (auto& [obj, n] : nodes_) n.in_flight = false;
}

}  // namespace ca::policy
