// AdaptivePolicy: self-tuning prefetch strategy (paper §VI: "we could
// augment the policy with real-time kernel performance information,
// allowing the policy to explore and adapt its strategy").
//
// The paper finds there is no one-size-fits-all prefetch answer --
// prefetching on will_read helps VGG but hurts DenseNet and ResNet.  This
// policy removes the need to know in advance: it wraps the reference
// LruPolicy and runs an epsilon-greedy bandit over the prefetch toggle.
// Kernel launches are grouped into fixed-size windows; each window runs
// with one arm (prefetch on or off) and is scored by the simulated time it
// consumed.  The faster arm is exploited; the other is still explored at a
// small rate so phase changes in the workload are noticed.
#pragma once

#include <array>
#include <cstdint>

#include "policy/lru_policy.hpp"
#include "util/rng.hpp"

namespace ca::policy {

struct AdaptivePolicyConfig {
  LruPolicyConfig base;  ///< underlying policy (prefetch field is managed)

  /// Kernel launches per measurement window.
  std::size_t window_kernels = 64;

  /// Exploration rate: probability of trying the non-best arm.
  double explore = 0.1;

  /// Exponential moving-average factor for per-arm cost estimates.
  double ema = 0.3;

  std::uint64_t seed = 2024;
};

class AdaptivePolicy final : public Policy {
 public:
  AdaptivePolicy(dm::DataManager& dm, AdaptivePolicyConfig config);

  dm::Region& place_new(dm::Object& object) override {
    return inner_.place_new(object);
  }
  void will_use(dm::Object& object) override { inner_.will_use(object); }
  void will_read(dm::Object& object) override { inner_.will_read(object); }
  void will_write(dm::Object& object) override { inner_.will_write(object); }
  void archive(dm::Object& object) override { inner_.archive(object); }
  bool retire(dm::Object& object) override { return inner_.retire(object); }
  void on_destroy(dm::Object& object) override { inner_.on_destroy(object); }

  void begin_kernel(std::span<dm::Object* const> args) override;
  void end_kernel() override { inner_.end_kernel(); }

  void set_pressure_handler(PressureHandler handler) override {
    inner_.set_pressure_handler(std::move(handler));
  }

  // --- introspection -----------------------------------------------------

  [[nodiscard]] bool prefetch_enabled() const noexcept {
    return inner_.config().prefetch;
  }
  [[nodiscard]] std::size_t windows_run() const noexcept { return windows_; }

  /// EMA of simulated seconds per window for each arm (0 = off, 1 = on);
  /// negative means "not yet sampled".
  [[nodiscard]] double arm_cost(bool prefetch_on) const noexcept {
    return cost_[prefetch_on ? 1 : 0];
  }

  /// Fraction of completed windows that ran with prefetching enabled.
  [[nodiscard]] double prefetch_fraction() const noexcept {
    return windows_ == 0 ? 0.0
                         : static_cast<double>(windows_on_) /
                               static_cast<double>(windows_);
  }

  [[nodiscard]] LruPolicy& inner() noexcept { return inner_; }

 private:
  void finish_window();

  dm::DataManager& dm_;
  AdaptivePolicyConfig config_;
  LruPolicy inner_;
  util::Xoshiro256 rng_;

  std::size_t kernels_in_window_ = 0;
  double window_start_ = 0.0;
  std::array<double, 2> cost_ = {-1.0, -1.0};  // [off, on]
  std::size_t windows_ = 0;
  std::size_t windows_on_ = 0;
};

}  // namespace ca::policy
