// The policy API (paper Table II and §III-D).
//
// The application (or the autodiff tape acting on its behalf) talks to the
// policy exclusively through semantic hints about *future* data use:
//
//   will_use / will_read / will_write   "I am about to access this object"
//   archive                             "I will not use this for a while"
//   retire                              "I will never use this again"
//
// How a policy reacts is entirely its own business; it manipulates object
// placement through the data-management API only.  The runtime additionally
// notifies the policy of object lifecycle events (placement of new objects,
// destruction) and brackets kernel execution so a policy never evicts an
// argument of the kernel it is currently staging.
#pragma once

#include <span>

#include "dm/data_manager.hpp"
#include "dm/object.hpp"

namespace ca::policy {

class Policy {
 public:
  virtual ~Policy() = default;

  /// The tenant this policy instance drives.  A policy belongs to exactly
  /// one client of the (possibly shared) DataManager: every allocate /
  /// evictfrom it issues is charged to -- and quota-checked against -- this
  /// id.  Set once by the runtime before the first placement; defaults to
  /// the single-client tenant 0.
  void set_tenant(dm::TenantId tenant) noexcept { tenant_ = tenant; }
  [[nodiscard]] dm::TenantId tenant() const noexcept { return tenant_; }

  /// A new object needs its first region.  Returns the region chosen as
  /// primary (already attached via setprimary).  Must succeed or throw
  /// OutOfMemoryError.
  virtual dm::Region& place_new(dm::Object& object) = 0;

  // Semantic hints (Table II).
  virtual void will_use(dm::Object& object) = 0;
  virtual void will_read(dm::Object& object) = 0;
  virtual void will_write(dm::Object& object) = 0;
  virtual void archive(dm::Object& object) = 0;

  /// Sparse-access extension (paper §VI, after Hildebrand et al.'s DLRM
  /// work): "I will read only about `bytes` of this object" -- e.g. a few
  /// rows of a huge embedding table.  Policies that ignore sparsity may
  /// treat it as a plain will_read; sparse-aware policies avoid migrating
  /// an object that is about to be touched only fractionally.
  virtual void will_read_partial(dm::Object& object, std::size_t bytes) {
    (void)bytes;
    will_read(object);
  }

  /// "Never used again."  Returns true if the policy released the object's
  /// storage immediately (the paper's memory optimization M); false if it
  /// merely deprioritized the object and the runtime's GC emulation must
  /// reclaim it later.
  virtual bool retire(dm::Object& object) = 0;

  /// The runtime is about to destroy the object (GC or handle drop); the
  /// policy must drop any bookkeeping referring to it.
  virtual void on_destroy(dm::Object& object) = 0;

  /// Kernel bracketing: objects in `args` are arguments of the kernel being
  /// staged and must not be displaced by evictions triggered while staging
  /// its other arguments.
  virtual void begin_kernel(std::span<dm::Object* const> args) = 0;
  virtual void end_kernel() = 0;

  /// A hook the runtime installs so the policy can request garbage
  /// collection when it detects memory pressure (paper §IV, "explicitly
  /// triggering collection when memory pressure is detected").  Returns
  /// true if any memory was reclaimed.
  using PressureHandler = std::function<bool()>;
  virtual void set_pressure_handler(PressureHandler handler) = 0;

 protected:
  dm::TenantId tenant_{};
};

}  // namespace ca::policy
