// The reference policy for DRAM/NVRAM CNN training (paper §III-D / §IV).
//
// Placement rules, keyed to the device characteristics of a Cascade Lake
// DRAM+NVRAM machine (NVRAM reads are acceptable, NVRAM writes are not):
//   * will_write  -> make sure the primary is in fast memory, forcibly
//                    evicting colder objects if needed (Listing 2);
//   * will_read   -> prefetch into fast memory only when the P toggle is
//                    on; otherwise serve reads from wherever the data is;
//   * archive     -> do not evict eagerly, just move the object to the
//                    front of the eviction queue;
//   * retire      -> with the M toggle, release storage immediately;
//                    without it, deprioritize and let the GC reclaim.
//
// Optimization toggles (paper §IV):
//   L  local allocation: new objects are placed directly in fast memory.
//      With L off the policy emulates a true cache: objects are born in
//      slow memory and *every* access (read or write) first faults them
//      into fast memory -- the compulsory miss of 2LM (mode CA:0).
//   M  eager retire, as above.
//   P  prefetch on will_read, as above.
//
// Eviction candidates are tracked on an LRU list of objects whose primary
// is in fast memory; `archive` moves an object to the cold end.  The policy
// maintains the paper's invariant: an object with a fast-memory region has
// that region as its primary.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "policy/policy.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/intrusive_list.hpp"

namespace ca::policy {

struct LruPolicyConfig {
  sim::DeviceId fast = sim::kFast;
  sim::DeviceId slow = sim::kSlow;
  bool local_alloc = true;   ///< L: allocate new objects directly in fast
  bool eager_retire = true;  ///< M: free storage on retire
  bool prefetch = false;     ///< P: move data to fast on will_read

  /// Objects smaller than this are pinned to fast memory and never
  /// migrated (when possible): below the migration granularity the fixed
  /// per-transfer overhead exceeds any bandwidth benefit, and the paper's
  /// object-level approach explicitly targets "relatively large (> 100s of
  /// KiB)" tensors (SIII-C).  Applies in every mode, including the
  /// true-cache emulation.  Set to 0 to disable.
  std::size_t min_migratable = 64 * util::KiB;

  /// Honor will_read_partial: an object about to be read only
  /// fractionally (< sparse_threshold of its size) is served in place
  /// instead of being migrated -- the flexibility the paper's SVI calls
  /// for on DLRM-style sparse workloads.  When false, partial reads are
  /// treated as full reads (the naive behaviour the extension fixes).
  bool sparse_aware = true;
  double sparse_threshold = 0.5;

  /// Use the asynchronous mover for prefetches (paper SV-c future work):
  /// the copy overlaps with execution and consumers stall only for the
  /// unfinished remainder at first use.
  bool async_prefetch = false;

  /// Write-behind eviction: the eviction writeback is scheduled on the
  /// mover's writeback channels instead of stalling the evictor.  The
  /// freed fast-memory window is reused immediately; the slow copy's
  /// ready_at carries the dependency for any later consumer.
  bool async_writeback = false;

  /// Issue asynchronous prefetches for up to this many objects *ahead* of
  /// the one being read, using the archive trace: the forward pass archives
  /// objects in use order, and the backward pass consumes them roughly in
  /// reverse, so the objects archived just before the current one are
  /// needed next.  0 disables look-ahead.
  std::size_t prefetch_distance = 0;

  /// Class-aware gradient-bucket lifetime (DESIGN.md §3.6): objects tagged
  /// ObjectClass::kGradient are born hot (fast-direct, even in modes where
  /// generic objects are born in slow memory) and demoted off the fast tier
  /// the moment they are archived -- a gradient bucket is dead the instant
  /// its reduced result is applied, which a recency list cannot know.
  bool gradient_aware = true;
};

class LruPolicy final : public Policy {
 public:
  struct OpStats {
    std::uint64_t evictions = 0;
    std::uint64_t eviction_bytes = 0;
    std::uint64_t elided_writebacks = 0;  ///< clean evicts: no copy needed
    std::uint64_t prefetches = 0;
    std::uint64_t prefetch_bytes = 0;
    std::uint64_t forced_reclaims = 0;  ///< evictfrom invocations
    std::uint64_t retires_honored = 0;
    std::uint64_t gc_pressure_calls = 0;
    std::uint64_t sparse_reads_in_place = 0;  ///< partial reads not migrated
    std::uint64_t async_writebacks = 0;       ///< write-behind evictions
    std::uint64_t prefetch_ahead = 0;         ///< look-ahead prefetches issued
    std::uint64_t prefetch_ahead_bytes = 0;
    std::uint64_t gradient_hot_allocs = 0;  ///< gradient buckets born fast
    std::uint64_t gradient_demotes = 0;  ///< archived gradients evicted eagerly
  };

  LruPolicy(dm::DataManager& dm, LruPolicyConfig config);

  dm::Region& place_new(dm::Object& object) override;
  void will_use(dm::Object& object) override;
  void will_read(dm::Object& object) override;
  void will_write(dm::Object& object) override;
  void will_read_partial(dm::Object& object, std::size_t bytes) override;
  void archive(dm::Object& object) override;
  bool retire(dm::Object& object) override;
  void on_destroy(dm::Object& object) override;
  void begin_kernel(std::span<dm::Object* const> args) override;
  void end_kernel() override;
  void set_pressure_handler(PressureHandler handler) override;

  [[nodiscard]] const OpStats& op_stats() const noexcept { return stats_; }
  [[nodiscard]] const LruPolicyConfig& config() const noexcept {
    return config_;
  }

  /// Toggle the prefetch response to will_read at runtime (used by
  /// AdaptivePolicy to explore strategies, paper §VI).
  void set_prefetch(bool enabled) noexcept { config_.prefetch = enabled; }

  /// Number of objects currently resident (primary) in fast memory.
  [[nodiscard]] std::size_t fast_resident_objects() const noexcept {
    return lru_.size();
  }

  /// Evict one object from fast to slow memory (paper Listing 1).  Public
  /// so tests and custom policies can drive it directly.
  void evict(dm::Object& object);

  /// Ensure the object's primary is in fast memory (paper Listing 2).
  /// Returns true on success; false when fast memory cannot hold it.
  bool prefetch(dm::Object& object, bool force);

 private:
  struct Node {
    dm::Object* object = nullptr;
    util::ListHook lru_hook;
    bool in_flight = false;  ///< argument of the kernel being staged
  };

  Node& node(dm::Object& object);
  void touch(Node& n);
  void remove_from_lru(Node& n);

  /// Prefetch with an explicit choice of mover (sync vs async); the public
  /// `prefetch` uses the configured default.
  bool prefetch_impl(dm::Object& object, bool force, bool async);

  /// Append to the archive trace; a re-archive of a recorded object marks
  /// the start of a new forward pass and resets the trace.
  void record_archive(dm::Object& object);

  /// Issue asynchronous look-ahead prefetches for the objects archived just
  /// before `object` (the ones the backward pass needs next).
  void prefetch_ahead(dm::Object& object);

  /// Allocate on fast, forcing room by eviction if needed.  Returns nullptr
  /// if the object simply cannot fit.
  dm::Region* allocate_fast_forced(std::size_t size);

  /// Allocate on slow; on failure asks the runtime to GC and retries, then
  /// throws OutOfMemoryError.
  dm::Region& allocate_slow_checked(std::size_t size);

  /// Eviction callback handed to DM.evictfrom.
  bool try_displace(dm::Region& region);

  dm::DataManager& dm_;
  LruPolicyConfig config_;
  PressureHandler pressure_;
  OpStats stats_;
  std::unordered_map<const dm::Object*, Node> nodes_;
  util::IntrusiveList<Node, &Node::lru_hook> lru_;
  std::vector<dm::Object*> archive_trace_;  ///< forward-pass archive order
  std::unordered_map<const dm::Object*, std::size_t> trace_pos_;
};

}  // namespace ca::policy
