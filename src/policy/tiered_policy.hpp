// TieredLruPolicy: the paper's policy generalized to N memory tiers
// (paper §III-C notes that regions support "construction of higher order
// constructs like two-level caches"; §VI extends CachedArrays to other
// heterogeneous platforms).
//
// Tiers are ordered fastest to slowest.  New objects are born in the top
// tier; under pressure the coldest objects cascade down one tier at a time
// (a waterfall of Listing-1 evictions); any use hint promotes an object
// straight back to the top.  Unlike the two-tier LruPolicy, this policy
// keeps exactly one region per object (no linked siblings), trading the
// elided-writeback optimization for simplicity across arbitrarily many
// tiers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "policy/policy.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/intrusive_list.hpp"

namespace ca::policy {

struct TieredLruPolicyConfig {
  /// Device ids ordered fastest -> slowest.  At least two tiers.
  std::vector<sim::DeviceId> tiers;

  bool eager_retire = true;

  /// Hints promote objects to the top tier.
  bool promote_on_use = true;

  /// Objects smaller than this stay wherever they were born.
  std::size_t min_migratable = 64 * util::KiB;

  /// Move objects between tiers on the asynchronous mover: demotions become
  /// write-behind (the vacated window is reused immediately) and promotions
  /// overlap with execution, with consumers stalling only for the unfinished
  /// remainder at first use.
  bool async_movement = false;
};

class TieredLruPolicy final : public Policy {
 public:
  struct OpStats {
    std::uint64_t demotions = 0;   ///< one-tier-down moves
    std::uint64_t promotions = 0;  ///< moves to the top tier
    std::uint64_t bytes_moved = 0;
  };

  TieredLruPolicy(dm::DataManager& dm, TieredLruPolicyConfig config);

  dm::Region& place_new(dm::Object& object) override;
  void will_use(dm::Object& object) override;
  void will_read(dm::Object& object) override;
  void will_write(dm::Object& object) override;
  void archive(dm::Object& object) override;
  bool retire(dm::Object& object) override;
  void on_destroy(dm::Object& object) override;
  void begin_kernel(std::span<dm::Object* const> args) override;
  void end_kernel() override;
  void set_pressure_handler(PressureHandler handler) override;

  [[nodiscard]] const OpStats& op_stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t tier_count() const noexcept {
    return config_.tiers.size();
  }

  /// Tier index (0 = fastest) where `object` currently resides.
  [[nodiscard]] std::size_t tier_of(const dm::Object& object) const;

  /// Number of objects tracked on tier `t`'s LRU.
  [[nodiscard]] std::size_t resident_objects(std::size_t tier) const {
    return lists_[tier].size();
  }

  /// Move an object down one tier (no-op on the bottom tier).
  void demote(dm::Object& object);

  /// Move an object to the top tier, forcing room by cascading demotions.
  bool promote(dm::Object& object);

 private:
  struct Node {
    dm::Object* object = nullptr;
    std::size_t tier = 0;
    util::ListHook hook;
    bool in_flight = false;
  };

  using Lru = util::IntrusiveList<Node, &Node::hook>;

  Node& node(dm::Object& object);
  void file_on(Node& n, std::size_t tier);
  void unfile(Node& n);

  /// Move the object's (sole) region from its tier to `target`; allocates
  /// on `target` with forced displacement.
  bool move_to_tier(dm::Object& object, std::size_t target);

  /// Allocate on tier `t`, displacing cold residents downward as needed.
  dm::Region* allocate_on(std::size_t tier, std::size_t size);

  bool try_displace(std::size_t tier, dm::Region& region);

  dm::DataManager& dm_;
  TieredLruPolicyConfig config_;
  PressureHandler pressure_;
  OpStats stats_;
  std::unordered_map<const dm::Object*, Node> nodes_;
  std::vector<Lru> lists_;
};

}  // namespace ca::policy
