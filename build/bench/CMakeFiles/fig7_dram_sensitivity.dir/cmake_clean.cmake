file(REMOVE_RECURSE
  "CMakeFiles/fig7_dram_sensitivity.dir/fig7_dram_sensitivity.cpp.o"
  "CMakeFiles/fig7_dram_sensitivity.dir/fig7_dram_sensitivity.cpp.o.d"
  "fig7_dram_sensitivity"
  "fig7_dram_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dram_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
