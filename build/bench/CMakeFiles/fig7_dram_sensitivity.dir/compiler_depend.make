# Empty compiler generated dependencies file for fig7_dram_sensitivity.
# This may be replaced when dependencies are built.
