file(REMOVE_RECURSE
  "CMakeFiles/fig2_large_runtime.dir/fig2_large_runtime.cpp.o"
  "CMakeFiles/fig2_large_runtime.dir/fig2_large_runtime.cpp.o.d"
  "fig2_large_runtime"
  "fig2_large_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_large_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
