# Empty dependencies file for fig2_large_runtime.
# This may be replaced when dependencies are built.
