file(REMOVE_RECURSE
  "CMakeFiles/fig3_heap_occupancy.dir/fig3_heap_occupancy.cpp.o"
  "CMakeFiles/fig3_heap_occupancy.dir/fig3_heap_occupancy.cpp.o.d"
  "fig3_heap_occupancy"
  "fig3_heap_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heap_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
