# Empty dependencies file for fig3_heap_occupancy.
# This may be replaced when dependencies are built.
