# Empty dependencies file for micro_policy.
# This may be replaced when dependencies are built.
