file(REMOVE_RECURSE
  "CMakeFiles/micro_policy.dir/micro_policy.cpp.o"
  "CMakeFiles/micro_policy.dir/micro_policy.cpp.o.d"
  "micro_policy"
  "micro_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
