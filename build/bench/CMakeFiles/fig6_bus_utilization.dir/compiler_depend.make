# Empty compiler generated dependencies file for fig6_bus_utilization.
# This may be replaced when dependencies are built.
