file(REMOVE_RECURSE
  "CMakeFiles/fig5_data_movement.dir/fig5_data_movement.cpp.o"
  "CMakeFiles/fig5_data_movement.dir/fig5_data_movement.cpp.o.d"
  "fig5_data_movement"
  "fig5_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
