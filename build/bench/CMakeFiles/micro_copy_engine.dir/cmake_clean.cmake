file(REMOVE_RECURSE
  "CMakeFiles/micro_copy_engine.dir/micro_copy_engine.cpp.o"
  "CMakeFiles/micro_copy_engine.dir/micro_copy_engine.cpp.o.d"
  "micro_copy_engine"
  "micro_copy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_copy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
