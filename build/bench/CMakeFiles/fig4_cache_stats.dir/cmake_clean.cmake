file(REMOVE_RECURSE
  "CMakeFiles/fig4_cache_stats.dir/fig4_cache_stats.cpp.o"
  "CMakeFiles/fig4_cache_stats.dir/fig4_cache_stats.cpp.o.d"
  "fig4_cache_stats"
  "fig4_cache_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cache_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
