# Empty dependencies file for fig4_cache_stats.
# This may be replaced when dependencies are built.
