file(REMOVE_RECURSE
  "CMakeFiles/micro_dm_ops.dir/micro_dm_ops.cpp.o"
  "CMakeFiles/micro_dm_ops.dir/micro_dm_ops.cpp.o.d"
  "micro_dm_ops"
  "micro_dm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
