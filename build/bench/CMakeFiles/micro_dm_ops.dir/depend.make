# Empty dependencies file for micro_dm_ops.
# This may be replaced when dependencies are built.
