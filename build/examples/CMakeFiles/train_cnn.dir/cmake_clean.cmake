file(REMOVE_RECURSE
  "CMakeFiles/train_cnn.dir/train_cnn.cpp.o"
  "CMakeFiles/train_cnn.dir/train_cnn.cpp.o.d"
  "train_cnn"
  "train_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
