file(REMOVE_RECURSE
  "CMakeFiles/dlrm_sparse.dir/dlrm_sparse.cpp.o"
  "CMakeFiles/dlrm_sparse.dir/dlrm_sparse.cpp.o.d"
  "dlrm_sparse"
  "dlrm_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
