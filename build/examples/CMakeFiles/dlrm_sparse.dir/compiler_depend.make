# Empty compiler generated dependencies file for dlrm_sparse.
# This may be replaced when dependencies are built.
