
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/three_tier.cpp" "examples/CMakeFiles/three_tier.dir/three_tier.cpp.o" "gcc" "examples/CMakeFiles/three_tier.dir/three_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/ca_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ca_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ca_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/twolm/CMakeFiles/ca_twolm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
