file(REMOVE_RECURSE
  "CMakeFiles/memory_inspector.dir/memory_inspector.cpp.o"
  "CMakeFiles/memory_inspector.dir/memory_inspector.cpp.o.d"
  "memory_inspector"
  "memory_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
