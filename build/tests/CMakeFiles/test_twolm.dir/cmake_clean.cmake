file(REMOVE_RECURSE
  "CMakeFiles/test_twolm.dir/twolm/associativity_test.cpp.o"
  "CMakeFiles/test_twolm.dir/twolm/associativity_test.cpp.o.d"
  "CMakeFiles/test_twolm.dir/twolm/direct_mapped_cache_test.cpp.o"
  "CMakeFiles/test_twolm.dir/twolm/direct_mapped_cache_test.cpp.o.d"
  "test_twolm"
  "test_twolm.pdb"
  "test_twolm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twolm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
