# Empty dependencies file for test_twolm.
# This may be replaced when dependencies are built.
