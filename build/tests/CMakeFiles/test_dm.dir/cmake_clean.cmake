file(REMOVE_RECURSE
  "CMakeFiles/test_dm.dir/dm/async_mover_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/async_mover_test.cpp.o.d"
  "CMakeFiles/test_dm.dir/dm/data_manager_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/data_manager_test.cpp.o.d"
  "CMakeFiles/test_dm.dir/dm/defragment_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/defragment_test.cpp.o.d"
  "CMakeFiles/test_dm.dir/dm/dm_property_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/dm_property_test.cpp.o.d"
  "CMakeFiles/test_dm.dir/dm/evictfrom_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/evictfrom_test.cpp.o.d"
  "CMakeFiles/test_dm.dir/dm/object_region_test.cpp.o"
  "CMakeFiles/test_dm.dir/dm/object_region_test.cpp.o.d"
  "test_dm"
  "test_dm.pdb"
  "test_dm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
