file(REMOVE_RECURSE
  "CMakeFiles/test_policy.dir/policy/adaptive_policy_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/adaptive_policy_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/conformance_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/conformance_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/listing_semantics_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/listing_semantics_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/lru_policy_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/lru_policy_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/small_object_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/small_object_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/static_policy_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/static_policy_test.cpp.o.d"
  "CMakeFiles/test_policy.dir/policy/tiered_policy_test.cpp.o"
  "CMakeFiles/test_policy.dir/policy/tiered_policy_test.cpp.o.d"
  "test_policy"
  "test_policy.pdb"
  "test_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
