
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policy/adaptive_policy_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/adaptive_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/adaptive_policy_test.cpp.o.d"
  "/root/repo/tests/policy/conformance_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/conformance_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/conformance_test.cpp.o.d"
  "/root/repo/tests/policy/listing_semantics_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/listing_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/listing_semantics_test.cpp.o.d"
  "/root/repo/tests/policy/lru_policy_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/lru_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/lru_policy_test.cpp.o.d"
  "/root/repo/tests/policy/small_object_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/small_object_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/small_object_test.cpp.o.d"
  "/root/repo/tests/policy/static_policy_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/static_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/static_policy_test.cpp.o.d"
  "/root/repo/tests/policy/tiered_policy_test.cpp" "tests/CMakeFiles/test_policy.dir/policy/tiered_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_policy.dir/policy/tiered_policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ca_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ca_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
