
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/async_movement_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/async_movement_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/async_movement_test.cpp.o.d"
  "/root/repo/tests/integration/cross_mode_consistency_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/cross_mode_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/cross_mode_consistency_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/training_modes_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/training_modes_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/training_modes_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ca_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ca_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/ca_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/twolm/CMakeFiles/ca_twolm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
