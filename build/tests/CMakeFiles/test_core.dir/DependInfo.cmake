
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cached_array_test.cpp" "tests/CMakeFiles/test_core.dir/core/cached_array_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cached_array_test.cpp.o.d"
  "/root/repo/tests/core/gc_emulation_test.cpp" "tests/CMakeFiles/test_core.dir/core/gc_emulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/gc_emulation_test.cpp.o.d"
  "/root/repo/tests/core/runtime_test.cpp" "tests/CMakeFiles/test_core.dir/core/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ca_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ca_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
