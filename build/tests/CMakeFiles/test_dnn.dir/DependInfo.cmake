
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dnn/conv_shape_sweep_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/conv_shape_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/conv_shape_sweep_test.cpp.o.d"
  "/root/repo/tests/dnn/engine_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/engine_test.cpp.o.d"
  "/root/repo/tests/dnn/grad_sharing_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/grad_sharing_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/grad_sharing_test.cpp.o.d"
  "/root/repo/tests/dnn/gradient_check_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/gradient_check_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/gradient_check_test.cpp.o.d"
  "/root/repo/tests/dnn/harness_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/harness_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/harness_test.cpp.o.d"
  "/root/repo/tests/dnn/models_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/models_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/models_test.cpp.o.d"
  "/root/repo/tests/dnn/ops_real_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/ops_real_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/ops_real_test.cpp.o.d"
  "/root/repo/tests/dnn/pool_dropout_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/pool_dropout_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/pool_dropout_test.cpp.o.d"
  "/root/repo/tests/dnn/sparse_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/sparse_test.cpp.o.d"
  "/root/repo/tests/dnn/tensor_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/tensor_test.cpp.o.d"
  "/root/repo/tests/dnn/trainer_test.cpp" "tests/CMakeFiles/test_dnn.dir/dnn/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ca_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ca_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ca_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/ca_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/twolm/CMakeFiles/ca_twolm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
