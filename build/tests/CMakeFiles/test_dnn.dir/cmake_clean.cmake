file(REMOVE_RECURSE
  "CMakeFiles/test_dnn.dir/dnn/conv_shape_sweep_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/conv_shape_sweep_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/engine_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/engine_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/grad_sharing_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/grad_sharing_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/gradient_check_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/gradient_check_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/harness_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/harness_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/models_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/models_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/ops_real_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/ops_real_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/pool_dropout_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/pool_dropout_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/sparse_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/sparse_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/tensor_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/tensor_test.cpp.o.d"
  "CMakeFiles/test_dnn.dir/dnn/trainer_test.cpp.o"
  "CMakeFiles/test_dnn.dir/dnn/trainer_test.cpp.o.d"
  "test_dnn"
  "test_dnn.pdb"
  "test_dnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
