file(REMOVE_RECURSE
  "libca_dm.a"
)
