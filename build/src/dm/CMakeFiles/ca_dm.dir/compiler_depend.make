# Empty compiler generated dependencies file for ca_dm.
# This may be replaced when dependencies are built.
