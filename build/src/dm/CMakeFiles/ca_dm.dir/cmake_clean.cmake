file(REMOVE_RECURSE
  "CMakeFiles/ca_dm.dir/data_manager.cpp.o"
  "CMakeFiles/ca_dm.dir/data_manager.cpp.o.d"
  "libca_dm.a"
  "libca_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
