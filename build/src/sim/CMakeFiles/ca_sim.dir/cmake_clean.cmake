file(REMOVE_RECURSE
  "CMakeFiles/ca_sim.dir/bandwidth.cpp.o"
  "CMakeFiles/ca_sim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/ca_sim.dir/platform.cpp.o"
  "CMakeFiles/ca_sim.dir/platform.cpp.o.d"
  "libca_sim.a"
  "libca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
