# Empty compiler generated dependencies file for ca_core.
# This may be replaced when dependencies are built.
