
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/arena.cpp" "src/mem/CMakeFiles/ca_mem.dir/arena.cpp.o" "gcc" "src/mem/CMakeFiles/ca_mem.dir/arena.cpp.o.d"
  "/root/repo/src/mem/copy_engine.cpp" "src/mem/CMakeFiles/ca_mem.dir/copy_engine.cpp.o" "gcc" "src/mem/CMakeFiles/ca_mem.dir/copy_engine.cpp.o.d"
  "/root/repo/src/mem/freelist_allocator.cpp" "src/mem/CMakeFiles/ca_mem.dir/freelist_allocator.cpp.o" "gcc" "src/mem/CMakeFiles/ca_mem.dir/freelist_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
