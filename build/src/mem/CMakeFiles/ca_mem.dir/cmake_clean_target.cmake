file(REMOVE_RECURSE
  "libca_mem.a"
)
