# Empty dependencies file for ca_mem.
# This may be replaced when dependencies are built.
