file(REMOVE_RECURSE
  "CMakeFiles/ca_mem.dir/arena.cpp.o"
  "CMakeFiles/ca_mem.dir/arena.cpp.o.d"
  "CMakeFiles/ca_mem.dir/copy_engine.cpp.o"
  "CMakeFiles/ca_mem.dir/copy_engine.cpp.o.d"
  "CMakeFiles/ca_mem.dir/freelist_allocator.cpp.o"
  "CMakeFiles/ca_mem.dir/freelist_allocator.cpp.o.d"
  "libca_mem.a"
  "libca_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
