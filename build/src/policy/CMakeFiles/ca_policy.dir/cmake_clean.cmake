file(REMOVE_RECURSE
  "CMakeFiles/ca_policy.dir/adaptive_policy.cpp.o"
  "CMakeFiles/ca_policy.dir/adaptive_policy.cpp.o.d"
  "CMakeFiles/ca_policy.dir/lru_policy.cpp.o"
  "CMakeFiles/ca_policy.dir/lru_policy.cpp.o.d"
  "CMakeFiles/ca_policy.dir/tiered_policy.cpp.o"
  "CMakeFiles/ca_policy.dir/tiered_policy.cpp.o.d"
  "libca_policy.a"
  "libca_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
