# Empty compiler generated dependencies file for ca_policy.
# This may be replaced when dependencies are built.
