file(REMOVE_RECURSE
  "libca_policy.a"
)
