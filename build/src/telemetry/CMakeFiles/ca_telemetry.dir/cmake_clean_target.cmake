file(REMOVE_RECURSE
  "libca_telemetry.a"
)
