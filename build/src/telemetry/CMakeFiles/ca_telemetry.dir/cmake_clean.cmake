file(REMOVE_RECURSE
  "CMakeFiles/ca_telemetry.dir/report.cpp.o"
  "CMakeFiles/ca_telemetry.dir/report.cpp.o.d"
  "CMakeFiles/ca_telemetry.dir/trace.cpp.o"
  "CMakeFiles/ca_telemetry.dir/trace.cpp.o.d"
  "libca_telemetry.a"
  "libca_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
