# Empty compiler generated dependencies file for ca_telemetry.
# This may be replaced when dependencies are built.
