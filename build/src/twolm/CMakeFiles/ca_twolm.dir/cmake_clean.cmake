file(REMOVE_RECURSE
  "CMakeFiles/ca_twolm.dir/direct_mapped_cache.cpp.o"
  "CMakeFiles/ca_twolm.dir/direct_mapped_cache.cpp.o.d"
  "libca_twolm.a"
  "libca_twolm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_twolm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
