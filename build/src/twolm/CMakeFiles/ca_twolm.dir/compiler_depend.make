# Empty compiler generated dependencies file for ca_twolm.
# This may be replaced when dependencies are built.
