file(REMOVE_RECURSE
  "libca_twolm.a"
)
