file(REMOVE_RECURSE
  "CMakeFiles/ca_util.dir/error.cpp.o"
  "CMakeFiles/ca_util.dir/error.cpp.o.d"
  "CMakeFiles/ca_util.dir/format.cpp.o"
  "CMakeFiles/ca_util.dir/format.cpp.o.d"
  "CMakeFiles/ca_util.dir/rng.cpp.o"
  "CMakeFiles/ca_util.dir/rng.cpp.o.d"
  "CMakeFiles/ca_util.dir/threadpool.cpp.o"
  "CMakeFiles/ca_util.dir/threadpool.cpp.o.d"
  "libca_util.a"
  "libca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
