file(REMOVE_RECURSE
  "CMakeFiles/ca_dnn.dir/engine.cpp.o"
  "CMakeFiles/ca_dnn.dir/engine.cpp.o.d"
  "CMakeFiles/ca_dnn.dir/harness.cpp.o"
  "CMakeFiles/ca_dnn.dir/harness.cpp.o.d"
  "CMakeFiles/ca_dnn.dir/models.cpp.o"
  "CMakeFiles/ca_dnn.dir/models.cpp.o.d"
  "CMakeFiles/ca_dnn.dir/ops_real.cpp.o"
  "CMakeFiles/ca_dnn.dir/ops_real.cpp.o.d"
  "CMakeFiles/ca_dnn.dir/trainer.cpp.o"
  "CMakeFiles/ca_dnn.dir/trainer.cpp.o.d"
  "libca_dnn.a"
  "libca_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
