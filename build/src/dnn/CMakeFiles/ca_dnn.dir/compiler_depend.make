# Empty compiler generated dependencies file for ca_dnn.
# This may be replaced when dependencies are built.
