file(REMOVE_RECURSE
  "libca_dnn.a"
)
