// Accessor-overhead microbenchmark for ca::ptrprov (paper §III-C calls the
// pin indirection "essentially zero overhead"; this bench holds the claim
// to account on both sides of the CA_PTRPROV_ENABLED switch):
//
//   BM_RawPointerLoad      baseline: dereference a cached raw pointer
//   BM_PinnedSpanData      span.data() on a held span (the hot-loop shape)
//   BM_SpanAcquireRelease  the full pin -> resolve -> unpin accessor cycle
//   BM_BracketedKernelLoop one span per "kernel", data() per element touch
//
// Each benchmark reports a `ptrprov_enabled` counter so the Debug/CA_RACE
// numbers (registry probe per data() call) and the release numbers can be
// compared run to run.
//
// `--assert-noop` is the release-build gate: when the analyzer is compiled
// out it measures the checked accessor against the raw-load baseline and
// fails unless they are indistinguishable (the hooks must inline to
// nothing).  In analyzer builds it is a no-op exit so the same ctest entry
// runs everywhere.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "gbench_report.hpp"
#include "ptrprov/ptrprov.hpp"
#include "util/align.hpp"

using namespace ca;

namespace {

struct Rig {
  Rig()
      : platform(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                    32 * util::MiB)),
        dm(platform, clock, counters) {
    obj = dm.create_object(64 * util::KiB, "bench");
    dm::Region* r = dm.allocate(sim::kFast, obj->size());
    dm.setprimary(*obj, *r);
  }

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
  dm::Object* obj = nullptr;
};

void BM_RawPointerLoad(benchmark::State& state) {
  Rig rig;
  dm::PinnedSpan span = rig.dm.access(*rig.obj);
  std::byte* p = span.data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(*p);
  }
  state.counters["ptrprov_enabled"] = ptrprov::kEnabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawPointerLoad);

void BM_PinnedSpanData(benchmark::State& state) {
  Rig rig;
  dm::PinnedSpan span = rig.dm.access(*rig.obj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*span.data());
  }
  state.counters["ptrprov_enabled"] = ptrprov::kEnabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PinnedSpanData);

void BM_SpanAcquireRelease(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    dm::PinnedSpan span = rig.dm.access(*rig.obj);
    benchmark::DoNotOptimize(span.data());
  }
  state.counters["ptrprov_enabled"] = ptrprov::kEnabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanAcquireRelease);

void BM_BracketedKernelLoop(benchmark::State& state) {
  // The shape kernels actually run: one accessor per kernel launch, one
  // checked data() per element stride.
  Rig rig;
  const std::size_t touches = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dm::PinnedSpan span = rig.dm.access(*rig.obj, /*write=*/true);
    for (std::size_t i = 0; i < touches; ++i) {
      benchmark::DoNotOptimize(span.data()[i * 64]);
    }
  }
  state.counters["ptrprov_enabled"] = ptrprov::kEnabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * touches);
}
BENCHMARK(BM_BracketedKernelLoop)->Arg(16)->Arg(256);

/// Release-build gate: with the analyzer compiled out, span.data() must
/// cost the same as a bare pointer load.  Min-of-reps makes the measure
/// robust to scheduling noise; the 4x bound is orders of magnitude below
/// what a registry probe (mutex + hash lookup) would cost, so a forgotten
/// `#if` in the stub path cannot pass.
int assert_noop() {
  if (ptrprov::kEnabled) {
    std::printf("micro_ptrprov --assert-noop: skipped (CA_PTRPROV_ENABLED "
                "build; the no-op contract applies to release builds)\n");
    return 0;
  }
  Rig rig;
  dm::PinnedSpan span = rig.dm.access(*rig.obj);
  std::byte* p = span.data();
  constexpr int kReps = 9;
  constexpr std::size_t kIters = 4'000'000;
  auto time_loop = [&](auto&& body) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kIters; ++i) body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  const double raw = time_loop([&] { benchmark::DoNotOptimize(*p); });
  const double checked =
      time_loop([&] { benchmark::DoNotOptimize(*span.data()); });
  std::printf("micro_ptrprov --assert-noop: raw=%.3fns/it checked=%.3fns/it "
              "ratio=%.2f\n", raw / kIters * 1e9, checked / kIters * 1e9,
              checked / raw);
  if (checked > raw * 4.0) {
    std::fprintf(stderr,
                 "micro_ptrprov --assert-noop: FAILED — disabled-analyzer "
                 "span.data() is %.1fx a raw load; the ptrprov stubs are "
                 "not compiling out\n", checked / raw);
    return 1;
  }
  std::printf("micro_ptrprov --assert-noop: ok (disabled accessor is a "
              "plain pointer load)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--assert-noop") return assert_noop();
  }
  return ca::bench::run_gbench_with_report(argc, argv, "ptrprov");
}
