// Fig. 4: DRAM-cache tag statistics (hit / clean-miss / dirty-miss rates)
// for one ResNet training iteration, 2LM:0 vs 2LM:M.
//
// Paper: the annotated run (2LM:M) has an 18% higher hit rate and a 50%
// lower dirty-miss rate -- semantic memory freeing improves even the
// hardware cache, because freed physical pages are reused while their
// blocks are still cached.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

int main() {
  print_header("Figure 4",
               "DRAM cache tag statistics for a single training iteration "
               "of ResNet 200.\nExpected: 2LM:M has a higher hit rate and a "
               "lower dirty-miss rate than 2LM:0.");

  twolm::CacheStats stats[2];
  const Mode modes[2] = {Mode::kTwoLmNone, Mode::kTwoLmM};
  for (int i = 0; i < 2; ++i) {
    RunConfig cfg;
    cfg.spec = ModelSpec::resnet200_large();
    cfg.mode = modes[i];
    const auto result = run_training(cfg);
    stats[i] = result.steady().cache;
  }

  std::vector<std::vector<std::string>> rows = {
      {"mode", "hit rate", "clean miss", "dirty miss", "block accesses"}};
  for (int i = 0; i < 2; ++i) {
    rows.push_back({to_string(modes[i]),
                    util::format_fixed(100.0 * stats[i].hit_rate(), 1) + "%",
                    util::format_fixed(100.0 * stats[i].clean_miss_rate(), 1) +
                        "%",
                    util::format_fixed(100.0 * stats[i].dirty_miss_rate(), 1) +
                        "%",
                    std::to_string(stats[i].accesses)});
  }
  std::fputs(util::render_table(rows).c_str(), stdout);

  std::printf(
      "\nhit-rate improvement (M vs 0): +%.1f%% relative (paper: +18%%)\n",
      100.0 * (stats[1].hit_rate() / stats[0].hit_rate() - 1.0));
  std::printf(
      "dirty-miss reduction (M vs 0): -%.1f%% relative (paper: -50%%)\n",
      100.0 * (1.0 - stats[1].dirty_miss_rate() / stats[0].dirty_miss_rate()));
  return 0;
}
