// Multi-tenant DataManager bench: K=4 trainer-shaped clients over ONE
// Platform and one shared manager (the tentpole of the multi-tenant
// refactor), against the big-lock serialized baseline it replaces.
//
// Two phases:
//
//  1. Aggregate throughput.  K=4 symmetric tenants each run S
//     movement-bound training steps (allocate a fast-tier activation,
//     fetch it from the tenant's slow-tier dataset, touch it, write it
//     back to the tenant's slow-tier scratch, recycle).  Configurations:
//       big-lock      one bench-local std::mutex around EVERY manager
//                     entry point and synchronous copies -- the
//                     pre-refactor serial manager retrofitted for
//                     sharing: every tenant's interaction, including its
//                     data movement, serializes onto one timeline.
//       fine-grained  the real manager: per-domain locks, async movement
//                     on the shared mover channels, per-tenant stall
//                     accounting, lock-free telemetry polling.
//     Aggregate throughput is steps per SIMULATED second (the repo's
//     measurement currency -- see sim/clock.hpp: host-independent, which
//     matters because this container may have a single core and real
//     wall-clock parallel speedup is bounded by the host).  Host wall
//     seconds are recorded alongside for transparency.  The acceptance
//     record is the fine-grained/big-lock ratio (target >= 2x).
//
//  2. Eviction storm, QoS off vs on (fine-grained manager).  Three
//     victim tenants run the standard step while an aggressor tenant
//     churns large fast-tier allocations.  With the per-tenant DRAM
//     quota unset the aggressor's storm exhausts the fast tier and the
//     victims pay retry/reclaim work on every allocation; with the
//     quota set (the fairness/QoS knob) the storm is denied at the cap
//     and the victims' latency stays flat.  Per-tenant p50/p99 step
//     latency is reported in SIMULATED seconds, computed from each
//     victim's own accounting (its stall_seconds delta plus its
//     displacement spills priced at the modeled sync-writeback cost) --
//     exact, per-tenant, and free of the 1-core host's scheduler noise;
//     wall p99 is recorded alongside.  The aggressor's quota denials go
//     into BENCH_multitenant.json too.
//
// `--smoke` shrinks step counts for the bench-smoke ctest label.
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "dm/data_manager.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "util/align.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

constexpr std::size_t kTenants = 4;
constexpr std::size_t kActBytes = 256 * util::KiB;
constexpr std::size_t kFastBytes = 8 * util::MiB;
constexpr std::size_t kSlowBytes = 64 * util::MiB;
constexpr std::size_t kAggressorBytes = 512 * util::KiB;
constexpr std::size_t kAggressorRing = 14;  ///< 7 MiB: leaves less than the
                                            ///< victims' steady working set
                                            ///< (3 tenants x 2 acts), so with
                                            ///< the quota unset every victim
                                            ///< step pays displacement
constexpr std::size_t kAggressorQuota = 2 * util::MiB;  ///< the QoS cap

/// The pre-refactor shape: one mutex around every manager entry point, so
/// K clients serialize on a single lock domain.  Only the calls the
/// trainer step uses are forwarded.
class BigLockDM {
 public:
  explicit BigLockDM(dm::DataManager& dm) : dm_(dm) {}

  dm::TenantId register_tenant(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    return dm_.register_tenant(std::move(name));
  }
  dm::Region* allocate(sim::DeviceId dev, std::size_t size, dm::TenantId t) {
    std::lock_guard<std::mutex> lock(mu_);
    return dm_.allocate(dev, size, t);
  }
  void free(dm::Region* region) {
    std::lock_guard<std::mutex> lock(mu_);
    dm_.free(region);
  }
  void copyto(dm::Region& dst, dm::Region& src) {
    std::lock_guard<std::mutex> lock(mu_);
    dm_.copyto(dst, src);
  }
  void copyto_async(dm::Region& dst, dm::Region& src) {
    std::lock_guard<std::mutex> lock(mu_);
    (void)dm_.copyto_async(dst, src);
  }
  void wait_ready(dm::Region& region) {
    std::lock_guard<std::mutex> lock(mu_);
    dm_.wait_ready(region);
  }
  void retire_transfers() {
    std::lock_guard<std::mutex> lock(mu_);
    dm_.retire_transfers();
  }
  dm::DataManager::AsyncStats async_stats() {
    std::lock_guard<std::mutex> lock(mu_);
    return dm_.async_stats();
  }
  dm::TenantStats tenant_stats(dm::TenantId t) {
    std::lock_guard<std::mutex> lock(mu_);
    return dm_.tenant_stats(t);
  }

 private:
  std::mutex mu_;
  dm::DataManager& dm_;
};

/// Everything one manager needs to exist.
struct Rig {
  explicit Rig(const sim::Platform& platform)
      : dm(platform, clock, counters) {}
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
};

sim::Platform bench_platform() {
  return sim::Platform::cascade_lake_scaled(kFastBytes, kSlowBytes);
}

/// Touch a stripe of the activation -- the (real) compute the trainer
/// does between fetch and writeback.  Kept small: the phase-1 contrast is
/// about the manager, not the kernels.
void touch(dm::Region& region) {
  std::byte* p = region.data();
  for (std::size_t off = 0; off < region.size(); off += 4096) {
    p[off] = static_cast<std::byte>(static_cast<unsigned char>(p[off]) + 1);
  }
}

/// Per-tenant persistent slow-tier regions (fetch source / writeback
/// destination), alive for the whole phase.
template <class Manager>
struct TenantSlots {
  dm::TenantId id;
  dm::Region* dataset = nullptr;
  dm::Region* scratch = nullptr;

  void open(Manager& m, const std::string& name) {
    id = m.register_tenant(name);
    dataset = m.allocate(sim::kSlow, kActBytes, id);
    scratch = m.allocate(sim::kSlow, kActBytes, id);
    CA_CHECK(dataset != nullptr && scratch != nullptr,
             "slow tier undersized for the bench datasets");
  }
  void close(Manager& m) {
    m.free(scratch);
    m.free(dataset);
  }
};

/// One movement-bound training step.  `async` selects the mover path
/// (fine-grained config) vs synchronous copies (serial baseline).  The
/// fast-tier activation ring has depth 2 so the writeback of step n is
/// joined lazily when step n+1 recycles the region.
template <class Manager>
struct Trainer {
  Manager& m;
  TenantSlots<Manager>& slots;
  bool async;
  double spill_cost;  ///< modeled seconds one displacement spill charges
  std::vector<dm::Region*> ring;
  std::size_t steps_done = 0;
  std::size_t spills = 0;
  double last_step_sim = 0.0;  ///< simulated seconds the last step cost
                               ///< THIS tenant (own stalls + own spills)

  /// Allocate the step's activation.  Under storm pressure the fast tier
  /// may be full, in which case the tenant pays the displacement cost the
  /// QoS knob exists to bound: spill its own oldest activation back to
  /// the slow tier (a synchronous writeback it would not otherwise do),
  /// reclaim it, and retry.
  dm::Region* allocate_act() {
    for (;;) {
      if (dm::Region* act = m.allocate(sim::kFast, kActBytes, slots.id)) {
        return act;
      }
      if (!ring.empty()) {
        ++spills;
        m.copyto(*slots.scratch, *ring.front());
        m.free(ring.front());
        ring.erase(ring.begin());
      } else {
        std::this_thread::yield();  // aggressor churn will open a window
      }
    }
  }

  void step() {
    const double stall0 = m.tenant_stats(slots.id).stall_seconds;
    const std::size_t spills0 = spills;
    dm::Region* act = allocate_act();
    if (async) {
      m.copyto_async(*act, *slots.dataset);  // fetch
      m.wait_ready(*act);                    // stall charged to this tenant
    } else {
      m.copyto(*act, *slots.dataset);
    }
    touch(*act);
    if (async) {
      m.copyto_async(*slots.scratch, *act);  // writeback rides a channel
    } else {
      m.copyto(*slots.scratch, *act);
    }
    ring.push_back(act);
    if (ring.size() > 2) {
      m.free(ring.front());  // joins the step n-1 writeback's real bytes
      ring.erase(ring.begin());
    }
    last_step_sim = (m.tenant_stats(slots.id).stall_seconds - stall0) +
                    static_cast<double>(spills - spills0) * spill_cost;
    ++steps_done;
    if (steps_done % 8 == 0) {
      // Telemetry polling -- lock-free on the fine-grained manager, one
      // more big-lock acquisition on the baseline.
      (void)m.async_stats();
      (void)m.tenant_stats(slots.id);
    }
  }

  void drain() {
    for (dm::Region* act : ring) m.free(act);
    ring.clear();
  }
};

struct PhaseResult {
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::vector<std::vector<double>> step_wall;  ///< per tenant, per step
  std::vector<dm::TenantStats> stats;          ///< per tenant, at the end
  std::size_t total_steps = 0;
};

/// Phase 1 body: K symmetric tenants, S steps each, over `manager`.
template <class Manager>
PhaseResult run_throughput(Rig& rig, Manager& manager, bool async,
                           std::size_t steps) {
  std::vector<TenantSlots<Manager>> slots(kTenants);
  for (std::size_t i = 0; i < kTenants; ++i) {
    slots[i].open(manager, "trainer-" + std::to_string(i));
  }
  PhaseResult result;
  result.step_wall.resize(kTenants);
  const double sim0 = rig.clock.now();
  WallTimer wall;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i) {
    threads.emplace_back([&, i] {
      Trainer<Manager> trainer{manager, slots[i], async, 0.0, {}, 0, 0, 0.0};
      auto& lat = result.step_wall[i];
      lat.reserve(steps);
      for (std::size_t s = 0; s < steps; ++s) {
        WallTimer t;
        trainer.step();
        lat.push_back(t.seconds());
      }
      trainer.drain();
    });
  }
  for (auto& t : threads) t.join();
  rig.dm.drain_transfers();
  result.wall_seconds = wall.seconds();
  result.sim_seconds = rig.clock.now() - sim0;
  result.total_steps = kTenants * steps;
  for (std::size_t i = 0; i < kTenants; ++i) {
    result.stats.push_back(rig.dm.tenant_stats(slots[i].id));
    slots[i].close(manager);
  }
  return result;
}

/// Phase 2 body: 3 victims run the standard async step while the
/// aggressor churns `kAggressorBytes` fast-tier allocations.  With
/// `qos` the aggressor's fast-tier residency is capped at
/// kAggressorQuota, so the storm is denied instead of displacing the
/// victims' working set.
struct StormResult {
  std::vector<std::vector<double>> victim_wall;  ///< per victim, per step
  std::vector<std::vector<double>> victim_sim;   ///< per victim, per step
  std::vector<std::size_t> victim_spills;
  std::uint64_t aggressor_denials = 0;
  std::uint64_t aggressor_allocs = 0;
};

StormResult run_storm(bool qos, std::size_t steps) {
  const sim::Platform platform = bench_platform();
  Rig rig(platform);
  dm::DataManager& dm = rig.dm;

  constexpr std::size_t kVictims = kTenants - 1;
  std::vector<TenantSlots<dm::DataManager>> slots(kVictims);
  for (std::size_t i = 0; i < kVictims; ++i) {
    slots[i].open(dm, "victim-" + std::to_string(i));
  }
  const dm::TenantId aggressor = dm.register_tenant("aggressor");
  if (qos) dm.set_tenant_quota(aggressor, sim::kFast, kAggressorQuota);

  StormResult result;
  result.victim_wall.resize(kVictims);
  result.victim_sim.resize(kVictims);
  result.victim_spills.resize(kVictims);

  // Price one displacement spill while still single-threaded: the modeled
  // cost of the synchronous fast->slow writeback the spill path issues.
  double spill_cost = 0.0;
  {
    dm::Region* probe = dm.allocate(sim::kFast, kActBytes, slots[0].id);
    CA_CHECK(probe != nullptr, "empty fast tier rejected the probe");
    const double sim0 = rig.clock.now();
    dm.copyto(*slots[0].scratch, *probe);
    spill_cost = rig.clock.now() - sim0;
    dm.free(probe);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> storm_ready{false};

  std::thread storm([&] {
    std::vector<dm::Region*> held;
    // Pre-fill: claim the full ring -- or run into the quota/heap bound --
    // before the victims take their first step, so the storm's footprint
    // is in place for their whole run.
    while (held.size() < kAggressorRing) {
      dm::Region* r = dm.allocate(sim::kFast, kAggressorBytes, aggressor);
      if (r == nullptr) break;
      held.push_back(r);
    }
    storm_ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed)) {
      if (held.size() < kAggressorRing) {
        // Below footprint (quota denials, or a victim claimed a hole):
        // keep hammering -- this is the storm.
        if (dm::Region* r =
                dm.allocate(sim::kFast, kAggressorBytes, aggressor)) {
          held.push_back(r);
        }
      } else {
        // At footprint: churn the oldest block.  Free-then-reallocate in
        // the same quantum (no yield between) so the storm's residency
        // holds steady instead of draining into the victims' partition.
        dm.free(held.front());
        held.erase(held.begin());
        if (dm::Region* r =
                dm.allocate(sim::kFast, kAggressorBytes, aggressor)) {
          held.push_back(r);
        }
      }
      std::this_thread::yield();
    }
    for (dm::Region* r : held) dm.free(r);
    const auto stats = dm.tenant_stats(aggressor);
    result.aggressor_denials = stats.quota_denials;
    result.aggressor_allocs = stats.allocations;
  });

  while (!storm_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::vector<std::thread> victims;
  for (std::size_t i = 0; i < kVictims; ++i) {
    victims.emplace_back([&, i] {
      Trainer<dm::DataManager> trainer{dm,         slots[i], /*async=*/true,
                                       spill_cost, {},       0,
                                       0,          0.0};
      auto& wall_lat = result.victim_wall[i];
      auto& sim_lat = result.victim_sim[i];
      wall_lat.reserve(steps);
      sim_lat.reserve(steps);
      for (std::size_t s = 0; s < steps; ++s) {
        WallTimer t;
        trainer.step();
        wall_lat.push_back(t.seconds());
        sim_lat.push_back(trainer.last_step_sim);
      }
      trainer.drain();
      result.victim_spills[i] = trainer.spills;
    });
  }
  for (auto& t : victims) t.join();
  stop.store(true, std::memory_order_relaxed);
  storm.join();
  dm.drain_transfers();
  for (auto& s : slots) s.close(dm);
  return result;
}

std::uint64_t phase_bytes(std::size_t total_steps) {
  return static_cast<std::uint64_t>(total_steps) * 2 * kActBytes;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::size_t steps = smoke ? 48 : 1024;
  const std::size_t storm_steps = smoke ? 32 : 512;

  const sim::Platform platform = bench_platform();
  std::printf("=== micro_multitenant ===\n");
  std::printf(
      "K=%zu trainers over one shared DataManager (fast %s, slow %s),\n"
      "%zu movement-bound steps each (%s per step fetch+writeback).\n"
      "Throughput is steps per simulated second (host-independent; wall\n"
      "seconds reported alongside).%s\n\n",
      kTenants, util::format_bytes(kFastBytes).c_str(),
      util::format_bytes(kSlowBytes).c_str(), steps,
      util::format_bytes(2 * kActBytes).c_str(),
      smoke ? "  [smoke counts]" : "");

  BenchReport report("multitenant");
  report.csv_header({"config", "sim_s", "wall_s", "steps_per_sim_s",
                     "steps_per_wall_s", "p99_step_us"});

  // --- Phase 1: aggregate throughput, big-lock vs fine-grained -------------
  const auto run_config = [&](const char* label, bool fine) {
    Rig rig(platform);
    PhaseResult r;
    if (fine) {
      r = run_throughput(rig, rig.dm, /*async=*/true, steps);
    } else {
      BigLockDM big(rig.dm);
      r = run_throughput(rig, big, /*async=*/false, steps);
    }
    std::vector<double> all_steps;
    for (auto& lat : r.step_wall) {
      all_steps.insert(all_steps.end(), lat.begin(), lat.end());
    }
    const double p99 = percentile(all_steps, 0.99);
    const double thr_sim = r.sim_seconds > 0.0
                               ? static_cast<double>(r.total_steps) / r.sim_seconds
                               : 0.0;
    const double thr_wall =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.total_steps) / r.wall_seconds
            : 0.0;
    std::printf("%-24s sim %8.4fs  wall %7.3fs  %9.1f steps/sim-s  "
                "%8.1f steps/wall-s  p99 %7.1fus\n",
                label, r.sim_seconds, r.wall_seconds, thr_sim, thr_wall,
                p99 * 1e6);
    report.add(std::string("K=4 ") + label, r.sim_seconds, r.wall_seconds,
               phase_bytes(r.total_steps));
    report.add_metric(std::string("steps/sim-s: K=4 ") + label, thr_sim);
    report.add_metric(std::string("steps/wall-s: K=4 ") + label, thr_wall);
    report.add_metric(std::string("p99 step s: K=4 ") + label, p99);
    report.csv_row({label, util::format_fixed(r.sim_seconds, 4),
                    util::format_fixed(r.wall_seconds, 3),
                    util::format_fixed(thr_sim, 1),
                    util::format_fixed(thr_wall, 1),
                    util::format_fixed(p99 * 1e6, 1)});
    for (std::size_t i = 0; i < r.stats.size(); ++i) {
      report.add_metric("stall s: " + std::string(label) + ", trainer-" +
                            std::to_string(i),
                        r.stats[i].stall_seconds);
    }
    return thr_sim;
  };

  const double thr_big = run_config("big-lock serialized", false);
  const double thr_fine = run_config("fine-grained", true);
  const double speedup = thr_big > 0.0 ? thr_fine / thr_big : 0.0;
  std::printf("\naggregate throughput, fine-grained vs big-lock: %.2fx\n\n",
              speedup);
  report.add_speedup(
      "K=4 aggregate trainer throughput, fine-grained vs big-lock serialized",
      speedup);

  // --- Phase 2: eviction storm, QoS off vs on ------------------------------
  std::printf("eviction storm: %zu victim steps, aggressor ring %s%s\n",
              storm_steps,
              util::format_bytes(kAggressorRing * kAggressorBytes).c_str(),
              smoke ? "  [smoke counts]" : "");
  double p99_off_worst = 0.0, p99_on_worst = 0.0;
  for (const bool qos : {false, true}) {
    const StormResult storm = run_storm(qos, storm_steps);
    const char* mode = qos ? "on" : "off";
    for (std::size_t i = 0; i < storm.victim_sim.size(); ++i) {
      std::vector<double> sim_lat = storm.victim_sim[i];
      std::vector<double> wall_lat = storm.victim_wall[i];
      const double p50 = percentile(sim_lat, 0.5);
      const double p99 = percentile(sim_lat, 0.99);
      const double wall_p99 = percentile(wall_lat, 0.99);
      (qos ? p99_on_worst : p99_off_worst) =
          std::max(qos ? p99_on_worst : p99_off_worst, p99);
      std::printf("  qos=%-3s victim-%zu  p50 %8.4fs  p99 %8.4fs (sim)  "
                  "p99 %7.1fus (wall)  %zu spills\n",
                  mode, i, p50, p99, wall_p99 * 1e6,
                  storm.victim_spills[i]);
      const std::string tag =
          std::string("storm qos=") + mode + ", victim-" + std::to_string(i);
      report.add_metric("p50 step s: " + tag, p50);
      report.add_metric("p99 step s: " + tag, p99);
      report.add_metric("p99 step wall s: " + tag, wall_p99);
      report.add_metric("displacement spills: " + tag,
                        static_cast<double>(storm.victim_spills[i]));
    }
    std::printf("  qos=%-3s aggressor: %llu allocations, %llu quota denials\n",
                mode,
                static_cast<unsigned long long>(storm.aggressor_allocs),
                static_cast<unsigned long long>(storm.aggressor_denials));
    report.add_metric(std::string("quota denials: storm qos=") + mode +
                          ", aggressor",
                      static_cast<double>(storm.aggressor_denials));
  }
  const double qos_gain =
      p99_on_worst > 0.0 ? p99_off_worst / p99_on_worst : 0.0;
  std::printf("\nworst victim p99, qos off vs on: %.2fx\n", qos_gain);
  report.add_metric("qos p99 improvement: worst victim, storm off vs on",
                    qos_gain);

  report.write(argc, argv, "micro_multitenant.csv");

  if (!smoke && speedup < 2.0) {
    std::printf(
        "\nWARNING: fine-grained aggregate throughput %.2fx is below the "
        "2x acceptance target\n",
        speedup);
  }
  return 0;
}
