// Adapter between google-benchmark and the shared BenchReport emitter:
// mirrors every finished run into BENCH_<name>.json so the micro benches
// (micro_dm_ops, micro_async_mover, micro_policy, micro_ptrprov) produce
// the same machine-readable shape as the figure and subsystem benches.
//
// Usage, replacing BENCHMARK_MAIN():
//
//   int main(int argc, char** argv) {
//     return ca::bench::run_gbench_with_report(argc, argv, "dm_ops");
//   }
//
// The console table is unchanged (the adapter subclasses ConsoleReporter);
// the JSON lands in the directory given as the first non-flag argument, or
// the current directory -- the write_bench_json convention every bench
// already follows.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"

namespace ca::bench {

/// ConsoleReporter that also records each per-iteration run as one
/// BenchRecord: label is the full benchmark name (with args), wall_seconds
/// is the real time per iteration, bytes_moved is reconstructed from the
/// finalized bytes_per_second rate.  Remaining user counters become
/// add_metric rows ("<name> [<counter>]") so nothing the bench reports on
/// the console is missing from the JSON.
class GBenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonReporter(std::string name) : report_(std::move(name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double per_iter_s = run.real_accumulated_time / iters;
      const std::string label = run.benchmark_name();
      std::uint64_t bytes = 0;
      const auto bps = run.counters.find("bytes_per_second");
      if (bps != run.counters.end() && per_iter_s > 0.0) {
        bytes = static_cast<std::uint64_t>(
            static_cast<double>(bps->second) * per_iter_s + 0.5);
      }
      report_.add(label, /*simulated_seconds=*/0.0, per_iter_s, bytes);
      for (const auto& [cname, counter] : run.counters) {
        if (cname == "bytes_per_second" || cname == "items_per_second") {
          continue;  // already carried by the record / derivable from it
        }
        report_.add_metric(label + " [" + cname + "]",
                           static_cast<double>(counter));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const BenchReport& report() const { return report_; }

 private:
  BenchReport report_;
};

/// The shared main body: initialize (google-benchmark strips its own
/// --benchmark_* flags, the output directory stays behind for
/// write_bench_json), run everything through the recording reporter, emit
/// BENCH_<name>.json.
inline int run_gbench_with_report(int argc, char** argv, const char* name) {
  benchmark::Initialize(&argc, argv);
  GBenchJsonReporter reporter(name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  reporter.report().write(argc, argv);
  return 0;
}

}  // namespace ca::bench
