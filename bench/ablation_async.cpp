// Ablation: asynchronous data movement (paper §V-c future work).
//
// Fig. 7 projects what CachedArrays would gain "if [it] had perfectly
// asynchronous data movement (as opposed to purely synchronous) and could
// overlap movement with execution".  This repository implements that
// mover; here we run the small networks across DRAM budgets in three
// configurations and compare:
//   sync     CA:LMP with synchronous prefetch copies (the paper's system)
//   async    CA:LMP with the background mover (this repo's extension)
//   project  the Fig. 7 lower bound: sync wall clock minus all
//            synchronous movement time
// Expectation: async lands between sync and the projection.  Only
// prefetch copies ride the background mover (evictions remain synchronous
// to keep heap reuse simple), so a partial recovery is the honest result;
// the projection assumes *all* movement overlaps.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

IterationMetrics run(const ModelSpec& spec, std::size_t dram_mib,
                     bool async) {
  dnn::HarnessConfig hc;
  hc.mode = Mode::kCaLMP;  // prefetch-heavy: the overlappable mode
  hc.dram_bytes = dram_mib * util::MiB;
  hc.nvram_bytes = 1300 * util::MiB;
  hc.backend = dnn::Backend::kSim;
  hc.compute_efficiency = spec.compute_efficiency;
  hc.conv_read_passes = spec.conv_read_passes;
  hc.async_movement = async;
  dnn::Harness h(hc);
  auto model = dnn::build_model(h.engine(), spec);
  dnn::Trainer t(h, *model);
  IterationMetrics m;
  for (int i = 0; i < 2; ++i) m = t.run_iteration();
  return m;
}

}  // namespace

int main() {
  print_header("Ablation: asynchronous data movement",
               "CA:LMP with the background mover vs synchronous copies vs "
               "the Fig. 7 projection.");

  for (const auto& spec : {ModelSpec::densenet264_small(),
                           ModelSpec::vgg116_small()}) {
    std::printf("--- %s (small) ---\n", spec.name.c_str());
    std::vector<std::vector<std::string>> rows = {
        {"DRAM (MiB)", "sync", "async", "projection", "overlap recovered"}};
    for (const std::size_t dram : {36u, 72u, 144u}) {
      const auto sync = run(spec, dram, false);
      const auto async = run(spec, dram, true);
      const double projection = sync.seconds - sync.movement_seconds;
      const double denom = sync.seconds - projection;
      const double recovered =
          denom > 0.0 ? (sync.seconds - async.seconds) / denom : 0.0;
      rows.push_back({std::to_string(dram),
                      util::format_fixed(sync.seconds, 1) + "s",
                      util::format_fixed(async.seconds, 1) + "s",
                      util::format_fixed(projection, 1) + "s",
                      util::format_fixed(100.0 * recovered, 0) + "%"});
    }
    std::fputs(util::render_table(rows).c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
