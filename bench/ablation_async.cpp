// Ablation: asynchronous data movement (paper §V-c future work).
//
// Fig. 7 projects what CachedArrays would gain "if [it] had perfectly
// asynchronous data movement (as opposed to purely synchronous) and could
// overlap movement with execution".  This repository implements that
// mover; here we contrast four configurations:
//   sync        CA:LMP, every copy synchronous (the paper's system)
//   serialized  async movement on ONE mover channel (prefetch, write-behind
//               eviction and look-ahead all enabled, but every transfer
//               queues behind every other -- the pre-channel baseline)
//   multi       async movement on the default 4 channels, split between
//               the fetch and writeback directions, plus look-ahead
//               prefetch along the archive trace
//   project     the Fig. 7 lower bound: sync time minus all synchronous
//               movement time (perfect overlap of everything)
// Expectation: multi < serialized < sync, with multi approaching (never
// beating) the projection.  Both simulated and host wall-clock seconds are
// reported: the mover moves real bytes on background threads, so scheduling
// cost on the caller thread is size-independent.
//
// Runs the paper's large-model shape plus a small-model DRAM sweep.
// `--smoke` switches to tiny shapes / one iteration for the bench-smoke
// ctest label.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

struct Outcome {
  IterationMetrics steady;
  double wall_seconds = 0.0;
};

Outcome run(const ModelSpec& spec, std::size_t dram_mib, std::size_t nvram_mib,
            bool async, std::size_t channels, int iterations) {
  dnn::HarnessConfig hc;
  hc.mode = Mode::kCaLMP;  // prefetch-heavy: the overlappable mode
  hc.dram_bytes = dram_mib * util::MiB;
  hc.nvram_bytes = nvram_mib * util::MiB;
  hc.backend = dnn::Backend::kSim;
  hc.compute_efficiency = spec.compute_efficiency;
  hc.conv_read_passes = spec.conv_read_passes;
  hc.async_movement = async;
  hc.mover_channels = channels;
  hc.prefetch_distance = async ? 2 : 0;
  WallTimer wall;
  dnn::Harness h(hc);
  auto model = dnn::build_model(h.engine(), spec);
  dnn::Trainer t(h, *model);
  Outcome out;
  for (int i = 0; i < iterations; ++i) out.steady = t.run_iteration();
  out.wall_seconds = wall.seconds();
  return out;
}

std::uint64_t moved_bytes(const IterationMetrics& m) {
  return m.dram.total() + m.nvram.total();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  print_header("Ablation: asynchronous data movement",
               "Serialized (1-channel) vs multi-channel background mover vs "
               "synchronous copies vs the Fig. 7 projection.");

  BenchReport report("ablation_async");
  bool ordering_holds = true;

  // --- Large-model shape (the paper's headline configuration) --------------
  {
    const ModelSpec spec =
        smoke ? ModelSpec::vgg_tiny() : ModelSpec::vgg416_large();
    const std::size_t dram = smoke ? 8 : 180;
    const std::size_t nvram = smoke ? 96 : 1300;
    const int iters = smoke ? 1 : 2;
    std::printf("--- %s (large-model shape%s) ---\n", spec.name.c_str(),
                smoke ? ", smoke" : "");

    const Outcome sync = run(spec, dram, nvram, false, 4, iters);
    const Outcome serial = run(spec, dram, nvram, true, 1, iters);
    const Outcome multi = run(spec, dram, nvram, true, 4, iters);
    const double projection =
        sync.steady.seconds - sync.steady.movement_seconds;

    std::vector<std::vector<std::string>> rows = {
        {"config", "simulated", "wall", "async stall", "overlap hidden"}};
    const auto row = [&](const char* label, const Outcome& o) {
      rows.push_back({label, util::format_fixed(o.steady.seconds, 1) + "s",
                      util::format_fixed(o.wall_seconds, 2) + "s",
                      util::format_fixed(o.steady.async_stall_seconds, 1) +
                          "s",
                      util::format_fixed(o.steady.async_overlap_seconds, 1) +
                          "s"});
      report.add(std::string(spec.name) + "/" + label, o.steady.seconds,
                 o.wall_seconds, moved_bytes(o.steady));
    };
    row("sync", sync);
    row("serialized", serial);
    row("multi-channel", multi);
    rows.push_back({"projection", util::format_fixed(projection, 1) + "s",
                    "-", "-", "-"});
    std::fputs(util::render_table(rows).c_str(), stdout);

    // Acceptance gate for the full run only: with smoke shapes there may be
    // too little movement for the channels to matter.
    ordering_holds =
        smoke || multi.steady.seconds < serial.steady.seconds;
    std::printf("multi-channel %s serialized baseline (%.3fs vs %.3fs)\n\n",
                multi.steady.seconds < serial.steady.seconds
                    ? "beats"
                    : "DOES NOT beat",
                multi.steady.seconds, serial.steady.seconds);
  }

  // --- Small-model DRAM sweep ----------------------------------------------
  const auto sweep_specs =
      smoke ? std::vector<ModelSpec>{ModelSpec::densenet_tiny()}
            : std::vector<ModelSpec>{ModelSpec::densenet264_small(),
                                     ModelSpec::vgg116_small()};
  for (const auto& spec : sweep_specs) {
    std::printf("--- %s (sweep) ---\n", spec.name.c_str());
    std::vector<std::vector<std::string>> rows = {
        {"DRAM (MiB)", "sync", "serialized", "multi", "projection",
         "overlap recovered"}};
    const auto drams = smoke ? std::vector<std::size_t>{24}
                             : std::vector<std::size_t>{36, 72, 144};
    const std::size_t nvram = smoke ? 96 : 1300;
    const int iters = smoke ? 1 : 2;
    for (const std::size_t dram : drams) {
      const Outcome sync = run(spec, dram, nvram, false, 4, iters);
      const Outcome serial = run(spec, dram, nvram, true, 1, iters);
      const Outcome multi = run(spec, dram, nvram, true, 4, iters);
      const double projection =
          sync.steady.seconds - sync.steady.movement_seconds;
      const double denom = sync.steady.seconds - projection;
      const double recovered =
          denom > 0.0
              ? (sync.steady.seconds - multi.steady.seconds) / denom
              : 0.0;
      rows.push_back({std::to_string(dram),
                      util::format_fixed(sync.steady.seconds, 1) + "s",
                      util::format_fixed(serial.steady.seconds, 1) + "s",
                      util::format_fixed(multi.steady.seconds, 1) + "s",
                      util::format_fixed(projection, 1) + "s",
                      util::format_fixed(100.0 * recovered, 0) + "%"});
      report.add(spec.name + "/" + std::to_string(dram) + "MiB/multi",
                 multi.steady.seconds, multi.wall_seconds,
                 moved_bytes(multi.steady));
    }
    std::fputs(util::render_table(rows).c_str(), stdout);
    std::printf("\n");
  }

  report.write(argc, argv);
  return ordering_holds ? 0 : 1;
}
