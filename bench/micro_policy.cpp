// Microbenchmarks for the policy layer: hint processing costs (these sit
// on the critical path of every kernel launch) and the Listing-1/2
// evict/prefetch round trip.
#include <benchmark/benchmark.h>

#include "dm/data_manager.hpp"
#include "gbench_report.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

using namespace ca;

namespace {

struct Rig {
  explicit Rig(policy::LruPolicyConfig cfg = {})
      : platform(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                    32 * util::MiB)),
        dm(platform, clock, counters),
        policy(dm, cfg) {}

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
  policy::LruPolicy policy;
};

void BM_HintNoOp(benchmark::State& state) {
  // will_read with no prefetching on a fast-resident object: the common
  // cheap case (LRU touch only).
  Rig rig;
  dm::Object* obj = rig.dm.create_object(256 * util::KiB);
  rig.policy.place_new(*obj);
  for (auto _ : state) {
    rig.policy.will_read(*obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HintNoOp);

void BM_ArchiveHint(benchmark::State& state) {
  Rig rig;
  dm::Object* obj = rig.dm.create_object(256 * util::KiB);
  rig.policy.place_new(*obj);
  for (auto _ : state) {
    rig.policy.archive(*obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArchiveHint);

void BM_EvictPrefetchRoundTrip(benchmark::State& state) {
  // Listing 1 + Listing 2 on an object of the given size: includes the
  // real memcpys, allocator traffic and metadata updates.
  Rig rig;
  const auto size = static_cast<std::size_t>(state.range(0));
  dm::Object* obj = rig.dm.create_object(size);
  rig.policy.place_new(*obj);
  for (auto _ : state) {
    rig.policy.evict(*obj);
    benchmark::DoNotOptimize(rig.policy.prefetch(*obj, true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_EvictPrefetchRoundTrip)
    ->Arg(256 * 1024)
    ->Arg(1 * 1024 * 1024)
    ->Arg(4 * 1024 * 1024);

void BM_PlaceNewUnderPressure(benchmark::State& state) {
  // place_new when fast memory is full: forced reclamation via evictfrom.
  Rig rig;
  std::vector<dm::Object*> warm;
  for (int i = 0; i < 32; ++i) {
    dm::Object* o = rig.dm.create_object(256 * util::KiB);
    rig.policy.place_new(*o);
    warm.push_back(o);
  }
  for (auto _ : state) {
    dm::Object* obj = rig.dm.create_object(256 * util::KiB);
    rig.policy.place_new(*obj);
    state.PauseTiming();
    rig.policy.on_destroy(*obj);
    rig.dm.destroy_object(obj);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlaceNewUnderPressure);

void BM_KernelStagingBracket(benchmark::State& state) {
  // begin_kernel/end_kernel over a typical argument count.
  Rig rig;
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) {
    dm::Object* o = rig.dm.create_object(64 * util::KiB);
    rig.policy.place_new(*o);
    objs.push_back(o);
  }
  for (auto _ : state) {
    rig.policy.begin_kernel(objs);
    rig.policy.end_kernel();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelStagingBracket);

}  // namespace

int main(int argc, char** argv) {
  return ca::bench::run_gbench_with_report(argc, argv, "policy");
}
