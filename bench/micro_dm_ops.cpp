// Microbenchmarks for the data-management API hot paths: object/region
// lifecycle, linking, primary reassignment, eviction-window search, and
// defragmentation.
#include <benchmark/benchmark.h>

#include "dm/data_manager.hpp"
#include "gbench_report.hpp"
#include "util/align.hpp"

using namespace ca;

namespace {

struct Rig {
  Rig()
      : platform(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                    32 * util::MiB)),
        dm(platform, clock, counters) {}

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
};

void BM_ObjectLifecycle(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    dm::Object* obj = rig.dm.create_object(64 * util::KiB);
    dm::Region* r = rig.dm.allocate(sim::kFast, obj->size());
    rig.dm.setprimary(*obj, *r);
    rig.dm.destroy_object(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectLifecycle);

void BM_LinkUnlink(benchmark::State& state) {
  Rig rig;
  dm::Object* obj = rig.dm.create_object(64 * util::KiB);
  dm::Region* slow = rig.dm.allocate(sim::kSlow, obj->size());
  rig.dm.setprimary(*obj, *slow);
  dm::Region* fast = rig.dm.allocate(sim::kFast, obj->size());
  for (auto _ : state) {
    rig.dm.link(*slow, *fast);
    rig.dm.unlink(*fast);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkUnlink);

void BM_SetPrimarySwap(benchmark::State& state) {
  Rig rig;
  dm::Object* obj = rig.dm.create_object(64 * util::KiB);
  dm::Region* slow = rig.dm.allocate(sim::kSlow, obj->size());
  rig.dm.setprimary(*obj, *slow);
  dm::Region* fast = rig.dm.allocate(sim::kFast, obj->size());
  rig.dm.link(*slow, *fast);
  bool use_fast = true;
  for (auto _ : state) {
    rig.dm.setprimary(*obj, use_fast ? *fast : *slow);
    use_fast = !use_fast;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetPrimarySwap);

void BM_PinResolveUnpin(benchmark::State& state) {
  // The per-kernel indirection cost the paper calls "essentially zero
  // overhead": one pin + pointer resolution + unpin.
  Rig rig;
  dm::Object* obj = rig.dm.create_object(64 * util::KiB);
  dm::Region* r = rig.dm.allocate(sim::kFast, obj->size());
  rig.dm.setprimary(*obj, *r);
  for (auto _ : state) {
    rig.dm.pin(*obj);
    benchmark::DoNotOptimize(rig.dm.getprimary(*obj)->data());
    rig.dm.unpin(*obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PinResolveUnpin);

void BM_EvictFromWindowSearch(benchmark::State& state) {
  // Worst case: the heap is full of refusing (pinned) regions and the
  // window search must scan and wrap.
  Rig rig;
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 128; ++i) {
    dm::Object* obj = rig.dm.create_object(64 * util::KiB);
    dm::Region* r = rig.dm.allocate(sim::kFast, obj->size());
    rig.dm.setprimary(*obj, *r);
    rig.dm.pin(*obj);
    objs.push_back(obj);
  }
  for (auto _ : state) {
    const bool ok = rig.dm.evictfrom(sim::kFast, 0, 256 * util::KiB,
                                     [](dm::Region&) { return false; });
    benchmark::DoNotOptimize(ok);
  }
  for (auto* o : objs) {
    rig.dm.unpin(*o);
    rig.dm.destroy_object(o);
  }
}
BENCHMARK(BM_EvictFromWindowSearch);

void BM_Defragment(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<dm::Object*> objs;
    for (int i = 0; i < 64; ++i) {
      dm::Object* obj = rig.dm.create_object(64 * util::KiB);
      dm::Region* r = rig.dm.allocate(sim::kFast, obj->size());
      rig.dm.setprimary(*obj, *r);
      objs.push_back(obj);
    }
    for (std::size_t i = 0; i < objs.size(); i += 2) {
      rig.dm.destroy_object(objs[i]);
    }
    state.ResumeTiming();
    rig.dm.defragment(sim::kFast);
    state.PauseTiming();
    for (std::size_t i = 1; i < objs.size(); i += 2) {
      rig.dm.destroy_object(objs[i]);
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Defragment);

}  // namespace

int main(int argc, char** argv) {
  return ca::bench::run_gbench_with_report(argc, argv, "dm_ops");
}
