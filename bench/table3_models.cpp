// Table III: benchmark networks with batch sizes and the measured
// per-iteration memory footprint (paper: large networks ~520-530 "GB",
// small networks 170-180 "GB"; at 1:1000 scale, MiB).
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

void row(std::vector<std::vector<std::string>>& rows, const ModelSpec& spec,
         const char* klass) {
  // Measure the true footprint: CA:LM with a DRAM tier big enough to never
  // spill; peak resident bytes is the minimum memory needed to train.
  RunConfig cfg;
  cfg.spec = spec;
  cfg.mode = Mode::kCaLM;
  cfg.dram = 1600 * util::MiB;
  cfg.nvram = 64 * util::MiB;
  cfg.iterations = 1;

  HarnessConfig hc;
  hc.mode = cfg.mode;
  hc.dram_bytes = cfg.dram;
  hc.nvram_bytes = cfg.nvram;
  hc.backend = dnn::Backend::kSim;
  hc.compute_efficiency = spec.compute_efficiency;
  hc.conv_read_passes = spec.conv_read_passes;
  Harness harness(hc);
  auto model = dnn::build_model(harness.engine(), spec);
  dnn::Trainer trainer(harness, *model);
  const auto m = trainer.run_iteration();

  rows.push_back({klass, spec.name, std::to_string(spec.batch),
                  mib(m.peak_resident_bytes) + " MiB",
                  std::to_string(model->parameter_count() / 1000) + "k",
                  std::to_string(harness.engine().stats().kernels)});
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Table III",
               "CNN models used as benchmarks; footprint is the measured "
               "minimum memory for one training iteration.\n"
               "Paper: large ~520-530, small 170-180 (GB there, MiB here).");

  std::vector<std::vector<std::string>> rows = {
      {"class", "model", "batch", "footprint", "params", "kernels/iter"}};
  row(rows, ModelSpec::densenet264_large(), "large");
  row(rows, ModelSpec::resnet200_large(), "large");
  row(rows, ModelSpec::vgg416_large(), "large");
  row(rows, ModelSpec::densenet264_small(), "small");
  row(rows, ModelSpec::resnet200_small(), "small");
  row(rows, ModelSpec::vgg116_small(), "small");
  std::fputs(util::render_table(rows).c_str(), stdout);
  maybe_write_csv(argc, argv, "table3_models.csv", rows);
  return 0;
}
