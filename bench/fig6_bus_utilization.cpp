// Fig. 6: average DRAM bus utilization over a training iteration for
// ResNet 200 and VGG 416.
//
// Expected shape (paper §V-b): as CachedArrays optimizations are applied,
// bus utilization rises while total traffic falls -- the optimized modes
// both move less data and move it at higher achieved bandwidth.  For VGG
// (small transfers) unoptimized CachedArrays achieves *lower* utilization
// than the hardware cache; for ResNet the comparison flips.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

int main() {
  print_header("Figure 6",
               "Average DRAM bus utilization (achieved DRAM traffic over "
               "peak bandwidth x time).");

  const std::vector<ModelSpec> models = {ModelSpec::resnet200_large(),
                                         ModelSpec::vgg416_large()};

  for (const auto& spec : models) {
    std::printf("--- %s ---\n", spec.name.c_str());
    std::vector<std::vector<std::string>> rows = {
        {"mode", "avg DRAM bus utilization", "total traffic (MiB)"}};
    for (const Mode mode : all_modes()) {
      RunConfig cfg;
      cfg.spec = spec;
      cfg.mode = mode;
      const auto m = run_training(cfg).steady();
      const int bar = static_cast<int>(60.0 * m.dram_bus_utilization);
      rows.push_back(
          {to_string(mode),
           util::format_fixed(100.0 * m.dram_bus_utilization, 1) + "%  " +
               std::string(static_cast<std::size_t>(bar), '#'),
           mib(m.dram.total() + m.nvram.total())});
    }
    std::fputs(util::render_table(rows).c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
