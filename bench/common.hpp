// Shared infrastructure for the figure-reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper
// (see DESIGN.md §4).  All results are in *simulated seconds* on the scaled
// Cascade Lake platform; shapes -- orderings and ratios -- are the
// reproduction target, not absolute numbers (the authors ran on real
// Optane hardware).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/format.hpp"

namespace ca::bench {

using dnn::Harness;
using dnn::HarnessConfig;
using dnn::IterationMetrics;
using dnn::Mode;
using dnn::ModelSpec;

/// The paper's operating-mode lineup for Figs. 2, 5 and 6 (§IV).
inline const std::vector<Mode>& all_modes() {
  static const std::vector<Mode> modes = {
      Mode::kTwoLmNone, Mode::kTwoLmM, Mode::kCaNone,
      Mode::kCaL,       Mode::kCaLM,   Mode::kCaLMP,
  };
  return modes;
}

struct RunConfig {
  ModelSpec spec;
  Mode mode = Mode::kCaLM;
  std::size_t dram = 180 * util::MiB;
  std::size_t nvram = 1300 * util::MiB;
  int iterations = 3;  ///< first iteration warms the heaps; later ones are
                       ///< steady state (the paper runs 4 and checks
                       ///< consistency)
  telemetry::TimeSeries* occupancy = nullptr;
};

struct RunResult {
  std::vector<IterationMetrics> iterations;

  /// Steady-state iteration (the last one).
  [[nodiscard]] const IterationMetrics& steady() const {
    return iterations.back();
  }
};

/// Run `iterations` training iterations of `spec` under `mode` and collect
/// per-iteration metrics.
inline RunResult run_training(const RunConfig& cfg) {
  HarnessConfig hc;
  hc.mode = cfg.mode;
  hc.dram_bytes = cfg.dram;
  hc.nvram_bytes = cfg.nvram;
  hc.backend = dnn::Backend::kSim;
  hc.compute_efficiency = cfg.spec.compute_efficiency;
  hc.conv_read_passes = cfg.spec.conv_read_passes;
  Harness harness(hc);
  auto model = dnn::build_model(harness.engine(), cfg.spec);
  model->init(harness.engine(), 1);
  dnn::TrainerOptions opts;
  opts.occupancy = cfg.occupancy;
  dnn::Trainer trainer(harness, *model, opts);
  RunResult result;
  for (int i = 0; i < cfg.iterations; ++i) {
    result.iterations.push_back(trainer.run_iteration());
  }
  return result;
}

inline void print_header(const char* figure, const char* description) {
  const auto platform = sim::Platform::cascade_lake_default();
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf(
      "Platform: %s\n"
      "Config: DRAM %s, NVRAM %s (2LM modes: DRAM acts as the hardware "
      "cache)\nAll times are simulated seconds; reproduce shapes, not "
      "absolute numbers.\n\n",
      platform.scale_note,
      util::format_bytes(platform.spec(sim::kFast).capacity).c_str(),
      util::format_bytes(platform.spec(sim::kSlow).capacity).c_str());
}

/// Best-effort CSV export: every bench accepts an optional output
/// directory as its first non-flag argument; tables are written there as
/// <name>.csv.
inline void maybe_write_csv(int argc, char** argv, const char* name,
                            const std::vector<std::vector<std::string>>& rows) {
  const char* dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      dir = argv[i];
      break;
    }
  }
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name;
  if (telemetry::write_csv(path, rows)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::printf("[csv] could not write %s\n", path.c_str());
  }
}

inline std::string mib(std::uint64_t bytes) {
  return util::format_fixed(static_cast<double>(bytes) / (1024.0 * 1024.0),
                            0);
}

/// Host wall-clock stopwatch, for reporting real elapsed time next to the
/// simulated seconds (the async mover moves real bytes in the background,
/// so the two can diverge in interesting ways).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One machine-readable result row for BENCH_<name>.json.
struct BenchRecord {
  std::string label;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t bytes_moved = 0;
};

/// Escape a string for inclusion in a JSON document.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Machine-readable export: writes BENCH_<name>.json into the output
/// directory given as the first non-flag argument (or the current
/// directory), with one entry per record.
inline void write_bench_json(int argc, char** argv, const char* name,
                             const std::vector<BenchRecord>& records) {
  std::string dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      dir = argv[i];
      break;
    }
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[json] could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
               json_escape(name).c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"simulated_seconds\": %.9g, "
                 "\"wall_seconds\": %.9g, \"bytes_moved\": %llu}%s\n",
                 json_escape(r.label).c_str(), r.simulated_seconds,
                 r.wall_seconds,
                 static_cast<unsigned long long>(r.bytes_moved),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

/// True when `flag` (e.g. "--smoke") appears among the arguments.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

/// Nearest-rank percentile of `samples` (p in [0, 1]); sorts in place.
/// Every bench reporting a latency tail uses this one definition so p99
/// means the same thing in every BENCH_*.json.
inline double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

/// Accumulates one bench's machine-readable output -- the BENCH_<name>.json
/// records and the mirrored CSV table -- behind a single interface, so all
/// benches share one emitter and one label convention instead of each
/// hand-maintaining parallel vectors:
///   * add()        -- a timed result row (simulated + wall seconds, bytes);
///   * add_metric() -- a derived value (rate, latency, ratio): the
///                     `wall_seconds` JSON field carries the value and the
///                     label names the unit;
///   * add_speedup()-- the acceptance-record shape "speedup: <what>" with
///                     the ratio in `wall_seconds`, so CI greps one label
///                     shape across every bench.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add(std::string label, double simulated_seconds, double wall_seconds,
           std::uint64_t bytes_moved = 0) {
    records_.push_back({std::move(label), simulated_seconds, wall_seconds,
                        bytes_moved});
  }

  void add_metric(const std::string& label, double value,
                  std::uint64_t bytes = 0) {
    records_.push_back({label, 0.0, value, bytes});
  }

  void add_speedup(const std::string& what, double ratio,
                   std::uint64_t bytes = 0) {
    add_metric("speedup: " + what, ratio, bytes);
  }

  void csv_header(std::vector<std::string> columns) {
    table_.insert(table_.begin(), std::move(columns));
  }

  void csv_row(std::vector<std::string> columns) {
    table_.push_back(std::move(columns));
  }

  /// Emit BENCH_<name>.json (always) and, when a CSV file name was given
  /// and rows were added, <csv_name> via maybe_write_csv.
  void write(int argc, char** argv, const char* csv_name = nullptr) const {
    if (csv_name != nullptr && !table_.empty()) {
      maybe_write_csv(argc, argv, csv_name, table_);
    }
    write_bench_json(argc, argv, name_.c_str(), records_);
  }

  [[nodiscard]] const std::vector<BenchRecord>& records() const {
    return records_;
  }

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
  std::vector<std::vector<std::string>> table_;
};

}  // namespace ca::bench
