// Fig. 7: runtime of one training iteration for the small networks as the
// DRAM budget shrinks from 180 MiB (everything fits) to 0 (NVRAM only),
// in CA:LM mode.  Two series per network: measured wall clock, and the
// projection with perfectly asynchronous data movement (wall clock minus
// synchronous movement time).
//
// Expected shapes (paper §V-c/d):
//   * NVRAM-only is a 3-4x penalty (kernels write NVRAM with regular
//     stores; only the copy engine has the non-temporal fast path);
//   * the async projection is nearly flat for DenseNet/ResNet but still
//     degrades for VGG (its kernels are read-bandwidth sensitive);
//   * even a modest DRAM budget recovers most of the lost performance.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

int main(int argc, char** argv) {
  print_header("Figure 7",
               "Small-network iteration time vs DRAM budget (CA:LM; 0 = "
               "NVRAM only).\n'async' projects perfectly overlapped data "
               "movement (time minus synchronous movement).");

  const std::vector<ModelSpec> models = {ModelSpec::densenet264_small(),
                                         ModelSpec::resnet200_small(),
                                         ModelSpec::vgg116_small()};
  const std::vector<std::size_t> budgets_mib = {0, 18, 36, 72, 108, 144, 180};

  for (const auto& spec : models) {
    std::printf("--- %s (small) ---\n", spec.name.c_str());
    std::vector<std::vector<std::string>> rows = {
        {"DRAM (MiB)", "wall clock", "async projection", "NVRAM read",
         "NVRAM write"}};
    double nvram_only = 0.0;
    double full_dram = 0.0;
    for (const std::size_t budget : budgets_mib) {
      RunConfig cfg;
      cfg.spec = spec;
      cfg.mode = budget == 0 ? Mode::kNvramOnly : Mode::kCaLM;
      cfg.dram = budget * util::MiB;
      const auto m = run_training(cfg).steady();
      rows.push_back({std::to_string(budget),
                      util::format_fixed(m.seconds, 1) + "s",
                      util::format_fixed(m.seconds - m.movement_seconds, 1) +
                          "s",
                      mib(m.nvram.bytes_read), mib(m.nvram.bytes_written)});
      if (budget == 0) nvram_only = m.seconds;
      if (budget == 180) full_dram = m.seconds;
    }
    std::fputs(util::render_table(rows).c_str(), stdout);
    maybe_write_csv(argc, argv,
                    ("fig7_" + spec.name + ".csv").c_str(), rows);
    std::printf("NVRAM-only penalty vs full DRAM: %.1fx (paper: 3-4x)\n\n",
                nvram_only / full_dram);
  }
  return 0;
}
