// Microbenchmarks for the free-list allocator: allocation/free throughput,
// fit-policy comparison, address-order walking (the evictfrom primitive),
// and behaviour under fragmentation.
#include <benchmark/benchmark.h>

#include <vector>

#include "mem/freelist_allocator.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

using namespace ca;
using mem::FreeListAllocator;

namespace {

void BM_AllocFreePair(benchmark::State& state) {
  FreeListAllocator alloc(64 * util::MiB);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto off = alloc.allocate(size);
    benchmark::DoNotOptimize(off);
    alloc.free(*off);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreePair)->Arg(256)->Arg(64 * 1024)->Arg(4 * 1024 * 1024);

template <FreeListAllocator::Fit fit>
void BM_MixedWorkload(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FreeListAllocator alloc(16 * util::MiB, 64, fit);
    util::Xoshiro256 rng(42);
    std::vector<std::size_t> live;
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      if (live.empty() || rng.uniform() < 0.6) {
        if (auto off = alloc.allocate(1 + rng.bounded(32 * 1024))) {
          live.push_back(*off);
        }
      } else {
        const std::size_t idx = rng.bounded(live.size());
        alloc.free(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
    }
    benchmark::DoNotOptimize(alloc.stats());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
void BM_MixedFirstFit(benchmark::State& s) {
  BM_MixedWorkload<FreeListAllocator::Fit::kFirstFit>(s);
}
void BM_MixedBestFit(benchmark::State& s) {
  BM_MixedWorkload<FreeListAllocator::Fit::kBestFit>(s);
}
BENCHMARK(BM_MixedFirstFit);
BENCHMARK(BM_MixedBestFit);

void BM_AddressOrderWalk(benchmark::State& state) {
  FreeListAllocator alloc(16 * util::MiB);
  std::vector<std::size_t> offs;
  while (auto off = alloc.allocate(8 * 1024)) offs.push_back(*off);
  for (std::size_t i = 0; i < offs.size(); i += 2) alloc.free(offs[i]);
  for (auto _ : state) {
    std::size_t blocks = 0;
    alloc.for_blocks_from(0, [&](const FreeListAllocator::BlockView&) {
      ++blocks;
      return true;
    });
    benchmark::DoNotOptimize(blocks);
  }
}
BENCHMARK(BM_AddressOrderWalk);

void BM_FragmentedAllocation(benchmark::State& state) {
  // Allocation when the free space is shattered into many small holes.
  for (auto _ : state) {
    state.PauseTiming();
    FreeListAllocator alloc(16 * util::MiB);
    std::vector<std::size_t> offs;
    while (auto off = alloc.allocate(4 * 1024)) offs.push_back(*off);
    for (std::size_t i = 0; i < offs.size(); i += 2) alloc.free(offs[i]);
    state.ResumeTiming();
    // Request something bigger than any hole: full scan then failure.
    benchmark::DoNotOptimize(alloc.allocate(64 * 1024));
  }
}
BENCHMARK(BM_FragmentedAllocation);

}  // namespace

BENCHMARK_MAIN();
