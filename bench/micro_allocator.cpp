// Microbenchmarks for the free-list allocator: allocation/free throughput,
// fit-policy comparison, address-order walking (the evictfrom primitive),
// and behaviour under fragmentation.
//
// Two entry points share this binary:
//   * default: the google-benchmark microbenchmarks below;
//   * --trace (or --smoke): a DNN-shaped allocation trace replay -- the
//     VGG-416 tensor size sequence (weights persistent, activations
//     forward, gradients backward) -- run against both the frozen map-based
//     ReferenceAllocator ("old") and the binned FreeListAllocator ("new").
//     Emits BENCH_allocator.json with old-vs-new ops/sec, p99 alloc
//     latency, and an explicit "speedup:" acceptance record.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "mem/freelist_allocator.hpp"
#include "mem/reference_allocator.hpp"
#include "util/align.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace ca;
using namespace ca::bench;
using mem::FreeListAllocator;
using mem::ReferenceAllocator;

namespace {

void BM_AllocFreePair(benchmark::State& state) {
  FreeListAllocator alloc(64 * util::MiB);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto off = alloc.allocate(size);
    benchmark::DoNotOptimize(off);
    alloc.free(*off);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreePair)->Arg(256)->Arg(64 * 1024)->Arg(4 * 1024 * 1024);

template <FreeListAllocator::Fit fit>
void BM_MixedWorkload(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FreeListAllocator alloc(16 * util::MiB, 64, fit);
    util::Xoshiro256 rng(42);
    std::vector<std::size_t> live;
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      if (live.empty() || rng.uniform() < 0.6) {
        if (auto off = alloc.allocate(1 + rng.bounded(32 * 1024))) {
          live.push_back(*off);
        }
      } else {
        const std::size_t idx = rng.bounded(live.size());
        alloc.free(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
    }
    benchmark::DoNotOptimize(alloc.stats());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
void BM_MixedFirstFit(benchmark::State& s) {
  BM_MixedWorkload<FreeListAllocator::Fit::kFirstFit>(s);
}
void BM_MixedBestFit(benchmark::State& s) {
  BM_MixedWorkload<FreeListAllocator::Fit::kBestFit>(s);
}
BENCHMARK(BM_MixedFirstFit);
BENCHMARK(BM_MixedBestFit);

void BM_AddressOrderWalk(benchmark::State& state) {
  FreeListAllocator alloc(16 * util::MiB);
  std::vector<std::size_t> offs;
  while (auto off = alloc.allocate(8 * 1024)) offs.push_back(*off);
  for (std::size_t i = 0; i < offs.size(); i += 2) alloc.free(offs[i]);
  for (auto _ : state) {
    std::size_t blocks = 0;
    alloc.for_blocks_from(0, [&](const FreeListAllocator::BlockView&) {
      ++blocks;
      return true;
    });
    benchmark::DoNotOptimize(blocks);
  }
}
BENCHMARK(BM_AddressOrderWalk);

void BM_FragmentedAllocation(benchmark::State& state) {
  // Allocation when the free space is shattered into many small holes.
  for (auto _ : state) {
    state.PauseTiming();
    FreeListAllocator alloc(16 * util::MiB);
    std::vector<std::size_t> offs;
    while (auto off = alloc.allocate(4 * 1024)) offs.push_back(*off);
    for (std::size_t i = 0; i < offs.size(); i += 2) alloc.free(offs[i]);
    state.ResumeTiming();
    // Request something bigger than any hole: full scan then failure.
    benchmark::DoNotOptimize(alloc.allocate(64 * 1024));
  }
}
BENCHMARK(BM_FragmentedAllocation);

// ---------------------------------------------------------------------------
// DNN trace mode (--trace / --smoke)
// ---------------------------------------------------------------------------

/// One allocator call in the replayed trace.  `slot` names the tensor so
/// frees can find the offset the matching alloc returned.
struct TraceOp {
  bool is_alloc;
  std::size_t size;  ///< bytes (alloc ops only)
  std::size_t slot;
};

struct LayerShape {
  std::size_t weight_bytes;
  std::size_t act_bytes;
};

/// Per-conv tensor sizes of VGG-416: stage s runs spec.stages[s]
/// convolutions at channels base*min(2^s, 8) with the spatial dims halved
/// per stage (matches the dnn builder).  Smoke truncates to a handful of
/// layers at batch 2 so the replay finishes in milliseconds.
std::vector<LayerShape> vgg416_tensor_shapes(bool smoke) {
  const dnn::ModelSpec spec = dnn::ModelSpec::vgg416_large();
  std::vector<LayerShape> layers;
  std::size_t hw = spec.image;
  const std::size_t batch = smoke ? 2 : spec.batch;
  for (std::size_t s = 0; s < spec.stages.size() && hw >= 2; ++s) {
    const std::size_t c =
        spec.base_channels * std::min<std::size_t>(std::size_t{1} << s, 8);
    std::size_t convs = spec.stages[s];
    if (smoke) convs = std::min<std::size_t>(convs, 4);
    for (std::size_t i = 0; i < convs; ++i) {
      layers.push_back({c * c * 3 * 3 * sizeof(float),
                        batch * c * hw * hw * sizeof(float)});
    }
    hw /= 2;
    if (smoke && layers.size() >= 8) break;
  }
  return layers;
}

/// Build the trace: weights allocated up front and held live (the heap the
/// DM manages keeps parameters resident), then per training iteration a
/// forward pass allocating every activation followed by a backward pass
/// allocating gradients in reverse layer order while releasing the matching
/// activation and the downstream gradient.  This is the alloc/free pattern
/// the DM issues per iteration in Fig. 3.
std::vector<TraceOp> build_trace(const std::vector<LayerShape>& layers,
                                 int iterations, std::size_t* slot_count) {
  const std::size_t L = layers.size();
  // Slots: [0, L) weights, [L, 2L) activations, [2L, 3L) gradients.
  *slot_count = 3 * L;
  std::vector<TraceOp> ops;
  ops.reserve(L * 2 + static_cast<std::size_t>(iterations) * L * 4);
  for (std::size_t l = 0; l < L; ++l) {
    ops.push_back({true, layers[l].weight_bytes, l});
  }
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t l = 0; l < L; ++l) {
      ops.push_back({true, layers[l].act_bytes, L + l});
    }
    for (std::size_t l = L; l-- > 0;) {
      ops.push_back({true, layers[l].act_bytes, 2 * L + l});
      ops.push_back({false, 0, L + l});
      if (l + 1 < L) ops.push_back({false, 0, 2 * L + l + 1});
    }
    ops.push_back({false, 0, 2 * L});
  }
  for (std::size_t l = 0; l < L; ++l) ops.push_back({false, 0, l});
  return ops;
}

struct ReplayResult {
  double total_seconds = 0.0;   ///< wall time for the whole trace
  double p99_alloc_seconds = 0.0;
  std::size_t ops = 0;
  std::uint64_t bytes_allocated = 0;

  [[nodiscard]] double ops_per_sec() const {
    return total_seconds > 0.0 ? static_cast<double>(ops) / total_seconds
                               : 0.0;
  }
};

/// Replay the trace against a fresh `Alloc` heap, timing every allocate
/// call individually (for the p99) and the whole run (for ops/sec).
template <class Alloc>
ReplayResult replay_trace(const std::vector<TraceOp>& ops,
                          std::size_t slot_count, std::size_t heap_bytes,
                          typename Alloc::Fit fit) {
  using clock = std::chrono::steady_clock;
  Alloc heap(heap_bytes, 64, fit);
  std::vector<std::size_t> slots(slot_count, 0);
  std::vector<double> alloc_s;
  alloc_s.reserve(ops.size());
  ReplayResult r;
  const auto run0 = clock::now();
  for (const TraceOp& op : ops) {
    if (op.is_alloc) {
      const auto t0 = clock::now();
      const auto off = heap.allocate(op.size);
      const auto t1 = clock::now();
      CA_CHECK(off.has_value(), "trace heap exhausted: grow kTraceHeap");
      slots[op.slot] = *off;
      alloc_s.push_back(std::chrono::duration<double>(t1 - t0).count());
      r.bytes_allocated += op.size;
    } else {
      heap.free(slots[op.slot]);
    }
  }
  r.total_seconds =
      std::chrono::duration<double>(clock::now() - run0).count();
  r.ops = ops.size();
  r.p99_alloc_seconds = percentile(alloc_s, 0.99);
  return r;
}

const char* fit_name(FreeListAllocator::Fit fit) {
  return fit == FreeListAllocator::Fit::kFirstFit ? "firstfit" : "bestfit";
}

int run_trace(int argc, char** argv, bool smoke) {
  std::printf("=== allocator DNN trace (%s) ===\n",
              smoke ? "smoke" : "full");
  std::printf(
      "VGG-416 tensor sequence: weights resident, activations allocated "
      "forward,\ngradients backward; old = map-based ReferenceAllocator, "
      "new = binned\nFreeListAllocator.  Wall-clock microseconds.\n\n");

  const auto layers = vgg416_tensor_shapes(smoke);
  const int iterations = smoke ? 2 : 6;
  std::size_t slot_count = 0;
  const auto ops = build_trace(layers, iterations, &slot_count);

  // Offset-space heap: no memory is touched, so size it generously past
  // the peak live set (weights + activations + one stage of gradients).
  std::uint64_t peak = 0;
  for (const auto& l : layers) peak += l.weight_bytes + 2 * l.act_bytes;
  const std::size_t heap_bytes =
      util::align_up(static_cast<std::size_t>(peak * 2 + util::MiB), 64);

  std::printf("%zu conv layers, %d iterations, %zu allocator ops, heap %s\n\n",
              layers.size(), iterations, ops.size(),
              util::format_bytes(heap_bytes).c_str());
  std::printf("%-10s %-16s %12s %12s %10s\n", "fit", "allocator", "ops/sec",
              "p99 alloc", "speedup");

  BenchReport report("allocator");
  report.csv_header({"fit", "allocator", "ops_per_sec", "p99_alloc_us",
                     "total_seconds"});
  double firstfit_speedup = 0.0;
  for (const auto fit : {FreeListAllocator::Fit::kFirstFit,
                         FreeListAllocator::Fit::kBestFit}) {
    const auto ref_fit = fit == FreeListAllocator::Fit::kFirstFit
                             ? ReferenceAllocator::Fit::kFirstFit
                             : ReferenceAllocator::Fit::kBestFit;
    const auto oldr =
        replay_trace<ReferenceAllocator>(ops, slot_count, heap_bytes, ref_fit);
    const auto newr =
        replay_trace<FreeListAllocator>(ops, slot_count, heap_bytes, fit);
    const double speedup =
        oldr.total_seconds > 0.0 ? oldr.total_seconds / newr.total_seconds
                                 : 0.0;
    if (fit == FreeListAllocator::Fit::kFirstFit) firstfit_speedup = speedup;
    std::printf("%-10s %-16s %12.0f %10.2fus\n", fit_name(fit),
                "old(reference)", oldr.ops_per_sec(),
                oldr.p99_alloc_seconds * 1e6);
    std::printf("%-10s %-16s %12.0f %10.2fus %9.1fx\n", fit_name(fit),
                "new(binned)", newr.ops_per_sec(),
                newr.p99_alloc_seconds * 1e6, speedup);
    for (const auto* side : {"old", "new"}) {
      const auto& r = side[0] == 'o' ? oldr : newr;
      const std::string label =
          std::string("trace ") + fit_name(fit) + " " + side;
      report.add(label, 0.0, r.total_seconds, r.bytes_allocated);
      report.add_metric("ops/sec: " + label, r.ops_per_sec());
      report.add_metric("p99 alloc s: " + label, r.p99_alloc_seconds);
      report.csv_row({fit_name(fit), side,
                      util::format_fixed(r.ops_per_sec(), 0),
                      util::format_fixed(r.p99_alloc_seconds * 1e6, 3),
                      util::format_fixed(r.total_seconds, 6)});
    }
    report.add_speedup(std::string("DNN trace alloc/free, ") +
                           fit_name(fit) + " old vs new",
                       speedup);
  }

  report.write(argc, argv, "allocator_trace.csv");

  if (!smoke && firstfit_speedup < 5.0) {
    std::printf(
        "\nWARNING: first-fit trace speedup %.1fx is below the 5x "
        "acceptance target\n",
        firstfit_speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--trace") || has_flag(argc, argv, "--smoke")) {
    return run_trace(argc, argv, has_flag(argc, argv, "--smoke"));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
