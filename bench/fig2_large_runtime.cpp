// Fig. 2: average runtime of one training iteration for the large
// networks, across all operating modes, plus the headline speedup of the
// best CachedArrays mode over unoptimized 2LM (paper: 1.4x - 2.03x).
#include <algorithm>

#include "common.hpp"

using namespace ca;
using namespace ca::bench;

int main(int argc, char** argv) {
  print_header("Figure 2",
               "Average execution time of a single training iteration for "
               "the large networks,\nby operating mode.  Expected shape: "
               "2LM:M < 2LM:0; CA:0 slower than 2LM:M (for VGG\nslower even "
               "than 2LM:0); CA:L < CA:0; CA:LM best overall; prefetching "
               "(LMP) hurts\nDenseNet/ResNet but helps VGG.");

  const std::vector<ModelSpec> models = {ModelSpec::densenet264_large(),
                                         ModelSpec::resnet200_large(),
                                         ModelSpec::vgg416_large()};

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"model"};
  for (const Mode mode : all_modes()) header.emplace_back(to_string(mode));
  header.emplace_back("speedup(best CA vs 2LM:0)");
  rows.push_back(header);

  for (const auto& spec : models) {
    std::vector<std::string> line = {spec.name};
    double two_lm_base = 0.0;
    double best_ca = 1e300;
    for (const Mode mode : all_modes()) {
      RunConfig cfg;
      cfg.spec = spec;
      cfg.mode = mode;
      const auto result = run_training(cfg);
      // Average the steady-state iterations (all but the first).
      double avg = 0.0;
      for (std::size_t i = 1; i < result.iterations.size(); ++i) {
        avg += result.iterations[i].seconds;
      }
      avg /= static_cast<double>(result.iterations.size() - 1);
      line.push_back(util::format_fixed(avg, 1) + "s");
      if (mode == Mode::kTwoLmNone) two_lm_base = avg;
      if (!dnn::is_two_lm(mode)) best_ca = std::min(best_ca, avg);
    }
    line.push_back(util::format_fixed(two_lm_base / best_ca, 2) + "x");
    rows.push_back(line);
  }
  std::fputs(util::render_table(rows).c_str(), stdout);
  maybe_write_csv(argc, argv, "fig2_large_runtime.csv", rows);
  return 0;
}
