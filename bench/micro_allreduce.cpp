// Data-parallel bucketed-allreduce bench (the DESIGN.md §3.6 headline):
// K VGG-416-shaped replicas training over ONE shared heterogeneous-memory
// heap, gradients coalesced into fixed-capacity kGradient buckets and
// allreduced over the modeled interconnect -- serialized (every bucket
// launched after backward, chained) vs bucketed-overlapped (each bucket
// launched at the simulated second its last gradient became ready, hiding
// comm behind the rest of backward).
//
// Three phases:
//
//  1. Overlap headline, K in {2, 4, 8}.  Both modes run the same model,
//     seed and bucket layout; steady-state steps (the first step builds
//     the bucket layout) are averaged.  Reported per mode: modeled step
//     seconds, aggregate samples per SIMULATED second (the repo's
//     measurement currency -- host-independent; wall seconds recorded
//     alongside), comm busy/exposed/overlapped split, wire bytes.  The
//     acceptance records are the K=4 ratios: aggregate samples/sim-s
//     (target >= 1.4x) and comm-exposed seconds (target >= 3x reduction).
//
//  2. Ring-vs-tree crossover.  The cost model in comm/allreduce.hpp:
//     ring moves 2(K-1) chunks of B/K (bandwidth-optimal, per-message
//     latency paid 2(K-1) times), the binomial tree moves whole-B messages
//     2*ceil(log2 K) times (latency-optimal).  The sweep records both
//     costs across message sizes plus the solved crossover_bytes(link, K)
//     -- the per-bucket size-based pick the engine applies.
//
//  3. Pick audit: per-K ring/tree picks the trainer's buckets actually
//     got, so the JSON ties the crossover model to the engine's decisions.
//
// `--smoke` shrinks the matrix (K=2, fewer convs, one measured step) for
// the bench-smoke ctest label.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/allreduce.hpp"
#include "common.hpp"
#include "dnn/dp_trainer.hpp"
#include "dnn/models.hpp"
#include "util/align.hpp"
#include "util/format.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

double wall_now() {
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double>(clk::now().time_since_epoch())
      .count();
}

// VGG 416 shape (5 stages of {64,64,96,96,96} convs -- the paper's
// extended-VGG) with channels/batch scaled so K=8 replicas, their
// gradients and their buckets share one scaled heap.  Parameter volume
// (what allreduce moves) is batch-independent.
dnn::ModelSpec dp_model(bool smoke) {
  dnn::ModelSpec spec = dnn::ModelSpec::vgg416_large();
  spec.name = smoke ? "VGG-416-shaped (smoke)" : "VGG-416-shaped (dp)";
  spec.base_channels = 4;
  spec.batch = 4;
  if (smoke) spec.stages = {8, 8, 12, 12, 12};
  return spec;
}

struct ModeResult {
  dp::StepMetrics m;         // steady-state average
  double wall_seconds = 0.0;
  std::uint64_t wire_bytes = 0;  // per step
  std::uint64_t ring_picks = 0;
  std::uint64_t tree_picks = 0;
};

ModeResult run_mode(const dp::TrainerConfig& cfg, int warmup, int iters) {
  dp::Trainer trainer(cfg);
  for (int i = 0; i < warmup; ++i) trainer.step();
  const telemetry::CommCounters c0 = trainer.comm_counters();
  const double w0 = wall_now();
  dp::StepMetrics sum;
  for (int i = 0; i < iters; ++i) {
    const dp::StepMetrics m = trainer.step();
    sum.step_seconds += m.step_seconds;
    sum.compute_seconds += m.compute_seconds;
    sum.optimizer_seconds += m.optimizer_seconds;
    sum.comm_busy_seconds += m.comm_busy_seconds;
    sum.comm_exposed_seconds += m.comm_exposed_seconds;
    sum.comm_overlapped_seconds += m.comm_overlapped_seconds;
    sum.buckets = m.buckets;
  }
  ModeResult r;
  r.wall_seconds = wall_now() - w0;
  const double inv = 1.0 / iters;
  r.m.step_seconds = sum.step_seconds * inv;
  r.m.compute_seconds = sum.compute_seconds * inv;
  r.m.optimizer_seconds = sum.optimizer_seconds * inv;
  r.m.comm_busy_seconds = sum.comm_busy_seconds * inv;
  r.m.comm_exposed_seconds = sum.comm_exposed_seconds * inv;
  r.m.comm_overlapped_seconds = sum.comm_overlapped_seconds * inv;
  r.m.buckets = sum.buckets;
  r.m.samples_per_second =
      r.m.step_seconds > 0.0
          ? static_cast<double>(cfg.workers * cfg.model.batch) /
                r.m.step_seconds
          : 0.0;
  const telemetry::CommCounters dc = trainer.comm_counters().delta(c0);
  r.wire_bytes = dc.bytes_on_wire / iters;
  r.ring_picks = dc.ring_picks;
  r.tree_picks = dc.tree_picks;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  BenchReport report("allreduce");
  report.csv_header({"config", "step_sim_s", "samples_per_sim_s",
                     "comm_busy_s", "comm_exposed_s", "comm_overlapped_s",
                     "buckets", "wire_bytes", "wall_s"});

  const dnn::ModelSpec spec = dp_model(smoke);
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const int warmup = 1;
  const int iters = smoke ? 1 : 2;

  dp::TrainerConfig base;
  base.model = spec;
  base.bucket_bytes = util::MiB;
  // The commodity 25GbE-class fabric: gradient exchange lands at roughly
  // 0.9x backward compute, the regime where hiding it behind backward is
  // worth an algorithm (on the default 100GbE link this model is
  // compute-bound and overlap is a rounding error).
  base.link = comm::LinkModel::ethernet_25g_scaled();

  std::printf("=== micro_allreduce ===\n");
  std::printf("model %s  bucket capacity %s  link %s peak, %.1fms/msg\n\n",
              spec.name.c_str(), util::format_bytes(base.bucket_bytes).c_str(),
              util::format_bytes(
                  static_cast<std::uint64_t>(base.link.curve.peak()))
                  .c_str(),
              base.link.latency_s * 1e3);

  for (const std::size_t k : worker_counts) {
    ModeResult res[2];  // [0]=serialized, [1]=overlapped
    for (int overlap = 0; overlap < 2; ++overlap) {
      dp::TrainerConfig cfg = base;
      cfg.workers = k;
      cfg.overlap = overlap == 1;
      res[overlap] = run_mode(cfg, warmup, iters);
    }
    for (int overlap = 0; overlap < 2; ++overlap) {
      const ModeResult& r = res[overlap];
      const std::string label = "K=" + std::to_string(k) +
                                (overlap ? " overlapped" : " serialized");
      std::printf(
          "%-16s step %8.4fs  %7.1f samples/sim-s  comm busy %7.4fs "
          "exposed %7.4fs hidden %7.4fs  %2zu buckets  wire %s\n",
          label.c_str(), r.m.step_seconds, r.m.samples_per_second,
          r.m.comm_busy_seconds, r.m.comm_exposed_seconds,
          r.m.comm_overlapped_seconds, r.m.buckets,
          util::format_bytes(r.wire_bytes).c_str());
      report.add(label, r.m.step_seconds, r.wall_seconds, r.wire_bytes);
      report.add_metric("samples/sim-s: " + label, r.m.samples_per_second);
      report.add_metric("comm exposed s: " + label,
                        r.m.comm_exposed_seconds);
      report.add_metric("comm overlapped s: " + label,
                        r.m.comm_overlapped_seconds);
      report.csv_row({label, util::format_fixed(r.m.step_seconds, 4),
                      util::format_fixed(r.m.samples_per_second, 1),
                      util::format_fixed(r.m.comm_busy_seconds, 4),
                      util::format_fixed(r.m.comm_exposed_seconds, 4),
                      util::format_fixed(r.m.comm_overlapped_seconds, 4),
                      std::to_string(r.m.buckets),
                      std::to_string(r.wire_bytes),
                      util::format_fixed(r.wall_seconds, 3)});
    }
    const double thr_gain =
        res[0].m.samples_per_second > 0.0
            ? res[1].m.samples_per_second / res[0].m.samples_per_second
            : 0.0;
    const double exposed_gain =
        res[1].m.comm_exposed_seconds > 0.0
            ? res[0].m.comm_exposed_seconds / res[1].m.comm_exposed_seconds
            : 0.0;
    std::printf(
        "  -> K=%zu overlap: %.2fx aggregate samples/sim-s, %.2fx less "
        "exposed comm\n\n",
        k, thr_gain, exposed_gain);
    const std::string kt = "K=" + std::to_string(k);
    report.add_speedup(
        "aggregate samples/sim-s, " + kt + " overlapped vs serialized",
        thr_gain);
    report.add_speedup(
        "comm-exposed seconds, " + kt + " serialized vs overlapped",
        exposed_gain);
    report.add_metric("ring picks: " + kt,
                      static_cast<double>(res[1].ring_picks));
    report.add_metric("tree picks: " + kt,
                      static_cast<double>(res[1].tree_picks));
  }

  // --- ring-vs-tree crossover (pure cost model, the per-bucket pick) ------
  std::printf("ring-vs-tree crossover (link cost model):\n");
  for (const std::size_t k : worker_counts) {
    if (k < 2) continue;
    const std::size_t xover = comm::crossover_bytes(base.link, k);
    std::printf("  K=%zu  crossover %s (tree wins below, ring above)\n", k,
                xover == 0 ? "none (ring always)"
                           : util::format_bytes(xover).c_str());
    report.add_metric("crossover bytes (tree->ring): K=" + std::to_string(k),
                      static_cast<double>(xover));
    for (std::size_t bytes = 16 * util::KiB; bytes <= 4 * util::MiB;
         bytes *= 4) {
      const double ring_s = comm::ring_seconds(base.link, k, bytes);
      const double tree_s = comm::tree_seconds(base.link, k, bytes);
      const comm::Algorithm pick = comm::pick_algorithm(base.link, k, bytes);
      const std::string tag = "K=" + std::to_string(k) + " " +
                              util::format_bytes(bytes);
      report.add_metric("ring s: " + tag, ring_s, bytes);
      report.add_metric("tree s: " + tag, tree_s, bytes);
      std::printf("    %-14s ring %8.4fs  tree %8.4fs  -> %s\n", tag.c_str(),
                  ring_s, tree_s, std::string(comm::to_string(pick)).c_str());
    }
  }

  report.write(argc, argv, "micro_allreduce.csv");
  std::printf("\nwrote BENCH_allreduce.json\n");
  return 0;
}
