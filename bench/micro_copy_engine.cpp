// Microbenchmarks for the copy engine: real host-side copy throughput per
// transfer size and direction, and the modeled (simulated-time) bandwidth
// the timing model assigns to the same transfers.
#include <benchmark/benchmark.h>

#include "mem/arena.hpp"
#include "mem/copy_engine.hpp"
#include "util/align.hpp"

using namespace ca;

namespace {

struct Rig {
  Rig()
      : platform(sim::Platform::cascade_lake_scaled(64 * util::MiB,
                                                    64 * util::MiB)),
        engine(platform, clock, counters),
        src(32 * util::MiB),
        dst(32 * util::MiB) {}

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  mem::CopyEngine engine;
  mem::Arena src;
  mem::Arena dst;
};

void BM_CopyHostThroughput(benchmark::State& state) {
  Rig rig;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rig.engine.copy(rig.dst.base(), sim::kSlow, rig.src.base(), sim::kFast,
                    bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CopyHostThroughput)
    ->Arg(64 * 1024)
    ->Arg(1 * 1024 * 1024)
    ->Arg(16 * 1024 * 1024);

void BM_ModeledBandwidthReport(benchmark::State& state) {
  // Not a timing benchmark per se: reports the *modeled* bandwidth for the
  // given transfer size in the counters, exercising the model hot path.
  Rig rig;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  double bw = 0.0;
  for (auto _ : state) {
    bw = rig.engine.modeled_bandwidth(bytes, sim::kFast, sim::kSlow, true);
    benchmark::DoNotOptimize(bw);
  }
  state.counters["modeled_MiBps"] = bw / (1024.0 * 1024.0);
  state.counters["threads"] =
      static_cast<double>(rig.engine.threads_for(bytes));
}
BENCHMARK(BM_ModeledBandwidthReport)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1 * 1024 * 1024)
    ->Arg(4 * 1024 * 1024)
    ->Arg(16 * 1024 * 1024);

void BM_FillZero(benchmark::State& state) {
  Rig rig;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rig.engine.fill_zero(rig.dst.base(), sim::kFast, bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FillZero)->Arg(1 * 1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
