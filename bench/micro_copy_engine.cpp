// Microbenchmark: the copy engine's real data plane, per dispatch level.
//
// Three families are timed (host wall seconds -- this measures the real
// byte movement, not the simulated clock):
//   copy     engine.copy per transfer size and ISA level, writeback
//            direction (fast -> slow), NT stores engaged
//   nt-vs-t  the headline comparison: the same large writeback with
//            non_temporal on (streamed past the cache) vs off (temporal
//            rep-movsb / memcpy), plus the modeled-time ratio the
//            bandwidth model assigns to the same pair
//   fill     engine.fill_zero, which always takes the writeback hint
//
// The acceptance number -- NT writeback vs temporal on the large transfer
// -- is emitted into BENCH_copy_engine.json as an explicit "speedup:"
// record so CI can regress on it.  The NT win on real NVRAM is the paper's
// point (PAPER.md SV-d); on a DRAM-only host the ratio mostly reflects
// cache-allocation avoidance, so treat the modeled ratio as the shape
// target and the wall ratio as evidence the path is wired.
//
// `--smoke` shrinks sizes and repetitions for the bench-smoke ctest label.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "mem/arena.hpp"
#include "mem/copy_engine.hpp"
#include "simd/copy.hpp"
#include "simd/isa.hpp"
#include "util/align.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

struct Rig {
  explicit Rig(std::size_t arena_bytes)
      : platform(sim::Platform::cascade_lake_scaled(64 * util::MiB,
                                                    64 * util::MiB)),
        engine(platform, clock, counters),
        src(arena_bytes),
        dst(arena_bytes) {}

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  mem::CopyEngine engine;
  mem::Arena src;
  mem::Arena dst;
};

/// Wall seconds for `reps` writeback copies of `bytes` (fast -> slow).
double time_copy(Rig& rig, std::size_t bytes, int reps, bool non_temporal) {
  WallTimer wall;
  for (int r = 0; r < reps; ++r) {
    rig.engine.copy(rig.dst.base(), sim::kSlow, rig.src.base(), sim::kFast,
                    bytes, non_temporal);
  }
  return wall.seconds();
}

double gibps(std::size_t bytes, int reps, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) * reps / seconds /
         (1024.0 * 1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::size_t big = smoke ? 2 * util::MiB : 16 * util::MiB;
  const int reps = smoke ? 2 : 20;

  Rig rig(big);
  const simd::IsaLevel entry = simd::active_level();

  std::printf("=== micro_copy_engine ===\n");
  std::printf(
      "Real copy-path throughput per dispatch level (writeback direction,\n"
      "fast -> slow; NT threshold %zu KiB, copy chunk %zu KiB).  Host wall\n"
      "seconds over %d rep(s).%s\n\n",
      simd::kNtThreshold / 1024, rig.platform.copy_chunk / 1024, reps,
      smoke ? "  [smoke sizes]" : "");

  BenchReport report("copy_engine");
  report.csv_header({"label", "seconds", "GiB/s"});

  // --- per-level writeback copy sweep ---------------------------------------
  const std::size_t sizes[] = {64 * util::KiB, 1 * util::MiB, big};
  std::printf("%-34s %12s %9s\n", "copy (writeback)", "wall [s]", "GiB/s");
  for (int l = 0; l <= static_cast<int>(simd::max_supported_level()); ++l) {
    const auto level = static_cast<simd::IsaLevel>(l);
    simd::set_level(level);
    for (const std::size_t bytes : sizes) {
      const double t = time_copy(rig, bytes, reps, /*non_temporal=*/true);
      const std::string label = std::string("copy ") +
                                simd::level_name(level) + " " +
                                util::format_bytes(bytes);
      std::printf("%-34s %12.4f %9.2f\n", label.c_str(), t,
                  gibps(bytes, reps, t));
      report.add(label, 0.0, t, bytes);
      report.csv_row({label, util::format_fixed(t, 4),
                      util::format_fixed(gibps(bytes, reps, t), 2)});
    }
  }
  std::printf("\n");

  // --- NT writeback vs temporal: the acceptance pair ------------------------
  simd::set_level(simd::max_supported_level());
  const int nt_reps = reps * 2;
  const double t_nt = time_copy(rig, big, nt_reps, /*non_temporal=*/true);
  const double t_tmp = time_copy(rig, big, nt_reps, /*non_temporal=*/false);
  const double wall_ratio = t_nt > 0.0 ? t_tmp / t_nt : 0.0;
  const double m_nt =
      rig.engine.modeled_copy_time(big, sim::kFast, sim::kSlow, true);
  const double m_tmp =
      rig.engine.modeled_copy_time(big, sim::kFast, sim::kSlow, false);
  const double modeled_ratio = m_nt > 0.0 ? m_tmp / m_nt : 0.0;
  std::printf("nt writeback vs temporal (%s x %d, level %s):\n"
              "  wall    %0.4fs vs %0.4fs  -> %.2fx\n"
              "  modeled %0.4fs vs %0.4fs  -> %.2fx (write_bw_nt curve)\n\n",
              util::format_bytes(big).c_str(), nt_reps,
              simd::level_name(simd::active_level()), t_nt, t_tmp, wall_ratio,
              m_nt, m_tmp, modeled_ratio);
  report.add_speedup("nt writeback vs temporal, wall", wall_ratio, big);
  report.add("speedup: nt writeback vs temporal, modeled", m_tmp - m_nt,
             modeled_ratio, big);
  report.csv_row({"nt vs temporal wall ratio",
                  util::format_fixed(wall_ratio, 2), ""});
  report.csv_row({"nt vs temporal modeled ratio",
                  util::format_fixed(modeled_ratio, 2), ""});

  // --- fill_zero (always writeback-hinted) ----------------------------------
  double t_fill = 0.0;
  {
    WallTimer wall;
    for (int r = 0; r < reps; ++r) {
      rig.engine.fill_zero(rig.dst.base(), sim::kSlow, big);
    }
    t_fill = wall.seconds();
  }
  std::printf("%-34s %12.4f %9.2f\n\n", "fill_zero (writeback)", t_fill,
              gibps(big, reps, t_fill));
  report.add("fill_zero writeback", 0.0, t_fill, big);
  report.csv_row({"fill_zero writeback", util::format_fixed(t_fill, 4),
                  util::format_fixed(gibps(big, reps, t_fill), 2)});

  // --- telemetry ------------------------------------------------------------
  std::printf("%s\n", telemetry::format_simd_report(
                          {{"DRAM", rig.counters.device(sim::kFast)
                                        .bytes_written_nt},
                           {"NVRAM", rig.counters.device(sim::kSlow)
                                         .bytes_written_nt}})
                          .c_str());
  std::printf("engine stats: %llu copies, %llu bytes, %llu nt bytes\n",
              static_cast<unsigned long long>(rig.engine.stats().copies),
              static_cast<unsigned long long>(rig.engine.stats().bytes),
              static_cast<unsigned long long>(rig.engine.stats().nt_bytes));

  simd::set_level(entry);
  report.write(argc, argv, "micro_copy_engine.csv");
  return 0;
}
