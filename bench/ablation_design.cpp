// Ablations over the design choices DESIGN.md calls out: allocator fit
// policy, small-object migration threshold, copy-engine chunk size, and
// the GC trigger fraction.  Each sweep runs the integration workload (a
// pressured VGG-style net) end-to-end and reports simulated time plus the
// relevant secondary metric.
#include "common.hpp"
#include "policy/lru_policy.hpp"
#include "twolm/direct_mapped_cache.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

ModelSpec workload() {
  ModelSpec s;
  s.family = ModelSpec::Family::kVgg;
  s.name = "VGG ablation";
  s.stages = {6, 6};
  s.batch = 48;
  s.image = 16;
  s.classes = 10;
  s.base_channels = 16;
  s.compute_efficiency = 0.5;
  return s;
}

dnn::IterationMetrics run_with(const dnn::HarnessConfig& hc) {
  dnn::Harness h(hc);
  auto model = dnn::build_model(h.engine(), workload());
  dnn::Trainer t(h, *model);
  dnn::IterationMetrics m;
  for (int i = 0; i < 2; ++i) m = t.run_iteration();
  return m;
}

dnn::HarnessConfig base_config() {
  dnn::HarnessConfig hc;
  hc.mode = Mode::kCaLM;
  hc.dram_bytes = 4 * util::MiB;
  hc.nvram_bytes = 128 * util::MiB;
  hc.backend = dnn::Backend::kSim;
  hc.compute_efficiency = workload().compute_efficiency;
  return hc;
}

void sweep_small_object_threshold() {
  std::printf("--- Ablation: small-object migration threshold ---\n");
  std::vector<std::vector<std::string>> rows = {
      {"threshold", "iteration time", "NVRAM writes (MiB)"}};
  for (const std::size_t threshold :
       {std::size_t{0}, 4 * util::KiB, 64 * util::KiB, 512 * util::KiB}) {
    auto hc = base_config();
    hc.min_migratable = threshold;
    const auto m = run_with(hc);
    rows.push_back({util::format_bytes(threshold),
                    util::format_fixed(m.seconds, 2) + "s",
                    mib(m.nvram.bytes_written)});
  }
  std::fputs(util::render_table(rows).c_str(), stdout);
  std::printf(
      "Expected: tiny thresholds waste per-transfer overhead migrating "
      "biases;\nhuge thresholds pin whole activations and overflow DRAM.\n\n");
}

void sweep_dram_budget_modes() {
  std::printf("--- Ablation: policy mode under shrinking DRAM ---\n");
  std::vector<std::vector<std::string>> rows = {
      {"DRAM", "CA: L", "CA: LM", "CA: LMP"}};
  for (const std::size_t dram_mib : {2u, 4u, 8u, 16u}) {
    std::vector<std::string> line = {std::to_string(dram_mib) + " MiB"};
    for (const Mode mode : {Mode::kCaL, Mode::kCaLM, Mode::kCaLMP}) {
      auto hc = base_config();
      hc.mode = mode;
      hc.dram_bytes = dram_mib * util::MiB;
      line.push_back(util::format_fixed(run_with(hc).seconds, 2) + "s");
    }
    rows.push_back(line);
  }
  std::fputs(util::render_table(rows).c_str(), stdout);
  std::printf(
      "Expected: LM dominates; the optimizations matter most at small "
      "budgets.\n\n");
}

void sweep_gc_pressure() {
  std::printf("--- Ablation: GC reliance without eager retire (CA: L) ---\n");
  std::vector<std::vector<std::string>> rows = {
      {"mode", "iteration time", "GC collections", "NVRAM writes (MiB)"}};
  for (const Mode mode : {Mode::kCaL, Mode::kCaLM}) {
    auto hc = base_config();
    hc.mode = mode;
    dnn::Harness h(hc);
    auto model = dnn::build_model(h.engine(), workload());
    dnn::Trainer t(h, *model);
    dnn::IterationMetrics m;
    for (int i = 0; i < 2; ++i) m = t.run_iteration();
    rows.push_back({to_string(mode), util::format_fixed(m.seconds, 2) + "s",
                    std::to_string(h.runtime().gc_stats().collections),
                    mib(m.nvram.bytes_written)});
  }
  std::fputs(util::render_table(rows).c_str(), stdout);
  std::printf(
      "Expected: without M the GC runs under pressure and dead data costs "
      "NVRAM writebacks.\n\n");
}

void sweep_cache_associativity() {
  std::printf("--- Ablation: 2LM DRAM-cache associativity ---\n");
  std::vector<std::vector<std::string>> rows = {
      {"ways", "iteration time", "hit rate", "dirty-miss rate"}};
  for (const std::size_t ways : {1u, 2u, 4u, 8u}) {
    dnn::HarnessConfig hc;
    hc.mode = Mode::kTwoLmNone;
    hc.dram_bytes = 4 * util::MiB;
    hc.nvram_bytes = 128 * util::MiB;
    hc.backend = dnn::Backend::kSim;
    hc.compute_efficiency = workload().compute_efficiency;
    dnn::Harness h(hc);
    // Swap in a cache with the requested associativity.
    twolm::CacheConfig cc = h.cache()->config();
    cc.ways = ways;
    twolm::DirectMappedCache cache(cc, h.runtime().platform(),
                                   h.runtime().counters());
    dnn::TwoLmExecContext ctx(h.runtime(), cache);
    dnn::EngineConfig ec;
    ec.backend = dnn::Backend::kSim;
    ec.issue_retire = false;
    ec.compute_efficiency = workload().compute_efficiency;
    dnn::Engine engine(h.runtime(), ctx, ec);
    auto model = dnn::build_model(engine, workload());
    double seconds = 0.0;
    for (int i = 0; i < 2; ++i) {
      const double t0 = h.runtime().clock().now();
      cache.reset_stats();
      dnn::Tensor input = engine.tensor(model->input_shape());
      dnn::Tensor labels = engine.tensor({workload().batch});
      engine.softmax_ce_loss(model->forward(engine, input), labels);
      engine.backward();
      engine.sgd_step(0.01f);
      engine.end_iteration();
      seconds = h.runtime().clock().now() - t0;
    }
    rows.push_back({std::to_string(ways),
                    util::format_fixed(seconds, 2) + "s",
                    util::format_fixed(100.0 * cache.stats().hit_rate(), 1) +
                        "%",
                    util::format_fixed(
                        100.0 * cache.stats().dirty_miss_rate(), 1) +
                        "%"});
  }
  std::fputs(util::render_table(rows).c_str(), stdout);
  std::printf(
      "Expected: associativity softens conflict misses, but the capacity "
      "problem\n(footprint >> cache) and the semantic blindness remain -- "
      "hardware ways are\nnot a substitute for CachedArrays' semantic "
      "hints.\n\n");
}

}  // namespace

int main() {
  print_header("Ablations",
               "Design-choice sweeps on a pressured training workload "
               "(4 MiB DRAM tier unless stated).");
  sweep_small_object_threshold();
  sweep_dram_budget_modes();
  sweep_gc_pressure();
  sweep_cache_associativity();
  return 0;
}
