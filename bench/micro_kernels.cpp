// Microbenchmark: the fast compute-kernel tier against the scalar seed
// kernels, on VGG-416-shaped layers (DESIGN.md §"Compute kernels").
//
// Three families are timed:
//   conv     im2col + blocked GEMM vs the scalar direct convolution, on the
//            per-stage 3x3 layer shapes of ModelSpec::vgg416_large
//            (forward + backward data + backward weights, like one training
//            step touches them)
//   gemm     the cache-blocked register-tiled GEMM core vs a naive triple
//            loop, on the implied im2col matrix shapes
//   eltwise  the ThreadPool-parallel elementwise family (relu fwd+bwd, add,
//            sgd) vs the scalar loops, on a stage-0 activation-sized buffer
//
// Every row reports host wall seconds (simulated seconds do not apply: this
// measures the real arithmetic the Sentinel argument rests on) and the
// achieved GEMM GFLOP/s from the kernel counters.  The headline acceptance
// number -- fast-tier speedup on the 3x3 conv fwd+bwd at 8 threads -- is
// emitted into BENCH_kernels.json as an explicit "speedup:" record so CI
// can regress on it.
//
// `--smoke` switches to tiny shapes / one repetition for the bench-smoke
// ctest label.
#include <cstdio>

#include "common.hpp"
#include "dnn/gemm.hpp"
#include "dnn/ops_real.hpp"
#include "dnn/scratch.hpp"
#include "simd/gemm_kernel.hpp"
#include "simd/isa.hpp"
#include "telemetry/counters.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

using namespace ca;
using namespace ca::bench;
using dnn::real::ConvDims;
using dnn::real::KernelCtx;

namespace {

constexpr std::size_t kThreads = 8;

std::vector<float> randn(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// The steady-state 3x3 conv layer of each VGG-416 stage (cin == cout; the
/// builder doubles channels and maxpool halves the spatial dims per stage).
std::vector<ConvDims> vgg416_layers(bool smoke) {
  const dnn::ModelSpec spec = dnn::ModelSpec::vgg416_large();
  std::vector<ConvDims> layers;
  std::size_t hw = spec.image;
  for (std::size_t s = 0; s < spec.stages.size() && hw >= 2; ++s) {
    const std::size_t c =
        spec.base_channels * std::min<std::size_t>(std::size_t{1} << s, 8);
    ConvDims d;
    d.n = smoke ? 2 : spec.batch;
    d.cin = c;
    d.cout = c;
    d.h = hw;
    d.w = hw;
    d.k = 3;
    d.stride = 1;
    d.pad = 1;
    layers.push_back(d);
    hw /= 2;
    if (smoke && layers.size() == 2) break;
  }
  return layers;
}

struct ConvTiming {
  double fwd = 0.0;
  double bwd = 0.0;  ///< bwd_data + bwd_weights
  [[nodiscard]] double total() const { return fwd + bwd; }
};

/// One training step's worth of conv work on `d`, repeated `reps` times.
/// With ctx == nullptr the scalar tier runs.
ConvTiming time_conv(const ConvDims& d, int reps, const KernelCtx* ctx) {
  const auto x = randn(d.n * d.cin * d.h * d.w, 1);
  const auto w = randn(d.cout * d.cin * d.k * d.k, 2);
  const auto b = randn(d.cout, 3);
  const std::size_t ysz = d.n * d.cout * d.hout() * d.wout();
  const auto gy = randn(ysz, 4);
  std::vector<float> y(ysz), gx(x.size()), gw(w.size());

  ConvTiming t;
  for (int r = 0; r < reps; ++r) {
    {
      WallTimer wall;
      if (ctx != nullptr) {
        dnn::real::conv2d_fwd(*ctx, x.data(), w.data(), b.data(), y.data(),
                              d);
      } else {
        dnn::real::conv2d_fwd(x.data(), w.data(), b.data(), y.data(), d);
      }
      t.fwd += wall.seconds();
    }
    {
      WallTimer wall;
      if (ctx != nullptr) {
        dnn::real::conv2d_bwd_data(*ctx, w.data(), gy.data(), gx.data(), d);
        dnn::real::conv2d_bwd_weights(*ctx, x.data(), gy.data(), gw.data(),
                                      d);
      } else {
        dnn::real::conv2d_bwd_data(w.data(), gy.data(), gx.data(), d);
        dnn::real::conv2d_bwd_weights(x.data(), gy.data(), gw.data(), d);
      }
      t.bwd += wall.seconds();
    }
  }
  return t;
}

double time_gemm(std::size_t m, std::size_t n, std::size_t k, int reps,
                 const KernelCtx* ctx) {
  const auto a = randn(m * k, 5);
  const auto b = randn(k * n, 6);
  std::vector<float> c(m * n);
  WallTimer wall;
  for (int r = 0; r < reps; ++r) {
    if (ctx != nullptr) {
      dnn::real::gemm(*ctx, false, false, m, n, k, 1.0f, a.data(), k,
                      b.data(), n, 0.0f, c.data(), n);
    } else {
      // Naive triple loop: the pre-fast-tier baseline.
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (std::size_t p = 0; p < k; ++p) {
            acc += a[i * k + p] * b[p * n + j];
          }
          c[i * n + j] = acc;
        }
      }
    }
  }
  return wall.seconds();
}

double time_eltwise(std::size_t n, int reps, const KernelCtx* ctx) {
  const auto x = randn(n, 7);
  const auto g = randn(n, 8);
  std::vector<float> y(n), w(x);
  WallTimer wall;
  for (int r = 0; r < reps; ++r) {
    if (ctx != nullptr) {
      dnn::real::relu_fwd(*ctx, x.data(), y.data(), n);
      dnn::real::relu_bwd(*ctx, x.data(), g.data(), y.data(), n);
      dnn::real::add_fwd(*ctx, x.data(), g.data(), y.data(), n);
      dnn::real::sgd_update(*ctx, w.data(), g.data(), 0.01f, n);
    } else {
      dnn::real::relu_fwd(x.data(), y.data(), n);
      dnn::real::relu_bwd(x.data(), g.data(), y.data(), n);
      dnn::real::add_fwd(x.data(), g.data(), y.data(), n);
      dnn::real::sgd_update(w.data(), g.data(), 0.01f, n);
    }
  }
  return wall.seconds();
}

std::string conv_label(const ConvDims& d) {
  return "conv3x3 n" + std::to_string(d.n) + " c" + std::to_string(d.cin) +
         " " + std::to_string(d.h) + "x" + std::to_string(d.w);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const int reps = smoke ? 1 : 3;

  util::ThreadPool pool(kThreads);
  dnn::real::ScratchPool scratch;
  telemetry::KernelCounters counters;
  const KernelCtx fast{&pool, &scratch, &counters, false};

  std::printf("=== micro_kernels ===\n");
  std::printf(
      "Fast compute-kernel tier (blocked GEMM + im2col + pool-parallel "
      "eltwise,\n%zu threads) vs the scalar seed kernels, on VGG-416-shaped "
      "layers.\nHost wall seconds; %d rep(s) per row.%s\n\n",
      kThreads, reps, smoke ? "  [smoke shapes]" : "");

  BenchReport report("kernels");
  report.csv_header({"kernel", "scalar_s", "fast_s", "speedup"});

  // --- conv: the headline numbers -------------------------------------------
  double conv_scalar_total = 0.0, conv_fast_total = 0.0;
  std::printf("%-26s %12s %12s %9s %10s\n", "conv layer (fwd+bwd)",
              "scalar [s]", "fast [s]", "speedup", "GFLOP/s");
  for (const ConvDims& d : vgg416_layers(smoke)) {
    const ConvTiming scalar = time_conv(d, reps, nullptr);
    const telemetry::KernelCounters before = counters;
    const ConvTiming fastt = time_conv(d, reps, &fast);
    const telemetry::KernelCounters delta = counters.delta(before);
    const double speedup =
        fastt.total() > 0.0 ? scalar.total() / fastt.total() : 0.0;
    conv_scalar_total += scalar.total();
    conv_fast_total += fastt.total();
    std::printf("%-26s %12.4f %12.4f %8.1fx %10.1f\n",
                conv_label(d).c_str(), scalar.total(), fastt.total(), speedup,
                delta.gemm_gflops());
    report.add(conv_label(d) + " scalar", 0.0, scalar.total());
    report.add(conv_label(d) + " fast", 0.0, fastt.total());
    report.csv_row({conv_label(d), util::format_fixed(scalar.total(), 4),
                    util::format_fixed(fastt.total(), 4),
                    util::format_fixed(speedup, 1)});
  }
  const double conv_speedup =
      conv_fast_total > 0.0 ? conv_scalar_total / conv_fast_total : 0.0;
  std::printf("%-26s %12.4f %12.4f %8.1fx\n\n", "all conv layers",
              conv_scalar_total, conv_fast_total, conv_speedup);
  report.add_speedup("conv3x3 fwd+bwd, 8 threads vs scalar", conv_speedup);

  // --- gemm: the im2col matrix shapes ---------------------------------------
  std::printf("%-26s %12s %12s %9s\n", "gemm m*n*k", "naive [s]", "fast [s]",
              "speedup");
  struct GemmShape {
    std::size_t m, n, k;
  };
  std::vector<GemmShape> gemms;
  for (const ConvDims& d : vgg416_layers(smoke)) {
    // The forward im2col GEMM of one image: (cout) x (ho*wo) x (cin*k*k).
    gemms.push_back({d.cout, d.hout() * d.wout(), d.cin * d.k * d.k});
  }
  gemms.push_back(smoke ? GemmShape{64, 64, 64} : GemmShape{256, 1024, 512});
  for (const auto& g : gemms) {
    const double naive = time_gemm(g.m, g.n, g.k, reps, nullptr);
    const double fastt = time_gemm(g.m, g.n, g.k, reps, &fast);
    const double speedup = fastt > 0.0 ? naive / fastt : 0.0;
    const std::string label = "gemm " + std::to_string(g.m) + "x" +
                              std::to_string(g.n) + "x" + std::to_string(g.k);
    std::printf("%-26s %12.4f %12.4f %8.1fx\n", label.c_str(), naive, fastt,
                speedup);
    report.add(label + " naive", 0.0, naive);
    report.add(label + " fast", 0.0, fastt);
    report.csv_row({label, util::format_fixed(naive, 4),
                    util::format_fixed(fastt, 4),
                    util::format_fixed(speedup, 1)});
  }
  std::printf("\n");

  // --- gemm dispatch sweep: each ISA tile vs the 4x8 scalar tile ------------
  // Same blocked code path at every level; only the register tile changes.
  // The "dispatched vs 4x8" ratio is the acceptance record for the
  // CA_NATIVE=OFF build hitting native width through runtime dispatch.
  {
    const std::size_t m = smoke ? 96 : 384;
    const std::size_t n = smoke ? 128 : 1024;
    const std::size_t k = smoke ? 96 : 512;
    const int sweep_reps = smoke ? 1 : 5;
    const simd::IsaLevel entry = simd::active_level();
    std::printf("%-26s %12s %9s   (m=%zu n=%zu k=%zu, blocked path)\n",
                "gemm dispatch level", "fast [s]", "vs 4x8", m, n, k);
    double scalar_s = 0.0, best_s = 0.0;
    for (int l = 0; l <= static_cast<int>(simd::max_supported_level()); ++l) {
      const auto level = static_cast<simd::IsaLevel>(l);
      simd::set_level(level);
      const simd::GemmTile& tile = simd::gemm_tile(level);
      const double t = time_gemm(m, n, k, sweep_reps, &fast);
      if (level == simd::IsaLevel::kScalar) scalar_s = t;
      best_s = t;  // levels ascend; the last one is the dispatched choice
      const double vs = t > 0.0 ? scalar_s / t : 0.0;
      const std::string label = std::string("gemm dispatch ") +
                                simd::level_name(level) + " (" +
                                std::to_string(tile.mr) + "x" +
                                std::to_string(tile.nr) + ")";
      std::printf("%-26s %12.4f %8.1fx\n", label.c_str(), t, vs);
      report.add(label, 0.0, t);
      report.csv_row({label, "", util::format_fixed(t, 4),
                      util::format_fixed(vs, 1)});
    }
    simd::set_level(entry);
    const double dispatch_speedup = best_s > 0.0 ? scalar_s / best_s : 0.0;
    std::printf("%-26s %12s %8.1fx\n\n", "dispatched vs 4x8 scalar", "",
                dispatch_speedup);
    report.add_speedup("dispatched gemm vs 4x8 scalar tile (CA_NATIVE=OFF)",
                       dispatch_speedup);
  }

  // --- eltwise: stage-0 activation-sized buffers ----------------------------
  const std::size_t elt_n = smoke ? 64 * 1024 : 20 * 16 * 32 * 32 * 4;
  const int elt_reps = reps * 20;
  const double elt_scalar = time_eltwise(elt_n, elt_reps, nullptr);
  const double elt_fast = time_eltwise(elt_n, elt_reps, &fast);
  const std::string elt_label = "eltwise " + std::to_string(elt_n) + " floats";
  std::printf("%-26s %12.4f %12.4f %8.1fx\n\n", elt_label.c_str(), elt_scalar,
              elt_fast, elt_fast > 0.0 ? elt_scalar / elt_fast : 0.0);
  report.add(elt_label + " scalar", 0.0, elt_scalar);
  report.add(elt_label + " fast", 0.0, elt_fast);
  report.csv_row({elt_label, util::format_fixed(elt_scalar, 4),
                  util::format_fixed(elt_fast, 4),
                  util::format_fixed(
                      elt_fast > 0.0 ? elt_scalar / elt_fast : 0.0, 1)});

  // --- parallel_for rendezvous: the latch wakeup tail -----------------------
  // Each round is one tiny fan-out/fan-in through the pool: the cost is
  // almost entirely the rendezvous (CompletionLatch arrive/wait), so the
  // p99 exposes the wakeup tail the spin-then-park latch is meant to keep
  // short.  min_grain = 1 forces the pool path even at this size.
  {
    const int rounds = smoke ? 200 : 5000;
    std::vector<float> buf(kThreads * 8, 0.0f);
    std::vector<double> lat(static_cast<std::size_t>(rounds));
    for (int i = 0; i < rounds; ++i) {
      WallTimer t;
      pool.parallel_for(
          buf.size(),
          [&](std::size_t b, std::size_t e) {
            for (std::size_t j = b; j < e; ++j) buf[j] += 1.0f;
          },
          /*min_grain=*/1);
      lat[static_cast<std::size_t>(i)] = t.seconds();
    }
    const double p50 = percentile(lat, 0.5);
    const double p99 = percentile(lat, 0.99);
    std::printf("parallel_for rendezvous (%d rounds, n=%zu): "
                "p50 %.2fus, p99 %.2fus wakeup tail\n\n",
                rounds, buf.size(), p50 * 1e6, p99 * 1e6);
    report.add_metric("parallel_for rendezvous p50 s", p50);
    report.add_metric("parallel_for rendezvous p99 s", p99);
    report.csv_row({"parallel_for rendezvous p50/p99 us",
                    util::format_fixed(p50 * 1e6, 2),
                    util::format_fixed(p99 * 1e6, 2), ""});
  }

  std::printf("Totals: %zu gemm calls, %.1f achieved GFLOP/s, "
              "%.3f s in gemm, %.3f s in im2col.\n",
              static_cast<std::size_t>(counters.gemm_calls),
              counters.gemm_gflops(), counters.gemm_seconds,
              counters.im2col_seconds);
  const auto sstats = scratch.stats();
  std::printf("Scratch: %zu leases over %zu buffers, %s peak.\n",
              static_cast<std::size_t>(sstats.leases), sstats.buffers,
              util::format_bytes(sstats.peak_bytes).c_str());

  if (!smoke && conv_speedup < 5.0) {
    std::printf("\nWARNING: conv fwd+bwd speedup %.1fx is below the 5x "
                "acceptance floor.\n",
                conv_speedup);
  }

  report.write(argc, argv, "micro_kernels.csv");
  return 0;
}
