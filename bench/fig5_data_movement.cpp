// Fig. 5: DRAM and NVRAM read/write traffic for one training iteration of
// the large networks, across all operating modes.
//
// Expected shapes (paper §V):
//   * CA:0 generates traffic comparable to 2LM:0 but with fewer NVRAM
//     writes (the GC still runs between iterations);
//   * local allocation (L) removes the compulsory NVRAM->DRAM copy:
//     NVRAM reads and DRAM writes drop sharply;
//   * memory optimizations (M) collapse NVRAM writes (DenseNet: ~1100 ->
//     ~350 in the paper) and flip NVRAM reads above writes;
//   * prefetching (P) trades NVRAM reads for DRAM reads.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

int main() {
  print_header("Figure 5",
               "Data moved (MiB) during a single training iteration, per "
               "device and direction.");

  const std::vector<ModelSpec> models = {ModelSpec::densenet264_large(),
                                         ModelSpec::resnet200_large(),
                                         ModelSpec::vgg416_large()};

  for (const auto& spec : models) {
    std::printf("--- %s ---\n", spec.name.c_str());
    std::vector<std::vector<std::string>> rows = {
        {"mode", "DRAM read", "DRAM write", "NVRAM read", "NVRAM write"}};
    std::uint64_t ca_l_writes = 0;
    std::uint64_t ca_lm_writes = 0;
    std::uint64_t ca_lm_reads = 0;
    for (const Mode mode : all_modes()) {
      RunConfig cfg;
      cfg.spec = spec;
      cfg.mode = mode;
      const auto m = run_training(cfg).steady();
      rows.push_back({to_string(mode), mib(m.dram.bytes_read),
                      mib(m.dram.bytes_written), mib(m.nvram.bytes_read),
                      mib(m.nvram.bytes_written)});
      if (mode == Mode::kCaL) ca_l_writes = m.nvram.bytes_written;
      if (mode == Mode::kCaLM) {
        ca_lm_writes = m.nvram.bytes_written;
        ca_lm_reads = m.nvram.bytes_read;
      }
    }
    std::fputs(util::render_table(rows).c_str(), stdout);
    std::printf(
        "NVRAM writes, CA:L -> CA:LM: %s -> %s MiB; reads exceed writes "
        "under LM: %s\n\n",
        mib(ca_l_writes).c_str(), mib(ca_lm_writes).c_str(),
        ca_lm_reads > ca_lm_writes ? "yes" : "no");
  }
  return 0;
}
