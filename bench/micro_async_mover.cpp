// Microbenchmarks for the asynchronous mover: the caller-side cost of
// scheduling a transfer (which must NOT scale with transfer size -- the
// real memcpy runs on a background mover thread), contrasted with the
// synchronous copy path (which does), plus the modeled channel-overlap
// behaviour of the per-direction channel pools.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "dm/data_manager.hpp"
#include "gbench_report.hpp"
#include "util/align.hpp"

using namespace ca;

namespace {

constexpr std::size_t kBatch = 8;  ///< schedules timed per manual sample

struct Rig {
  explicit Rig(std::size_t channels = 4)
      : platform([channels] {
          auto p = sim::Platform::cascade_lake_scaled(128 * util::MiB,
                                                      256 * util::MiB);
          p.mover_channels = channels;
          return p;
        }()),
        dm(platform, clock, counters) {}

  sim::Platform platform;
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
};

// Caller wall-clock per copyto_async: a batch of schedules onto distinct
// destinations is timed; the drain (real memcpys on the mover) is not.
// Compare against BM_CopytoSyncCall: this curve stays flat as bytes grow.
void BM_CopytoAsyncSchedule(benchmark::State& state) {
  Rig rig;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<dm::Region*> srcs;
  std::vector<dm::Region*> dsts;
  for (std::size_t i = 0; i < kBatch; ++i) {
    srcs.push_back(rig.dm.allocate(sim::kSlow, bytes));
    dsts.push_back(rig.dm.allocate(sim::kFast, bytes));
  }
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBatch; ++i) {
      rig.dm.copyto_async(*dsts[i], *srcs[i]);
    }
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(kBatch));
    // Untimed housekeeping: catch the simulated clock up to the mover
    // horizon and retire everything so the registry stays small.
    const double lag = rig.dm.mover_busy_until() - rig.clock.now();
    if (lag > 0.0) rig.clock.advance(lag, sim::TimeCategory::kCompute);
    rig.dm.drain_transfers();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch) *
                          static_cast<int64_t>(bytes));
  state.counters["inflight_peak"] =
      static_cast<double>(rig.dm.async_stats().inflight_peak);
}
BENCHMARK(BM_CopytoAsyncSchedule)
    ->Arg(256 * 1024)
    ->Arg(1 * 1024 * 1024)
    ->Arg(4 * 1024 * 1024)
    ->Arg(16 * 1024 * 1024)
    ->UseManualTime();

// Caller wall-clock per synchronous copyto: scales with transfer size (the
// caller performs the chunked memcpy itself).
void BM_CopytoSyncCall(benchmark::State& state) {
  Rig rig;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  dm::Region* src = rig.dm.allocate(sim::kSlow, bytes);
  dm::Region* dst = rig.dm.allocate(sim::kFast, bytes);
  for (auto _ : state) {
    rig.dm.copyto(*dst, *src);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CopytoSyncCall)
    ->Arg(256 * 1024)
    ->Arg(1 * 1024 * 1024)
    ->Arg(4 * 1024 * 1024)
    ->Arg(16 * 1024 * 1024);

// Modeled channel overlap: N same-direction transfers scheduled
// back-to-back finish in ceil(N / channels_per_direction) serial slots,
// not N.  Reported via counters; the timed section is the scheduling loop.
void BM_ChannelOverlapModel(benchmark::State& state) {
  const std::size_t channels = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = 2 * util::MiB;
  for (auto _ : state) {
    state.PauseTiming();
    Rig rig(channels);
    std::vector<dm::Region*> srcs;
    std::vector<dm::Region*> dsts;
    for (std::size_t i = 0; i < kBatch; ++i) {
      srcs.push_back(rig.dm.allocate(sim::kSlow, bytes));
      dsts.push_back(rig.dm.allocate(sim::kFast, bytes));
    }
    state.ResumeTiming();
    double last_done = 0.0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      last_done = rig.dm.copyto_async(*dsts[i], *srcs[i]);
    }
    state.PauseTiming();
    const double one = rig.dm.engine().modeled_copy_time(
        bytes, sim::kSlow, sim::kFast, true);
    state.counters["serial_slots"] = last_done / one;
    state.counters["fetch_channels"] = static_cast<double>(
        rig.dm.engine().channels_for(sim::kSlow, sim::kFast));
    rig.dm.drain_transfers();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ChannelOverlapModel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return ca::bench::run_gbench_with_report(argc, argv, "async_mover");
}
