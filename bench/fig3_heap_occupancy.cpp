// Fig. 3: resident heap memory over (simulated) time during one ResNet
// training iteration, 2LM:0 vs 2LM:M.
//
// Expected shape: without memory optimizations the resident footprint
// grows monotonically until the garbage collector runs; with eager
// freeing it turns over during the backward pass and stays much lower.
#include "common.hpp"

using namespace ca;
using namespace ca::bench;

namespace {

telemetry::TimeSeries trace_mode(Mode mode) {
  telemetry::TimeSeries series(std::string("resident[") + to_string(mode) +
                               "]");
  RunConfig cfg;
  cfg.spec = ModelSpec::resnet200_large();
  cfg.mode = mode;
  cfg.iterations = 2;  // trace the steady-state second iteration
  telemetry::TimeSeries all("all");
  cfg.occupancy = &all;
  run_training(cfg);
  // Keep only the second iteration's samples (time axis re-zeroed).
  const double t_mid = all.samples()[all.samples().size() / 2].t;
  double t0 = -1.0;
  for (const auto& s : all.samples()) {
    if (s.t < t_mid) continue;
    if (t0 < 0.0) t0 = s.t;
    series.record(s.t - t0, s.value);
  }
  return series;
}

void print_series(const telemetry::TimeSeries& series) {
  std::printf("%s  (peak %s MiB)\n", series.name().c_str(),
              mib(static_cast<std::uint64_t>(series.max_value())).c_str());
  const auto samples = series.downsample(24);
  const double peak = series.max_value();
  for (const auto& s : samples) {
    const int bar = static_cast<int>(56.0 * s.value / peak);
    std::printf("  t=%7.1fs %7s MiB |%s\n", s.t,
                mib(static_cast<std::uint64_t>(s.value)).c_str(),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Figure 3",
               "Resident heap memory through one iteration of ResNet "
               "training under 2LM.\nExpected: 2LM:0 grows until the GC "
               "runs late in the iteration; 2LM:M frees\nproactively on the "
               "backward pass and peaks much lower.");
  const auto none = trace_mode(Mode::kTwoLmNone);
  const auto m = trace_mode(Mode::kTwoLmM);
  print_series(none);
  print_series(m);
  std::printf("peak ratio 2LM:0 / 2LM:M = %.2fx\n",
              none.max_value() / m.max_value());
  return 0;
}
