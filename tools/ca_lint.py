#!/usr/bin/env python3
"""ca_lint: repository-rule linter for the data-management core.

Eight rules that clang-tidy cannot express, enforced over src/:

  byte-copy-route
      Raw ``memcpy``/``memmove`` and raw ``std::thread`` are confined to
      src/mem, src/util and src/race.  Everything else moves bytes through
      ``util::copy_bytes``/``util::move_bytes`` (src/util/bytes.hpp), which
      are instrumented for the race detector, and spawns threads through
      the ``ca::sync`` lifecycle shims (src/race/sync.hpp), which keep the
      schedule explorer's task set deterministic.

  wall-clock
      No wall-clock source (std::chrono clocks, time(), gettimeofday,
      clock_gettime) anywhere in src/: all time is simulated seconds from
      ``sim::Clock`` so every result is host-independent and every bench is
      bit-for-bit deterministic.  Benches and tests may measure wall time;
      the model must not.

  dm-audit
      Every public mutating DataManager method (src/dm/data_manager.cpp)
      ends its success path with ``CA_AUDIT(*this)`` so Debug/CA_AUDIT
      builds verify the cross-structure invariants at every mutation
      boundary.

  kernel-scratch-route
      The fast compute-kernel sources (src/dnn/ops_real.cpp,
      src/dnn/gemm.cpp) run on ThreadPool workers and copy rows into
      per-thread scratch buffers; those bulk copies must go through
      ``util::copy_bytes`` -- not ``std::copy``/``std::copy_n``/``memcpy``
      -- so the race detector sees every scratch handoff and TSan/CA_RACE
      coverage of the kernel tier stays meaningful.

  intrusive-links
      The binned free lists thread intrusive ``bin_next``/``bin_prev``
      links through allocator nodes; every write to those links must stay
      inside src/mem/freelist_allocator.cpp (the list owner), where
      check_invariants() and ca::audit can vouch for them.  Other src/
      code reads the allocator through its public views only -- a stray
      link write elsewhere would bypass the bin bitmap and the membership
      invariants.

  simd-intrinsics-route
      x86 vector intrinsics (``_mm*``, ``__m128/__m256/__m512`` vector
      types, ``__builtin_ia32_*``) are confined to src/simd, the one
      subsystem compiled per-ISA and guarded by runtime CPUID dispatch.
      An intrinsic anywhere else either breaks the CA_NATIVE=OFF baseline
      build or executes unguarded on hosts without the ISA; everything
      outside reaches vector width through the dispatched providers
      (simd::gemm_tile, simd::copy_bytes).  ``__builtin_ia32_pause`` is
      exempt: it lowers to ``pause`` on every x86 and is the sanctioned
      spin-loop hint (util/completion_latch.hpp).

  comm-route
      Wire-byte movement inside src/comm (the allreduce gather/sum/scatter
      and any future collective) is confined to ``util::copy_bytes``: raw
      ``memcpy``/``memmove``, ``std::copy*`` and the NT-store
      ``simd::copy_bytes`` path are all forbidden there.  The comm engine's
      reductions run on pool threads against pinned gradient buckets; only
      the instrumented funnel gives the race detector (and TSan) the full
      access pattern, and the NT path's fence semantics are owned by the
      copy engine, not the comm layer.

  region-data-route
      Bare ``Region::data()`` extractions are confined to the files
      sanctioned by docs/pointer_provenance.json (the manager's own
      machinery, the PinnedSpan accessor, Runtime::resolve).  Everywhere
      else reaches bytes through ``dm::PinnedSpan`` so the ``ca::ptrprov``
      analyzer can prove the pointer never outlives its pin (paper SIII-C
      pin discipline).  tools/ptrprov_check.py audits the sanctioned files
      themselves (per-line counts, runtime diff); this rule guards the
      perimeter.

A finding can be waived on its own line with a trailing
``// ca_lint: allow(<rule>)`` comment; use sparingly and say why nearby.

Usage: tools/ca_lint.py [--root DIR] [--self-test]
Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories (relative to the repo root) where rule `byte-copy-route`
# permits the raw primitives: the sanctioned implementations themselves.
BYTE_COPY_ALLOWED_DIRS = ("src/mem", "src/util", "src/race", "src/simd")

BYTE_COPY_TOKENS = re.compile(r"\b(?:std::)?(memcpy|memmove)\s*\(|\bstd::thread\b")

WALL_CLOCK_TOKENS = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr)\s*\)"
)

# Public DataManager methods that mutate manager state.  Query/introspection
# methods (device_stats, owns_region, ...) are exempt by omission; keep this
# list in sync with the "mutating" half of dm/data_manager.hpp.
DM_MUTATORS = (
    "create_object",
    "destroy_object",
    "setprimary",
    "unpin",
    "allocate",
    "free",
    "copyto",
    "copyto_async",
    "wait_ready",
    "retire_transfers",
    "drain_transfers",
    "link",
    "unlink",
    "evictfrom",
    "defragment",
)

WAIVER = re.compile(r"//\s*ca_lint:\s*allow\(([a-z-]+)\)")

# Rule `kernel-scratch-route`: the fast-kernel translation units, and the
# bulk-copy primitives they must not reach for (util::copy_bytes only).
KERNEL_SCRATCH_FILES = ("src/dnn/ops_real.cpp", "src/dnn/gemm.cpp")

KERNEL_SCRATCH_TOKENS = re.compile(
    r"\bstd::copy(?:_n|_backward)?\s*\(|\b(?:std::)?(?:memcpy|memmove)\s*\(")

# Rule `intrusive-links`: the only translation unit allowed to write the
# intrusive per-bin list links.
INTRUSIVE_LINK_ALLOWED = ("src/mem/freelist_allocator.cpp",)

INTRUSIVE_LINK_TOKENS = re.compile(r"(?:\.|->)bin_(?:next|prev)\s*=(?!=)")

# Rule `simd-intrinsics-route`: the one directory compiled per-ISA behind
# runtime dispatch, and the intrinsic spellings confined to it.  The
# negative lookahead exempts __builtin_ia32_pause (the portable spin hint).
SIMD_INTRINSICS_ALLOWED_DIRS = ("src/simd",)

SIMD_INTRINSICS_TOKENS = re.compile(
    r"\b_mm\d{0,3}_\w+\s*\(|\b__m(?:64|128|256|512)[di]?\b"
    r"|\b__builtin_ia32_(?!pause\b)\w+")


# Rule `comm-route`: the comm subsystem's one sanctioned byte funnel is
# util::copy_bytes; every raw or alternate copy primitive is forbidden
# there (memcpy/memmove are also caught by byte-copy-route -- this rule
# additionally closes the std::copy* and simd::copy_bytes routes).
COMM_ROUTE_DIRS = ("src/comm",)

COMM_ROUTE_TOKENS = re.compile(
    r"\bsimd::copy_bytes\s*\(|\bstd::copy(?:_n|_backward)?\s*\("
    r"|\b(?:std::)?(?:memcpy|memmove)\s*\(")


# Rule `region-data-route`: identifiers bound to a Region (declaration or
# query result) whose .data()/->data() is then taken, plus chained
# query->data() calls.  Same two-pass heuristic as tools/ptrprov_check.py;
# the sanctioned-file set comes from docs/pointer_provenance.json.
REGION_DATA_MANIFEST = "docs/pointer_provenance.json"

REGION_DATA_DECL = re.compile(
    r"\bRegion\s*[*&]\s*(?:const\s+)?(?P<name>\w+)\b")
REGION_DATA_QUERY = re.compile(
    r"\b(?P<name>\w+)\s*=\s*[\w.>-]*"
    r"(?:allocate|getprimary|getlinked|region_on|primary)\s*\(")
REGION_DATA_CALL = re.compile(r"\b(?P<recv>\w+)\s*(?:->|\.)\s*data\s*\(\s*\)")
REGION_DATA_CHAINED = re.compile(
    r"\b(?:getprimary|getlinked|region_on|primary)\s*\([^()]*\)\s*"
    r"(?:->|\.)\s*data\s*\(\s*\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"file": self.path.as_posix(), "line": self.line,
                "rule": self.rule, "message": self.message}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line count
    (and line lengths where possible) so finding positions stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def waived_lines(text: str, rule: str) -> set[int]:
    lines = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = WAIVER.search(line)
        if m and m.group(1) == rule:
            lines.add(lineno)
    return lines


def scan_tokens(path: Path, rel: str, text: str, code: str,
                rule: str, pattern: re.Pattern, message: str) -> list[Finding]:
    waived = waived_lines(text, rule)
    findings = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = pattern.search(line)
        if m and lineno not in waived:
            token = m.group(0).rstrip("(").strip()
            findings.append(Finding(Path(rel), lineno, rule, f"{message} (found `{token}`)"))
    return findings


def check_byte_copy_route(root: Path) -> list[Finding]:
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(d + "/") for d in BYTE_COPY_ALLOWED_DIRS):
            continue
        text = path.read_text()
        code = strip_comments_and_strings(text)
        findings += scan_tokens(
            path, rel, text, code, "byte-copy-route", BYTE_COPY_TOKENS,
            "raw byte copies / threads live in src/mem, src/util, src/race only; "
            "use util::copy_bytes/move_bytes or the ca::sync lifecycle shims")
    return findings


def check_wall_clock(root: Path) -> list[Finding]:
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        code = strip_comments_and_strings(text)
        findings += scan_tokens(
            path, rel, text, code, "wall-clock", WALL_CLOCK_TOKENS,
            "wall-clock reads are forbidden in src/; all time is simulated "
            "seconds from sim::Clock")
    return findings


def method_body(code: str, name: str) -> tuple[int, str] | None:
    """Locate `DataManager::name(...) ... { body }` in comment-stripped
    code; returns (line of the definition, body text) or None."""
    pattern = re.compile(r"DataManager::" + re.escape(name) + r"\s*\(")
    for m in pattern.finditer(code):
        open_brace = code.find("{", m.end())
        semi = code.find(";", m.end())
        if open_brace == -1 or (semi != -1 and semi < open_brace):
            continue  # a declaration or a mention, not a definition
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    line = code.count("\n", 0, m.start()) + 1
                    return line, code[open_brace:i + 1]
    return None


def check_dm_audit(root: Path) -> list[Finding]:
    path = root / "src" / "dm" / "data_manager.cpp"
    if not path.exists():
        return [Finding(Path("src/dm/data_manager.cpp"), 1, "dm-audit",
                        "file not found")]
    rel = path.relative_to(root).as_posix()
    text = path.read_text()
    code = strip_comments_and_strings(text)
    waived = waived_lines(text, "dm-audit")
    findings = []
    for name in DM_MUTATORS:
        located = method_body(code, name)
        if located is None:
            findings.append(Finding(Path(rel), 1, "dm-audit",
                                    f"mutating method `{name}` not found "
                                    "(update DM_MUTATORS in tools/ca_lint.py)"))
            continue
        line, body = located
        if "CA_AUDIT(" not in body and line not in waived:
            findings.append(Finding(
                Path(rel), line, "dm-audit",
                f"public mutating method `{name}` must end with CA_AUDIT(*this)"))
    return findings


def check_kernel_scratch_route(root: Path) -> list[Finding]:
    findings = []
    for rel in KERNEL_SCRATCH_FILES:
        path = root / rel
        if not path.exists():
            continue  # the kernel tier may not exist yet in partial trees
        text = path.read_text()
        code = strip_comments_and_strings(text)
        findings += scan_tokens(
            path, rel, text, code, "kernel-scratch-route",
            KERNEL_SCRATCH_TOKENS,
            "kernel scratch copies must route through util::copy_bytes so "
            "the race detector sees the per-thread scratch handoff")
    return findings


def check_intrusive_links(root: Path) -> list[Finding]:
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel in INTRUSIVE_LINK_ALLOWED:
            continue
        text = path.read_text()
        code = strip_comments_and_strings(text)
        findings += scan_tokens(
            path, rel, text, code, "intrusive-links", INTRUSIVE_LINK_TOKENS,
            "bin_next/bin_prev writes are confined to "
            "src/mem/freelist_allocator.cpp; use the allocator's public "
            "surface")
    return findings


def check_simd_intrinsics_route(root: Path) -> list[Finding]:
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(d + "/") for d in SIMD_INTRINSICS_ALLOWED_DIRS):
            continue
        text = path.read_text()
        code = strip_comments_and_strings(text)
        findings += scan_tokens(
            path, rel, text, code, "simd-intrinsics-route",
            SIMD_INTRINSICS_TOKENS,
            "x86 intrinsics are confined to src/simd (per-ISA TUs behind "
            "runtime dispatch); use simd::gemm_tile / simd::copy_bytes")
    return findings


def check_comm_route(root: Path) -> list[Finding]:
    findings = []
    for d in COMM_ROUTE_DIRS:
        base = root / d
        if not base.is_dir():
            continue  # the comm layer may not exist yet in partial trees
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp"):
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text()
            code = strip_comments_and_strings(text)
            findings += scan_tokens(
                path, rel, text, code, "comm-route", COMM_ROUTE_TOKENS,
                "wire-byte movement in src/comm must route through "
                "util::copy_bytes (the race-instrumented funnel); raw "
                "copies and the NT simd path hide the reduction's "
                "gather/sum/scatter accesses from the detector")
    return findings


def check_region_data_route(root: Path) -> list[Finding]:
    import json
    manifest_path = root / REGION_DATA_MANIFEST
    if not manifest_path.exists():
        return [Finding(Path(REGION_DATA_MANIFEST), 1, "region-data-route",
                        "manifest not found")]
    manifest = json.loads(manifest_path.read_text())
    sanctioned = {s["file"] for s in manifest.get("raw_data_sites", [])}
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel in sanctioned or rel.startswith("src/ptrprov/"):
            continue  # audited by tools/ptrprov_check.py / the analyzer itself
        text = path.read_text()
        code = strip_comments_and_strings(text)
        waived = waived_lines(text, "region-data-route")
        tracked = {m.group("name") for m in REGION_DATA_DECL.finditer(code)}
        tracked |= {m.group("name")
                    for m in REGION_DATA_QUERY.finditer(code)}
        lines = set()
        for m in REGION_DATA_CALL.finditer(code):
            if m.group("recv") in tracked:
                lines.add(code.count("\n", 0, m.start()) + 1)
        for m in REGION_DATA_CHAINED.finditer(code):
            lines.add(code.count("\n", 0, m.start()) + 1)
        for lineno in sorted(lines - waived):
            findings.append(Finding(
                Path(rel), lineno, "region-data-route",
                "bare Region::data() outside the files sanctioned by "
                "docs/pointer_provenance.json; access bytes through "
                "dm::PinnedSpan (DataManager::access) so ca::ptrprov can "
                "track the pointer's provenance"))
    return findings


# --- self-test ---------------------------------------------------------------

SELF_TEST_BAD = """\
void im2col(float* col, const float* x, unsigned n) {
  std::copy(x, x + n, col);
  std::copy_n(x, n, col);
  memcpy(col, x, n * sizeof(float));
}
"""

SELF_TEST_GOOD = """\
#include "util/bytes.hpp"
void im2col(float* col, const float* x, unsigned n) {
  util::copy_bytes(col, x, n * sizeof(float), "ops::im2col");
  // a std::copy mention in a comment is fine
  std::copy(x, x + n, col);  // ca_lint: allow(kernel-scratch-route)
}
"""

SELF_TEST_LINKS_BAD = """\
void poke(Node* n, Node& m) {
  n->bin_next = 0;
  m.bin_prev = 1;
}
"""

SELF_TEST_LINKS_GOOD = """\
bool same(const Node& a, const Node& b) {
  // a bin_next mention in a comment is fine, and comparisons are reads:
  if (a.bin_next == b.bin_next) return true;
  return false;
}
void waived(Node* n) {
  n->bin_next = 0;  // ca_lint: allow(intrusive-links)
}
"""

SELF_TEST_SIMD_BAD = """\
#include <immintrin.h>
void hot(float* c, const float* a, const float* b) {
  __m256 va = _mm256_loadu_ps(a);
  __m256 vb = _mm256_loadu_ps(b);
  _mm256_storeu_ps(c, _mm256_fmadd_ps(va, vb, _mm256_setzero_ps()));
  __builtin_ia32_sfence();
}
"""

SELF_TEST_SIMD_GOOD = """\
#include "simd/copy.hpp"
void cool(float* c, const float* a, unsigned n) {
  // an _mm256_stream_si256( mention in a comment is fine, as is __m512i
  const char* kDoc = "_mm_sfence( in a string is fine too";
  ca::simd::copy_bytes(c, a, n);
  for (;;) __builtin_ia32_pause();  // the sanctioned spin hint
}
void waived(float* p) {
  _mm_prefetch(p, 1);  // ca_lint: allow(simd-intrinsics-route)
}
"""

# Rules must scan comment/string-stripped code: every token below sits in a
# comment or a string literal and none may produce a finding...
SELF_TEST_STRIPPED_CLEAN = """\
// Routing note: never call memcpy(dst, src, n) here; use util::copy_bytes.
/* std::chrono::steady_clock would break determinism -- see sim::Clock.
   So would memmove(a, b, n) outside src/mem.  And std::thread. */
const char* kDoc =
    "policy may not memcpy( regions; std::chrono is banned in src/";
const char kOneChar = '"';  // an unmatched quote inside a char literal
inline int simulated_now() { return 0; }
"""

# ...while the same tokens in live code must all be flagged.
SELF_TEST_STRIPPED_BAD = """\
#include <chrono>
void tick(void* dst, const void* src, unsigned n) {
  memcpy(dst, src, n);
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
"""


SELF_TEST_PROV_BAD = """\
void rogue(Region* r, DataManager& dm, Object& obj) {
  std::byte* p = r->data();
  std::byte* q = dm.getprimary(obj)->data();
  use(p, q);
}
"""

SELF_TEST_PROV_GOOD = """\
void fine(Region* r, std::vector<std::byte>& buf) {
  // a r->data() mention in a comment is fine
  const char* kDoc = "and getprimary(o)->data() in a string is fine too";
  use(buf.data());  // not a Region receiver: untracked identifier
  std::byte* p = r->data();  // ca_lint: allow(region-data-route)
  use(p, kDoc);
}
"""

SELF_TEST_PROV_MANIFEST = """\
{"version": 1,
 "raw_data_sites": [{"file": "src/dm/pinned_span.hpp", "count": 1}],
 "accessors": []}
"""

SELF_TEST_COMM_BAD = """\
void reduce(std::byte* dst, const std::byte* src, unsigned n) {
  simd::copy_bytes(dst, src, n);
  std::copy_n(src, n, dst);
  memcpy(dst, src, n);
}
"""

SELF_TEST_COMM_GOOD = """\
#include "util/bytes.hpp"
void reduce(std::byte* dst, const std::byte* src, unsigned n) {
  // a memcpy( or simd::copy_bytes( mention in a comment is fine
  const char* kDoc = "and std::copy( in a string is fine too";
  util::copy_bytes(dst, src, n, "comm::reduce");
  memcpy(dst, src, n);  // ca_lint: allow(comm-route)
  use(kDoc);
}
"""


def self_test() -> int:
    """Negative-test the rules against in-memory fixtures: the bad snippet
    must trip `kernel-scratch-route`; the waived/commented one must not."""
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        kernel = root / "src" / "dnn"
        kernel.mkdir(parents=True)
        (root / "src" / "dm").mkdir(parents=True)

        (kernel / "ops_real.cpp").write_text(SELF_TEST_BAD)
        (kernel / "gemm.cpp").write_text(SELF_TEST_GOOD)
        findings = check_kernel_scratch_route(root)
        bad = [f for f in findings if f.path.as_posix().endswith("ops_real.cpp")]
        good = [f for f in findings if f.path.as_posix().endswith("gemm.cpp")]
        if len(bad) != 3:
            failures.append(
                f"kernel-scratch-route: expected 3 findings in the bad "
                f"fixture, got {len(bad)}")
        if good:
            failures.append(
                f"kernel-scratch-route: waiver/comment fixture produced "
                f"{len(good)} finding(s)")

        mem = root / "src" / "mem"
        mem.mkdir(parents=True)
        (root / "src" / "dm" / "poker.cpp").write_text(SELF_TEST_LINKS_BAD)
        (mem / "freelist_allocator.cpp").write_text(SELF_TEST_LINKS_BAD)
        (root / "src" / "dm" / "reader.cpp").write_text(SELF_TEST_LINKS_GOOD)
        link_findings = check_intrusive_links(root)
        link_bad = [f for f in link_findings
                    if f.path.as_posix().endswith("poker.cpp")]
        link_other = [f for f in link_findings
                      if not f.path.as_posix().endswith("poker.cpp")]
        if len(link_bad) != 2:
            failures.append(
                f"intrusive-links: expected 2 findings in the bad fixture, "
                f"got {len(link_bad)}")
        if link_other:
            failures.append(
                f"intrusive-links: owner/waiver/read fixtures produced "
                f"{len(link_other)} finding(s)")

        # Comment/string stripping: memcpy and std::chrono inside comments
        # and string literals are not findings; the same tokens in live
        # code are.  (byte-copy-route and wall-clock both scan src/policy.)
        policy = root / "src" / "policy"
        policy.mkdir(parents=True)
        (policy / "notes.cpp").write_text(SELF_TEST_STRIPPED_CLEAN)
        (policy / "ticker.cpp").write_text(SELF_TEST_STRIPPED_BAD)
        stripped = check_byte_copy_route(root) + check_wall_clock(root)
        clean_hits = [f for f in stripped
                      if f.path.as_posix().endswith("notes.cpp")]
        bad_hits = {(f.rule, f.line) for f in stripped
                    if f.path.as_posix().endswith("ticker.cpp")}
        if clean_hits:
            failures.append(
                "stripping: tokens in comments/strings produced "
                f"{len(clean_hits)} finding(s): {clean_hits[0]}")
        if bad_hits != {("byte-copy-route", 3), ("wall-clock", 4)}:
            failures.append(
                f"stripping: live-code fixture expected byte-copy-route@3 "
                f"and wall-clock@4, got {sorted(bad_hits)}")

        # simd-intrinsics-route: live intrinsics outside src/simd are
        # flagged (one per line); the same spellings in comments/strings,
        # the pause hint, a waived line, and anything under src/simd are
        # not.
        simd_dir = root / "src" / "simd"
        simd_dir.mkdir(parents=True)
        (root / "src" / "dnn" / "vector_hot.cpp").write_text(SELF_TEST_SIMD_BAD)
        (root / "src" / "dnn" / "vector_cool.cpp").write_text(
            SELF_TEST_SIMD_GOOD)
        (simd_dir / "native.cpp").write_text(SELF_TEST_SIMD_BAD)
        simd_findings = check_simd_intrinsics_route(root)
        simd_bad = [f for f in simd_findings
                    if f.path.as_posix().endswith("vector_hot.cpp")]
        simd_other = [f for f in simd_findings
                      if not f.path.as_posix().endswith("vector_hot.cpp")]
        if len(simd_bad) != 4:
            failures.append(
                f"simd-intrinsics-route: expected 4 findings in the bad "
                f"fixture, got {len(simd_bad)}")
        if simd_other:
            failures.append(
                f"simd-intrinsics-route: comment/string/pause/waiver/owner "
                f"fixtures produced {len(simd_other)} finding(s): "
                f"{simd_other[0]}")

        # region-data-route: bare extractions outside the manifest's files
        # are flagged (one per line); extractions in comments/strings, on
        # non-Region receivers, on waived lines, or inside a sanctioned
        # file are not.
        (root / "docs").mkdir()
        (root / "docs" / "pointer_provenance.json").write_text(
            SELF_TEST_PROV_MANIFEST)
        (root / "src" / "policy" / "rogue.cpp").write_text(SELF_TEST_PROV_BAD)
        (root / "src" / "policy" / "fine.cpp").write_text(SELF_TEST_PROV_GOOD)
        (root / "src" / "dm" / "pinned_span.hpp").write_text(
            SELF_TEST_PROV_BAD)
        prov_findings = check_region_data_route(root)
        prov_bad = [f for f in prov_findings
                    if f.path.as_posix().endswith("rogue.cpp")]
        prov_other = [f for f in prov_findings
                      if not f.path.as_posix().endswith("rogue.cpp")]
        if len(prov_bad) != 2:
            failures.append(
                f"region-data-route: expected 2 findings in the bad "
                f"fixture, got {len(prov_bad)}")
        if prov_other:
            failures.append(
                f"region-data-route: comment/string/waiver/sanctioned "
                f"fixtures produced {len(prov_other)} finding(s): "
                f"{prov_other[0]}")

        # comm-route: live copy primitives inside src/comm are flagged (one
        # per line); the util::copy_bytes funnel, comment/string mentions,
        # and waived lines are not.
        comm_dir = root / "src" / "comm"
        comm_dir.mkdir(parents=True)
        (comm_dir / "bad_engine.cpp").write_text(SELF_TEST_COMM_BAD)
        (comm_dir / "good_engine.cpp").write_text(SELF_TEST_COMM_GOOD)
        comm_findings = check_comm_route(root)
        comm_bad = [f for f in comm_findings
                    if f.path.as_posix().endswith("bad_engine.cpp")]
        comm_other = [f for f in comm_findings
                      if not f.path.as_posix().endswith("bad_engine.cpp")]
        if len(comm_bad) != 3:
            failures.append(
                f"comm-route: expected 3 findings in the bad fixture, got "
                f"{len(comm_bad)}")
        if comm_other:
            failures.append(
                f"comm-route: funnel/comment/string/waiver fixtures "
                f"produced {len(comm_other)} finding(s): {comm_other[0]}")

    for f in failures:
        print(f"ca_lint --self-test: {f}", file=sys.stderr)
    if failures:
        return 1
    print("ca_lint --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON object on stdout")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own negative tests and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"ca_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = (check_byte_copy_route(root) + check_wall_clock(root) +
                check_dm_audit(root) + check_kernel_scratch_route(root) +
                check_intrusive_links(root) +
                check_simd_intrinsics_route(root) +
                check_comm_route(root) +
                check_region_data_route(root))
    if args.json:
        import json
        print(json.dumps({"tool": "ca_lint",
                          "findings": [f.to_json() for f in findings]},
                         indent=2))
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"ca_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("ca_lint: clean (byte-copy-route, wall-clock, dm-audit, "
              "kernel-scratch-route, intrusive-links, simd-intrinsics-route, "
              "comm-route, region-data-route)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
