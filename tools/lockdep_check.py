#!/usr/bin/env python3
"""lockdep_check: static half of ca::lockdep -- keep the declared lock
hierarchy, the in-source annotations, and the runtime-observed graph in
agreement.

The single source of truth is docs/lock_hierarchy.json.  Two checks:

  manifest-vs-annotations (always)
      Every ``ca::sync::mutex`` in src/ must be declared with
      ``CA_LOCK_CLASS("<name>")`` and its ordering annotated with
      ``CA_LEAF`` (no lock may be acquired under it) or
      ``CA_ACQUIRED_BEFORE(<member>, ...)`` (the successors it may be held
      around).  The parsed annotations are diffed against the manifest in
      both directions: a class or edge present in only one place is a
      finding, as is a leaf/edge disagreement.

  manifest-vs-runtime (--graph DUMP)
      DUMP is the acquisition-order graph serialized by
      tests/lockdep/lockdep_graph_test.cpp (run it with CA_LOCKDEP_DUMP
      pointing at a file; tools/check.sh stage `lockdep` does).  Diffed
      against the manifest in both directions: an observed-but-undeclared
      ordering edge fails (the CI-red case), and so does a
      declared-but-never-observed one (dead hierarchy = stale manifest).
      Blocking occurrences fail unless the class is waived, and every
      manifest class must have been *acquired* by the workload: the dump
      carries a per-class acquisition count, and a class whose
      CA_LOCK_CLASS static merely ran (registration) without any lock()
      gives lockdep zero ordering evidence, so it counts as unexercised.

Usage: tools/lockdep_check.py [--root DIR] [--manifest FILE]
                              [--graph DUMP] [--json] [--self-test]
Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

MUTEX_DECL = re.compile(
    r"sync::mutex\s+(?P<member>\w+)\s*"
    r"(?P<annotations>(?:CA_LEAF\s*|CA_ACQUIRED_BEFORE\s*\([^)]*\)\s*)*)"
    r"\{\s*CA_LOCK_CLASS\(\"(?P<cls>[^\"]+)\"\)",
    re.MULTILINE,
)

# A sync::mutex declaration with NO CA_LOCK_CLASS initializer: unnamed
# mutexes are invisible to the ordering graph, so production code may not
# declare them.  (basic_lock members and using-aliases do not match.)
UNNAMED_DECL = re.compile(
    r"sync::mutex\s+\w+\s*(?:CA_LEAF\s*)?(?:;|\{\s*\})")

ACQUIRED_BEFORE = re.compile(r"CA_ACQUIRED_BEFORE\s*\(([^)]*)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line count and string
    literals (CA_LOCK_CLASS names live in strings)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Annotation:
    """One annotated mutex declaration parsed from a header."""

    def __init__(self, path: str, line: int, member: str, cls: str,
                 leaf: bool, before_members: list[str]):
        self.path = path
        self.line = line
        self.member = member
        self.cls = cls
        self.leaf = leaf
        self.before_members = before_members  # raw member tokens
        self.before_classes: list[str] = []   # resolved per file


def parse_annotations(root: Path) -> tuple[list[Annotation], list[Finding]]:
    annotations: list[Annotation] = []
    findings: list[Finding] = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/race/") or rel.startswith("src/lockdep/"):
            continue  # the shims and the subsystem itself, not clients
        code = strip_comments(path.read_text())
        per_file: list[Annotation] = []
        for m in MUTEX_DECL.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            raw = m.group("annotations")
            before = []
            for ab in ACQUIRED_BEFORE.finditer(raw):
                before += [t.strip() for t in ab.group(1).split(",") if t.strip()]
            per_file.append(Annotation(rel, line, m.group("member"),
                                       m.group("cls"),
                                       leaf="CA_LEAF" in raw,
                                       before_members=before))
        member_to_class = {a.member: a.cls for a in per_file}
        for a in per_file:
            for member in a.before_members:
                cls = member_to_class.get(member)
                if cls is None:
                    findings.append(Finding(
                        a.path, a.line, "annotation-parse",
                        f"CA_ACQUIRED_BEFORE({member}) on `{a.cls}` names a "
                        "member with no CA_LOCK_CLASS in this file"))
                else:
                    a.before_classes.append(cls)
        for m in UNNAMED_DECL.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                rel, line, "unnamed-mutex",
                "production sync::mutex without CA_LOCK_CLASS: unnamed "
                "locks are invisible to the ordering graph"))
        annotations += per_file
    return annotations, findings


def load_manifest(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    manifest.setdefault("classes", [])
    manifest.setdefault("edges", [])
    return manifest


def check_manifest_vs_annotations(manifest: dict, manifest_rel: str,
                                  annotations: list[Annotation]) -> list[Finding]:
    findings: list[Finding] = []
    declared = {c["name"]: c for c in manifest["classes"]}
    annotated = {a.cls: a for a in annotations}

    for name, a in sorted(annotated.items()):
        if name not in declared:
            findings.append(Finding(
                a.path, a.line, "undeclared-class",
                f"lock class `{name}` is annotated in source but missing "
                f"from {manifest_rel}"))
    for name, c in sorted(declared.items()):
        a = annotated.get(name)
        if a is None:
            findings.append(Finding(
                manifest_rel, 1, "stale-manifest",
                f"lock class `{name}` is declared in the manifest but no "
                "CA_LOCK_CLASS annotation defines it in src/"))
            continue
        if c.get("header") and c["header"] != a.path:
            findings.append(Finding(
                a.path, a.line, "manifest-mismatch",
                f"`{name}` declared in {a.path} but the manifest says "
                f"{c['header']}"))
        manifest_out = {e["to"] for e in manifest["edges"]
                        if e["from"] == name}
        if c.get("leaf", False) and not a.leaf:
            findings.append(Finding(
                a.path, a.line, "leaf-mismatch",
                f"manifest marks `{name}` a leaf but the declaration lacks "
                "CA_LEAF"))
        if not c.get("leaf", False) and a.leaf:
            findings.append(Finding(
                a.path, a.line, "leaf-mismatch",
                f"`{name}` is annotated CA_LEAF but the manifest does not "
                "mark it a leaf"))
        if c.get("leaf", False) and manifest_out:
            findings.append(Finding(
                manifest_rel, 1, "manifest-inconsistent",
                f"`{name}` is marked leaf yet has outgoing manifest edges: "
                f"{sorted(manifest_out)}"))
        annotated_out = set(a.before_classes)
        for extra in sorted(annotated_out - manifest_out):
            findings.append(Finding(
                a.path, a.line, "undeclared-edge",
                f"CA_ACQUIRED_BEFORE declares `{name}` -> `{extra}` but the "
                f"manifest does not list that edge"))
        for missing in sorted(manifest_out - annotated_out):
            findings.append(Finding(
                a.path, a.line, "unannotated-edge",
                f"manifest edge `{name}` -> `{missing}` has no matching "
                "CA_ACQUIRED_BEFORE annotation"))
    return findings


def check_manifest_vs_graph(manifest: dict, manifest_rel: str,
                            dump: dict, dump_rel: str) -> list[Finding]:
    findings: list[Finding] = []
    declared_classes = {c["name"]: c for c in manifest["classes"]}
    declared_edges = {(e["from"], e["to"]) for e in manifest["edges"]}
    observed = {c["name"]: c for c in dump.get("classes", [])}
    observed_classes = set(observed)
    # Registration alone (the CA_LOCK_CLASS static running) proves nothing
    # about coverage: only classes the workload actually *locked* carry
    # ordering evidence.  Dumps predating the counter have no "acquires"
    # key; treat those classes as acquired so old dumps stay comparable.
    acquired_classes = {name for name, c in observed.items()
                        if c.get("acquires", 1) > 0}
    observed_edges = {(e["from"], e["to"]): e for e in dump.get("edges", [])}

    # Direction 1: everything observed at runtime must be sanctioned.
    for (src, dst), edge in sorted(observed_edges.items()):
        if (src, dst) not in declared_edges:
            findings.append(Finding(
                dump_rel, 1, "undeclared-runtime-edge",
                f"runtime observed `{src}` -> `{dst}` (acquired at "
                f"{edge.get('site', '?')}) but {manifest_rel} does not "
                "declare that ordering"))
    for b in dump.get("blocking", []):
        cls = declared_classes.get(b["class"])
        if cls is None or not cls.get("waive_blocking", False):
            findings.append(Finding(
                dump_rel, 1, "held-across-blocking",
                f"`{b['class']}` was held across {b['op']} at "
                f"{b.get('site', '?')} and is not waived in {manifest_rel}"))

    # Direction 2: everything declared must be alive in the workload.
    for src, dst in sorted(declared_edges - set(observed_edges)):
        findings.append(Finding(
            manifest_rel, 1, "unobserved-edge",
            f"manifest declares `{src}` -> `{dst}` but the sanctioned "
            "workload never exercised it (stale manifest?)"))
    for name in sorted(set(declared_classes) - acquired_classes):
        if name in observed_classes:
            findings.append(Finding(
                manifest_rel, 1, "unexercised-class",
                f"manifest class `{name}` registered at runtime but was "
                "never acquired -- the graph workload does not lock it, so "
                "its declared ordering is untested"))
        else:
            findings.append(Finding(
                manifest_rel, 1, "unexercised-class",
                f"manifest class `{name}` never registered at runtime -- "
                "the graph workload does not cover its subsystem"))

    # Classes observed at runtime that look like production locks (the
    # test suites register `test::` classes; `<unnamed>` is the shared
    # anonymous class) must be in the manifest.
    for name in sorted(observed_classes - set(declared_classes)):
        if name.startswith("test::") or name == "<unnamed>":
            continue
        findings.append(Finding(
            dump_rel, 1, "unknown-runtime-class",
            f"runtime registered lock class `{name}` that the manifest "
            "does not declare"))
    return findings


# --- self-test ---------------------------------------------------------------

SELF_TEST_HEADER = """\
#include "util/thread_annotations.hpp"
class Pool {
  // a sync::mutex mention in a comment is fine
  sync::mutex mu_ CA_LEAF{CA_LOCK_CLASS("test::Pool::mu_")};
  sync::mutex outer_ CA_ACQUIRED_BEFORE(mu_){CA_LOCK_CLASS("test::Pool::outer_")};
};
"""

SELF_TEST_UNNAMED = """\
class Rogue {
  sync::mutex mu_;
};
"""

SELF_TEST_MANIFEST = {
    "classes": [
        {"name": "test::Pool::mu_", "header": "src/util/pool.hpp",
         "leaf": True, "waive_blocking": False},
        {"name": "test::Pool::outer_", "header": "src/util/pool.hpp",
         "leaf": False, "waive_blocking": False},
    ],
    "edges": [{"from": "test::Pool::outer_", "to": "test::Pool::mu_"}],
}

SELF_TEST_DUMP_CLEAN = {
    "classes": [{"name": "test::Pool::mu_", "acquires": 12},
                {"name": "test::Pool::outer_", "acquires": 3}],
    "edges": [{"from": "test::Pool::outer_", "to": "test::Pool::mu_",
               "site": "pool.cpp:10"}],
    "blocking": [],
}

# Registered (the CA_LOCK_CLASS static ran) but never locked: the edge is
# still observed -- from an earlier, unsanctioned schedule say -- yet the
# sanctioned workload holds zero acquisitions of outer_.
SELF_TEST_DUMP_UNACQUIRED = {
    "classes": [{"name": "test::Pool::mu_", "acquires": 12},
                {"name": "test::Pool::outer_", "acquires": 0}],
    "edges": [{"from": "test::Pool::outer_", "to": "test::Pool::mu_",
               "site": "pool.cpp:10"}],
    "blocking": [],
}

SELF_TEST_DUMP_ROGUE_EDGE = {
    "classes": [{"name": "test::Pool::mu_"}, {"name": "test::Pool::outer_"}],
    "edges": [
        {"from": "test::Pool::outer_", "to": "test::Pool::mu_",
         "site": "pool.cpp:10"},
        {"from": "test::Pool::mu_", "to": "test::Pool::outer_",
         "site": "pool.cpp:99"},
    ],
    "blocking": [{"class": "test::Pool::mu_", "op": "mem::Transfer::join",
                  "site": "pool.cpp:50"}],
}


def self_test() -> int:
    """Negative tests: the checker must go red on an undeclared runtime
    edge, an unwaived blocking occurrence, a manifest/annotation drift, and
    an unnamed production mutex -- and stay green on the clean fixtures."""
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src" / "util").mkdir(parents=True)
        (root / "src" / "util" / "pool.hpp").write_text(SELF_TEST_HEADER)

        annotations, parse_findings = parse_annotations(root)
        if parse_findings:
            failures.append(
                f"clean fixture produced parse findings: {parse_findings[0]}")
        if sorted(a.cls for a in annotations) != [
                "test::Pool::mu_", "test::Pool::outer_"]:
            failures.append(
                f"expected 2 annotated classes, got "
                f"{[a.cls for a in annotations]}")
        elif next(a for a in annotations
                  if a.cls == "test::Pool::outer_").before_classes != [
                      "test::Pool::mu_"]:
            failures.append("CA_ACQUIRED_BEFORE member did not resolve to "
                            "its class name")

        clean = check_manifest_vs_annotations(
            SELF_TEST_MANIFEST, "manifest.json", annotations)
        if clean:
            failures.append(f"clean manifest diff not empty: {clean[0]}")

        # Drift A: a class annotated in source but dropped from the manifest.
        no_class = {"classes": SELF_TEST_MANIFEST["classes"][:1], "edges": []}
        rules = {f.rule for f in check_manifest_vs_annotations(
            no_class, "manifest.json", annotations)}
        if "undeclared-class" not in rules:
            failures.append(
                f"dropped manifest class not detected, rules={sorted(rules)}")

        # Drift B: an edge annotated via CA_ACQUIRED_BEFORE but not declared
        # in the manifest (and the leaf flag now disagrees too).
        no_edge = {"classes": SELF_TEST_MANIFEST["classes"], "edges": []}
        rules = {f.rule for f in check_manifest_vs_annotations(
            no_edge, "manifest.json", annotations)}
        if "undeclared-edge" not in rules:
            failures.append(
                f"undeclared annotation edge not detected, rules={sorted(rules)}")

        (root / "src" / "util" / "rogue.hpp").write_text(SELF_TEST_UNNAMED)
        _, rogue_findings = parse_annotations(root)
        if not any(f.rule == "unnamed-mutex" for f in rogue_findings):
            failures.append("unnamed production mutex not detected")

        graph_clean = check_manifest_vs_graph(
            SELF_TEST_MANIFEST, "manifest.json", SELF_TEST_DUMP_CLEAN,
            "dump.json")
        if graph_clean:
            failures.append(f"clean graph diff not empty: {graph_clean[0]}")

        graph_bad = check_manifest_vs_graph(
            SELF_TEST_MANIFEST, "manifest.json", SELF_TEST_DUMP_ROGUE_EDGE,
            "dump.json")
        bad_rules = {f.rule for f in graph_bad}
        if "undeclared-runtime-edge" not in bad_rules:
            failures.append("undeclared runtime edge not flagged "
                            f"(rules={sorted(bad_rules)})")
        if "held-across-blocking" not in bad_rules:
            failures.append("unwaived blocking occurrence not flagged "
                            f"(rules={sorted(bad_rules)})")

        # A class that registered but was never locked must count as
        # unexercised even though it appears in the dump's class list.
        unacq = check_manifest_vs_graph(
            SELF_TEST_MANIFEST, "manifest.json", SELF_TEST_DUMP_UNACQUIRED,
            "dump.json")
        if not any(f.rule == "unexercised-class" and "never acquired"
                   in f.message for f in unacq):
            failures.append("registered-but-never-acquired class not "
                            f"flagged: {[str(f) for f in unacq]}")

    for f in failures:
        print(f"lockdep_check --self-test: {f}", file=sys.stderr)
    if failures:
        return 1
    print("lockdep_check --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="lock-hierarchy manifest "
                             "(default: docs/lock_hierarchy.json)")
    parser.add_argument("--graph", type=Path, default=None,
                        help="runtime graph dump (CA_LOCKDEP_DUMP output of "
                             "tests/lockdep/lockdep_graph_test) to diff "
                             "against the manifest")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's own negative tests and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lockdep_check: no src/ under {root}", file=sys.stderr)
        return 2
    manifest_path = args.manifest or root / "docs" / "lock_hierarchy.json"
    if not manifest_path.exists():
        print(f"lockdep_check: manifest {manifest_path} not found",
              file=sys.stderr)
        return 2
    manifest = load_manifest(manifest_path)
    try:
        manifest_rel = manifest_path.resolve().relative_to(root).as_posix()
    except ValueError:
        manifest_rel = manifest_path.as_posix()

    annotations, findings = parse_annotations(root)
    findings += check_manifest_vs_annotations(manifest, manifest_rel,
                                              annotations)
    checked = "annotations"
    if args.graph is not None:
        if not args.graph.exists():
            print(f"lockdep_check: graph dump {args.graph} not found",
                  file=sys.stderr)
            return 2
        dump = json.loads(args.graph.read_text())
        findings += check_manifest_vs_graph(manifest, manifest_rel, dump,
                                            args.graph.as_posix())
        checked += "+runtime-graph"

    if args.json:
        print(json.dumps({"tool": "lockdep_check", "checked": checked,
                          "findings": [f.to_json() for f in findings]},
                         indent=2))
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"lockdep_check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print(f"lockdep_check: clean ({checked}; "
              f"{len(annotations)} annotated lock classes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
